//! Quickstart: compile a small sequential Fortran program with the
//! Polaris pipeline and run it on the simulated 4-node V-Bus cluster.
//!
//! ```sh
//! cargo run --release -p vpce --example quickstart
//! ```

use vpce::{run_experiment, BackendOptions, ClusterConfig, ExecMode};

const SOURCE: &str = r"
      PROGRAM SAXPY
      PARAMETER (N = 4096)
      REAL X(N), Y(N)
      REAL A, S
      INTEGER I
      A = 2.5
      DO I = 1, N
        X(I) = REAL(I) / REAL(N)
        Y(I) = 1.0
      ENDDO
      DO I = 1, N
        Y(I) = A * X(I) + Y(I)
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + Y(I)
      ENDDO
      END
";

fn main() {
    let cluster = ClusterConfig::paper_4node();
    let opts = BackendOptions::new(cluster.num_nodes());
    let exp = run_experiment(SOURCE, &[], &cluster, &opts, ExecMode::Full)
        .expect("front-end accepts the program");

    println!("program: {}", exp.compiled.program.name);
    println!(
        "parallel loops found: {}",
        exp.compiled.program.regions().count()
    );
    let (msgs, elems) = exp.compiled.program.comm_summary();
    println!("communication plan: {msgs} one-sided messages, {elems} elements");

    println!("\nvirtual execution on the 4-node V-Bus cluster:");
    println!("  sequential: {:.3} ms", exp.sequential.elapsed * 1e3);
    println!("  parallel:   {:.3} ms", exp.parallel.elapsed * 1e3);
    println!("  speedup:    {:.2}x", exp.speedup());
    println!("  comm time:  {:.3} ms", exp.comm_time() * 1e3);
    if exp.speedup() < 1.0 {
        println!(
            "  (SAXPY moves one element per flop — scattering the data \
             costs more than the compute it parallelises. Run the \
             matrix_multiply example for a compute-bound workload.)"
        );
    }

    // The computed values are identical to the sequential run.
    assert_eq!(exp.parallel.arrays, exp.sequential.arrays);
    let s_slot = exp
        .compiled
        .program
        .scalars
        .iter()
        .position(|(n, _)| n == "S")
        .unwrap();
    println!(
        "\nreduction result S = {:.4} (identical on both paths)",
        exp.parallel.scalars[s_slot].as_real()
    );
}
