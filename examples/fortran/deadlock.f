C     Pool-pressure fixture for the static communication verifier.
C     The second loop reads seven arrays, so a cold push-scatter makes
C     the master stage 7 arrays x 3 slaves = 21 eager transfers inside
C     a single fence epoch -- more than the NIC's 16 registered slots.
C     (--no-avpg keeps the scatter cold: AVPG would otherwise notice
C     the values are already distributed by the first loop.)
C
C       vpcec examples/fortran/deadlock.f --verify --no-avpg
C             --verify-strict-pools
C
C     refuses the plan (exit 2): VPCE204 pool-exhaustion deadlock with
C     a minimal counterexample schedule. Without --verify-strict-pools
C     the runtime's rendezvous fallback keeps the plan live and the
C     same invocation exits 1 with a VPCE210 conditional-progress
C     warning instead.
      PROGRAM DEADLK
      PARAMETER (N = 64)
      REAL A(N), B(N), C(N), D(N), E(N), G(N), H(N), F(N)
      INTEGER I
      DO I = 1, N
        A(I) = REAL(I)
        B(I) = REAL(2 * I)
        C(I) = REAL(3 * I)
        D(I) = REAL(4 * I)
        E(I) = REAL(5 * I)
        G(I) = REAL(6 * I)
        H(I) = REAL(7 * I)
      ENDDO
      DO I = 1, N
        F(I) = A(I) + B(I) + C(I) + D(I) + E(I) + G(I) + H(I)
      ENDDO
      END
