C     Dense matrix multiplication -- the paper's Table 1 benchmark.
C     Run: vpcec examples/fortran/mm.f --param N=256 --advise
      PROGRAM MM
      PARAMETER (N = 64)
      REAL A(N,N), B(N,N), C(N,N)
      INTEGER I, J, K
      DO I = 1, N
        DO J = 1, N
          A(I,J) = REAL(I+J) / REAL(N)
          B(I,J) = REAL(I-J) / REAL(N)
        ENDDO
      ENDDO
      DO I = 1, N
        DO J = 1, N
          C(I,J) = 0.0
          DO K = 1, N
            C(I,J) = C(I,J) + A(I,K) * B(K,J)
          ENDDO
        ENDDO
      ENDDO
      END
