C     SAXPY with a broadcast scalar -- conflict-free scatter/collect
C     at every granularity; `vpcec examples/fortran/saxpy.f --lint`
C     exits 0.
      PROGRAM SAXPY
      PARAMETER (N = 96)
      REAL X(N), Y(N)
      REAL A
      INTEGER I
      A = 2.5
      DO I = 1, N
        X(I) = REAL(I)
        Y(I) = REAL(N - I)
      ENDDO
      DO I = 1, N
        Y(I) = Y(I) + A * X(I)
      ENDDO
      END
