C     Intentionally racy fixture for the static RMA checker. Run as:
C
C       vpcec examples/fortran/racy.f --lint --grain coarse
C             --schedule cyclic --unsafe-collect
C
C     The cyclic schedule interleaves every rank's writes to A, so the
C     coarse-grain bounding collect regions of all slaves overlap.
C     --unsafe-collect disables the paper's 5.6 overlap safety check
C     (which would force fine-grain collection), so the overlapping
C     PUTs reach the collect epoch as-is: vpce-lint must refuse the
C     plan with VPCE001 (PUT/PUT conflict) and exit 2.
      PROGRAM RACY
      PARAMETER (N = 64)
      REAL A(N)
      INTEGER I
      DO I = 1, N
        A(I) = REAL(I) * 0.5
      ENDDO
      END
