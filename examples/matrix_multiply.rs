//! The paper's MM benchmark end-to-end: Table-1-style speedup rows
//! for a chosen matrix size (default 256; pass another as argv[1]).
//!
//! ```sh
//! cargo run --release -p vpce --example matrix_multiply -- 512
//! ```

use vpce::{compile, BackendOptions, ClusterConfig, ExecMode, Granularity};
use vpce_workloads::{max_abs_diff, mm};

fn main() {
    let n: i64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);

    // Verify correctness at a reduced size against the native
    // reference (full interpretation of the big size is unnecessary —
    // analytic timing is exact).
    let check_n = n.min(64);
    let opts = BackendOptions::new(4).granularity(Granularity::Coarse);
    let compiled = compile(mm::SOURCE, &[("N", check_n)], &opts).unwrap();
    let rep = spmd_rt::execute(
        &compiled.program,
        &ClusterConfig::paper_4node(),
        ExecMode::Full,
    );
    let (_, _, c_ref) = mm::reference(check_n as usize);
    let c_idx = compiled
        .program
        .arrays
        .iter()
        .position(|(name, _)| name == "C")
        .unwrap();
    let diff = max_abs_diff(&rep.arrays[c_idx], &c_ref);
    println!("correctness check at N={check_n}: max |diff| = {diff:.2e}");
    assert!(diff < 1e-10);

    // Timing rows at the requested size.
    println!("\nMM {n}x{n} on the simulated V-Bus cluster (coarse granularity):");
    println!(
        "{:>6} {:>12} {:>12} {:>9} {:>12}",
        "nodes", "T_seq", "T_par", "speedup", "comm"
    );
    let seq = {
        let compiled = compile(mm::SOURCE, &[("N", n)], &BackendOptions::new(1)).unwrap();
        spmd_rt::execute_sequential(
            &compiled.program,
            &ClusterConfig::paper_n(1).node.cpu,
            ExecMode::Analytic,
        )
        .elapsed
    };
    for nodes in [1usize, 2, 4, 8] {
        let opts = BackendOptions::new(nodes).granularity(Granularity::Coarse);
        let compiled = compile(mm::SOURCE, &[("N", n)], &opts).unwrap();
        let rep = spmd_rt::execute(
            &compiled.program,
            &ClusterConfig::paper_n(nodes),
            ExecMode::Analytic,
        );
        println!(
            "{:>6} {:>11.3}s {:>11.3}s {:>9.3} {:>11.4}s",
            nodes,
            seq,
            rep.elapsed,
            seq / rep.elapsed,
            rep.comm_time
        );
    }
}
