//! §5.6 in action: the same program lowered at fine, middle and
//! coarse communication granularity, with the cost structure printed
//! — the experiment behind the paper's conclusion that "any single
//! technique does not work for all types of communication patterns".
//!
//! ```sh
//! cargo run --release -p vpce --example granularity_tuning
//! ```

use vpce::{compile, BackendOptions, ClusterConfig, ExecMode, Granularity, Schedule};
use vpce_workloads::{cfft, mm, swim};

fn report(name: &str, source: &str, params: (&str, i64), sched: Option<Schedule>) {
    let cluster = ClusterConfig::paper_4node();
    println!("\n{name}:");
    println!(
        "{:>8} {:>12} {:>8} {:>9} {:>12} {:>8}",
        "grain", "comm", "msgs", "strided", "wire bytes", "fallbk"
    );
    for g in Granularity::ALL {
        let mut opts = BackendOptions::new(4).granularity(g);
        if let Some(s) = sched {
            opts = opts.schedule(s);
        }
        let compiled = compile(source, &[params], &opts).unwrap();
        let rep = spmd_rt::execute(&compiled.program, &cluster, ExecMode::Analytic);
        let mut msgs = 0;
        let mut strided = 0;
        let mut elems = 0u64;
        for region in compiled.program.regions() {
            for plan in [&region.scatter, &region.collect] {
                msgs += plan.num_messages();
                strided += plan.strided_messages();
                elems += plan.total_elems();
            }
        }
        let fallbacks: usize = compiled
            .report
            .regions
            .iter()
            .map(|r| r.collect_fallback_fine.len())
            .sum();
        println!(
            "{:>8} {:>10.3}ms {:>8} {:>9} {:>12} {:>8}",
            g.name(),
            rep.comm_time * 1e3,
            msgs,
            strided,
            elems * 8,
            fallbacks
        );
    }
}

fn main() {
    println!("communication granularity trade-offs (4-node V-Bus cluster)");
    report(
        "CFFT2INIT (M=11) — stride-2 tables: middle halves the PIO cost \
         for 2x data; coarse merges the interleaved halves exactly",
        cfft::SOURCE,
        ("M", 11),
        None,
    );
    report(
        "SWIM (N=256) — per-column stencil bands: coarse collapses \
         thousands of setups into a handful of bounding transfers",
        swim::SOURCE,
        ("N", 256),
        None,
    );
    report(
        "MM (N=512, cyclic rows) — interleaved strided regions: middle \
         pays redundancy, and the overlap check forces fine collection \
         at coarse grain",
        mm::SOURCE,
        ("N", 512),
        Some(Schedule::Cyclic),
    );
}
