//! The SWIM shallow-water step through the pipeline, with the AVPG's
//! communication elimination made visible: the CALC1 → CALC2 →
//! copy-back loop chain re-reads `U`, `V`, `P` and hands `CU/CV/Z/H`
//! forward, which is exactly the redundancy §5.2's graph removes.
//!
//! ```sh
//! cargo run --release -p vpce --example shallow_water -- 128
//! ```

use vpce::{compile, BackendOptions, ClusterConfig, ExecMode, Granularity, NodeAttr};
use vpce_workloads::{max_abs_diff, swim};

fn main() {
    let n: i64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(128);
    let cluster = ClusterConfig::paper_4node();

    // Correctness against the native reference at a reduced grid.
    let check_n = n.min(32);
    let opts = BackendOptions::new(4).granularity(Granularity::Coarse);
    let compiled = compile(swim::SOURCE, &[("N", check_n)], &opts).unwrap();
    let rep = spmd_rt::execute(&compiled.program, &cluster, ExecMode::Full);
    let r = swim::reference(check_n as usize);
    let p_idx = compiled
        .program
        .arrays
        .iter()
        .position(|(name, _)| name == "P")
        .unwrap();
    println!(
        "correctness at N={check_n}: max |P diff| = {:.2e}",
        max_abs_diff(&rep.arrays[p_idx], &r.p)
    );

    // The AVPG of the full-size program.
    let compiled = compile(swim::SOURCE, &[("N", n)], &opts).unwrap();
    println!("\nAVPG attributes (rows = regions, columns = arrays):");
    print!("{:>10}", "region");
    for (name, _) in &compiled.program.arrays {
        print!("{name:>6}");
    }
    println!();
    for (i, _node) in compiled.avpg.nodes.iter().enumerate() {
        print!("{i:>10}");
        for (a, _) in compiled.program.arrays.iter().enumerate() {
            let ch = match compiled.avpg.attr(i, lmad::ArrayId(a)) {
                NodeAttr::Valid => "V",
                NodeAttr::Propagate => "p",
                NodeAttr::Invalid => ".",
            };
            print!("{ch:>6}");
        }
        println!();
    }

    // With vs without the elimination.
    for avpg in [true, false] {
        let opts = BackendOptions::new(4)
            .granularity(Granularity::Coarse)
            .avpg(avpg);
        let compiled = compile(swim::SOURCE, &[("N", n)], &opts).unwrap();
        let rep = spmd_rt::execute(&compiled.program, &cluster, ExecMode::Analytic);
        let (msgs, elems) = compiled.program.comm_summary();
        println!(
            "\nAVPG {}: {msgs} messages, {elems} elements, comm {:.3} ms \
             ({} scatters / {} collects elided)",
            if avpg { "on " } else { "off" },
            rep.comm_time * 1e3,
            compiled.report.elisions.scatters_elided,
            compiled.report.elisions.collects_elided,
        );
    }
}
