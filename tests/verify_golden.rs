//! Golden verifier output over the `examples/fortran` fixtures: the
//! machine-readable JSON that `vpcec --verify --verify-json` emits is
//! diffed byte-for-byte against checked-in expectations, so any drift
//! in codes, counterexample rendering, or formatting is a deliberate,
//! reviewed change. Regenerate with `UPDATE_GOLDEN=1 cargo test -q
//! -p vpce --test verify_golden`.

use vpce::cli::{parse_args, run};

fn repo_path(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

/// Verify one fixture and compare its JSON against the golden file.
fn golden_case(fixture: &str, extra_args: &str, golden: &str, expect_exit: i32) -> String {
    let source = std::fs::read_to_string(repo_path(&format!("examples/fortran/{fixture}")))
        .expect("fixture exists");
    let argv: Vec<String> = format!("{fixture} --verify --verify-json out.json {extra_args}")
        .split_whitespace()
        .map(String::from)
        .collect();
    let args = parse_args(&argv).expect("fixture args parse");
    let out = run(&source, &args).expect("fixture compiles");
    assert_eq!(
        out.exit, expect_exit,
        "{fixture}: unexpected verify exit\n{}",
        out.text
    );
    let json = out.verify_json.expect("--verify-json produces a payload");

    let golden_path = repo_path(&format!("tests/golden/{golden}"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &json).expect("write golden");
        return json;
    }
    let expected = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden file {golden_path}: {e}"));
    assert_eq!(
        json, expected,
        "{fixture}: verify JSON drifted from {golden}; if intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
    json
}

#[test]
fn saxpy_verifies_clean() {
    let json = golden_case("saxpy.f", "--grain fine", "saxpy_verify.json", 0);
    assert!(json.contains("\"diagnostics\": []"), "{json}");
    assert!(json.contains("\"truncated\": false"), "{json}");
}

#[test]
fn mm_fine_grain_warns_about_pool_pressure() {
    // Fine-grain matrix collection issues one eager put per row chunk
    // — 128 per slave in a single fence epoch against 16 registered
    // slots. The plan still progresses (rendezvous fallback), but only
    // because that escape hatch exists: VPCE210, exit 1.
    let json = golden_case("mm.f", "--grain fine", "mm_verify.json", 1);
    assert!(json.contains("\"VPCE210\""), "{json}");
    assert!(json.contains("\"errors\": 0"), "{json}");
}

#[test]
fn deadlock_fixture_is_refused_under_strict_pools() {
    let json = golden_case(
        "deadlock.f",
        "--grain coarse --no-avpg --verify-strict-pools",
        "deadlock_verify.json",
        2,
    );
    // The headline, the pool-exhaustion class, and a counterexample.
    assert!(json.contains("\"VPCE201\""), "{json}");
    assert!(json.contains("\"VPCE204\""), "{json}");
    assert!(json.contains("\"counterexample\""), "{json}");
}

#[test]
fn deadlock_fixture_downgrades_to_a_warning_with_rendezvous_fallback() {
    // The very same plan without --verify-strict-pools: the runtime's
    // rendezvous fallback keeps it live, and the verifier reports the
    // conditional-progress dependence instead of a deadlock.
    let source = std::fs::read_to_string(repo_path("examples/fortran/deadlock.f"))
        .expect("fixture exists");
    let argv: Vec<String> = "deadlock.f --verify --grain coarse --no-avpg"
        .split_whitespace()
        .map(String::from)
        .collect();
    let out = run(&source, &parse_args(&argv).unwrap()).unwrap();
    assert_eq!(out.exit, 1, "{}", out.text);
    assert!(out.text.contains("VPCE210"), "{}", out.text);
    assert!(!out.text.contains("counterexample"), "{}", out.text);
}
