//! Golden report and kill/restart matrix for `vpced`, the persistent
//! job service. `tenants.jobs` (two tenants, a quota-throttled storm,
//! one checkpoint/restart preemption) is drained through a journaled
//! daemon session and its stable JSON diffed byte-for-byte against
//! `tests/golden/tenants_serve.json`; then the daemon is murdered at
//! 200+ seeded journal offsets across both jobfile fixtures and every
//! recovered run must reproduce the never-killed report, human text
//! and whole-cluster trace bit for bit. Regenerate the golden with
//! `UPDATE_GOLDEN=1 cargo test -q -p vpce --test serve_golden`.

use spmd_rt::ExecMode;
use vpce_serve::{baseline, kill_matrix, script_lines, Runner};

fn repo_path(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn fixture(name: &str) -> Vec<String> {
    let text = std::fs::read_to_string(repo_path(&format!("examples/jobs/{name}")))
        .expect("jobfile fixture exists");
    script_lines(&text)
}

#[test]
fn tenants_serve_report_matches_golden_bytes() {
    let runner = Runner::new(ExecMode::Full);
    let script = fixture("tenants.jobs");
    let (res, journal) = baseline(&runner, &script).unwrap();
    let (again, journal2) = baseline(&runner, &script).unwrap();
    assert_eq!(res.report_json, again.report_json, "serve report must be deterministic");
    assert_eq!(journal, journal2, "whole journal is deterministic");

    let golden_path = repo_path("tests/golden/tenants_serve.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &res.report_json).expect("write golden");
    } else {
        let expected = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("missing golden file {golden_path}: {e}"));
        assert_eq!(
            res.report_json, expected,
            "serve report drifted from tenants_serve.json; if intentional, \
             regenerate with UPDATE_GOLDEN=1"
        );
    }

    // The acceptance shape, pinned structurally as well as byte-wise:
    // every job completes, `low` is preempted exactly once and still
    // heals bit-identical, and both tenants are charged usage.
    let json = &res.report_json;
    assert!(json.contains("\"done\": 5"), "{json}");
    assert!(json.contains("\"failed\": 0"), "{json}");
    assert_eq!(json.matches("\"preemptions\": 1").count(), 1, "{json}");
    assert_eq!(json.matches("\"identical\": true").count(), 5, "{json}");
    assert!(json.contains("\"tenant\": \"acme\""), "{json}");
    assert!(json.contains("\"tenant\": \"beta\""), "{json}");
    assert!(json.contains("\"tenant_usage_node_s\""), "{json}");
}

#[test]
fn kill_anywhere_on_both_fixtures_recovers_byte_identically() {
    // The headline property, at scale: 200+ seeded kill points across
    // the two jobfile fixtures. Every kill fires mid-journal, every
    // restart replays, and every final report/trace is byte-identical
    // to the never-killed baseline.
    let runner = Runner::new(ExecMode::Full);
    let mut total_points = 0usize;
    for name in ["tenants.jobs", "storm.jobs"] {
        let script = fixture(name);
        let summary = kill_matrix(&runner, &script, 128).unwrap();
        assert!(
            summary.journal_len > 1000,
            "{name}: non-trivial journal ({} bytes)",
            summary.journal_len
        );
        assert_eq!(
            summary.divergent,
            Vec::<u64>::new(),
            "{name}: kill+restart must replay to identical bytes"
        );
        assert!(
            summary.restarts >= summary.points as u64,
            "{name}: every kill point actually killed the daemon"
        );
        total_points += summary.points;
    }
    assert!(total_points >= 200, "swept only {total_points} kill points");
}
