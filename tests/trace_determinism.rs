//! Trace determinism: tracing a program twice must yield byte-identical
//! Chrome JSON. The simulation is virtual-time-deterministic; the trace
//! subsystem must not reintroduce nondeterminism through map iteration
//! order, thread interleaving of emissions, or float formatting.

use vpce::cli::{parse_args, run};

fn repo_path(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn trace_json(fixture: &str, extra_args: &str) -> String {
    let source = std::fs::read_to_string(repo_path(&format!("examples/fortran/{fixture}")))
        .expect("fixture exists");
    let argv: Vec<String> = format!("{fixture} --trace out.json {extra_args}")
        .split_whitespace()
        .map(String::from)
        .collect();
    let out = run(&source, &parse_args(&argv).expect("args parse")).expect("fixture compiles");
    out.trace_json.expect("--trace produces a payload")
}

#[test]
fn same_run_twice_is_byte_identical() {
    for args in [
        "--nodes 2 --grain fine",
        "--nodes 4 --grain coarse",
        "--nodes 4 --grain middle --schedule cyclic",
    ] {
        let a = trace_json("saxpy.f", args);
        let b = trace_json("saxpy.f", args);
        assert_eq!(a, b, "trace JSON drifted between identical runs ({args})");
        assert!(a.contains("\"traceEvents\""), "{args}");
    }
}

#[test]
fn traces_never_leak_wall_clock() {
    // Every timestamp is virtual; two runs separated by real time must
    // agree (covered above), and the JSON must not contain exponent
    // notation that a strict parser could choke on.
    let json = trace_json("mm.f", "--nodes 4 --param N=16 --grain fine");
    for needle in ["\"ts\": -", "e-", "e+", "E-", "E+"] {
        assert!(!json.contains(needle), "bad number format: {needle}");
    }
}

#[test]
fn tracing_identical_with_and_without_summary() {
    // --trace-summary changes what is printed, not what is recorded.
    let source =
        std::fs::read_to_string(repo_path("examples/fortran/saxpy.f")).expect("fixture exists");
    let argv = |extra: &str| -> Vec<String> {
        format!("saxpy.f --nodes 2 --grain fine --trace o.json{extra}")
            .split_whitespace()
            .map(String::from)
            .collect()
    };
    let plain = run(&source, &parse_args(&argv("")).unwrap()).unwrap();
    let with_summary = run(&source, &parse_args(&argv(" --trace-summary")).unwrap()).unwrap();
    assert_eq!(plain.trace_json, with_summary.trace_json);
    assert!(with_summary.text.contains("critical path:"));
}
