//! The paper's experimental claims as executable assertions, at sizes
//! small enough for `cargo test` (the full-size rows come from the
//! `table1`/`table2`/`hwclaims`/`ablation` binaries and are recorded
//! in EXPERIMENTS.md).

use cluster_sim::ClusterConfig;
use vpce::{compile, BackendOptions, ExecMode, Granularity, Schedule};
use vpce_workloads::{cfft, mm, swim};

fn comm_time(
    src: &str,
    params: (&str, i64),
    g: Granularity,
    sched: Option<Schedule>,
    cluster: &ClusterConfig,
) -> f64 {
    let mut opts = BackendOptions::new(cluster.num_nodes()).granularity(g);
    if let Some(s) = sched {
        opts = opts.schedule(s);
    }
    let compiled = compile(src, &[params], &opts).unwrap();
    spmd_rt::execute(&compiled.program, cluster, ExecMode::Analytic).comm_time
}

fn speedup(src: &str, params: (&str, i64), nodes: usize) -> f64 {
    let opts = BackendOptions::new(nodes).granularity(Granularity::Coarse);
    let compiled = compile(src, &[params], &opts).unwrap();
    let cluster = ClusterConfig::paper_n(nodes);
    let par = spmd_rt::execute(&compiled.program, &cluster, ExecMode::Analytic).elapsed;
    let seq =
        spmd_rt::execute_sequential(&compiled.program, &cluster.node.cpu, ExecMode::Analytic)
            .elapsed;
    seq / par
}

// ------------------------------------------------------------ Table 1

#[test]
fn table1_one_node_speedup_is_0_96() {
    let s = speedup(mm::SOURCE, ("N", 128), 1);
    assert!((s - 0.96).abs() < 0.005, "got {s}");
}

#[test]
fn table1_speedup_grows_with_nodes_and_size() {
    let s2 = speedup(mm::SOURCE, ("N", 128), 2);
    let s4 = speedup(mm::SOURCE, ("N", 128), 4);
    assert!(s2 > 1.2 && s4 > s2, "s2={s2} s4={s4}");
    // Bigger matrices amortise communication better.
    let s4_big = speedup(mm::SOURCE, ("N", 256), 4);
    assert!(s4_big > s4, "{s4_big} vs {s4}");
}

#[test]
fn table1_speedups_bounded_by_node_count() {
    for nodes in [2usize, 4] {
        let s = speedup(mm::SOURCE, ("N", 128), nodes);
        assert!(s < nodes as f64, "superlinear speedup is a bug: {s}");
    }
}

// ------------------------------------------------------------ Table 2

#[test]
fn table2_cfft_ordering_coarse_middle_fine() {
    let cl = ClusterConfig::paper_4node();
    let fine = comm_time(cfft::SOURCE, ("M", 11), Granularity::Fine, None, &cl);
    let middle = comm_time(cfft::SOURCE, ("M", 11), Granularity::Middle, None, &cl);
    let coarse = comm_time(cfft::SOURCE, ("M", 11), Granularity::Coarse, None, &cl);
    assert!(middle < fine, "paper: middle beats fine ({middle} vs {fine})");
    assert!(coarse < middle, "paper: coarse beats middle ({coarse} vs {middle})");
}

#[test]
fn table2_mm_cyclic_middle_worse_than_fine() {
    let cl = ClusterConfig::paper_4node();
    let s = Some(Schedule::Cyclic);
    let fine = comm_time(mm::SOURCE, ("N", 256), Granularity::Fine, s, &cl);
    let middle = comm_time(mm::SOURCE, ("N", 256), Granularity::Middle, s, &cl);
    let ratio = middle / fine;
    assert!(
        (1.02..1.6).contains(&ratio),
        "paper reports middle ~17-24% worse for MM; got {ratio}"
    );
}

#[test]
fn table2_swim_coarse_beats_fine_in_setup_dominated_regime() {
    let cl = ClusterConfig::paper_4node();
    let fine = comm_time(swim::SOURCE, ("N", 64), Granularity::Fine, None, &cl);
    let coarse = comm_time(swim::SOURCE, ("N", 64), Granularity::Coarse, None, &cl);
    assert!(
        coarse < 0.8 * fine,
        "paper: coarse wins clearly ({coarse} vs {fine})"
    );
}

#[test]
fn table2_no_single_granularity_wins_everywhere() {
    // The paper's actual conclusion: "any single technique does not
    // work for all types of communication patterns".
    let cl = ClusterConfig::paper_4node();
    // CFFT: middle < fine …
    let cf_fine = comm_time(cfft::SOURCE, ("M", 11), Granularity::Fine, None, &cl);
    let cf_middle = comm_time(cfft::SOURCE, ("M", 11), Granularity::Middle, None, &cl);
    assert!(cf_middle < cf_fine);
    // …but MM (cyclic): middle > fine.
    let s = Some(Schedule::Cyclic);
    let mm_fine = comm_time(mm::SOURCE, ("N", 256), Granularity::Fine, s, &cl);
    let mm_middle = comm_time(mm::SOURCE, ("N", 256), Granularity::Middle, s, &cl);
    assert!(mm_middle > mm_fine);
}

// --------------------------------------------------------- §6 lessons

#[test]
fn granularity_choice_preserves_results_not_just_time() {
    // Whatever granularity the user picks (§5.6: "it is up to the
    // user"), answers are identical — only time changes.
    let cl = ClusterConfig::paper_4node();
    let mut reference: Option<Vec<Vec<f64>>> = None;
    for g in Granularity::ALL {
        let opts = BackendOptions::new(4).granularity(g);
        let compiled = compile(swim::SOURCE, &[("N", 24)], &opts).unwrap();
        let rep = spmd_rt::execute(&compiled.program, &cl, ExecMode::Full);
        match &reference {
            None => reference = Some(rep.arrays),
            Some(r) => assert_eq!(r, &rep.arrays, "{g:?} changed results"),
        }
    }
}

#[test]
fn avpg_elision_changes_traffic_not_results() {
    let cl = ClusterConfig::paper_4node();
    let mut outs = Vec::new();
    for avpg in [true, false] {
        let opts = BackendOptions::new(4).avpg(avpg);
        let compiled = compile(swim::SOURCE, &[("N", 24)], &opts).unwrap();
        outs.push(spmd_rt::execute(&compiled.program, &cl, ExecMode::Full).arrays);
    }
    assert_eq!(outs[0], outs[1]);
}

// ------------------------------------------------- granularity advice

#[test]
fn static_advisor_agrees_with_simulation_on_paper_workloads() {
    // The §5.6 "profiling tools to guide the user": the static
    // plan-based estimate must pick the same winner as the full
    // simulation for the paper's workloads.
    let cluster = ClusterConfig::paper_4node();
    for (src, params) in [
        (cfft::SOURCE, ("M", 11i64)),
        (swim::SOURCE, ("N", 64)),
    ] {
        let analyzed = polaris_fe::compile(src, &[params]).unwrap();
        let static_advice = vpce::advise(
            &analyzed,
            &vpce::BackendOptions::new(4),
            &vpce::CostParams::paper_card(),
        );
        let (simulated, measured) =
            vpce::advise_granularity(src, &[params], &cluster, &BackendOptions::new(4))
                .unwrap();
        assert_eq!(
            static_advice.recommended, simulated,
            "static {:?} vs simulated {measured:?}",
            static_advice.predictions
        );
    }
}

#[test]
fn simulated_advisor_picks_coarse_for_cfft() {
    let cluster = ClusterConfig::paper_4node();
    let (winner, _) =
        vpce::advise_granularity(cfft::SOURCE, &[("M", 11)], &cluster, &BackendOptions::new(4))
            .unwrap();
    assert_eq!(winner, Granularity::Coarse);
}
