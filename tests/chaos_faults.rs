//! Chaos property suite — the fault plane's headline invariant.
//!
//! For any *survivable* seeded fault schedule, the MM and SWIM
//! workloads must produce byte-identical arrays and scalars to the
//! fault-free run, with the self-healing machinery (CRC/ack
//! retransmits, V-Bus degradation, NIC retries) visible in the stats
//! ledger. An *unsurvivable* schedule must surface as a typed
//! `VpceError` from `try_execute` — never a panic. Schedules come
//! from the testkit's deterministic choice stream; failures print the
//! reproducing seed, and pinned regressions live in
//! `crates/core/testkit-regressions/`.

use std::cell::Cell;

use spmd_rt::{ExecMode, FaultSpec, VpceError};
use vpce::{compile, BackendOptions, ClusterConfig, Granularity, Tracer};
use vpce_recover::{run_recovering, RecoverSpec};
use vpce_testkit::prelude::*;
use vpce_workloads::{mm, swim};

/// A random transport-fault schedule: light or heavy base rates, a
/// fresh seed, never a rank crash (crashes are unsurvivable by
/// construction and covered separately).
fn arb_schedule() -> Gen<FaultSpec> {
    zip2(u64_in(1, u64::MAX / 2), bool_any()).map(|(seed, heavy)| {
        let base = if heavy {
            FaultSpec::heavy()
        } else {
            FaultSpec::light()
        };
        FaultSpec {
            seed,
            rank_crash: 0.0,
            ..base
        }
    })
}

/// Run `cases` random schedules over one compiled workload and hold
/// the invariant on every one of them.
fn chaos(name: &'static str, source: &str, n: i64, cases: u32) {
    let opts = BackendOptions::new(4).granularity(Granularity::Fine);
    let compiled = compile(source, &[("N", n)], &opts).expect("workload compiles");
    let cluster = ClusterConfig::paper_4node();
    let clean = spmd_rt::execute(&compiled.program, &cluster, ExecMode::Full);
    let survived = Cell::new(0u32);
    let recovered = Cell::new(0u64);
    Check::new(name).cases(cases).run(&arb_schedule(), |spec| {
        match spmd_rt::try_execute(&compiled.program, &cluster, ExecMode::Full, spec.clone()) {
            Ok(rep) => {
                prop_assert!(
                    rep.arrays == clean.arrays,
                    "arrays diverge from fault-free run under {spec:?}"
                );
                prop_assert!(
                    rep.scalars == clean.scalars,
                    "scalars diverge from fault-free run under {spec:?}"
                );
                survived.set(survived.get() + 1);
                recovered.set(
                    recovered.get()
                        + rep.net.retransmits
                        + rep.net.bus_degraded
                        + rep.net.link_stalls,
                );
            }
            Err(e) => {
                // The bounded retry budget makes genuine transport
                // loss vanishingly rare; whatever does get through
                // must be a typed injected failure, never a panic or
                // a logic error.
                prop_assert!(e.is_injected(), "non-injected failure under {spec:?}: {e}");
            }
        }
        Ok(())
    });
    assert!(
        survived.get() >= cases * 9 / 10,
        "{name}: only {} of {cases} schedules survived",
        survived.get()
    );
    assert!(
        recovered.get() > 0,
        "{name}: no recovery events across {cases} schedules — injection is dead"
    );
}

#[test]
fn mm_survivable_schedules_are_byte_identical() {
    chaos(
        "chaos::mm_survivable_schedules_are_byte_identical",
        mm::SOURCE,
        12,
        120,
    );
}

#[test]
fn swim_survivable_schedules_are_byte_identical() {
    chaos(
        "chaos::swim_survivable_schedules_are_byte_identical",
        swim::SOURCE,
        8,
        120,
    );
}

#[test]
fn crashy_schedules_fail_typed_and_never_panic() {
    let opts = BackendOptions::new(4).granularity(Granularity::Fine);
    let compiled = compile(mm::SOURCE, &[("N", 12)], &opts).expect("workload compiles");
    let cluster = ClusterConfig::paper_4node();
    let clean = spmd_rt::execute(&compiled.program, &cluster, ExecMode::Full);
    let mut crashes = 0;
    for seed in 0..20u64 {
        let spec = FaultSpec {
            seed,
            ..FaultSpec::crashy()
        };
        match spmd_rt::try_execute(&compiled.program, &cluster, ExecMode::Full, spec) {
            Ok(rep) => assert_eq!(rep.arrays, clean.arrays, "seed {seed}"),
            Err(e) => {
                assert!(e.is_injected(), "seed {seed}: {e}");
                crashes += 1;
            }
        }
    }
    assert!(crashes > 0, "crashy never crashed in 20 seeds");
}

// ---------------------------------------------------------------- //
// Recovery matrix — crash schedules that exit 3 without `--recover` //
// must finish byte-identically to the crash-free run with it armed. //
// ---------------------------------------------------------------- //

/// Pinned regression seeds, found by seed scans at the rates below.
/// Each pin freezes one corner of the matrix: a crash schedule the
/// default RecoverSpec absorbs, and one where the crashed rank loses
/// every buddy replica in the same group (VPCE404, unsurvivable).
const MM_SURVIVABLE_SEED: u64 = 2;
const MM_UNSURVIVABLE_SEED: u64 = 0;
const SWIM_SURVIVABLE_SEED: u64 = 0;
const CLI_SURVIVABLE_SEED: u64 = 0;
const CLI_UNSURVIVABLE_SEED: u64 = 9;

/// Crash-only schedule (no transport noise): the recovered run's
/// elapsed time and trace must match the fault-free run bit-for-bit,
/// which only holds when crashes are the sole injected fault.
fn crash_only(rate: &str, seed: u64) -> FaultSpec {
    FaultSpec::parse(&format!("crash={rate},seed={seed}")).expect("crash spec parses")
}

/// Scan `seeds` crash-only schedules over one workload. Every seed
/// that makes the plain run fail must either (a) complete under the
/// default RecoverSpec with report, arrays, scalars, elapsed and trace
/// byte-identical to the fault-free run, or (b) fail fast with a typed
/// VPCE402/403/404 diagnosis — never a panic, never a wrong answer.
/// Returns how many schedules recovered (callers pin a floor).
fn recovery_matrix(name: &str, source: &str, n: i64, rate: &str, seeds: u64) -> u32 {
    let opts = BackendOptions::new(4).granularity(Granularity::Fine);
    let compiled = compile(source, &[("N", n)], &opts).expect("workload compiles");
    let cluster = ClusterConfig::paper_4node();
    let clean = spmd_rt::try_execute_traced(
        &compiled.program,
        &cluster,
        ExecMode::Full,
        Tracer::enabled(),
        FaultSpec::off(),
    )
    .expect("fault-free run succeeds");
    let clean_trace = clean.trace.as_ref().expect("tracer was enabled").render();
    let mut recovered = 0u32;
    for seed in 0..seeds {
        let spec = crash_only(rate, seed);
        if spmd_rt::try_execute(&compiled.program, &cluster, ExecMode::Full, spec.clone()).is_ok() {
            continue; // schedule never fired — not part of the matrix
        }
        match run_recovering(
            &compiled.program,
            &cluster,
            ExecMode::Full,
            Tracer::enabled(),
            spec,
            &RecoverSpec::default(),
        ) {
            Ok((rep, ledger)) => {
                assert_eq!(rep.arrays, clean.arrays, "{name} seed {seed}: arrays diverge");
                assert_eq!(rep.scalars, clean.scalars, "{name} seed {seed}: scalars diverge");
                assert_eq!(
                    rep.elapsed.to_bits(),
                    clean.elapsed.to_bits(),
                    "{name} seed {seed}: recovered elapsed differs from crash-free"
                );
                assert_eq!(
                    rep.trace.as_ref().expect("tracer was enabled").render(),
                    clean_trace,
                    "{name} seed {seed}: recovery leaked events into the run trace"
                );
                assert!(ledger.absorbed(), "{name} seed {seed}: crash vanished from ledger");
                assert!(ledger.respawned > 0, "{name} seed {seed}: no failover recorded");
                // The four time components tile the Recovery charge
                // exactly — that is what the critical path bills.
                let tiled = ledger.ckpt_time
                    + ledger.quiesce_time
                    + ledger.respawn_time
                    + ledger.replay_time;
                assert_eq!(tiled.to_bits(), ledger.recovery_total().to_bits());
                assert!(ledger.recovery_total() > 0.0);
                recovered += 1;
            }
            Err(VpceError::RecoveryFailed { code, .. }) => {
                assert!(
                    matches!(code, "VPCE402" | "VPCE403" | "VPCE404"),
                    "{name} seed {seed}: unknown recovery code {code}"
                );
            }
            Err(e) => panic!("{name} seed {seed}: non-recovery failure {e}"),
        }
    }
    recovered
}

#[test]
fn mm_crashy_schedules_recover_byte_identically() {
    let recovered = recovery_matrix("mm", mm::SOURCE, 12, "0.5", 32);
    assert!(recovered >= 10, "mm: only {recovered} of 32 schedules recovered");
}

#[test]
fn swim_crashy_schedules_recover_byte_identically() {
    let recovered = recovery_matrix("swim", swim::SOURCE, 8, "0.2", 32);
    assert!(recovered >= 10, "swim: only {recovered} of 32 schedules recovered");
}

#[test]
fn exhausted_recovery_budgets_fail_typed_and_never_panic() {
    let opts = BackendOptions::new(4).granularity(Granularity::Fine);
    let compiled = compile(mm::SOURCE, &[("N", 12)], &opts).expect("workload compiles");
    let cluster = ClusterConfig::paper_4node();
    let run = |seed: u64, spec: &RecoverSpec| {
        run_recovering(
            &compiled.program,
            &cluster,
            ExecMode::Full,
            Tracer::disabled(),
            crash_only("0.5", seed),
            spec,
        )
    };
    // The pinned survivable schedule recovers under the defaults...
    let (_, ledger) =
        run(MM_SURVIVABLE_SEED, &RecoverSpec::default()).expect("pinned survivable seed recovers");
    assert!(ledger.absorbed());
    // ...but the same schedule dies typed when a budget binds:
    // rollback budget first (VPCE402), then the spare pool (VPCE403).
    for (spec, want) in [("on,rollbacks=0", "VPCE402"), ("on,spares=0", "VPCE403")] {
        let spec = RecoverSpec::parse(spec).expect("spec parses");
        match run(MM_SURVIVABLE_SEED, &spec) {
            Err(VpceError::RecoveryFailed { code, .. }) => assert_eq!(code, want),
            other => panic!("expected {want}, got {other:?}"),
        }
    }
    // The pinned unsurvivable schedule loses a rank and every buddy
    // replica in one group: no budget can save it (VPCE404).
    match run(MM_UNSURVIVABLE_SEED, &RecoverSpec::default()) {
        Err(e @ VpceError::RecoveryFailed { code, .. }) => {
            assert_eq!(code, "VPCE404");
            assert!(e.is_injected(), "recovery failures count as injected faults");
        }
        other => panic!("expected VPCE404, got {other:?}"),
    }
    // SWIM's pinned survivable seed holds at its (milder) rate too.
    let compiled = compile(swim::SOURCE, &[("N", 8)], &opts).expect("workload compiles");
    run_recovering(
        &compiled.program,
        &cluster,
        ExecMode::Full,
        Tracer::disabled(),
        crash_only("0.2", SWIM_SURVIVABLE_SEED),
        &RecoverSpec::default(),
    )
    .expect("pinned swim seed recovers");
}

#[test]
fn cli_recover_extends_the_fault_free_report_byte_for_byte() {
    const SRC: &str = "PROGRAM CHAOS\nPARAMETER (N = 32)\nREAL A(N)\nINTEGER I\nDO I = 1, N\nA(I) = REAL(I) * 2.0\nENDDO\nEND\n";
    let run = |flags: &str| {
        let argv: Vec<String> = format!("chaos.f --grain fine{flags}")
            .split_whitespace()
            .map(String::from)
            .collect();
        vpce::cli::run(SRC, &vpce::cli::parse_args(&argv).expect("args parse")).expect("runs")
    };
    let clean = run("");
    assert_eq!(clean.exit, 0, "{}", clean.text);
    // The pinned schedule kills the plain run (exit 3)...
    let crashed = run(&format!(" --faults crash=0.5,seed={CLI_SURVIVABLE_SEED}"));
    assert_eq!(crashed.exit, 3, "{}", crashed.text);
    // ...and `--recover on` absorbs it: exit 0 and the fault-free
    // report survives as an exact byte prefix — recovery only appends
    // its ledger, it never perturbs the run's own numbers.
    let recovered = run(&format!(
        " --faults crash=0.5,seed={CLI_SURVIVABLE_SEED} --recover on"
    ));
    assert_eq!(recovered.exit, 0, "{}", recovered.text);
    assert!(
        recovered.text.starts_with(&clean.text),
        "recovered report is not a byte-extension of the fault-free one\n\
         --- clean ---\n{}\n--- recovered ---\n{}",
        clean.text,
        recovered.text
    );
    // An unabsorbable schedule exits 3 with the typed code in the text.
    let lost = run(&format!(
        " --faults crash=0.5,seed={CLI_UNSURVIVABLE_SEED} --recover on"
    ));
    assert_eq!(lost.exit, 3, "{}", lost.text);
    assert!(lost.text.contains("VPCE404"), "{}", lost.text);
    // A zero rollback budget turns the survivable one typed as well.
    let broke = run(&format!(
        " --faults crash=0.5,seed={CLI_SURVIVABLE_SEED} --recover rollbacks=0"
    ));
    assert_eq!(broke.exit, 3, "{}", broke.text);
    assert!(broke.text.contains("VPCE402"), "{}", broke.text);
}

/// The report produced under one fixed fault schedule, golden-pinned.
/// Regenerate with `UPDATE_GOLDEN=1 cargo test -q -p vpce --test
/// chaos_faults`.
#[test]
fn fault_report_matches_golden() {
    const SRC: &str = "PROGRAM CHAOS\nPARAMETER (N = 32)\nREAL A(N)\nINTEGER I\nDO I = 1, N\nA(I) = REAL(I) * 2.0\nENDDO\nEND\n";
    let argv: Vec<String> = "chaos.f --grain fine --faults heavy,seed=3"
        .split_whitespace()
        .map(String::from)
        .collect();
    let args = vpce::cli::parse_args(&argv).expect("args parse");
    let out = vpce::cli::run(SRC, &args).expect("program compiles");
    assert_eq!(out.exit, 0, "{}", out.text);
    assert!(out.text.contains("fault schedule: seed 3"), "{}", out.text);

    let path = format!(
        "{}/../../tests/golden/fault_report.txt",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &out.text).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path}: {e}; run with UPDATE_GOLDEN=1"));
    assert_eq!(
        out.text, want,
        "fault report drifted from golden; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
