//! Chaos property suite — the fault plane's headline invariant.
//!
//! For any *survivable* seeded fault schedule, the MM and SWIM
//! workloads must produce byte-identical arrays and scalars to the
//! fault-free run, with the self-healing machinery (CRC/ack
//! retransmits, V-Bus degradation, NIC retries) visible in the stats
//! ledger. An *unsurvivable* schedule must surface as a typed
//! `VpceError` from `try_execute` — never a panic. Schedules come
//! from the testkit's deterministic choice stream; failures print the
//! reproducing seed, and pinned regressions live in
//! `crates/core/testkit-regressions/`.

use std::cell::Cell;

use spmd_rt::{ExecMode, FaultSpec};
use vpce::{compile, BackendOptions, ClusterConfig, Granularity};
use vpce_testkit::prelude::*;
use vpce_workloads::{mm, swim};

/// A random transport-fault schedule: light or heavy base rates, a
/// fresh seed, never a rank crash (crashes are unsurvivable by
/// construction and covered separately).
fn arb_schedule() -> Gen<FaultSpec> {
    zip2(u64_in(1, u64::MAX / 2), bool_any()).map(|(seed, heavy)| {
        let base = if heavy {
            FaultSpec::heavy()
        } else {
            FaultSpec::light()
        };
        FaultSpec {
            seed,
            rank_crash: 0.0,
            ..base
        }
    })
}

/// Run `cases` random schedules over one compiled workload and hold
/// the invariant on every one of them.
fn chaos(name: &'static str, source: &str, n: i64, cases: u32) {
    let opts = BackendOptions::new(4).granularity(Granularity::Fine);
    let compiled = compile(source, &[("N", n)], &opts).expect("workload compiles");
    let cluster = ClusterConfig::paper_4node();
    let clean = spmd_rt::execute(&compiled.program, &cluster, ExecMode::Full);
    let survived = Cell::new(0u32);
    let recovered = Cell::new(0u64);
    Check::new(name).cases(cases).run(&arb_schedule(), |spec| {
        match spmd_rt::try_execute(&compiled.program, &cluster, ExecMode::Full, spec.clone()) {
            Ok(rep) => {
                prop_assert!(
                    rep.arrays == clean.arrays,
                    "arrays diverge from fault-free run under {spec:?}"
                );
                prop_assert!(
                    rep.scalars == clean.scalars,
                    "scalars diverge from fault-free run under {spec:?}"
                );
                survived.set(survived.get() + 1);
                recovered.set(
                    recovered.get()
                        + rep.net.retransmits
                        + rep.net.bus_degraded
                        + rep.net.link_stalls,
                );
            }
            Err(e) => {
                // The bounded retry budget makes genuine transport
                // loss vanishingly rare; whatever does get through
                // must be a typed injected failure, never a panic or
                // a logic error.
                prop_assert!(e.is_injected(), "non-injected failure under {spec:?}: {e}");
            }
        }
        Ok(())
    });
    assert!(
        survived.get() >= cases * 9 / 10,
        "{name}: only {} of {cases} schedules survived",
        survived.get()
    );
    assert!(
        recovered.get() > 0,
        "{name}: no recovery events across {cases} schedules — injection is dead"
    );
}

#[test]
fn mm_survivable_schedules_are_byte_identical() {
    chaos(
        "chaos::mm_survivable_schedules_are_byte_identical",
        mm::SOURCE,
        12,
        120,
    );
}

#[test]
fn swim_survivable_schedules_are_byte_identical() {
    chaos(
        "chaos::swim_survivable_schedules_are_byte_identical",
        swim::SOURCE,
        8,
        120,
    );
}

#[test]
fn crashy_schedules_fail_typed_and_never_panic() {
    let opts = BackendOptions::new(4).granularity(Granularity::Fine);
    let compiled = compile(mm::SOURCE, &[("N", 12)], &opts).expect("workload compiles");
    let cluster = ClusterConfig::paper_4node();
    let clean = spmd_rt::execute(&compiled.program, &cluster, ExecMode::Full);
    let mut crashes = 0;
    for seed in 0..20u64 {
        let spec = FaultSpec {
            seed,
            ..FaultSpec::crashy()
        };
        match spmd_rt::try_execute(&compiled.program, &cluster, ExecMode::Full, spec) {
            Ok(rep) => assert_eq!(rep.arrays, clean.arrays, "seed {seed}"),
            Err(e) => {
                assert!(e.is_injected(), "seed {seed}: {e}");
                crashes += 1;
            }
        }
    }
    assert!(crashes > 0, "crashy never crashed in 20 seeds");
}

/// The report produced under one fixed fault schedule, golden-pinned.
/// Regenerate with `UPDATE_GOLDEN=1 cargo test -q -p vpce --test
/// chaos_faults`.
#[test]
fn fault_report_matches_golden() {
    const SRC: &str = "PROGRAM CHAOS\nPARAMETER (N = 32)\nREAL A(N)\nINTEGER I\nDO I = 1, N\nA(I) = REAL(I) * 2.0\nENDDO\nEND\n";
    let argv: Vec<String> = "chaos.f --grain fine --faults heavy,seed=3"
        .split_whitespace()
        .map(String::from)
        .collect();
    let args = vpce::cli::parse_args(&argv).expect("args parse");
    let out = vpce::cli::run(SRC, &args).expect("program compiles");
    assert_eq!(out.exit, 0, "{}", out.text);
    assert!(out.text.contains("fault schedule: seed 3"), "{}", out.text);

    let path = format!(
        "{}/../../tests/golden/fault_report.txt",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &out.text).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path}: {e}; run with UPDATE_GOLDEN=1"));
    assert_eq!(
        out.text, want,
        "fault report drifted from golden; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
