//! Cross-crate cluster behaviour: the compiled programs running over
//! different machine configurations (V-Bus vs Fast Ethernet vs
//! conventional pipelining), hardware broadcast effects, memory
//! accounting, and end-to-end determinism under OS-thread chaos.

use cluster_sim::{ClusterConfig, MemoryTracker};
use vpce::{compile, BackendOptions, ExecMode, Granularity, Universe};
use vpce_workloads::mm;

fn mm_comm(cluster: &ClusterConfig, n: i64) -> f64 {
    let opts = BackendOptions::new(cluster.num_nodes()).granularity(Granularity::Fine);
    let compiled = compile(mm::SOURCE, &[("N", n)], &opts).unwrap();
    spmd_rt::execute(&compiled.program, cluster, ExecMode::Analytic).comm_time
}

#[test]
fn vbus_beats_fast_ethernet_end_to_end() {
    let vb = mm_comm(&ClusterConfig::paper_n(4), 128);
    let fe = mm_comm(&ClusterConfig::fast_ethernet_n(4), 128);
    let ratio = fe / vb;
    assert!(
        ratio > 2.5,
        "the compiled MM should communicate several times faster on the \
         V-Bus card: ratio {ratio}"
    );
}

#[test]
fn skwp_links_beat_conventional_pipelining_end_to_end() {
    let skwp = mm_comm(&ClusterConfig::paper_n(4), 128);
    let conv = mm_comm(&ClusterConfig::conventional_links_n(4), 128);
    assert!(
        conv > 1.5 * skwp,
        "conventional links should slow communication: {skwp} vs {conv}"
    );
}

#[test]
fn prototype_preset_sits_between_nominal_and_ethernet() {
    let nominal = mm_comm(&ClusterConfig::paper_n(4), 128);
    let proto = mm_comm(&ClusterConfig::prototype_n(4), 128);
    let fe = mm_comm(&ClusterConfig::fast_ethernet_n(4), 128);
    assert!(nominal < proto, "derated bandwidth must cost time");
    assert!(proto > fe * 0.3, "but stay in a plausible range");
}

#[test]
fn broadcast_freezes_inflight_traffic_through_the_mpi_layer() {
    // A long put in flight; a broadcast preempts it; the put's
    // completion (observed at the fence) is pushed back.
    let time_with_bcast = |do_bcast: bool| {
        let uni = Universe::new(ClusterConfig::paper_n(4));
        uni.run(|mpi| {
            let w = mpi.win_create(1 << 17);
            if mpi.rank() == 0 {
                mpi.put_region(&w, 1, 0, 1 << 17); // ~1MB worm
            }
            if do_bcast {
                let data = (mpi.rank() == 2).then(|| vec![0.0; 512]);
                mpi.bcast(2, data);
            }
            mpi.fence_all();
            mpi.now()
        })
        .elapsed()
    };
    let without = time_with_bcast(false);
    let with = time_with_bcast(true);
    assert!(
        with > without,
        "the frozen worm must finish later: {with} vs {without}"
    );
}

#[test]
fn paper_workloads_fit_in_64mb_nodes() {
    // MM at the paper's largest size: 3 arrays x 8 MB on every rank
    // (each rank holds full-size copies) — fits the 64 MB nodes.
    let mut tracker = MemoryTracker::new(ClusterConfig::paper_4node().node.mem_bytes);
    let opts = BackendOptions::new(4);
    let compiled = compile(mm::SOURCE, &[("N", 1024)], &opts).unwrap();
    for (_, len) in &compiled.program.arrays {
        tracker.alloc(len * 8).expect("fits in 64 MB");
    }
    assert!(tracker.peak() <= 64 << 20);
    // SWIM at 512^2: 10 arrays x 2 MB.
    let mut tracker = MemoryTracker::new(64 << 20);
    let compiled = compile(vpce_workloads::swim::SOURCE, &[("N", 512)], &opts).unwrap();
    for (_, len) in &compiled.program.arrays {
        tracker.alloc(len * 8).expect("fits in 64 MB");
    }
}

#[test]
fn oversized_problem_detected_by_memory_tracker() {
    let mut tracker = MemoryTracker::new(64 << 20);
    let compiled = compile(mm::SOURCE, &[("N", 2048)], &BackendOptions::new(4)).unwrap();
    let result: Result<(), _> = compiled
        .program
        .arrays
        .iter()
        .try_for_each(|(_, len)| tracker.alloc(len * 8));
    assert!(result.is_err(), "3 x 32 MB does not fit in 64 MB");
}

#[test]
fn many_runs_same_virtual_times() {
    // Thread scheduling chaos across 8 repetitions must not leak into
    // virtual time (the determinism contract of the whole stack).
    let run = || {
        let opts = BackendOptions::new(4).granularity(Granularity::Middle);
        let compiled = compile(mm::SOURCE, &[("N", 32)], &opts).unwrap();
        let rep = spmd_rt::execute(
            &compiled.program,
            &ClusterConfig::paper_4node(),
            ExecMode::Full,
        );
        (rep.elapsed, rep.comm_time, rep.net.p2p_messages)
    };
    let first = run();
    for _ in 0..7 {
        assert_eq!(run(), first);
    }
}

#[test]
fn cluster_sizes_beyond_the_paper_scale() {
    // The mesh generalises: 9 and 16 nodes still compute correctly
    // and speed up over 4.
    let elapsed = |p: usize| {
        let opts = BackendOptions::new(p).granularity(Granularity::Coarse);
        let compiled = compile(mm::SOURCE, &[("N", 256)], &opts).unwrap();
        spmd_rt::execute(&compiled.program, &ClusterConfig::paper_n(p), ExecMode::Analytic)
            .elapsed
    };
    let t4 = elapsed(4);
    let t9 = elapsed(9);
    let t16 = elapsed(16);
    assert!(t9 < t4, "9 nodes beat 4: {t9} vs {t4}");
    assert!(t16 < t9, "16 nodes beat 9: {t16} vs {t9}");
}
