//! The machine-description acceptance wall.
//!
//! * **Byte-identity**: running MM and SWIM under
//!   `examples/machines/paper.machine` — in plain, batch and serve
//!   modes — must reproduce the no-`--machine` reports and traces
//!   byte for byte. The declarative config replaces every hard-coded
//!   constant, so any drift here means a lowering bug.
//! * **Calibration**: the example files reproduce the paper's headline
//!   numbers — SKWP signalling carries ~4x the bandwidth of the
//!   conventional clock on the same 16-line cable, and the NIC's
//!   DMA-vs-PIO cost curves cross where the paper's setup-time model
//!   says they must.
//! * **Dump golden**: `--machine-dump` output is pinned byte-for-byte
//!   (regenerate with `UPDATE_GOLDEN=1 cargo test -q -p vpce --test
//!   machine_golden`).

use vpce::cli::{self, parse_args, CliArgs, Outcome};
use vpce_machine::MachineSpec;

fn repo_path(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

/// Load an example machine file the way the binary does: include=
/// names resolve relative to examples/machines/.
fn example_machine(file: &str) -> MachineSpec {
    let loader = |p: &str| -> Result<String, String> {
        std::fs::read_to_string(repo_path(&format!("examples/machines/{p}")))
            .map_err(|e| e.to_string())
    };
    cli::load_machine(file, &loader)
        .unwrap_or_else(|e| panic!("examples/machines/{file}: {e}"))
}

fn with_machine(args: &mut CliArgs, file: &str) {
    args.machine = Some(file.into());
    args.machine_spec = Some(example_machine(file));
}

#[test]
fn paper_machine_file_runs_mm_and_swim_byte_identically() {
    for workload in [vpce_workloads::mm::SOURCE, vpce_workloads::swim::SOURCE] {
        let base_args = parse_args(&argv("x.f --nodes 4 --trace t.json --trace-summary")).unwrap();
        let base = cli::run(workload, &base_args).unwrap();
        assert_eq!(base.outcome, Outcome::Success, "{}", base.text);

        let mut args = base_args.clone();
        with_machine(&mut args, "paper.machine");
        let out = cli::run(workload, &args).unwrap();
        assert_eq!(out.text, base.text, "report must not drift under paper.machine");
        assert_eq!(
            out.trace_json, base.trace_json,
            "trace must not drift under paper.machine"
        );
        assert_eq!(out.exit, 0);
    }
}

#[test]
fn paper_machine_file_keeps_batch_reports_byte_identical() {
    let jobfile = std::fs::read_to_string(repo_path("examples/jobs/storm.jobs")).unwrap();
    let loader = |p: &str| Err::<String, _>(format!("fixture jobfiles are self-contained: `{p}`"));
    let base_args = parse_args(&argv("--batch storm.jobs --sched-seed 1")).unwrap();
    let base = cli::run_batch(&jobfile, &base_args, &loader).unwrap();
    assert_eq!(base.outcome, Outcome::Success, "{}", base.text);

    let mut args = base_args.clone();
    with_machine(&mut args, "paper.machine");
    let out = cli::run_batch(&jobfile, &args, &loader).unwrap();
    assert_eq!(out.text, base.text);
    assert_eq!(out.batch_json, base.batch_json, "batch JSON must not drift");
}

#[test]
fn paper_machine_file_keeps_serve_reports_byte_identical() {
    let script = "nodes=4\n\
                  job name=a workload=mm ranks=2 param:N=8\n\
                  job name=b workload=swim ranks=2 param:N=8 arrive=1e-4\n";
    let base_args = parse_args(&argv("--serve s.txt")).unwrap();
    let mut mem = vpce_serve::MemStorage::default();
    let base = cli::run_serve(script, &base_args, &mut mem);
    assert_eq!(base.outcome, Outcome::Success, "{}", base.text);

    let mut args = base_args.clone();
    with_machine(&mut args, "paper.machine");
    let mut mem = vpce_serve::MemStorage::default();
    let out = cli::run_serve(script, &args, &mut mem);
    assert_eq!(out.text, base.text);
    assert_eq!(out.batch_json, base.batch_json, "serve JSON must not drift");
}

#[test]
fn skwp_carries_about_four_times_the_conventional_bandwidth() {
    let paper = example_machine("paper.machine");
    let conv = example_machine("conventional.machine");
    let skwp_bps = paper.link_rate().bandwidth_bps;
    let conv_bps = conv.link_rate().bandwidth_bps;
    // The paper's calibration points: 50 MB/s SKWP against 12.5 MB/s
    // for the conventional clock on the identical cable.
    assert!((skwp_bps - 50e6).abs() < 1e3, "SKWP rate {skwp_bps}");
    assert!((conv_bps - 12.5e6).abs() < 1e3, "conventional rate {conv_bps}");
    let gain = skwp_bps / conv_bps;
    assert!((3.5..4.5).contains(&gain), "SKWP gain {gain} outside ~4x");
}

#[test]
fn dma_and_pio_cost_curves_cross_where_the_setup_model_says() {
    use cluster_sim::TransferKind;
    let paper = example_machine("paper.machine");
    let nic = paper.nic_model();
    let cpu = paper.cpu_model();
    let elem = 8; // one REAL*8
    let cost = |elems: usize, pio: bool| {
        let kind = if pio {
            TransferKind::Strided { elems, elem_bytes: elem }
        } else {
            TransferKind::Contiguous { bytes: elems * elem }
        };
        nic.host_overhead(kind, &cpu)
    };
    // Small strided messages: element-by-element PIO beats paying the
    // 10us DMA engine setup.
    assert!(cost(4, true) < cost(4, false), "4 elems: PIO must win");
    // Large messages: the amortized DMA descriptor beats per-element
    // copies.
    assert!(cost(1024, false) < cost(1024, true), "1024 elems: DMA must win");
    // The crossover sits where setup_s / pio_per_elem_s predicts
    // (10us / 0.6us ~ 17 elements).
    let crossover = (1..1024)
        .find(|&n| cost(n, false) <= cost(n, true))
        .expect("curves must cross");
    let predicted = (nic.dma_setup_s / nic.pio_per_elem_s).ceil() as usize;
    assert!(
        crossover.abs_diff(predicted) <= 2,
        "crossover {crossover} far from predicted {predicted}"
    );
}

#[test]
fn zoo_machines_run_every_example_workload_end_to_end() {
    for file in ["torus3d.machine", "crossbar.machine", "fattree.machine"] {
        for workload in [vpce_workloads::mm::SOURCE, vpce_workloads::swim::SOURCE] {
            let mut args = parse_args(&argv("x.f --nodes 8")).unwrap();
            with_machine(&mut args, file);
            let out = cli::run(workload, &args).unwrap();
            assert_eq!(out.outcome, Outcome::Success, "{file}: {}", out.text);
            assert!(
                out.text.contains("results identical to sequential execution: true"),
                "{file}: {}",
                out.text
            );
        }
    }
}

#[test]
fn machine_dump_matches_golden_bytes() {
    let mut args = parse_args(&argv("--machine-dump")).unwrap();
    with_machine(&mut args, "paper.machine");
    let out = cli::run_machine_dump(&args);
    assert_eq!(out.outcome, Outcome::Success);

    let golden_path = repo_path("tests/golden/paper_machine.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &out.text).expect("write golden");
    } else {
        let expected = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("missing golden file {golden_path}: {e}"));
        assert_eq!(
            out.text, expected,
            "machine dump drifted from paper_machine.txt; if intentional, \
             regenerate with UPDATE_GOLDEN=1"
        );
    }
    // The dump is itself a valid description that resolves to the
    // same machine (the CI round-trip lint).
    let reparsed = vpce_machine::parse::parse(&out.text).expect("dump re-parses");
    assert_eq!(reparsed, example_machine("paper.machine"));
    // And the example file equals the built-in default it documents.
    assert_eq!(example_machine("paper.machine"), MachineSpec::default());
}
