//! Threshold-sweep golden: the eager/rendezvous split, counter by
//! counter, pinned to a file.
//!
//! One contiguous PUT per payload size, sizes straddling the paper
//! machine's derived threshold, each run on a fresh two-rank universe.
//! The table pins which protocol carried each size, what it cost the
//! ledger (staging copies vs RTS/CTS handshakes), and what the NIC saw
//! (doorbells, descriptor batching) — so a cost-model or protocol
//! change shows up as a readable diff, not a silent re-balance.
//! Regenerate with `UPDATE_GOLDEN=1 cargo test -q -p vpce --test
//! transport_golden`.

use cluster_sim::ClusterConfig;
use mpi2::{TransportPolicy, Universe, ELEM_BYTES};

/// Payload sizes in bytes; 64 B .. 1 MB brackets the few-KB threshold.
const SWEEP_BYTES: [usize; 5] = [64, 512, 4096, 65_536, 1 << 20];

fn sweep() -> String {
    let policy = TransportPolicy::from_config(&ClusterConfig::paper_n(2));
    let mut out = format!(
        "transport sweep on paper_n(2): eager <= {} B, {} slots x {} B, ring depth {}\n",
        policy.eager_max_bytes, policy.slots, policy.slot_bytes, policy.ring_depth
    );
    out.push_str(
        "bytes    proto       eager rdvz copy_s     handshakes hs_bytes wire_msgs wire_bytes doorbells\n",
    );
    for bytes in SWEEP_BYTES {
        let elems = bytes / ELEM_BYTES;
        let uni = Universe::new(ClusterConfig::paper_n(2));
        let rep = uni.run(move |mpi| {
            let w = mpi.win_create(elems.max(1));
            if mpi.rank() == 0 {
                mpi.put_region(&w, 1, 0, elems.max(1));
            }
            mpi.fence_all();
        });
        let s = rep.total_stats();
        let proto = if s.eager_ops > 0 { "eager" } else { "rendezvous" };
        out.push_str(&format!(
            "{:<8} {:<11} {:<5} {:<4} {:<10.6} {:<10} {:<8} {:<9} {:<10} {}\n",
            bytes,
            proto,
            s.eager_ops,
            s.rdvz_ops,
            s.eager_copy_s,
            rep.net.rdvz_handshakes,
            rep.net.rdvz_handshake_bytes,
            rep.net.p2p_messages,
            rep.net.p2p_bytes,
            s.doorbells,
        ));
    }
    out
}

#[test]
fn threshold_sweep_matches_golden() {
    let text = sweep();

    // The sweep must provably exercise *both* protocols: small sizes
    // eager (with a paid staging copy), large sizes rendezvous (with a
    // wire handshake). A threshold regression to "everything eager" or
    // "everything rendezvous" fails here before the golden diff.
    assert!(
        text.contains(" eager "),
        "no eager transfer in the sweep:\n{text}"
    );
    assert!(
        text.contains(" rendezvous "),
        "no rendezvous transfer in the sweep:\n{text}"
    );

    let path = format!(
        "{}/../../tests/golden/transport_sweep.txt",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &text).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path}: {e}; run with UPDATE_GOLDEN=1"));
    assert_eq!(
        text, want,
        "transport sweep drifted from golden; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// The same sweep replayed is byte-identical — protocol choice, pool
/// behaviour and NIC counters are all functions of the machine model,
/// never of host scheduling.
#[test]
fn sweep_is_deterministic_across_replays() {
    assert_eq!(sweep(), sweep());
}
