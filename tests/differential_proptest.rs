//! Differential property testing of the whole pipeline: generate
//! random (but well-formed) F77-mini programs with affine array
//! accesses, compile them, and require that the parallel execution on
//! the simulated cluster computes exactly what the sequential
//! interpreter computes — for every granularity and both schedules.
//!
//! This is the strongest correctness net in the repository: it
//! exercises the dependence test's conservatism (loops it can't prove
//! parallel just stay serial — results must still match), the
//! scatter/collect planner, the AVPG elisions, and the runtime
//! protocol, on shapes no hand-written test anticipates.

use vpce::{compile, BackendOptions, ClusterConfig, ExecMode, Granularity, Schedule};
use vpce_testkit::prelude::*;

/// A random statement inside a generated loop.
#[derive(Debug, Clone)]
enum BodyStmt {
    /// `dst(a*I+b) = <expr over srcs>`
    Store {
        dst: usize,
        a: i64,
        b: i64,
        rhs: RandExpr,
    },
    /// `s = s + <expr>` (scalar reduction)
    Reduce { rhs: RandExpr },
}

#[derive(Debug, Clone)]
enum RandExpr {
    Const(f64),
    /// `arr(c*I + d)` — a strided read.
    Read { arr: usize, c: i64, d: i64 },
    Add(Box<RandExpr>, Box<RandExpr>),
    Mul(Box<RandExpr>, Box<RandExpr>),
}

// All generated values are dyadic rationals (quarters/eighths) with
// small exponents, so every add/multiply in the programs is *exact*
// in f64. That makes the parallel tree-order reduction bit-identical
// to the sequential left-to-right one — the comparison below can be
// `==` instead of approximate.
const N_ARRAYS: usize = 3;
const N: i64 = 24; // array length and loop bound domain

fn arb_expr(depth: u32) -> Gen<RandExpr> {
    let leaf = one_of(vec![
        f64_in(-4.0, 4.0).map(|v| RandExpr::Const((v * 4.0).round() / 4.0)),
        zip3(usize_in(0, N_ARRAYS - 1), i64_in(1, 2), i64_in(0, 2))
            .map(|(arr, c, d)| RandExpr::Read { arr, c, d }),
    ]);
    if depth == 0 {
        return leaf;
    }
    let inner = arb_expr(depth - 1);
    one_of(vec![
        leaf,
        zip2(inner.clone(), inner.clone())
            .map(|(a, b)| RandExpr::Add(Box::new(a), Box::new(b))),
        zip2(inner.clone(), inner).map(|(a, b)| RandExpr::Mul(Box::new(a), Box::new(b))),
    ])
}

fn arb_body_stmt() -> Gen<BodyStmt> {
    weighted(vec![
        (
            4,
            zip4(
                usize_in(0, N_ARRAYS - 1),
                i64_in(1, 2),
                i64_in(0, 2),
                arb_expr(2),
            )
            .map(|(dst, a, b, rhs)| BodyStmt::Store { dst, a, b, rhs }),
        ),
        (1, arb_expr(1).map(|rhs| BodyStmt::Reduce { rhs })),
    ])
}

/// One generated loop: bounds chosen so every subscript
/// `c*I + d` with `c ≤ 2, d ≤ 2` stays inside `1..=3*N`.
#[derive(Debug, Clone)]
struct RandLoop {
    lo: i64,
    hi: i64,
    body: Vec<BodyStmt>,
}

fn arb_loop() -> Gen<RandLoop> {
    zip3(i64_in(1, 4), i64_in(N / 2, N), vec_of(arb_body_stmt(), 1, 3))
        .map(|(lo, hi, body)| RandLoop { lo, hi, body })
}

fn expr_src(e: &RandExpr) -> String {
    match e {
        RandExpr::Const(v) => {
            if *v < 0.0 {
                format!("(0.0 - {:.4})", -v)
            } else {
                format!("{v:.4}")
            }
        }
        RandExpr::Read { arr, c, d } => {
            format!("A{arr}({c}*I + {d} + 1)")
        }
        RandExpr::Add(a, b) => format!("({} + {})", expr_src(a), expr_src(b)),
        RandExpr::Mul(a, b) => format!("({} * {})", expr_src(a), expr_src(b)),
    }
}

/// Render a whole program: init loops (so reads see data), then the
/// generated loops.
fn program_src(loops: &[RandLoop]) -> String {
    let mut s = String::new();
    s.push_str("      PROGRAM RAND\n");
    let len = 3 * N + 8;
    for a in 0..N_ARRAYS {
        s.push_str(&format!("      REAL A{a}({len})\n"));
    }
    s.push_str("      REAL S\n      INTEGER I\n");
    for a in 0..N_ARRAYS {
        s.push_str(&format!(
            "      DO I = 1, {len}\n        A{a}(I) = REAL(I + {a}) / 8.0\n      ENDDO\n"
        ));
    }
    s.push_str("      S = 0.0\n");
    for l in loops {
        s.push_str(&format!("      DO I = {}, {}\n", l.lo, l.hi));
        for st in &l.body {
            match st {
                BodyStmt::Store { dst, a, b, rhs } => {
                    s.push_str(&format!(
                        "        A{dst}({a}*I + {b} + 1) = {}\n",
                        expr_src(rhs)
                    ));
                }
                BodyStmt::Reduce { rhs } => {
                    s.push_str(&format!("        S = S + {}\n", expr_src(rhs)));
                }
            }
        }
        s.push_str("      ENDDO\n");
    }
    s.push_str("      END\n");
    s
}

fn check_program(src: &str, g: Granularity, sched: Option<Schedule>) -> PropResult {
    let mut opts = BackendOptions::new(4).granularity(g);
    if let Some(s) = sched {
        opts = opts.schedule(s);
    }
    let compiled = match compile(src, &[], &opts) {
        Ok(c) => c,
        Err(e) => {
            // The generator can produce semantically fine programs the
            // conservative front-end rejects outright only via
            // internal limits; surface those as failures.
            return Err(PropError::fail(format!("front-end error: {e}\n{src}")));
        }
    };
    let cluster = ClusterConfig::paper_4node();
    let par = spmd_rt::execute(&compiled.program, &cluster, ExecMode::Full);
    let seq = spmd_rt::execute_sequential(&compiled.program, &cluster.node.cpu, ExecMode::Full);
    prop_assert_eq!(&par.arrays, &seq.arrays, "arrays diverge\n{}", src);
    for (slot, (name, _)) in compiled.program.scalars.iter().enumerate() {
        if name == "S" {
            prop_assert_eq!(
                par.scalars[slot].as_real(),
                seq.scalars[slot].as_real(),
                "reduction diverges\n{}",
                src
            );
        }
    }
    Ok(())
}

fn arb_granularity() -> Gen<Granularity> {
    elem_of(vec![
        Granularity::Fine,
        Granularity::Middle,
        Granularity::Coarse,
    ])
}

#[test]
fn random_programs_parallel_equals_sequential() {
    Check::new("differential::random_programs_parallel_equals_sequential")
        .cases(24)
        .run(
            &zip2(vec_of(arb_loop(), 1, 3), arb_granularity()),
            |(loops, g)| {
                let src = program_src(loops);
                check_program(&src, *g, None)
            },
        );
}

#[test]
fn random_programs_cyclic_schedule() {
    Check::new("differential::random_programs_cyclic_schedule")
        .cases(24)
        .run(&vec_of(arb_loop(), 1, 2), |loops| {
            let src = program_src(loops);
            check_program(&src, Granularity::Coarse, Some(Schedule::Cyclic))
        });
}

#[test]
fn generator_produces_parallelizable_loops_sometimes() {
    // Sanity: the generator isn't vacuous — a simple instance
    // parallelises.
    let l = RandLoop {
        lo: 1,
        hi: N,
        body: vec![BodyStmt::Store {
            dst: 0,
            a: 2,
            b: 0,
            rhs: RandExpr::Read { arr: 1, c: 1, d: 0 },
        }],
    };
    let src = program_src(&[l]);
    let analyzed = polaris_fe::compile(&src, &[]).unwrap();
    assert!(analyzed.num_parallel() >= 4, "init loops + generated loop");
}
