//! Seeded differential testing of the paper workloads: MM and SWIM,
//! compiled through the full pipeline, executed SPMD on the simulated
//! cluster over *randomly drawn* configurations (problem size, cluster
//! size, granularity, schedule), must agree bit-for-bit with the
//! sequential interpreter and match the native Rust references.
//!
//! The configurations come from the testkit's deterministic choice
//! stream, so every run covers the same configurations, and a failure
//! prints the seed that reproduces it (`VPCE_TESTKIT_SEED=…`).
//!
//! The suite is also the end-to-end wall around the eager/rendezvous
//! transport: real workloads (not synthetic transfer lists) must stay
//! byte-identical to the sequential oracle no matter which protocol
//! carried each transfer, under chaos schedules, and with reports and
//! traces that replay identically.

use spmd_rt::FaultSpec;
use vpce::{
    compile, BackendOptions, ClusterConfig, ExecMode, Granularity, Schedule, Tracer,
};
use vpce_testkit::prelude::*;
use vpce_workloads::{max_abs_diff, mm, swim};

/// A randomly drawn execution configuration.
#[derive(Debug, Clone)]
struct Config {
    n: usize,
    nprocs: usize,
    g: Granularity,
    cyclic: bool,
}

fn arb_config(n_lo: usize, n_hi: usize) -> Gen<Config> {
    zip4(
        usize_in(n_lo, n_hi),
        usize_in(1, 6),
        elem_of(vec![
            Granularity::Fine,
            Granularity::Middle,
            Granularity::Coarse,
        ]),
        bool_any(),
    )
    .map(|(n, nprocs, g, cyclic)| Config {
        n,
        nprocs,
        g,
        cyclic,
    })
}

/// Compile `source` under `cfg`, run it both ways, and require the
/// parallel SPMD execution to equal the sequential interpretation
/// exactly. Returns the compiled program's arrays for reference
/// checks, keyed by name.
/// Final array contents keyed by name.
type NamedArrays = Vec<(String, Vec<f64>)>;

fn run_both(source: &str, cfg: &Config) -> Result<(NamedArrays, spmd_rt::RunReport), PropError> {
    let mut opts = BackendOptions::new(cfg.nprocs).granularity(cfg.g);
    if cfg.cyclic {
        opts = opts.schedule(Schedule::Cyclic);
    }
    let compiled = compile(source, &[("N", cfg.n as i64)], &opts)
        .map_err(|e| PropError::fail(format!("compile failed under {cfg:?}: {e}")))?;
    let cluster = ClusterConfig::paper_n(cfg.nprocs);
    let par = spmd_rt::execute(&compiled.program, &cluster, ExecMode::Full);
    let seq =
        spmd_rt::execute_sequential(&compiled.program, &cluster.node.cpu, ExecMode::Full);
    if par.arrays != seq.arrays {
        return Err(PropError::fail(format!(
            "parallel and sequential arrays diverge under {cfg:?}"
        )));
    }
    let arrays = compiled
        .program
        .arrays
        .iter()
        .zip(&par.arrays)
        .map(|((name, _), data)| (name.clone(), data.clone()))
        .collect();
    Ok((arrays, par))
}

fn named<'a>(arrays: &'a [(String, Vec<f64>)], name: &str) -> &'a [f64] {
    &arrays
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("no array {name}"))
        .1
}

#[test]
fn mm_differential_over_random_configs() {
    Check::new("workloads::mm_differential_over_random_configs")
        .cases(10)
        .run(&arb_config(8, 24), |cfg| {
            let (arrays, _) = run_both(mm::SOURCE, cfg)?;
            let (_, _, c_ref) = mm::reference(cfg.n);
            let diff = max_abs_diff(named(&arrays, "C"), &c_ref);
            prop_assert!(diff < 1e-12, "{:?}: max diff {} vs reference", cfg, diff);
            Ok(())
        });
}

/// Across a deterministic spread of granularities and problem sizes,
/// the paper workloads must light up **both** transport protocols:
/// fine-grain strips stage eager, coarse-grain block rows go
/// rendezvous. If a cost-model change silently re-balances everything
/// onto one path, this trips before any golden diff does — and every
/// config still passed the sequential-oracle check inside `run_both`.
#[test]
fn workload_traffic_exercises_both_protocols() {
    let configs = [
        (
            mm::SOURCE,
            Config {
                n: 8,
                nprocs: 4,
                g: Granularity::Fine,
                cyclic: true,
            },
        ),
        (
            mm::SOURCE,
            Config {
                n: 24,
                nprocs: 2,
                g: Granularity::Coarse,
                cyclic: false,
            },
        ),
        (
            swim::SOURCE,
            Config {
                n: 16,
                nprocs: 4,
                g: Granularity::Middle,
                cyclic: false,
            },
        ),
    ];
    let mut eager = 0u64;
    let mut rdvz = 0u64;
    let mut fallbacks = 0u64;
    for (src, cfg) in &configs {
        let (_, rep) = run_both(src, cfg).expect("config runs clean");
        for s in &rep.rank_stats {
            eager += s.eager_ops;
            rdvz += s.rdvz_ops;
            fallbacks += s.eager_fallbacks;
        }
    }
    assert!(eager > 0, "no workload transfer took the eager path");
    assert!(rdvz > 0, "no workload transfer took the rendezvous path");
    // Fallbacks are rendezvous by another name; they must already be
    // inside the rdvz ledger, never a third bucket.
    assert!(fallbacks <= rdvz, "fallbacks {fallbacks} not counted as rendezvous {rdvz}");
}

/// Chaos differential: under random *survivable* fault schedules the
/// parallel run — eager retransmits replaying from registered slots,
/// rendezvous re-handshakes and all — must still be byte-identical to
/// the fault-free **sequential oracle**, not merely self-consistent.
#[test]
fn chaos_schedules_match_the_sequential_oracle() {
    let opts = BackendOptions::new(4).granularity(Granularity::Fine);
    let compiled = compile(mm::SOURCE, &[("N", 12)], &opts).expect("workload compiles");
    let cluster = ClusterConfig::paper_n(4);
    let seq =
        spmd_rt::execute_sequential(&compiled.program, &cluster.node.cpu, ExecMode::Full);
    let schedule = zip2(u64_in(1, u64::MAX / 2), bool_any()).map(|(seed, heavy)| {
        let base = if heavy {
            FaultSpec::heavy()
        } else {
            FaultSpec::light()
        };
        FaultSpec {
            seed,
            rank_crash: 0.0,
            ..base
        }
    });
    Check::new("workloads::chaos_schedules_match_the_sequential_oracle")
        .cases(20)
        .run(&schedule, |spec| {
            match spmd_rt::try_execute(&compiled.program, &cluster, ExecMode::Full, spec.clone())
            {
                Ok(rep) => {
                    prop_assert!(
                        rep.arrays == seq.arrays,
                        "arrays diverge from the sequential oracle under {spec:?}"
                    );
                }
                Err(e) => {
                    prop_assert!(e.is_injected(), "non-injected failure under {spec:?}: {e}");
                }
            }
            Ok(())
        });
}

/// Reports and traces are replay-invariant: the same workload under
/// the same fault schedule renders byte-identical comm/transport
/// report lines, trace analyses, and network counters on every rerun —
/// protocol choice and pool behaviour are functions of the machine
/// model, never of host-thread scheduling.
#[test]
fn reports_and_traces_replay_identically_under_faults() {
    let opts = BackendOptions::new(4).granularity(Granularity::Middle);
    let compiled = compile(swim::SOURCE, &[("N", 12)], &opts).expect("workload compiles");
    let cluster = ClusterConfig::paper_n(4);
    let spec = FaultSpec {
        seed: 7,
        rank_crash: 0.0,
        ..FaultSpec::light()
    };
    let fingerprint = || {
        let rep = spmd_rt::try_execute_traced(
            &compiled.program,
            &cluster,
            ExecMode::Full,
            Tracer::enabled(),
            spec.clone(),
        )
        .expect("light seed-7 schedule is survivable");
        let mut text = vpce::describe_comm(&rep.rank_stats);
        text.push_str(&vpce::report::describe_transport(
            &mpi2::TransportPolicy::from_config(&cluster),
            &rep.rank_stats,
        ));
        text.push_str(&rep.trace.as_ref().expect("tracer was enabled").render());
        text.push_str(&format!("net={:?}", rep.net));
        text
    };
    let a = fingerprint();
    assert_eq!(a, fingerprint(), "report/trace replay diverged");
    assert!(a.contains("protocol split:"), "{a}");
}

#[test]
fn swim_differential_over_random_configs() {
    Check::new("workloads::swim_differential_over_random_configs")
        .cases(6)
        .run(&arb_config(8, 16), |cfg| {
            let (arrays, _) = run_both(swim::SOURCE, cfg)?;
            let r = swim::reference(cfg.n);
            for (name, want) in [
                ("U", &r.u),
                ("V", &r.v),
                ("P", &r.p),
                ("CU", &r.cu),
                ("CV", &r.cv),
                ("Z", &r.z),
                ("H", &r.h),
                ("UNEW", &r.unew),
                ("VNEW", &r.vnew),
                ("PNEW", &r.pnew),
            ] {
                let diff = max_abs_diff(named(&arrays, name), want);
                prop_assert!(diff < 1e-10, "{:?} {}: max diff {}", cfg, name, diff);
            }
            Ok(())
        });
}
