//! Seeded differential testing of the paper workloads: MM and SWIM,
//! compiled through the full pipeline, executed SPMD on the simulated
//! cluster over *randomly drawn* configurations (problem size, cluster
//! size, granularity, schedule), must agree bit-for-bit with the
//! sequential interpreter and match the native Rust references.
//!
//! The configurations come from the testkit's deterministic choice
//! stream, so every run covers the same configurations, and a failure
//! prints the seed that reproduces it (`VPCE_TESTKIT_SEED=…`).

use vpce::{compile, BackendOptions, ClusterConfig, ExecMode, Granularity, Schedule};
use vpce_testkit::prelude::*;
use vpce_workloads::{max_abs_diff, mm, swim};

/// A randomly drawn execution configuration.
#[derive(Debug, Clone)]
struct Config {
    n: usize,
    nprocs: usize,
    g: Granularity,
    cyclic: bool,
}

fn arb_config(n_lo: usize, n_hi: usize) -> Gen<Config> {
    zip4(
        usize_in(n_lo, n_hi),
        usize_in(1, 6),
        elem_of(vec![
            Granularity::Fine,
            Granularity::Middle,
            Granularity::Coarse,
        ]),
        bool_any(),
    )
    .map(|(n, nprocs, g, cyclic)| Config {
        n,
        nprocs,
        g,
        cyclic,
    })
}

/// Compile `source` under `cfg`, run it both ways, and require the
/// parallel SPMD execution to equal the sequential interpretation
/// exactly. Returns the compiled program's arrays for reference
/// checks, keyed by name.
fn run_both(
    source: &str,
    cfg: &Config,
) -> Result<Vec<(String, Vec<f64>)>, PropError> {
    let mut opts = BackendOptions::new(cfg.nprocs).granularity(cfg.g);
    if cfg.cyclic {
        opts = opts.schedule(Schedule::Cyclic);
    }
    let compiled = compile(source, &[("N", cfg.n as i64)], &opts)
        .map_err(|e| PropError::fail(format!("compile failed under {cfg:?}: {e}")))?;
    let cluster = ClusterConfig::paper_n(cfg.nprocs);
    let par = spmd_rt::execute(&compiled.program, &cluster, ExecMode::Full);
    let seq =
        spmd_rt::execute_sequential(&compiled.program, &cluster.node.cpu, ExecMode::Full);
    if par.arrays != seq.arrays {
        return Err(PropError::fail(format!(
            "parallel and sequential arrays diverge under {cfg:?}"
        )));
    }
    Ok(compiled
        .program
        .arrays
        .iter()
        .zip(&par.arrays)
        .map(|((name, _), data)| (name.clone(), data.clone()))
        .collect())
}

fn named<'a>(arrays: &'a [(String, Vec<f64>)], name: &str) -> &'a [f64] {
    &arrays
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("no array {name}"))
        .1
}

#[test]
fn mm_differential_over_random_configs() {
    Check::new("workloads::mm_differential_over_random_configs")
        .cases(10)
        .run(&arb_config(8, 24), |cfg| {
            let arrays = run_both(mm::SOURCE, cfg)?;
            let (_, _, c_ref) = mm::reference(cfg.n);
            let diff = max_abs_diff(named(&arrays, "C"), &c_ref);
            prop_assert!(diff < 1e-12, "{:?}: max diff {} vs reference", cfg, diff);
            Ok(())
        });
}

#[test]
fn swim_differential_over_random_configs() {
    Check::new("workloads::swim_differential_over_random_configs")
        .cases(6)
        .run(&arb_config(8, 16), |cfg| {
            let arrays = run_both(swim::SOURCE, cfg)?;
            let r = swim::reference(cfg.n);
            for (name, want) in [
                ("U", &r.u),
                ("V", &r.v),
                ("P", &r.p),
                ("CU", &r.cu),
                ("CV", &r.cv),
                ("Z", &r.z),
                ("H", &r.h),
                ("UNEW", &r.unew),
                ("VNEW", &r.vnew),
                ("PNEW", &r.pnew),
            ] {
                let diff = max_abs_diff(named(&arrays, name), want);
                prop_assert!(diff < 1e-10, "{:?} {}: max diff {}", cfg, name, diff);
            }
            Ok(())
        });
}
