//! Golden lint diagnostics over the `examples/fortran` fixtures: the
//! machine-readable JSON that `vpcec --lint --lint-json` emits is
//! diffed byte-for-byte against checked-in expectations, so any drift
//! in codes, provenance, or formatting is a deliberate, reviewed
//! change. Regenerate with `UPDATE_GOLDEN=1 cargo test -q -p vpce
//! --test lint_golden`.

use vpce::cli::{parse_args, run};

fn repo_path(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

/// Lint one fixture and compare its JSON against the golden file.
fn golden_case(fixture: &str, extra_args: &str, golden: &str, expect_exit: i32) -> String {
    let source = std::fs::read_to_string(repo_path(&format!("examples/fortran/{fixture}")))
        .expect("fixture exists");
    let argv: Vec<String> = format!("{fixture} --lint --lint-json out.json {extra_args}")
        .split_whitespace()
        .map(String::from)
        .collect();
    let args = parse_args(&argv).expect("fixture args parse");
    let out = run(&source, &args).expect("fixture compiles");
    assert_eq!(
        out.exit, expect_exit,
        "{fixture}: unexpected lint exit\n{}",
        out.text
    );
    let json = out.lint_json.expect("--lint-json produces a payload");

    let golden_path = repo_path(&format!("tests/golden/{golden}"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &json).expect("write golden");
        return json;
    }
    let expected = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden file {golden_path}: {e}"));
    assert_eq!(
        json, expected,
        "{fixture}: lint JSON drifted from {golden}; if intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
    json
}

#[test]
fn mm_is_clean_at_fine_grain() {
    let json = golden_case("mm.f", "--grain fine", "mm_lint.json", 0);
    assert!(json.contains("\"errors\": 0"));
}

#[test]
fn saxpy_is_clean_at_fine_grain() {
    let json = golden_case("saxpy.f", "--grain fine", "saxpy_lint.json", 0);
    assert!(json.contains("\"diagnostics\": []"));
}

#[test]
fn racy_fixture_is_flagged_with_stable_code() {
    let json = golden_case(
        "racy.f",
        "--grain coarse --schedule cyclic --unsafe-collect",
        "racy_lint.json",
        2,
    );
    assert!(
        json.contains("\"VPCE001\""),
        "racy fixture must carry the stable PUT/PUT code: {json}"
    );
}

#[test]
fn racy_fixture_is_clean_with_safety_check_active() {
    // Without --unsafe-collect the 5.6 overlap check forces fine-grain
    // collection and the very same program lints clean.
    let source =
        std::fs::read_to_string(repo_path("examples/fortran/racy.f")).expect("fixture exists");
    let argv: Vec<String> = "racy.f --lint --grain coarse --schedule cyclic"
        .split_whitespace()
        .map(String::from)
        .collect();
    let out = run(&source, &parse_args(&argv).unwrap()).unwrap();
    assert_eq!(out.exit, 0, "{}", out.text);
}
