//! Golden batch report over `examples/jobs/storm.jobs`: the stable
//! JSON that `vpcec --batch --batch-json` emits is diffed byte-for-
//! byte against a checked-in expectation, pinning the scheduler's
//! entire observable behaviour — placements, queue waits, requeues,
//! drains, percentiles. Regenerate with `UPDATE_GOLDEN=1 cargo test
//! -q -p vpce --test batch_golden`.

use vpce::cli::{parse_args, run_batch, Outcome, RunOutput};

fn repo_path(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn run_jobfile(jobfile: &str, extra_args: &str) -> RunOutput {
    let text = std::fs::read_to_string(repo_path(&format!("examples/jobs/{jobfile}")))
        .expect("jobfile fixture exists");
    let argv: Vec<String> = format!("--batch {jobfile} {extra_args}")
        .split_whitespace()
        .map(String::from)
        .collect();
    let args = parse_args(&argv).expect("fixture args parse");
    let loader = |p: &str| Err::<String, _>(format!("fixture jobfiles are self-contained: `{p}`"));
    run_batch(&text, &args, &loader).expect("jobfile parses")
}

#[test]
fn storm_batch_report_matches_golden_bytes() {
    let out = run_jobfile("storm.jobs", "--sched-seed 1");
    assert_eq!(out.outcome, Outcome::Success, "{}", out.text);
    let json = out.batch_json.expect("batch mode renders JSON");

    // Determinism first: the same jobfile and seed must reproduce the
    // report byte-for-byte within this process too.
    let again = run_jobfile("storm.jobs", "--sched-seed 1");
    assert_eq!(json, again.batch_json.unwrap(), "batch report must be deterministic");
    assert_eq!(out.text, again.text);

    let golden_path = repo_path("tests/golden/storm_batch.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &json).expect("write golden");
    } else {
        let expected = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("missing golden file {golden_path}: {e}"));
        assert_eq!(
            json, expected,
            "batch report drifted from storm_batch.json; if intentional, \
             regenerate with UPDATE_GOLDEN=1"
        );
    }

    // The acceptance-criteria shape of the storm, pinned structurally
    // as well as byte-wise.
    assert!(json.contains("\"done\": 12"), "{json}");
    assert!(json.contains("\"failed\": 0"), "{json}");
    assert!(json.contains("\"rejected\": 0"), "{json}");
    assert!(json.contains("\"requeues\": 1"), "{json}");
    assert!(json.contains("\"drained\": [0]"), "{json}");
    let peak: usize = json
        .lines()
        .find_map(|l| l.trim().strip_prefix("\"peak_concurrent\": "))
        .and_then(|v| v.trim_end_matches(',').parse().ok())
        .expect("peak_concurrent in report");
    assert!(peak >= 8, "storm must gang-schedule >= 8 jobs at once, got {peak}");
    // Every job — including the requeued crashy one — heals
    // byte-identically to its fault-free run.
    assert_eq!(json.matches("\"identical\": true").count(), 12, "{json}");
}

#[test]
fn drain_batch_survives_with_requeues_and_exits_clean() {
    let out = run_jobfile("drain.jobs", "");
    assert_eq!(out.outcome, Outcome::Success, "{}", out.text);
    assert_eq!(out.exit, 0);
    let json = out.batch_json.expect("batch mode renders JSON");
    assert!(json.contains("\"done\": 6"), "{json}");
    let requeues: u32 = json
        .lines()
        .find_map(|l| l.trim().strip_prefix("\"requeues\": "))
        .and_then(|v| v.trim_end_matches(',').parse().ok())
        .expect("aggregate requeues in report");
    assert!(requeues > 0, "drain scenario must requeue: {json}");
    assert!(!json.contains("\"drained\": []"), "nodes must drain: {json}");
    assert_eq!(json.matches("\"identical\": true").count(), 6, "{json}");
    // The recover=on jobs absorb the same class of crashes in-run:
    // zero retries budgeted, so any unabsorbed crash would fail the
    // batch — and the rollback cost shows up in their `recovery`
    // breakdown component (and only theirs).
    let recoveries: Vec<f64> = json
        .split("\"recovery\": ")
        .skip(1)
        .filter_map(|v| v.split(['}', ',']).next()?.parse().ok())
        .collect();
    assert_eq!(recoveries.len(), 6, "one recovery component per job: {json}");
    assert_eq!(
        recoveries.iter().filter(|&&r| r > 0.0).count(),
        2,
        "exactly the two recover=on jobs pay a recovery charge: {json}"
    );
}

#[test]
fn batch_timeline_is_emitted_on_request_and_deterministic() {
    let out = run_jobfile("storm.jobs", "--sched-seed 1 --trace t.json");
    let trace = out.trace_json.expect("--trace emits the cluster timeline");
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("node 0"), "one lane per machine node");
    assert!(trace.contains("risky (retry 1)"), "requeued attempt is labelled");
    let again = run_jobfile("storm.jobs", "--sched-seed 1 --trace t.json");
    assert_eq!(trace, again.trace_json.unwrap());
}
