//! Golden trace over the `examples/fortran/saxpy.f` fixture: the
//! Chrome trace-event JSON that `vpcec --trace` emits is diffed
//! byte-for-byte against a checked-in expectation, so any drift in
//! event content, lane layout, or number formatting is a deliberate,
//! reviewed change. Regenerate with `UPDATE_GOLDEN=1 cargo test -q
//! -p vpce --test trace_golden`.

use vpce::cli::{parse_args, run};
use vpce::{compile, execute_traced, BackendOptions, ClusterConfig, ExecMode, Granularity, Tracer};

fn repo_path(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

const FIXTURE_ARGS: &str = "saxpy.f --nodes 2 --param N=16 --grain fine --trace out.json";

#[test]
fn saxpy_trace_matches_golden() {
    let source =
        std::fs::read_to_string(repo_path("examples/fortran/saxpy.f")).expect("fixture exists");
    let argv: Vec<String> = FIXTURE_ARGS.split_whitespace().map(String::from).collect();
    let out = run(&source, &parse_args(&argv).expect("args parse")).expect("fixture compiles");
    let json = out.trace_json.expect("--trace produces a payload");

    let golden_path = repo_path("tests/golden/saxpy_trace.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &json).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden file {golden_path}: {e}"));
    assert_eq!(
        json, expected,
        "saxpy trace drifted from tests/golden/saxpy_trace.json; if \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn saxpy_critical_path_tiles_the_elapsed_time() {
    // The ISSUE's core invariant, checked on the same fixture the
    // golden pins: compute + setup + occupancy + wait == elapsed.
    let source =
        std::fs::read_to_string(repo_path("examples/fortran/saxpy.f")).expect("fixture exists");
    let opts = BackendOptions::new(2).granularity(Granularity::Fine);
    let compiled = compile(&source, &[("N", 16)], &opts).expect("fixture compiles");
    let rep = execute_traced(
        &compiled.program,
        &ClusterConfig::paper_n(2),
        ExecMode::Full,
        Tracer::enabled(),
    );
    let trace = rep.trace.expect("traced run carries the report");
    let b = &trace.critical.breakdown;
    let total = b.total();
    assert!(
        (total - rep.elapsed).abs() <= 1e-9 * rep.elapsed.max(1e-30),
        "critical-path components must tile [0, elapsed]: \
         compute {} + setup {} + occupancy {} + wait {} = {total} vs elapsed {}",
        b.compute,
        b.setup,
        b.occupancy,
        b.wait,
        rep.elapsed
    );
    // Every component is a time, not a residual: none may be negative.
    for part in [b.compute, b.setup, b.occupancy, b.wait] {
        assert!(part >= 0.0, "negative component in {b:?}");
    }
}
