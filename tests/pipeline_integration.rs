//! End-to-end correctness: each paper workload, compiled through the
//! full Polaris pipeline and executed on the simulated cluster, must
//! reproduce its native Rust reference exactly — at every granularity,
//! both schedules, and several cluster sizes.

use vpce::{
    compile, run_experiment, BackendOptions, ClusterConfig, ExecMode, Granularity, Schedule,
};
use vpce_workloads::{cfft, max_abs_diff, mm, swim};

fn array<'a>(exp: &'a vpce::Experiment, name: &str) -> &'a [f64] {
    let idx = exp
        .compiled
        .program
        .arrays
        .iter()
        .position(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("no array {name}"));
    &exp.parallel.arrays[idx]
}

fn run(
    source: &str,
    params: &[(&str, i64)],
    nprocs: usize,
    g: Granularity,
) -> vpce::Experiment {
    let cluster = ClusterConfig::paper_n(nprocs);
    run_experiment(
        source,
        params,
        &cluster,
        &BackendOptions::new(nprocs).granularity(g),
        ExecMode::Full,
    )
    .expect("pipeline failed")
}

// ---------------------------------------------------------------- MM

#[test]
fn mm_matches_reference_all_granularities() {
    let n = 24usize;
    let (_, _, c_ref) = mm::reference(n);
    for g in Granularity::ALL {
        let exp = run(mm::SOURCE, &[("N", n as i64)], 4, g);
        let diff = max_abs_diff(array(&exp, "C"), &c_ref);
        assert!(diff < 1e-12, "{g:?}: max diff {diff}");
        // And the sequential interpreter agrees too.
        assert_eq!(exp.parallel.arrays, exp.sequential.arrays, "{g:?}");
    }
}

#[test]
fn mm_matches_reference_across_cluster_sizes() {
    let n = 16usize;
    let (_, _, c_ref) = mm::reference(n);
    for p in [1, 2, 3, 4, 6, 8] {
        let exp = run(mm::SOURCE, &[("N", n as i64)], p, Granularity::Coarse);
        assert!(
            max_abs_diff(array(&exp, "C"), &c_ref) < 1e-12,
            "wrong result on {p} ranks"
        );
    }
}

#[test]
fn mm_cyclic_schedule_also_correct() {
    let n = 20usize;
    let (_, _, c_ref) = mm::reference(n);
    for g in Granularity::ALL {
        let cluster = ClusterConfig::paper_n(4);
        let exp = run_experiment(
            mm::SOURCE,
            &[("N", n as i64)],
            &cluster,
            &BackendOptions::new(4).granularity(g).schedule(Schedule::Cyclic),
            ExecMode::Full,
        )
        .unwrap();
        assert!(
            max_abs_diff(array(&exp, "C"), &c_ref) < 1e-12,
            "cyclic {g:?} wrong"
        );
    }
}

#[test]
fn mm_compiles_with_two_parallel_regions() {
    let compiled = compile(mm::SOURCE, &[], &BackendOptions::new(4)).unwrap();
    let regions: Vec<_> = compiled.program.regions().collect();
    assert_eq!(regions.len(), 2, "init + multiply");
}

// -------------------------------------------------------------- CFFT

#[test]
fn cfft_matches_reference_all_granularities() {
    let m = 6;
    let (w_ref, winv_ref) = cfft::reference(m as u32);
    for g in Granularity::ALL {
        let exp = run(cfft::SOURCE, &[("M", m)], 4, g);
        assert!(max_abs_diff(array(&exp, "W"), &w_ref) < 1e-12, "{g:?} W");
        assert!(
            max_abs_diff(array(&exp, "WINV"), &winv_ref) < 1e-12,
            "{g:?} WINV"
        );
    }
}

#[test]
fn cfft_fine_plans_use_strided_messages() {
    // The §2.2/§5.6 story: stride-2 writes become strided PUTs at fine
    // grain and contiguous (redundant) PUTs at middle grain.
    let fine = compile(
        cfft::SOURCE,
        &[("M", 6)],
        &BackendOptions::new(4).granularity(Granularity::Fine),
    )
    .unwrap();
    let middle = compile(
        cfft::SOURCE,
        &[("M", 6)],
        &BackendOptions::new(4).granularity(Granularity::Middle),
    )
    .unwrap();
    let fine_region = fine.program.regions().next().unwrap();
    let mid_region = middle.program.regions().next().unwrap();
    assert!(
        fine_region.collect.strided_messages() > 0,
        "fine grain must use stride PUT/GET"
    );
    assert_eq!(
        mid_region.collect.strided_messages(),
        0,
        "middle grain converts to contiguous"
    );
    // Middle moves ~2x the payload of fine (50% redundancy).
    let f = fine_region.collect.total_elems() as f64;
    let m = mid_region.collect.total_elems() as f64;
    assert!((1.5..=2.2).contains(&(m / f)), "redundancy ratio {}", m / f);
}

// -------------------------------------------------------------- SWIM

#[test]
fn swim_matches_reference_all_granularities() {
    let n = 16usize;
    let r = swim::reference(n);
    for g in Granularity::ALL {
        let exp = run(swim::SOURCE, &[("N", n as i64)], 4, g);
        for (name, want) in [
            ("U", &r.u),
            ("V", &r.v),
            ("P", &r.p),
            ("CU", &r.cu),
            ("CV", &r.cv),
            ("Z", &r.z),
            ("H", &r.h),
            ("UNEW", &r.unew),
            ("VNEW", &r.vnew),
            ("PNEW", &r.pnew),
        ] {
            let diff = max_abs_diff(array(&exp, name), want);
            assert!(diff < 1e-10, "{g:?} {name}: max diff {diff}");
        }
    }
}

#[test]
fn swim_parallelizes_all_four_loops() {
    let compiled = compile(swim::SOURCE, &[], &BackendOptions::new(4)).unwrap();
    assert_eq!(compiled.program.regions().count(), 4);
}

#[test]
fn swim_avpg_elides_redundant_scatters() {
    let with = compile(swim::SOURCE, &[("N", 32)], &BackendOptions::new(4)).unwrap();
    let without = compile(
        swim::SOURCE,
        &[("N", 32)],
        &BackendOptions::new(4).avpg(false),
    )
    .unwrap();
    assert!(
        with.report.elisions.scatters_elided > 0,
        "U/V/P re-reads across CALC1→CALC2 should be elided"
    );
    assert_eq!(without.report.elisions.scatters_elided, 0);
    let (with_msgs, with_elems) = with.program.comm_summary();
    let (wo_msgs, wo_elems) = without.program.comm_summary();
    assert!(with_msgs < wo_msgs, "AVPG reduces messages: {with_msgs} vs {wo_msgs}");
    assert!(with_elems < wo_elems, "AVPG reduces volume");
}

#[test]
fn swim_avpg_off_still_correct() {
    let n = 16usize;
    let r = swim::reference(n);
    let cluster = ClusterConfig::paper_n(4);
    let exp = run_experiment(
        swim::SOURCE,
        &[("N", n as i64)],
        &cluster,
        &BackendOptions::new(4).avpg(false),
        ExecMode::Full,
    )
    .unwrap();
    assert!(max_abs_diff(array(&exp, "P"), &r.p) < 1e-10);
}

// ------------------------------------------------------ cross checks

#[test]
fn analytic_and_full_mode_agree_on_time_and_traffic() {
    for (src, params) in [
        (mm::SOURCE, vec![("N", 24i64)]),
        (cfft::SOURCE, vec![("M", 6)]),
        (swim::SOURCE, vec![("N", 16)]),
    ] {
        let cluster = ClusterConfig::paper_n(4);
        let opts = BackendOptions::new(4).granularity(Granularity::Coarse);
        let compiled = compile(src, &params, &opts).unwrap();
        let full = vpce::execute(&compiled.program, &cluster, ExecMode::Full);
        let ana = vpce::execute(&compiled.program, &cluster, ExecMode::Analytic);
        assert!(
            (full.elapsed - ana.elapsed).abs() / full.elapsed < 1e-9,
            "elapsed: full {} vs analytic {}",
            full.elapsed,
            ana.elapsed
        );
        assert_eq!(full.net.p2p_bytes, ana.net.p2p_bytes);
        assert_eq!(full.net.p2p_messages, ana.net.p2p_messages);
        assert!((full.comm_time - ana.comm_time).abs() / full.comm_time.max(1e-30) < 1e-9);
    }
}

#[test]
fn pipeline_is_deterministic() {
    let go = || {
        let exp = run(mm::SOURCE, &[("N", 16)], 4, Granularity::Fine);
        (
            exp.parallel.elapsed,
            exp.parallel.comm_time,
            exp.parallel.arrays.clone(),
        )
    };
    let a = go();
    let b = go();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

// ------------------------------------------------- subroutine inlining

#[test]
fn swim_with_subroutines_matches_flat_swim() {
    // The same physics written with CALC1/CALC2 as SUBROUTINEs (like
    // the real SPEC code) must compile — via the §3 inliner — to a
    // program computing identical values.
    let n = 16i64;
    let flat = run(swim::SOURCE, &[("N", n)], 4, Granularity::Coarse);
    let subs = run(swim::SOURCE_SUBROUTINES, &[("N", n)], 4, Granularity::Coarse);
    for name in ["U", "V", "P", "CU", "CV", "Z", "H", "UNEW", "VNEW", "PNEW"] {
        let diff = max_abs_diff(array(&flat, name), array(&subs, name));
        assert!(diff < 1e-12, "{name}: {diff}");
    }
    // And the loops inside the subroutines were parallelized.
    assert_eq!(subs.compiled.program.regions().count(), 4);
}

#[test]
fn inlined_subroutine_overrides_size_through_the_argument() {
    // N reaches CALC1/CALC2 as an argument, so a PARAMETER override on
    // the main program rescales everything.
    let exp = run(swim::SOURCE_SUBROUTINES, &[("N", 24)], 2, Granularity::Fine);
    assert_eq!(exp.compiled.program.arrays[0].1, 24 * 24);
    let r = swim::reference(24);
    assert!(max_abs_diff(array(&exp, "P"), &r.p) < 1e-10);
}

// ------------------------------------------- one-sided design choices

#[test]
fn pull_scatter_same_results_less_master_load() {
    // GET-based scattering: identical data, but the per-message host
    // setup runs on the slaves in parallel instead of serialising on
    // the master.
    let n = 20usize;
    let (_, _, c_ref) = mm::reference(n);
    let cluster = ClusterConfig::paper_n(4);
    let push = run_experiment(
        mm::SOURCE,
        &[("N", n as i64)],
        &cluster,
        &BackendOptions::new(4),
        ExecMode::Full,
    )
    .unwrap();
    let pull = run_experiment(
        mm::SOURCE,
        &[("N", n as i64)],
        &cluster,
        &BackendOptions::new(4).pull(true),
        ExecMode::Full,
    )
    .unwrap();
    assert!(max_abs_diff(array(&push, "C"), &c_ref) < 1e-12);
    assert!(max_abs_diff(array(&pull, "C"), &c_ref) < 1e-12);
    // Master host-side communication cost drops under pull.
    let push_master = push.parallel.rank_stats[0].comm_host;
    let pull_master = pull.parallel.rank_stats[0].comm_host;
    assert!(
        pull_master < push_master,
        "pull should unload the master: {pull_master} vs {push_master}"
    );
    // And the GET counters show who moved the data.
    assert!(pull.parallel.rank_stats[1].bytes_got > 0);
    assert_eq!(push.parallel.rank_stats[1].bytes_got, 0);
}

#[test]
fn pull_scatter_faster_when_scatter_message_bound() {
    // Fine-grain SWIM floods the master with setups; pulling them
    // from 3 slaves in parallel must shorten the critical path.
    let cluster = ClusterConfig::paper_n(4);
    let time = |pull: bool| {
        let compiled = compile(
            swim::SOURCE,
            &[("N", 128)],
            &BackendOptions::new(4).pull(pull),
        )
        .unwrap();
        vpce::execute(&compiled.program, &cluster, ExecMode::Analytic).comm_time
    };
    let push_t = time(false);
    let pull_t = time(true);
    assert!(
        pull_t < push_t,
        "pull {pull_t} should beat push {push_t} in the setup-bound regime"
    );
}

#[test]
fn lock_based_reductions_compute_the_same_sum() {
    // §3: "locks are useful for establishing critical sections where
    // global operations using shared variables, such as reduction
    // operations, are performed." Dot product with dyadic values is
    // exact under any accumulation order.
    const DOT: &str = r"
      PROGRAM DOT
      PARAMETER (N = 64)
      REAL A(N), B(N)
      REAL S
      INTEGER I
      DO I = 1, N
        A(I) = REAL(I) / 4.0
        B(I) = 2.0
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + A(I) * B(I)
      ENDDO
      END
";
    let cluster = ClusterConfig::paper_n(4);
    let s_value = |lock: bool| {
        let exp = run_experiment(
            DOT,
            &[],
            &cluster,
            &BackendOptions::new(4).lock_reductions(lock),
            ExecMode::Full,
        )
        .unwrap();
        let slot = exp
            .compiled
            .program
            .scalars
            .iter()
            .position(|(n, _)| n == "S")
            .unwrap();
        exp.parallel.scalars[slot].as_real()
    };
    let expected: f64 = (1..=64).map(|i| i as f64 / 4.0 * 2.0).sum();
    assert_eq!(s_value(false), expected, "collective reduction");
    assert_eq!(s_value(true), expected, "lock-based reduction");
}

#[test]
fn irregular_gather_parallelizes_conservatively_and_matches_reference() {
    // §2.2: one-sided communication "may also help the compiler to
    // simplify code generation for … irregular computations". The
    // A(IDX(I)) subscript defeats LMAD analysis, so A degrades to a
    // conservative whole-array ReadOnly region — but the loop still
    // runs in parallel and the results are exact.
    use vpce_workloads::irregular;
    let n = 64usize;
    let (a_ref, idx_ref, b_ref) = irregular::reference(n);
    for g in Granularity::ALL {
        let exp = run(irregular::SOURCE, &[("N", n as i64)], 4, g);
        assert!(max_abs_diff(array(&exp, "A"), &a_ref) < 1e-12);
        assert!(max_abs_diff(array(&exp, "B"), &b_ref) < 1e-12, "{g:?}");
        let idx_f: Vec<f64> = idx_ref.iter().map(|&v| v as f64).collect();
        assert!(max_abs_diff(array(&exp, "IDX"), &idx_f) < 1e-12);
    }
    // Both loops (init and gather) parallelised.
    let compiled = compile(
        irregular::SOURCE,
        &[("N", n as i64)],
        &BackendOptions::new(4),
    )
    .unwrap();
    assert_eq!(compiled.program.regions().count(), 2);
    // The gather region scatters ALL of A to every slave (the
    // conservative whole-array read).
    let gather = compiled.program.regions().nth(1).unwrap();
    for r in 1..4 {
        let a_bytes: u64 = gather.scatter.per_rank[r]
            .iter()
            .filter(|op| op.array == 0)
            .map(|op| op.transfer.elems())
            .sum();
        assert!(a_bytes >= n as u64, "rank {r} must receive all of A");
    }
}

#[test]
fn swim_full_three_time_levels_match_reference() {
    // The complete 13-array shallow-water step, including CALC3's
    // ReadWrite time smoothing (UOLD/VOLD/POLD read and rewritten in
    // place).
    use vpce_workloads::swim_full;
    let n = 16usize;
    let r = swim_full::reference(n);
    for g in [Granularity::Fine, Granularity::Coarse] {
        let exp = run(swim_full::SOURCE, &[("N", n as i64)], 4, g);
        for (name, want) in [
            ("U", &r.u),
            ("V", &r.v),
            ("P", &r.p),
            ("UOLD", &r.uold),
            ("VOLD", &r.vold),
            ("POLD", &r.pold),
            ("UNEW", &r.unew),
            ("CU", &r.cu),
            ("Z", &r.z),
            ("H", &r.h),
        ] {
            let diff = max_abs_diff(array(&exp, name), want);
            assert!(diff < 1e-10, "{g:?} {name}: {diff}");
        }
    }
    // All four loop nests parallelise, CALC3's arrays classify
    // ReadWrite (scatter + collect both present for UOLD). Compile
    // with the AVPG off: with it on, the scatter is (correctly!)
    // elided because each slave still holds its own fresh UOLD chunk
    // from the init region.
    let compiled = compile(
        swim_full::SOURCE,
        &[("N", n as i64)],
        &BackendOptions::new(4).avpg(false),
    )
    .unwrap();
    assert_eq!(compiled.program.regions().count(), 4);
    let calc3 = compiled.program.regions().nth(3).unwrap();
    let uold = compiled
        .program
        .arrays
        .iter()
        .position(|(n, _)| n == "UOLD")
        .unwrap();
    let scattered: u64 = calc3.scatter.per_rank[1]
        .iter()
        .filter(|op| op.array == uold)
        .map(|op| op.transfer.elems())
        .sum();
    let collected: u64 = calc3.collect.per_rank[1]
        .iter()
        .filter(|op| op.array == uold)
        .map(|op| op.transfer.elems())
        .sum();
    assert!(scattered > 0, "ReadWrite UOLD must be scattered");
    assert!(collected > 0, "ReadWrite UOLD must be collected");
}
