//! End-to-end tests of the `vpcec` binary itself: stdin-fed jobfiles
//! (`--batch -`), the `--serve` daemon with a durable `--journal`, and
//! the `--kill-after` crash drill. Everything below runs the real
//! executable via `CARGO_BIN_EXE_vpcec`.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

const JOBFILE: &str = "nodes=4\nseed=1\n\
                       job name=a workload=mm ranks=2 param:N=8\n\
                       job name=b workload=mm ranks=2 param:N=8 arrive=1e-4\n";

fn vpcec(args: &[&str], stdin: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_vpcec"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    cmd.stdin(if stdin.is_some() { Stdio::piped() } else { Stdio::null() });
    let mut child = cmd.spawn().expect("spawn vpcec");
    if let Some(text) = stdin {
        child
            .stdin
            .take()
            .expect("piped stdin")
            .write_all(text.as_bytes())
            .expect("feed stdin");
    }
    child.wait_with_output().expect("wait vpcec")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A scratch path that cleans itself up.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let p = std::env::temp_dir().join(format!("vpcec-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        Scratch(p)
    }
    fn str(&self) -> &str {
        self.0.to_str().unwrap()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn batch_reads_the_jobfile_from_stdin() {
    let out = vpcec(&["--batch", "-"], Some(JOBFILE));
    assert!(out.status.success(), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("2 submitted | 2 done"), "{text}");
    // Identical to reading the same jobfile from a file.
    let file = Scratch::new("jobs.txt");
    std::fs::write(&file.0, JOBFILE).unwrap();
    let from_file = vpcec(&["--batch", file.str()], None);
    assert_eq!(text, stdout(&from_file));
}

#[test]
fn serve_reads_the_script_from_stdin_and_journals_to_disk() {
    let journal = Scratch::new("serve.journal");
    let out = vpcec(&["--serve", "-", "--journal", journal.str()], Some(JOBFILE));
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(stdout(&out).contains("2 submitted | 2 done"), "{}", stdout(&out));
    let log = std::fs::read_to_string(&journal.0).unwrap();
    assert!(log.contains(" I nodes=4"), "{log}");
    assert!(log.contains(" F report="), "sealed journal: {log}");

    // Reopening the sealed journal replays (status verb works without
    // resubmitting anything).
    let again = vpcec(
        &["--serve", "-", "--journal", journal.str(), "--status", "a"],
        Some(""),
    );
    assert!(again.status.success(), "{}", stdout(&again));
    let text = stdout(&again);
    assert!(text.contains("recovery #1"), "{text}");
    assert!(text.contains("a done"), "{text}");
}

#[test]
fn kill_after_exits_3_and_a_restart_recovers() {
    let journal = Scratch::new("killed.journal");
    let dead = vpcec(
        &["--serve", "-", "--journal", journal.str(), "--kill-after", "150"],
        Some(JOBFILE),
    );
    assert_eq!(dead.status.code(), Some(3), "{}", stdout(&dead));
    assert!(stdout(&dead).contains("killed"), "{}", stdout(&dead));
    assert!(std::fs::metadata(&journal.0).unwrap().len() <= 150);

    // The baseline that never died.
    let clean = vpcec(&["--serve", "-"], Some(JOBFILE));
    assert!(clean.status.success(), "{}", stdout(&clean));

    // Restart on the torn journal: byte-identical report below the
    // recovery banner.
    let recovered = vpcec(&["--serve", "-", "--journal", journal.str()], Some(JOBFILE));
    assert!(recovered.status.success(), "{}", stdout(&recovered));
    let text = stdout(&recovered);
    assert!(text.ends_with(&stdout(&clean)), "clean:\n{}\nrecovered:\n{text}", stdout(&clean));
}

#[test]
fn usage_error_exits_1_and_mentions_serve() {
    let out = vpcec(&["--journal", "j.log"], None);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("--serve"), "{err}");
}
