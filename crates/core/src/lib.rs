//! # vpce — the V-Bus PC-cluster parallel programming environment
//!
//! The top of the reproduction of *"A Parallel Programming Environment
//! for a V-Bus based PC-cluster"* (Lim, Paek, Park, Hoeflinger;
//! IEEE CLUSTER 2001): compile a sequential Fortran-77-subset program
//! with the Polaris-style front-end, lower it through the MPI-2
//! postpass to master/slave SPMD form with one-sided communication,
//! and execute it on the simulated V-Bus cluster.
//!
//! ```
//! use vpce::{compile, run_experiment, BackendOptions, ClusterConfig, ExecMode};
//!
//! let source = r"
//!       PROGRAM SCALE
//!       PARAMETER (N = 64)
//!       REAL A(N), B(N)
//!       INTEGER I
//!       DO I = 1, N
//!         A(I) = REAL(I)
//!       ENDDO
//!       DO I = 1, N
//!         B(I) = 2.0 * A(I)
//!       ENDDO
//!       END
//! ";
//! let cluster = ClusterConfig::paper_4node();
//! let exp = run_experiment(
//!     source,
//!     &[],
//!     &cluster,
//!     &BackendOptions::new(4),
//!     ExecMode::Full,
//! )
//! .unwrap();
//! // The parallel run computed the same values the sequential one did…
//! assert_eq!(exp.parallel.arrays, exp.sequential.arrays);
//! // …and its virtual execution time yields the speedup.
//! assert!(exp.speedup() > 0.0);
//! ```
//!
//! The heavy lifting lives in the sub-crates, all re-exported here:
//!
//! | crate | role |
//! |---|---|
//! | [`vbus_sim`] | V-Bus/SKWP mesh interconnect model (§2.1) |
//! | [`cluster_sim`] | PC node model: CPU cycle costs, NIC DMA/PIO (§2) |
//! | [`mpi2`] | the MPI-2 library: windows, PUT/GET, fence, collectives (§2.2) |
//! | [`lmad`] | LMAD algebra and summary sets (§4) |
//! | [`polaris_fe`] | front-end: parsing + parallelism detection (§3) |
//! | [`polaris_be`] | the MPI-2 postpass (§5) |
//! | [`spmd_rt`] | SPMD IR + interpreter over the simulated cluster (§3) |

#![forbid(unsafe_code)]

pub mod cli;
pub mod report;

pub use cluster_sim::{ClusterConfig, CpuModel, NodeConfig, OpCounts};
pub use polaris_be::{advise, CostParams, GranularityAdvice};
pub use report::{describe_backend, describe_comm, describe_frontend};
pub use lmad::Granularity;
pub use mpi2::{Mpi, RunOutcome, Universe};
pub use polaris_be::{compile_backend, Avpg, BackendOptions, CompiledProgram, NodeAttr};
pub use polaris_fe::{compile as compile_frontend, FrontError};
pub use rmacheck::{lint, LintOptions, LintReport};
pub use spmd_rt::{
    execute, execute_sequential, execute_traced, ExecMode, RunReport, Schedule, SeqReport,
    SpmdProgram,
};
pub use vbus_sim::{NetConfig, NetSim};
pub use vpce_trace::{TraceReport, TraceSummary, Tracer};

/// Compile F77-mini source all the way to an executable SPMD program.
///
/// `params` overrides `PARAMETER` constants (problem-size sweeps).
pub fn compile(
    source: &str,
    params: &[(&str, i64)],
    opts: &BackendOptions,
) -> Result<CompiledProgram, FrontError> {
    let analyzed = polaris_fe::compile(source, params)?;
    Ok(polaris_be::compile_backend(&analyzed, opts))
}

/// Pick the cheapest §5.6 granularity by *simulating* all three
/// (the precise counterpart of the static
/// [`polaris_be::advise`] estimator). Returns the winner and the
/// simulated communication time per granularity in
/// [`Granularity::ALL`] order.
pub fn advise_granularity(
    source: &str,
    params: &[(&str, i64)],
    cluster: &ClusterConfig,
    base: &BackendOptions,
) -> Result<(Granularity, Vec<(Granularity, f64)>), FrontError> {
    let mut measured = Vec::with_capacity(3);
    for g in Granularity::ALL {
        let opts = BackendOptions {
            granularity: g,
            ..base.clone()
        };
        let compiled = compile(source, params, &opts)?;
        let rep = spmd_rt::execute(&compiled.program, cluster, ExecMode::Analytic);
        measured.push((g, rep.comm_time));
    }
    let winner = measured
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|&(g, _)| g)
        .expect("three candidates");
    Ok((winner, measured))
}

/// A complete experiment: the compiled program plus its parallel and
/// sequential executions.
#[derive(Debug)]
pub struct Experiment {
    pub compiled: CompiledProgram,
    pub parallel: RunReport,
    pub sequential: SeqReport,
}

impl Experiment {
    /// Table-1 speedup: sequential time over parallel time.
    pub fn speedup(&self) -> f64 {
        self.sequential.elapsed / self.parallel.elapsed
    }

    /// Table-2 communication time (critical path).
    pub fn comm_time(&self) -> f64 {
        self.parallel.comm_time
    }
}

/// Compile and run `source` on `cluster`, plus the sequential
/// baseline on one of its CPUs.
pub fn run_experiment(
    source: &str,
    params: &[(&str, i64)],
    cluster: &ClusterConfig,
    opts: &BackendOptions,
    mode: ExecMode,
) -> Result<Experiment, FrontError> {
    assert_eq!(
        opts.nprocs,
        cluster.num_nodes(),
        "backend nprocs must match the cluster"
    );
    let compiled = compile(source, params, opts)?;
    let parallel = spmd_rt::execute(&compiled.program, cluster, mode);
    let sequential = spmd_rt::execute_sequential(&compiled.program, &cluster.node.cpu, mode);
    Ok(Experiment {
        compiled,
        parallel,
        sequential,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOT: &str = r"
      PROGRAM DOT
      PARAMETER (N = 64)
      REAL A(N), B(N)
      REAL S
      INTEGER I
      DO I = 1, N
        A(I) = REAL(I)
        B(I) = 2.0
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + A(I) * B(I)
      ENDDO
      END
";

    #[test]
    fn dot_product_reduction_end_to_end() {
        let cluster = ClusterConfig::paper_4node();
        let exp = run_experiment(DOT, &[], &cluster, &BackendOptions::new(4), ExecMode::Full)
            .unwrap();
        // S = sum 2*i for i in 1..=64 = 64*65 = 4160.
        let s_slot = exp
            .compiled
            .program
            .scalars
            .iter()
            .position(|(n, _)| n == "S")
            .unwrap();
        assert_eq!(exp.parallel.scalars[s_slot].as_real(), 4160.0);
        assert_eq!(exp.sequential.scalars[s_slot].as_real(), 4160.0);
    }

    #[test]
    fn parameter_override_reaches_the_runtime() {
        let cluster = ClusterConfig::paper_4node();
        let exp = run_experiment(
            DOT,
            &[("N", 128)],
            &cluster,
            &BackendOptions::new(4),
            ExecMode::Full,
        )
        .unwrap();
        assert_eq!(exp.compiled.program.arrays[0].1, 128);
        let s_slot = exp
            .compiled
            .program
            .scalars
            .iter()
            .position(|(n, _)| n == "S")
            .unwrap();
        assert_eq!(exp.parallel.scalars[s_slot].as_real(), (128.0 * 129.0));
    }

    #[test]
    #[should_panic(expected = "must match the cluster")]
    fn nprocs_mismatch_caught() {
        let cluster = ClusterConfig::paper_4node();
        let _ = run_experiment(DOT, &[], &cluster, &BackendOptions::new(2), ExecMode::Full);
    }
}
