//! Human-readable compilation reports — the Polaris-style listing a
//! user reads to understand what the compiler did to their program.

use mpi2::RankStats;
use polaris_be::{CompiledProgram, NodeAttr};
use polaris_fe::analysis::{AnalyzedProgram, Region};

/// Describe where the one-sided traffic went: the §2.2 DMA path
/// (contiguous transfers, descriptor programming) versus the
/// programmed-I/O path (strided transfers, element-by-element copies),
/// plus the time ledger those mechanisms feed.
pub fn describe_comm(stats: &[RankStats]) -> String {
    let mut total = RankStats::default();
    for s in stats {
        total.merge(s);
    }
    let pio_bytes = total.pio_elems * mpi2::ELEM_BYTES as u64;
    let rma_bytes = total.bytes_put + total.bytes_got;
    let dma_bytes = rma_bytes.saturating_sub(pio_bytes);
    let mut out = format!(
        "  data paths: DMA {} B in {} contiguous ops | PIO {} B in {} strided ops ({} elems)\n",
        dma_bytes, total.rma_contiguous, pio_bytes, total.rma_strided, total.pio_elems
    );
    let n = stats.len().max(1) as u64;
    out.push_str(&format!(
        "  comm ledger: {:.6}s host setup | {:.6}s data wait | {:.6}s sync wait ({} fences, {} barriers)\n",
        total.comm_host,
        total.comm_wait,
        total.sync_wait,
        total.fences / n,
        total.barriers / n
    ));
    out
}

/// Describe how the eager/rendezvous transport carried the traffic and
/// advise on the protocol split: the policy threshold the machine cost
/// model derived, how many operations each protocol took (and what the
/// eager staging copies cost), and whether the registered pool or the
/// descriptor ring ever became the bottleneck.
pub fn describe_transport(policy: &mpi2::TransportPolicy, stats: &[RankStats]) -> String {
    let mut total = RankStats::default();
    for s in stats {
        total.merge(s);
    }
    let mut out = format!(
        "  transport: eager <= {} B ({} slots x {} B registered/rank, ring depth {})\n",
        policy.eager_max_bytes, policy.slots, policy.slot_bytes, policy.ring_depth
    );
    out.push_str(&format!(
        "  protocol split: {} eager ops ({} B staged, {:.6}s copy) | {} rendezvous ops ({} B zero-copy)\n",
        total.eager_ops, total.eager_bytes, total.eager_copy_s, total.rdvz_ops, total.rdvz_bytes
    ));
    out.push_str(&format!(
        "  nic pressure: {} doorbells, {} ring-batched descriptors (max {}/ring) | pool hwm {}/{} slots, {} waits ({:.6}s), {} fallbacks\n",
        total.doorbells,
        total.ring_batched,
        total.ring_batch_max,
        total.pool_hwm,
        policy.slots,
        total.pool_waits,
        total.pool_wait_s,
        total.eager_fallbacks
    ));
    // The advisor verdict: is the threshold serving this workload?
    if total.eager_fallbacks > 0 && total.eager_fallbacks >= total.eager_ops / 4 {
        out.push_str(
            "  advice: registered pool saturates often; raise eager_slots or lower the eager threshold\n",
        );
    } else if total.eager_ops + total.rdvz_ops > 0 && total.rdvz_ops == 0 {
        out.push_str("  advice: all traffic fit the eager path; rendezvous untested at this size\n");
    } else {
        out.push_str("  advice: threshold is serving this workload; no tuning needed\n");
    }
    out
}

/// Describe what the fault plane injected and what the self-healing
/// machinery did about it: the CRC/ack/retransmit ledger, degraded
/// V-Bus collectives, and NIC-level retries. Printed only when a
/// fault schedule is active.
pub fn describe_faults(spec: &spmd_rt::FaultSpec, rep: &spmd_rt::RunReport) -> String {
    let net = &rep.net;
    let mut total = RankStats::default();
    for s in &rep.rank_stats {
        total.merge(s);
    }
    let mut out = format!(
        "  fault schedule: seed {} | {} CRC failures | {} packets dropped | {} link stalls\n",
        spec.seed, net.crc_failures, net.packets_dropped, net.link_stalls
    );
    out.push_str(&format!(
        "  self-healing: {} retransmits | {:.6}s backoff | {:.6}s recovery on the wire\n",
        net.retransmits, net.backoff_time, net.recovery_time
    ));
    out.push_str(&format!(
        "  degraded paths: {} V-Bus fallbacks to software tree ({} failed bus attempts) | {} NIC retries, {} NIC stalls ({:.6}s)\n",
        net.bus_degraded, net.bus_fail_attempts, total.nic_retries, total.nic_stalls, total.nic_retry_s
    ));
    out
}

/// Describe what the rollback-recovery driver did: the checkpoint
/// cadence and replication traffic, the crashes it absorbed (with the
/// rank→node failovers), and the virtual time charged to the
/// `Recovery` critical-path class — the four components printed sum to
/// the total bit-exactly. Printed only when `--recover` armed it.
pub fn describe_recovery(
    spec: &vpce_recover::RecoverSpec,
    ledger: &vpce_recover::RecoveryLedger,
) -> String {
    let mut out = format!(
        "  recovery: checkpoint every {} region(s) x {} buddies | {} checkpoints | {} B payload -> {} B replicated\n",
        spec.interval, spec.buddies, ledger.checkpoints, ledger.payload_bytes, ledger.replicated_bytes
    );
    if ledger.absorbed() {
        let moves: Vec<String> = ledger
            .failovers
            .iter()
            .map(|(rank, from, to)| format!("rank {rank} node {from}->{to}"))
            .collect();
        out.push_str(&format!(
            "  absorbed [VPCE401]: {} rollback(s) | {} rank(s) respawned | {} region(s) replayed | {}\n",
            ledger.rollbacks,
            ledger.respawned,
            ledger.replay_regions,
            moves.join(", ")
        ));
    } else {
        out.push_str(&format!(
            "  absorbed: no crashes | {}/{} spare node(s) in reserve\n",
            spec.spares, spec.spares
        ));
    }
    out.push_str(&format!(
        "  recovery time: {:.6}s = ckpt {:.6}s + quiesce {:.6}s + respawn {:.6}s + replay {:.6}s\n",
        ledger.recovery_total(),
        ledger.ckpt_time,
        ledger.quiesce_time,
        ledger.respawn_time,
        ledger.replay_time
    ));
    out
}

/// Describe the front-end's findings: which loops parallelised and
/// why the others did not.
pub fn describe_frontend(analyzed: &AnalyzedProgram) -> String {
    let mut out = format!("program {}\n", analyzed.name);
    for (i, region) in analyzed.regions.iter().enumerate() {
        match region {
            Region::Parallel(p) => {
                out.push_str(&format!(
                    "  region {i}: PARALLEL DO (line {}, {} iterations{})\n",
                    p.line,
                    p.trips,
                    if p.analysis.triangular {
                        ", triangular"
                    } else {
                        ""
                    }
                ));
                if !p.analysis.reductions.is_empty() {
                    let names: Vec<&str> = p
                        .analysis
                        .reductions
                        .iter()
                        .map(|r| analyzed.symbols.scalars[r.var].name.as_str())
                        .collect();
                    out.push_str(&format!("    reductions: {}\n", names.join(", ")));
                }
                if !p.analysis.private_scalars.is_empty() {
                    let names: Vec<&str> = p
                        .analysis
                        .private_scalars
                        .iter()
                        .map(|&v| analyzed.symbols.scalars[v].name.as_str())
                        .collect();
                    out.push_str(&format!("    private: {}\n", names.join(", ")));
                }
                for entry_array in p.analysis.summary.arrays() {
                    let name = &analyzed.symbols.arrays[entry_array.0].name;
                    for e in p.analysis.summary.of(entry_array) {
                        out.push_str(&format!(
                            "    {name}: {} {}\n",
                            e.class, e.lmad
                        ));
                    }
                }
            }
            Region::Seq(_) => {
                out.push_str(&format!("  region {i}: sequential\n"));
            }
        }
    }
    if !analyzed.serial_reasons.is_empty() {
        out.push_str("  serial loops:\n");
        for (line, reason) in &analyzed.serial_reasons {
            out.push_str(&format!("    line {line}: {reason}\n"));
        }
    }
    out
}

/// Describe the backend's plans: windows, AVPG attributes, per-region
/// communication.
pub fn describe_backend(compiled: &CompiledProgram) -> String {
    let prog = &compiled.program;
    let mut out = format!(
        "SPMD program {} for {} ranks\n",
        prog.name, prog.nprocs
    );
    out.push_str(&format!(
        "  windows: {}\n",
        compiled
            .report
            .windowed_arrays
            .iter()
            .map(|a| prog.arrays[a.0].0.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    for (i, info) in compiled.report.regions.iter().enumerate() {
        out.push_str(&format!(
            "  parallel region {i} (line {}): {} schedule\n",
            info.line,
            if info.sched_cyclic { "cyclic" } else { "block" }
        ));
        out.push_str(&format!(
            "    scatter: {} msgs / {} elems; collect: {} msgs / {} elems; strided: {}\n",
            info.scatter_msgs,
            info.scatter_elems,
            info.collect_msgs,
            info.collect_elems,
            info.strided_msgs
        ));
        if !info.collect_fallback_fine.is_empty() {
            let names: Vec<&str> = info
                .collect_fallback_fine
                .iter()
                .map(|a| prog.arrays[a.0].0.as_str())
                .collect();
            out.push_str(&format!(
                "    overlap check forced fine collection for: {}\n",
                names.join(", ")
            ));
        }
    }
    let e = &compiled.report.elisions;
    if e.scatters_elided + e.collects_elided > 0 {
        out.push_str(&format!(
            "  AVPG elided {} scatters and {} collects ({} elements)\n",
            e.scatters_elided, e.collects_elided, e.elided_elems
        ));
    }
    // AVPG attribute matrix.
    out.push_str("  AVPG (V=valid, p=propagate, .=invalid):\n");
    for (i, _node) in compiled.avpg.nodes.iter().enumerate() {
        let row: String = (0..prog.arrays.len())
            .map(|a| match compiled.avpg.attr(i, lmad::ArrayId(a)) {
                NodeAttr::Valid => 'V',
                NodeAttr::Propagate => 'p',
                NodeAttr::Invalid => '.',
            })
            .collect();
        out.push_str(&format!("    region {i}: {row}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::BackendOptions;
    use vpce_workloads::swim;

    #[test]
    fn frontend_report_lists_parallel_loops_and_regions() {
        let analyzed = polaris_fe::compile(swim::SOURCE, &[("N", 16)]).unwrap();
        let r = super::describe_frontend(&analyzed);
        assert!(r.contains("PARALLEL DO"), "{r}");
        assert!(r.contains("WriteFirst"), "{r}");
        assert!(r.contains("ReadOnly"), "{r}");
    }

    #[test]
    fn frontend_report_explains_serial_loops() {
        let src = "PROGRAM T\nPARAMETER (N = 8)\nREAL A(N)\nINTEGER I\nDO I = 2, N\nA(I) = A(I-1)\nENDDO\nEND\n";
        let analyzed = polaris_fe::compile(src, &[]).unwrap();
        let r = super::describe_frontend(&analyzed);
        assert!(r.contains("serial loops"), "{r}");
        assert!(r.contains("dependence"), "{r}");
    }

    #[test]
    fn comm_report_splits_dma_and_pio_traffic() {
        use crate::{BackendOptions, ClusterConfig, ExecMode};
        use lmad::Granularity;
        use spmd_rt::Schedule;
        // Cyclic + fine grain forces strided (PIO) transfers alongside
        // the contiguous (DMA) ones.
        let opts = BackendOptions::new(4)
            .granularity(Granularity::Fine)
            .schedule(Schedule::Cyclic);
        let compiled = crate::compile(swim::SOURCE, &[("N", 16)], &opts).unwrap();
        let rep = spmd_rt::execute(
            &compiled.program,
            &ClusterConfig::paper_4node(),
            ExecMode::Analytic,
        );
        let text = super::describe_comm(&rep.rank_stats);
        assert!(text.contains("data paths: DMA"), "{text}");
        assert!(text.contains("strided ops"), "{text}");
        assert!(text.contains("comm ledger:"), "{text}");
    }

    #[test]
    fn transport_report_shows_split_and_advice() {
        use crate::{BackendOptions, ClusterConfig, ExecMode};
        let cfg = ClusterConfig::paper_4node();
        let compiled =
            crate::compile(swim::SOURCE, &[("N", 16)], &BackendOptions::new(4)).unwrap();
        let rep = spmd_rt::execute(&compiled.program, &cfg, ExecMode::Analytic);
        let policy = mpi2::TransportPolicy::from_config(&cfg);
        let text = super::describe_transport(&policy, &rep.rank_stats);
        assert!(text.contains("transport: eager <="), "{text}");
        assert!(text.contains("protocol split:"), "{text}");
        assert!(text.contains("nic pressure:"), "{text}");
        assert!(text.contains("advice:"), "{text}");
        // The ledger in the line must agree with the raw counters.
        let mut total = mpi2::RankStats::default();
        for s in &rep.rank_stats {
            total.merge(s);
        }
        assert!(text.contains(&format!("{} eager ops", total.eager_ops)), "{text}");
        assert!(text.contains(&format!("{} rendezvous ops", total.rdvz_ops)), "{text}");
    }

    #[test]
    fn backend_report_shows_plans_and_avpg() {
        let compiled =
            crate::compile(swim::SOURCE, &[("N", 16)], &BackendOptions::new(4)).unwrap();
        let r = super::describe_backend(&compiled);
        assert!(r.contains("for 4 ranks"), "{r}");
        assert!(r.contains("scatter:"), "{r}");
        assert!(r.contains("AVPG"), "{r}");
        assert!(r.contains('V'), "{r}");
    }
}
