//! `vpcec` — the command-line front door of the environment:
//! compile an F77-mini program and run it on the simulated V-Bus
//! cluster, statically lint its communication plan (`--lint`), run a
//! whole jobfile through the gang scheduler (`--batch`), or drive the
//! persistent job service (`--serve`). All logic lives in `vpce::cli`
//! (unit-tested); this binary only does I/O, and every exit funnels
//! through the one `Outcome` table.

use std::io::Read as _;
use std::path::Path;
use std::process::ExitCode;

use vpce::cli::{self, Outcome};

fn exit(outcome: Outcome) -> ExitCode {
    ExitCode::from(u8::try_from(outcome.exit_code()).unwrap_or(1))
}

fn write_or_die(path: &str, contents: &str, what: &str) -> Result<(), ExitCode> {
    std::fs::write(path, contents).map_err(|e| {
        eprintln!("error: cannot write {what} {path}: {e}");
        exit(Outcome::IoError)
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") || argv.is_empty() {
        print!("{}", cli::USAGE);
        return exit(Outcome::Success);
    }
    let mut args = match cli::parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::USAGE);
            return exit(Outcome::UsageError);
        }
    };

    // Resolve --machine before any mode runs: built-in name, or a
    // .machine file whose include= names resolve relative to its own
    // directory (like jobfile src= paths).
    if let Some(op) = args.machine.clone() {
        let dir = Path::new(&op)
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_default();
        let top = op.clone();
        let loader = move |p: &str| -> Result<String, String> {
            let pb = Path::new(p);
            let full = if p == top || pb.is_absolute() {
                pb.to_path_buf()
            } else {
                dir.join(pb)
            };
            std::fs::read_to_string(&full).map_err(|e| e.to_string())
        };
        match cli::load_machine(&op, &loader) {
            Ok(spec) => args.machine_spec = Some(spec),
            Err(e) => {
                eprintln!("error: {e}");
                return exit(Outcome::UsageError);
            }
        }
    }
    if args.machine_dump {
        let out = cli::run_machine_dump(&args);
        print!("{}", out.text);
        return exit(out.outcome);
    }

    if let Some(script_path) = args.serve.clone() {
        return run_serve(&script_path, &args);
    }
    if let Some(jobfile_path) = &args.batch {
        return run_batch(jobfile_path, &args);
    }

    let source = match std::fs::read_to_string(&args.source_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.source_path);
            return exit(Outcome::IoError);
        }
    };
    match cli::run(&source, &args) {
        Ok(out) => {
            print!("{}", out.text);
            if let (Some(path), Some(json)) = (&args.lint_json, &out.lint_json) {
                if let Err(code) = write_or_die(path, json, "lint JSON") {
                    return code;
                }
            }
            if let (Some(path), Some(json)) = (&args.verify_json, &out.verify_json) {
                if let Err(code) = write_or_die(path, json, "verify JSON") {
                    return code;
                }
            }
            if let (Some(path), Some(json)) = (&args.trace, &out.trace_json) {
                if let Err(code) = write_or_die(path, json, "trace") {
                    return code;
                }
                eprintln!("trace written to {path} (load in ui.perfetto.dev)");
            }
            exit(out.outcome)
        }
        Err(e) => {
            eprintln!("compile error: {e}");
            exit(Outcome::UsageError)
        }
    }
}

/// Read an input file, with `-` meaning stdin (so jobfiles and serve
/// scripts can be piped in).
fn read_input(path: &str) -> Result<String, ExitCode> {
    if path == "-" {
        let mut s = String::new();
        return std::io::stdin().read_to_string(&mut s).map(|_| s).map_err(|e| {
            eprintln!("error: cannot read stdin: {e}");
            exit(Outcome::IoError)
        });
    }
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read {path}: {e}");
        exit(Outcome::IoError)
    })
}

fn run_serve(script_path: &str, args: &cli::CliArgs) -> ExitCode {
    let script = match read_input(script_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut mem = vpce_serve::MemStorage::default();
    let mut file;
    let storage: &mut dyn vpce_serve::Storage = match &args.journal {
        Some(path) => match vpce_serve::FileStorage::open(path) {
            Ok(f) => {
                file = f;
                &mut file
            }
            Err(e) => {
                eprintln!("error: {e}");
                return exit(Outcome::IoError);
            }
        },
        None => &mut mem,
    };
    let out = cli::run_serve(&script, args, storage);
    print!("{}", out.text);
    if let (Some(path), Some(json)) = (&args.batch_json, &out.batch_json) {
        if let Err(code) = write_or_die(path, json, "batch report") {
            return code;
        }
    }
    if let (Some(path), Some(json)) = (&args.trace, &out.trace_json) {
        if let Err(code) = write_or_die(path, json, "cluster timeline") {
            return code;
        }
        eprintln!("cluster timeline written to {path} (load in ui.perfetto.dev)");
    }
    exit(out.outcome)
}

fn run_batch(jobfile_path: &str, args: &cli::CliArgs) -> ExitCode {
    let jobfile = match read_input(jobfile_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    // `src=` paths resolve relative to the jobfile's directory, so a
    // jobfile and its programs travel as one unit.
    let dir = Path::new(jobfile_path)
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_default();
    let loader = move |p: &str| {
        let pb = Path::new(p);
        let full = if pb.is_absolute() { pb.to_path_buf() } else { dir.join(pb) };
        std::fs::read_to_string(&full).map_err(|e| e.to_string())
    };
    match cli::run_batch(&jobfile, args, &loader) {
        Ok(out) => {
            print!("{}", out.text);
            if let (Some(path), Some(json)) = (&args.batch_json, &out.batch_json) {
                if let Err(code) = write_or_die(path, json, "batch report") {
                    return code;
                }
            }
            if let (Some(path), Some(json)) = (&args.trace, &out.trace_json) {
                if let Err(code) = write_or_die(path, json, "cluster timeline") {
                    return code;
                }
                eprintln!("cluster timeline written to {path} (load in ui.perfetto.dev)");
            }
            exit(out.outcome)
        }
        Err(e) => {
            eprintln!("error: {e}");
            exit(Outcome::UsageError)
        }
    }
}
