//! `vpcec` — the command-line front door of the environment:
//! compile an F77-mini program and run it on the simulated V-Bus
//! cluster (or statically lint its communication plan with `--lint`).
//! All logic lives in `vpce::cli` (unit-tested); this binary only
//! does I/O.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") || argv.is_empty() {
        print!("{}", vpce::cli::USAGE);
        return ExitCode::SUCCESS;
    }
    let args = match vpce::cli::parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", vpce::cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&args.source_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.source_path);
            return ExitCode::FAILURE;
        }
    };
    match vpce::cli::run(&source, &args) {
        Ok(out) => {
            print!("{}", out.text);
            if let (Some(path), Some(json)) = (&args.lint_json, &out.lint_json) {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if let (Some(path), Some(json)) = (&args.trace, &out.trace_json) {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("trace written to {path} (load in ui.perfetto.dev)");
            }
            // Lint mode reports findings through the exit code:
            // 0 clean, 1 warnings, 2 conflicts.
            ExitCode::from(u8::try_from(out.exit).unwrap_or(2))
        }
        Err(e) => {
            eprintln!("compile error: {e}");
            ExitCode::FAILURE
        }
    }
}
