//! The `vpcec` command-line driver: compile an F77-mini file and run
//! it on the simulated cluster. Argument parsing is hand-rolled (no
//! CLI dependency) and pure — [`run`] maps arguments to output text,
//! so the whole driver is unit-testable.

use std::fmt::Write as _;

use lmad::Granularity;
use spmd_rt::{ExecMode, FaultSpec, Schedule, VpceError};
use vpce_machine::MachineSpec;
use vpce_recover::RecoverSpec;
use vpce_sched::{BatchOptions, BatchSpec, SourceLoader};
use vpce_trace::Tracer;

use crate::{BackendOptions, ClusterConfig, FrontError};

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct CliArgs {
    pub source_path: String,
    pub nodes: usize,
    pub granularity: Option<Granularity>,
    pub schedule: Option<Schedule>,
    pub mode: ExecMode,
    pub params: Vec<(String, i64)>,
    pub show_report: bool,
    pub advise: bool,
    pub no_avpg: bool,
    pub prototype: bool,
    pub pull: bool,
    pub lint: bool,
    pub lint_json: Option<String>,
    /// `--verify`: statically verify deadlock-freedom of the lowered
    /// communication plan instead of executing it.
    pub verify: bool,
    /// `--verify-json`: also write the verifier report as stable JSON.
    pub verify_json: Option<String>,
    /// `--verify-strict-pools`: model the eager pool as a hard
    /// capacity (no rendezvous fallback when it is dry).
    pub verify_strict_pools: bool,
    pub unsafe_collect: bool,
    pub trace: Option<String>,
    pub trace_summary: bool,
    pub faults: FaultSpec,
    pub fault_seed: Option<u64>,
    /// Batch mode: path of a jobfile to run through the gang
    /// scheduler instead of a single program.
    pub batch: Option<String>,
    /// `--sched-seed`: overrides the jobfile's `seed=` directive.
    pub sched_seed: Option<u64>,
    /// `--probation N`: crashed nodes reintegrate after `N` clean
    /// attempt completions instead of draining for the whole batch
    /// (the jobfile's `probation=` header wins over this).
    pub probation: Option<u32>,
    /// `--batch-json`: also write the batch report as stable JSON.
    pub batch_json: Option<String>,
    /// Serve mode: path of a `vpced` script (`-` = stdin) to feed the
    /// persistent job service.
    pub serve: Option<String>,
    /// `--journal`: durable journal file for `--serve` (in-memory
    /// journal when absent).
    pub journal: Option<String>,
    /// `--kill-after`: murder the daemon when the journal would grow
    /// past this byte offset (crash-recovery demo / CI harness).
    pub kill_after: Option<u64>,
    /// `--status`: after draining, also print this job's one-line
    /// status (the client `status` verb).
    pub status: Option<String>,
    /// `--recover`: arm in-run rollback recovery (buddy-replicated
    /// diskless checkpoints + spare-node failover) for a single run.
    pub recover: Option<RecoverSpec>,
    /// `--machine`: a built-in description name or a `.machine` file;
    /// replaces the hard-coded paper cluster in every mode.
    pub machine: Option<String>,
    /// The resolved description. The binary fills this via
    /// [`load_machine`] after parsing; tests may set it directly.
    pub machine_spec: Option<MachineSpec>,
    /// `--machine-dump`: print the fully-resolved machine description
    /// and exit (a standalone mode; the CI config lint).
    pub machine_dump: bool,
}

impl Default for CliArgs {
    fn default() -> Self {
        CliArgs {
            source_path: String::new(),
            nodes: 4,
            granularity: None,
            schedule: None,
            mode: ExecMode::Full,
            params: Vec::new(),
            show_report: false,
            advise: false,
            no_avpg: false,
            prototype: false,
            pull: false,
            lint: false,
            lint_json: None,
            verify: false,
            verify_json: None,
            verify_strict_pools: false,
            unsafe_collect: false,
            trace: None,
            trace_summary: false,
            faults: FaultSpec::off(),
            fault_seed: None,
            batch: None,
            sched_seed: None,
            probation: None,
            batch_json: None,
            serve: None,
            journal: None,
            kill_after: None,
            status: None,
            recover: None,
            machine: None,
            machine_spec: None,
            machine_dump: false,
        }
    }
}

/// Every way a `vpcec` invocation can end. All process exit codes
/// funnel through [`Outcome::exit_code`] — the one documented table —
/// instead of scattered numeric literals.
///
/// | code | outcomes |
/// |------|----------|
/// | 0    | `Success` |
/// | 1    | `UsageError`, `IoError`, `LintWarnings` |
/// | 2    | `LintConflicts` |
/// | 3    | `RuntimeFault` (an unsurvivable fault, or a failed batch job) |
/// | 4    | `AdmissionFailure` (a batch job refused at admission) |
/// | 5    | `JournalCorrupt` (a `vpced` journal that cannot be trusted) |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    Success,
    /// Bad flags or a malformed jobfile.
    UsageError,
    /// A file could not be read or written.
    IoError,
    /// `--lint` found warnings.
    LintWarnings,
    /// `--lint` found undefined-outcome conflicts.
    LintConflicts,
    /// The run died on an unsurvivable fault (or, in batch mode, at
    /// least one admitted job failed; in serve mode, the daemon was
    /// killed at the seeded journal offset).
    RuntimeFault,
    /// Batch admission control refused at least one job.
    AdmissionFailure,
    /// The `vpced` journal is damaged mid-log (VPCE302) or replay
    /// re-derived a different history than it records (VPCE303).
    JournalCorrupt,
}

impl Outcome {
    /// The process exit code for this outcome — the single mapping
    /// the binary and every test go through.
    pub fn exit_code(self) -> i32 {
        match self {
            Outcome::Success => 0,
            Outcome::UsageError | Outcome::IoError | Outcome::LintWarnings => 1,
            Outcome::LintConflicts => 2,
            Outcome::RuntimeFault => 3,
            Outcome::AdmissionFailure => 4,
            Outcome::JournalCorrupt => 5,
        }
    }

    /// Classify a lint exit (0 clean / 1 warnings / 2 conflicts).
    pub fn from_lint(code: i32) -> Outcome {
        match code {
            0 => Outcome::Success,
            1 => Outcome::LintWarnings,
            _ => Outcome::LintConflicts,
        }
    }

    /// Classify a typed runtime error.
    pub fn from_error(e: &VpceError) -> Outcome {
        match e.exit_code() {
            4 => Outcome::AdmissionFailure,
            _ => Outcome::RuntimeFault,
        }
    }

    /// Classify a finished batch (4 beats 3 beats 0, like
    /// `BatchReport::exit_code`).
    pub fn from_batch(report_exit: i32) -> Outcome {
        match report_exit {
            0 => Outcome::Success,
            4 => Outcome::AdmissionFailure,
            _ => Outcome::RuntimeFault,
        }
    }

    /// Classify a typed `vpced` service error. Untrustworthy-journal
    /// codes get their own exit (5); command-level refusals are usage
    /// errors; a torn tail only surfaces as an error when the seeded
    /// kill fired, which is a runtime death.
    pub fn from_serve(code: vpce_serve::ServeCode) -> Outcome {
        use vpce_serve::ServeCode as S;
        match code {
            S::JournalCorrupt | S::ReplayDivergence => Outcome::JournalCorrupt,
            S::TornTail => Outcome::RuntimeFault,
            S::UnknownJob
            | S::DuplicateSubmit
            | S::QuotaExceeded
            | S::BadCommand
            | S::NotPreemptible => Outcome::UsageError,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
vpcec — compile Fortran-77 (F77-mini) and run it on the simulated V-Bus cluster

USAGE: vpcec <file.f> [options]
  --nodes N            cluster size (default 4)
  --grain fine|middle|coarse
                       communication granularity (default: advisor's pick)
  --schedule block|cyclic
                       override the block/cyclic heuristic
  --analytic           analytic timing mode (skip numeric execution)
  --param NAME=VALUE   override a PARAMETER (repeatable)
  --report             print the compiler's analysis and plans
  --advise             print the granularity advisor's comparison
  --no-avpg            disable the AVPG communication elimination
  --prototype          use the calibrated ~6 MB/s prototype card
  --machine M          replace the hard-coded paper cluster with a
                       machine description: a built-in name (paper,
                       prototype, fast-ethernet, conventional, torus,
                       torus3d, crossbar, fattree, hypercube) or a
                       layered key=value .machine file (include= pulls
                       in a base; later settings override). Valid in
                       plain, --batch and --serve modes; jobfile
                       machine= headers and per-job machine= fields
                       (built-in names) win over it
  --machine-dump       print the fully-resolved machine description
                       (the --machine layering applied, or the paper
                       baseline) and exit — a config lint: the output
                       re-parses to the identical machine
  --pull               slaves GET their data instead of master PUTs
  --lint               statically check the communication plan for RMA
                       races and epoch-safety violations instead of
                       executing; exit 0 clean / 1 warnings / 2 conflicts
  --lint-json PATH     also write the lint diagnostics as JSON to PATH
  --verify             statically verify deadlock-freedom of the lowered
                       communication plan instead of executing: exhaustive
                       small-scope exploration of every interleaving of the
                       per-rank skeleton (fences, collectives, rendezvous
                       handshakes, pool pressure, scheduled crashes), with a
                       minimal counterexample schedule on failure; exit 0
                       verified / 1 conditional-progress warnings / 2 deadlock
  --verify-json PATH   also write the verifier report as JSON to PATH
  --verify-strict-pools
                       treat the registered eager pool as a hard capacity:
                       an eager put with no free slot blocks (VPCE204)
                       instead of falling back to rendezvous (VPCE210)
  --unsafe-collect     skip the 5.6 overlap safety check (deliberately
                       unsound; exists to exercise the linter)
  --trace PATH         record the run as Chrome trace-event JSON and
                       write it to PATH (open in ui.perfetto.dev or
                       chrome://tracing: one lane per rank, one per
                       V-Bus link)
  --trace-summary      print per-phase rollups (DMA vs PIO bytes,
                       setup time, fence waits) and the critical-path
                       breakdown of the run
  --faults SPEC        inject a deterministic fault schedule: off,
                       light, heavy or crashy, tunable with key=value
                       pairs (e.g. light,drop=0.2,retries=10,seed=7).
                       Survivable schedules self-heal (CRC/ack/
                       retransmit, V-Bus degradation to a software
                       tree) and leave results bit-identical; an
                       unsurvivable schedule exits 3 with a one-line
                       typed diagnosis
  --fault-seed N       override the fault schedule's PRNG seed
  --recover SPEC       arm in-run rollback recovery: after every
                       interval-th parallel region each rank ships its
                       fence-boundary snapshot to buddy ranks (diskless
                       checkpointing); a rank crash quiesces the
                       survivors, rolls back to the last consistent
                       snapshot, respawns the dead rank from a buddy
                       replica onto a spare node and replays
                       deterministically — the report and trace stay
                       byte-identical to the crash-free run, with the
                       recovery ledger appended. SPEC is `on` (defaults)
                       or key=value pairs: interval=1, spares=4,
                       buddies=2, rollbacks=16. An unabsorbable crash
                       schedule exits 3 with a VPCE402/403/404 diagnosis
  --batch JOBFILE      run a batch of jobs through the deterministic
                       gang scheduler instead of a single program
                       (jobfile `nodes=`/`policy=`/`seed=` directives
                       win over flags); prints per-job and aggregate
                       results. Exit 0 all jobs done / 3 an admitted
                       job failed / 4 a job was refused at admission.
                       `-` reads the jobfile from stdin
  --sched-seed N       override the jobfile's batch seed (storm
                       arrivals and per-job fault schedules)
  --probation N        reintegrate crashed nodes after N clean attempt
                       completions instead of draining them for the
                       whole batch (jobfile `probation=` header wins)
  --batch-json PATH    also write the batch report as stable JSON
  --serve SCRIPT       run the jobfile-plus-verbs script through
                       `vpced`, the persistent job service: every
                       submission and scheduling decision is journaled
                       (crash-safe, CRC'd), low-priority jobs are
                       preempted by checkpoint/restart at fence
                       boundaries, and tenants share the machine by
                       fair share. `-` reads the script from stdin.
                       Killing the daemon anywhere and restarting it on
                       the same journal replays to a byte-identical
                       report. Exits like --batch, plus 5 when the
                       journal cannot be trusted (VPCE302/VPCE303)
  --journal PATH       durable journal file for --serve; restarting on
                       an existing journal recovers the acknowledged
                       state (omitted: in-memory journal)
  --kill-after N       kill the daemon when the journal would grow past
                       byte N (crash drill; exit 3, then restart with
                       the same --journal to recover)
  --status NAME        after draining, also print NAME's one-line
                       status (the client `status` verb)

EXIT CODES: 0 ok | 1 usage, I/O or lint warnings | 2 lint conflicts |
            3 unsurvivable fault / failed batch job / killed daemon |
            4 admission refused | 5 untrusted journal
";

/// Parse an argument vector (excluding argv[0]).
pub fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    let mut out = CliArgs::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => {
                out.nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--nodes needs a number")?;
            }
            "--grain" => {
                out.granularity = Some(match it.next().map(String::as_str) {
                    Some("fine") => Granularity::Fine,
                    Some("middle") => Granularity::Middle,
                    Some("coarse") => Granularity::Coarse,
                    other => return Err(format!("bad --grain {other:?}")),
                });
            }
            "--schedule" => {
                out.schedule = Some(match it.next().map(String::as_str) {
                    Some("block") => Schedule::Block,
                    Some("cyclic") => Schedule::Cyclic,
                    other => return Err(format!("bad --schedule {other:?}")),
                });
            }
            "--analytic" => out.mode = ExecMode::Analytic,
            "--param" => {
                let kv = it.next().ok_or("--param needs NAME=VALUE")?;
                let (k, v) = kv.split_once('=').ok_or("--param needs NAME=VALUE")?;
                let v: i64 = v.parse().map_err(|_| format!("bad value in {kv}"))?;
                out.params.push((k.to_ascii_uppercase(), v));
            }
            "--report" => out.show_report = true,
            "--advise" => out.advise = true,
            "--no-avpg" => out.no_avpg = true,
            "--prototype" => out.prototype = true,
            "--pull" => out.pull = true,
            "--lint" => out.lint = true,
            "--lint-json" => {
                out.lint_json = Some(it.next().ok_or("--lint-json needs a path")?.clone());
            }
            "--verify" => out.verify = true,
            "--verify-json" => {
                out.verify_json = Some(it.next().ok_or("--verify-json needs a path")?.clone());
            }
            "--verify-strict-pools" => out.verify_strict_pools = true,
            "--unsafe-collect" => out.unsafe_collect = true,
            "--trace" => {
                out.trace = Some(it.next().ok_or("--trace needs a path")?.clone());
            }
            "--trace-summary" => out.trace_summary = true,
            "--faults" => {
                let spec = it.next().ok_or("--faults needs a schedule spec")?;
                out.faults = FaultSpec::parse(spec).map_err(|e| e.to_string())?;
            }
            "--fault-seed" => {
                out.fault_seed = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--fault-seed needs a number")?,
                );
            }
            "--recover" => {
                let spec = it.next().ok_or("--recover needs a spec (try: on)")?;
                out.recover = Some(RecoverSpec::parse(spec)?);
            }
            "--batch" => {
                out.batch = Some(it.next().ok_or("--batch needs a jobfile path")?.clone());
            }
            "--sched-seed" => {
                out.sched_seed = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--sched-seed needs a number")?,
                );
            }
            "--probation" => {
                let n: u32 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--probation needs a number of clean intervals")?;
                if n == 0 {
                    return Err("--probation needs at least one clean interval".into());
                }
                out.probation = Some(n);
            }
            "--batch-json" => {
                out.batch_json = Some(it.next().ok_or("--batch-json needs a path")?.clone());
            }
            "--serve" => {
                out.serve = Some(it.next().ok_or("--serve needs a script path")?.clone());
            }
            "--journal" => {
                out.journal = Some(it.next().ok_or("--journal needs a path")?.clone());
            }
            "--kill-after" => {
                out.kill_after = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--kill-after needs a byte offset")?,
                );
            }
            "--status" => {
                out.status = Some(it.next().ok_or("--status needs a job name")?.clone());
            }
            "--machine" => {
                out.machine =
                    Some(it.next().ok_or("--machine needs a name or .machine file")?.clone());
            }
            "--machine-dump" => out.machine_dump = true,
            // `-` alone is stdin for --batch/--serve, never a source
            // file — so it falls through to the unknown-argument error
            // here.
            other if other != "-" && !other.starts_with('-') && out.source_path.is_empty() => {
                out.source_path = other.to_string();
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let modes = usize::from(out.batch.is_some())
        + usize::from(out.serve.is_some())
        + usize::from(out.machine_dump);
    match (modes, out.source_path.is_empty()) {
        (0, true) => return Err("no source file given".into()),
        (0, false) => {}
        (1, true) => {}
        _ => {
            return Err(
                "give exactly one of a source file, --batch JOBFILE, --serve SCRIPT or --machine-dump"
                    .into(),
            )
        }
    }
    if out.machine.is_some() && out.prototype {
        return Err("--machine and --prototype both pick the cluster model; give one".into());
    }
    if out.serve.is_none()
        && (out.journal.is_some() || out.kill_after.is_some() || out.status.is_some())
    {
        return Err("--journal/--kill-after/--status need --serve".into());
    }
    if out.recover.is_some() && (out.batch.is_some() || out.serve.is_some()) {
        return Err("--recover applies to a single run; use `recover=` in the jobfile".into());
    }
    if out.probation.is_some() && out.batch.is_none() {
        return Err("--probation needs --batch".into());
    }
    if let Some(seed) = out.fault_seed {
        out.faults.seed = seed;
    }
    Ok(out)
}

/// What one driver invocation produced: the report text, the process
/// exit code (`--lint` mode: 1 = warnings, 2 = conflicts; a fault the
/// stack could not survive: 3), and the JSON lint payload when
/// `--lint-json` was requested (the binary writes it; this function
/// stays I/O-free).
#[derive(Debug, Clone)]
pub struct RunOutput {
    pub text: String,
    pub exit: i32,
    /// What kind of ending this was; `exit` is always
    /// `outcome.exit_code()`.
    pub outcome: Outcome,
    pub lint_json: Option<String>,
    /// Stable-JSON verifier report when `--verify-json` was requested
    /// in `--verify` mode (the binary writes it).
    pub verify_json: Option<String>,
    /// Chrome trace-event JSON of the run when `--trace` was given
    /// (the binary writes it to the requested path).
    pub trace_json: Option<String>,
    /// Stable-JSON batch report in `--batch` mode (the binary writes
    /// it when `--batch-json` was requested).
    pub batch_json: Option<String>,
}

/// Resolve a `--machine` operand: a built-in description name, else a
/// `.machine` file the loader reads (the loader also serves `include=`
/// names inside the file, so tests can inject closures and the binary
/// resolves relative to the file's directory).
pub fn load_machine(operand: &str, loader: &SourceLoader) -> Result<MachineSpec, String> {
    if let Some(spec) = MachineSpec::builtin(operand) {
        return Ok(spec);
    }
    let text = loader(operand).map_err(|e| format!("--machine {operand}: {e}"))?;
    let mut include = |name: &str| loader(name);
    vpce_machine::parse::parse_layered(&text, &mut include)
        .map_err(|e| format!("--machine {operand}: {e}"))
}

/// `--machine-dump` mode: print the fully-resolved machine description
/// (the `--machine` layering applied, or the hard-coded paper
/// baseline). The output is itself a valid `.machine` file that parses
/// back to the identical spec — the round trip CI lints against.
pub fn run_machine_dump(args: &CliArgs) -> RunOutput {
    let spec = args.machine_spec.clone().unwrap_or_default();
    RunOutput {
        text: spec.dump(),
        exit: Outcome::Success.exit_code(),
        outcome: Outcome::Success,
        lint_json: None,
        verify_json: None,
        trace_json: None,
        batch_json: None,
    }
}

/// Execute the request against already-loaded source text. Returns the
/// full report the binary prints.
pub fn run(source: &str, args: &CliArgs) -> Result<RunOutput, FrontError> {
    let cluster = match &args.machine_spec {
        Some(m) => match m.lower(args.nodes) {
            Ok(c) => c,
            Err(e) => {
                // A shape the description cannot host at this node
                // count (e.g. a 6-node hypercube) is a usage error,
                // not a compile error.
                let outcome = Outcome::UsageError;
                return Ok(RunOutput {
                    text: format!("error: machine `{}`: {e}\n", m.name),
                    exit: outcome.exit_code(),
                    outcome,
                    lint_json: None,
                    verify_json: None,
                    trace_json: None,
                    batch_json: None,
                });
            }
        },
        None if args.prototype => ClusterConfig::prototype_n(args.nodes),
        None => ClusterConfig::paper_n(args.nodes),
    };
    let params: Vec<(&str, i64)> = args.params.iter().map(|(k, v)| (k.as_str(), *v)).collect();

    let mut out = String::new();

    // Granularity: explicit, or the simulation-backed advisor.
    let granularity = match args.granularity {
        Some(g) => g,
        None => {
            let base = base_opts(args);
            let (winner, measured) =
                crate::advise_granularity(source, &params, &cluster, &base)?;
            if args.advise {
                let _ = writeln!(out, "granularity advisor:");
                for (g, t) in &measured {
                    let _ = writeln!(out, "  {:>6}: {:.3} ms comm", g.name(), t * 1e3);
                }
                let _ = writeln!(out, "  picked: {}", winner.name());
            }
            winner
        }
    };

    let mut opts = base_opts(args).granularity(granularity);
    if let Some(s) = args.schedule {
        opts = opts.schedule(s);
    }

    let analyzed = polaris_fe::compile(source, &params)?;
    if args.show_report {
        out.push_str(&crate::report::describe_frontend(&analyzed));
    }
    let compiled = polaris_be::compile_backend(&analyzed, &opts);
    if args.show_report {
        out.push_str(&crate::report::describe_backend(&compiled));
    }

    // Lint mode: statically check the plan instead of executing it.
    if args.lint {
        let lint_opts = rmacheck::LintOptions {
            outputs_live: opts.outputs_live,
        };
        let lint = rmacheck::lint(&compiled.program, &compiled.report, &lint_opts);
        out.push_str(&lint.render_human());
        let outcome = Outcome::from_lint(lint.exit_code());
        return Ok(RunOutput {
            text: out,
            exit: outcome.exit_code(),
            outcome,
            lint_json: args.lint_json.is_some().then(|| lint.to_json()),
            verify_json: None,
            trace_json: None,
            batch_json: None,
        });
    }

    // Verify mode: exhaustively explore the lowered communication
    // skeleton for deadlocks instead of executing it. Shares the lint
    // exit convention (0 verified / 1 warnings / 2 errors).
    if args.verify {
        let policy = mpi2::TransportPolicy::from_config(&cluster);
        let opts = commcheck::VerifyOptions {
            strict_pools: args.verify_strict_pools,
            ..commcheck::VerifyOptions::default()
        };
        let rep = commcheck::verify(&compiled.program, &policy, &args.faults, &opts);
        out.push_str(&rep.render_human());
        let outcome = Outcome::from_lint(rep.exit_code());
        return Ok(RunOutput {
            text: out,
            exit: outcome.exit_code(),
            outcome,
            lint_json: None,
            verify_json: args.verify_json.is_some().then(|| rep.to_json()),
            trace_json: None,
            batch_json: None,
        });
    }

    // A live tracer only when somebody asked for its output; the
    // disabled tracer keeps the run on the exact untraced code path.
    let tracing = args.trace.is_some() || args.trace_summary;
    let tracer = if tracing {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    // `--recover` swaps in the rollback-recovery driver: the same
    // execution (report and trace byte-identical to the crash-free
    // run) plus a side ledger of checkpoints/rollbacks/respawns.
    let executed = match &args.recover {
        Some(spec) => vpce_recover::run_recovering(
            &compiled.program,
            &cluster,
            args.mode,
            tracer.clone(),
            args.faults.clone(),
            spec,
        )
        .map(|(rep, ledger)| (rep, Some(ledger))),
        None => spmd_rt::try_execute_traced(
            &compiled.program,
            &cluster,
            args.mode,
            tracer.clone(),
            args.faults.clone(),
        )
        .map(|rep| (rep, None)),
    };
    let (parallel, recovery) = match executed {
        Ok(pair) => pair,
        Err(e) => {
            // Unsurvivable fault (or a program/cluster mismatch): a
            // one-line typed diagnosis and a distinct exit code, never
            // a panic.
            let _ = writeln!(out, "error: {e}");
            let outcome = Outcome::from_error(&e);
            return Ok(RunOutput {
                text: out,
                exit: outcome.exit_code(),
                outcome,
                lint_json: None,
                verify_json: None,
                trace_json: None,
                batch_json: None,
            });
        }
    };
    let sequential =
        spmd_rt::execute_sequential(&compiled.program, &cluster.node.cpu, args.mode);

    let _ = writeln!(
        out,
        "{}: {} ranks, {} granularity",
        compiled.program.name,
        args.nodes,
        granularity.name()
    );
    let _ = writeln!(
        out,
        "  sequential {:>12.6}s | parallel {:>12.6}s | speedup {:.3}x",
        sequential.elapsed,
        parallel.elapsed,
        sequential.elapsed / parallel.elapsed
    );
    let _ = writeln!(
        out,
        "  communication {:.6}s | {} wire messages | {} wire bytes",
        parallel.comm_time, parallel.net.p2p_messages, parallel.net.p2p_bytes
    );
    out.push_str(&crate::report::describe_comm(&parallel.rank_stats));
    out.push_str(&crate::report::describe_transport(
        &mpi2::TransportPolicy::from_config(&cluster),
        &parallel.rank_stats,
    ));
    if args.mode == ExecMode::Full {
        let identical = parallel.arrays == sequential.arrays;
        let _ = writeln!(
            out,
            "  results identical to sequential execution: {identical}"
        );
    }
    // The fault ledger prints only when a schedule is active, so a
    // fault-free invocation's report is byte-identical to the
    // pre-fault-plane output.
    if !args.faults.is_off() {
        out.push_str(&crate::report::describe_faults(&args.faults, &parallel));
    }
    // The recovery ledger prints only when --recover armed it, so an
    // unarmed invocation's report is byte-identical to the pre-recovery
    // output.
    if let (Some(spec), Some(ledger)) = (&args.recover, &recovery) {
        out.push_str(&crate::report::describe_recovery(spec, ledger));
    }
    if args.trace_summary {
        if let Some(rep) = &parallel.trace {
            out.push_str(&rep.render());
        }
    }
    Ok(RunOutput {
        text: out,
        exit: 0,
        outcome: Outcome::Success,
        lint_json: None,
        verify_json: None,
        trace_json: tracing.then(|| tracer.to_chrome_json()),
        batch_json: None,
    })
}

/// Batch mode: parse the jobfile text and play it through the gang
/// scheduler. `Err` is usage-level (malformed jobfile, empty batch);
/// per-job failures land in the report and drive the outcome instead.
/// The loader resolves `src=` paths (the binary resolves relative to
/// the jobfile's directory; tests inject closures).
pub fn run_batch(
    jobfile: &str,
    args: &CliArgs,
    loader: &SourceLoader,
) -> Result<RunOutput, String> {
    let spec = match args.batch.as_deref() {
        // `-` is stdin; a typed jobfile error names the real file.
        Some(path) if path != "-" => {
            BatchSpec::parse_named(jobfile, path).map_err(|e| e.to_string())?
        }
        _ => BatchSpec::parse(jobfile).map_err(|e| e.to_string())?,
    };
    let opts = BatchOptions {
        nodes: args.nodes,
        seed: args.sched_seed,
        mode: args.mode,
        probation: args.probation,
        machine: args.machine_spec.clone(),
        ..BatchOptions::default()
    };
    let report = vpce_sched::run_batch(&spec, &opts, loader)?;
    let outcome = Outcome::from_batch(report.exit_code());
    Ok(RunOutput {
        text: report.render_human(),
        exit: outcome.exit_code(),
        outcome,
        lint_json: None,
        verify_json: None,
        trace_json: args.trace.is_some().then(|| report.trace_json.clone()),
        batch_json: Some(report.to_json()),
    })
}

/// Serve mode: feed the script to `vpced` over `storage` and drain
/// the machine. One call is one daemon incarnation: opening the
/// journal recovers whatever previous incarnations acknowledged, the
/// script lines beyond the durable prefix are submitted, and the
/// drained report prints exactly like batch mode. Errors land in the
/// outcome (never `Err`): a seeded kill is a runtime death (exit 3,
/// restart with the same journal to recover), an untrusted journal is
/// exit 5, a refused command is a usage error.
pub fn run_serve(
    script_text: &str,
    args: &CliArgs,
    storage: &mut dyn vpce_serve::Storage,
) -> RunOutput {
    use vpce_serve::{Daemon, KillStorage, Runner, KILLED};

    let runner = Runner::new(args.mode).with_machine(args.machine_spec.clone());
    let script = vpce_serve::script_lines(script_text);
    let mut out = String::new();
    let body = || -> Result<(String, String, String, i32), vpce_serve::ServeError> {
        let mut storage = KillStorage::new(storage, args.kill_after)?;
        let (mut daemon, recovery) = Daemon::open(&mut storage, &runner)?;
        if recovery.torn_bytes > 0 {
            let _ = writeln!(
                out,
                "warning[VPCE301] discarded {} torn tail bytes (crash mid-append)",
                recovery.torn_bytes
            );
        }
        if recovery.inputs > 0 || recovery.prior_recoveries > 0 {
            let _ = writeln!(
                out,
                "vpced: recovered {} inputs, {} derived ops from the journal (recovery #{})",
                recovery.inputs,
                recovery.derived,
                recovery.prior_recoveries + 1
            );
        }
        let durable = daemon.inputs().len();
        for line in script.iter().skip(durable) {
            daemon.submit(line)?;
        }
        daemon.drain()?;
        if let Some(name) = &args.status {
            let _ = writeln!(out, "{}", daemon.status(name)?);
        }
        Ok((
            daemon.report().render_human(),
            daemon.report_json().to_string(),
            daemon.report().trace_json.clone(),
            daemon.report().exit_code(),
        ))
    };
    match body() {
        Ok((human, json, trace, report_exit)) => {
            out.push_str(&human);
            let outcome = Outcome::from_batch(report_exit);
            RunOutput {
                text: out,
                exit: outcome.exit_code(),
                outcome,
                lint_json: None,
                verify_json: None,
                trace_json: args.trace.is_some().then_some(trace),
                batch_json: Some(json),
            }
        }
        Err(e) => {
            let outcome = if e.detail == KILLED {
                let _ = writeln!(
                    out,
                    "vpced: {KILLED} (restart with the same --journal to recover)"
                );
                Outcome::RuntimeFault
            } else {
                let _ = writeln!(out, "{e}");
                Outcome::from_serve(e.code)
            };
            RunOutput {
                text: out,
                exit: outcome.exit_code(),
                outcome,
                lint_json: None,
                verify_json: None,
                trace_json: None,
                batch_json: None,
            }
        }
    }
}

fn base_opts(args: &CliArgs) -> BackendOptions {
    let mut o = BackendOptions::new(args.nodes)
        .avpg(!args.no_avpg)
        .pull(args.pull)
        .unsafe_collect(args.unsafe_collect);
    if let Some(s) = args.schedule {
        o = o.schedule(s);
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    const SRC: &str = "PROGRAM T\nPARAMETER (N = 32)\nREAL A(N)\nINTEGER I\nDO I = 1, N\nA(I) = REAL(I)\nENDDO\nEND\n";

    #[test]
    fn parses_all_flags() {
        let a = parse_args(&argv(
            "prog.f --nodes 8 --grain coarse --schedule cyclic --analytic \
             --param N=128 --report --advise --no-avpg --prototype --pull \
             --lint --lint-json out.json --unsafe-collect \
             --trace t.json --trace-summary",
        ))
        .unwrap();
        assert_eq!(a.source_path, "prog.f");
        assert_eq!(a.nodes, 8);
        assert_eq!(a.granularity, Some(Granularity::Coarse));
        assert_eq!(a.schedule, Some(Schedule::Cyclic));
        assert_eq!(a.mode, ExecMode::Analytic);
        assert_eq!(a.params, vec![("N".to_string(), 128)]);
        assert!(a.show_report && a.advise && a.no_avpg && a.prototype && a.pull);
        assert!(a.lint && a.unsafe_collect);
        assert_eq!(a.lint_json.as_deref(), Some("out.json"));
        assert_eq!(a.trace.as_deref(), Some("t.json"));
        assert!(a.trace_summary);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_args(&argv("prog.f --grain huge")).is_err());
        assert!(parse_args(&argv("prog.f --bogus")).is_err());
        assert!(parse_args(&argv("")).is_err());
        assert!(parse_args(&argv("prog.f --param N")).is_err());
        assert!(parse_args(&argv("prog.f --lint-json")).is_err());
    }

    #[test]
    fn lint_flags_default_off() {
        let a = parse_args(&argv("prog.f")).unwrap();
        assert!(!a.lint && !a.unsafe_collect);
        assert!(a.lint_json.is_none());
    }

    #[test]
    fn parses_verify_flags() {
        let a = parse_args(&argv(
            "prog.f --verify --verify-json v.json --verify-strict-pools",
        ))
        .unwrap();
        assert!(a.verify && a.verify_strict_pools);
        assert_eq!(a.verify_json.as_deref(), Some("v.json"));
        let off = parse_args(&argv("prog.f")).unwrap();
        assert!(!off.verify && !off.verify_strict_pools);
        assert!(off.verify_json.is_none());
        assert!(parse_args(&argv("prog.f --verify-json")).is_err());
    }

    #[test]
    fn verify_mode_on_clean_source_exits_zero() {
        let args = parse_args(&argv("x.f --verify --grain fine --verify-json v.json")).unwrap();
        let out = run(SRC, &args).unwrap();
        assert_eq!(out.exit, 0, "{}", out.text);
        assert!(
            out.text.contains("clean (no stalling interleaving)"),
            "{}",
            out.text
        );
        let json = out.verify_json.expect("--verify-json requested");
        assert!(json.contains("\"exit\": 0"), "{json}");
        assert!(json.contains("\"explored\""), "{json}");
        // Verify mode does not execute the program.
        assert!(!out.text.contains("speedup"));
    }

    #[test]
    fn verify_mode_predicts_the_scheduled_crash_stall() {
        // A certain crash schedule kills every rank in region 0 — and
        // with everyone dead, nobody hangs: the skeleton is vacuously
        // deadlock-free. A *partial* schedule (only some ranks draw
        // the crash under this seed) orphans the survivors at the
        // entry barrier: VPCE205, exit 2.
        let all = parse_args(&argv("x.f --verify --grain fine --faults crash=1.0")).unwrap();
        let out = run(SRC, &all).unwrap();
        assert_eq!(out.exit, 0, "{}", out.text);

        let some =
            parse_args(&argv("x.f --verify --grain fine --faults crash=0.5,seed=1")).unwrap();
        let out = run(SRC, &some).unwrap();
        assert_eq!(out.exit, 2, "{}", out.text);
        assert!(out.text.contains("VPCE201"), "{}", out.text);
        assert!(out.text.contains("VPCE205"), "{}", out.text);
    }

    #[test]
    fn runs_and_reports_identical_results() {
        let args = parse_args(&argv("x.f --nodes 4")).unwrap();
        let out = run(SRC, &args).unwrap();
        assert!(out.text.contains("speedup"), "{}", out.text);
        assert!(out
            .text
            .contains("results identical to sequential execution: true"));
        assert_eq!(out.exit, 0);
        assert!(out.lint_json.is_none());
    }

    #[test]
    fn advisor_path_prints_comparison() {
        let mut args = parse_args(&argv("x.f --advise")).unwrap();
        args.params.push(("N".into(), 64));
        let out = run(SRC, &args).unwrap();
        assert!(out.text.contains("granularity advisor:"), "{}", out.text);
        assert!(out.text.contains("picked:"), "{}", out.text);
    }

    #[test]
    fn report_path_prints_compiler_listing() {
        let args = parse_args(&argv("x.f --report --grain fine")).unwrap();
        let out = run(SRC, &args).unwrap();
        assert!(out.text.contains("PARALLEL DO"), "{}", out.text);
        assert!(out.text.contains("AVPG"), "{}", out.text);
    }

    #[test]
    fn lint_mode_on_clean_source_exits_zero() {
        let args = parse_args(&argv("x.f --lint --grain fine --lint-json o.json")).unwrap();
        let out = run(SRC, &args).unwrap();
        assert_eq!(out.exit, 0, "{}", out.text);
        assert!(out.text.contains("clean"), "{}", out.text);
        let json = out.lint_json.expect("--lint-json requested");
        assert!(json.contains("\"exit\": 0"), "{json}");
        // Lint mode does not execute the program.
        assert!(!out.text.contains("speedup"));
    }

    #[test]
    fn lint_mode_flags_unsafe_collect_races() {
        // Cyclic schedule + coarse grain interleaves every rank's
        // writes, so the bounding collect regions all overlap; with
        // the 5.6 safety check disabled the plan races and the lint
        // must refuse it with the stable PUT/PUT code.
        let args = parse_args(&argv(
            "x.f --lint --grain coarse --schedule cyclic --unsafe-collect",
        ))
        .unwrap();
        let out = run(SRC, &args).unwrap();
        assert_eq!(out.exit, 2, "{}", out.text);
        assert!(out.text.contains("VPCE001"), "{}", out.text);
        // The same plan with the safety check active is conflict-free
        // (collection falls back to fine grain).
        let safe = parse_args(&argv("x.f --lint --grain coarse --schedule cyclic")).unwrap();
        let out = run(SRC, &safe).unwrap();
        assert_eq!(out.exit, 0, "{}", out.text);
    }

    #[test]
    fn untraced_run_has_no_trace_json() {
        let args = parse_args(&argv("x.f --grain fine")).unwrap();
        let out = run(SRC, &args).unwrap();
        assert!(out.trace_json.is_none());
        // The DMA/PIO ledger always prints.
        assert!(out.text.contains("data paths:"), "{}", out.text);
        assert!(out.text.contains("comm ledger:"), "{}", out.text);
    }

    #[test]
    fn trace_summary_prints_phase_table_and_critical_path() {
        let args = parse_args(&argv("x.f --grain fine --trace-summary")).unwrap();
        let out = run(SRC, &args).unwrap();
        assert!(out.text.contains("trace summary"), "{}", out.text);
        assert!(out.text.contains("critical path:"), "{}", out.text);
        // --trace-summary alone also makes the JSON available.
        let json = out.trace_json.expect("tracing was on");
        assert!(json.contains("\"traceEvents\""));
    }

    #[test]
    fn tracing_does_not_change_the_report_numbers() {
        let plain = run(SRC, &parse_args(&argv("x.f --grain fine")).unwrap()).unwrap();
        let traced =
            run(SRC, &parse_args(&argv("x.f --grain fine --trace t.json")).unwrap()).unwrap();
        // Identical up to the extra trailing sections.
        assert!(
            traced.text.starts_with(&plain.text),
            "plain:\n{}\ntraced:\n{}",
            plain.text,
            traced.text
        );
        assert!(traced.trace_json.is_some());
    }

    #[test]
    fn parses_fault_flags() {
        let a = parse_args(&argv("prog.f --faults light,drop=0.2 --fault-seed 9")).unwrap();
        assert!(!a.faults.is_off());
        assert_eq!(a.faults.link_drop, 0.2);
        assert_eq!(a.faults.seed, 9, "--fault-seed overrides the spec seed");
        assert!(parse_args(&argv("prog.f --faults drop=2.0")).is_err());
        assert!(parse_args(&argv("prog.f --fault-seed x")).is_err());
        assert!(parse_args(&argv("prog.f --faults")).is_err());
    }

    #[test]
    fn faulty_run_self_heals_and_reports_the_ledger() {
        let args = parse_args(&argv("x.f --grain fine --faults heavy,seed=3")).unwrap();
        let out = run(SRC, &args).unwrap();
        assert_eq!(out.exit, 0, "{}", out.text);
        assert!(
            out.text
                .contains("results identical to sequential execution: true"),
            "{}",
            out.text
        );
        assert!(out.text.contains("fault schedule: seed 3"), "{}", out.text);
        assert!(out.text.contains("self-healing:"), "{}", out.text);
    }

    #[test]
    fn off_schedule_output_is_byte_identical_to_no_flag() {
        let plain = run(SRC, &parse_args(&argv("x.f --grain fine")).unwrap()).unwrap();
        let off =
            run(SRC, &parse_args(&argv("x.f --grain fine --faults off")).unwrap()).unwrap();
        assert_eq!(plain.text, off.text);
        assert_eq!(plain.exit, off.exit);
        assert!(!plain.text.contains("fault schedule"));
    }

    #[test]
    fn unsurvivable_fault_exits_3_with_one_line_diagnosis() {
        let args =
            parse_args(&argv("x.f --grain fine --faults drop=1.0,retries=2")).unwrap();
        let out = run(SRC, &args).unwrap();
        assert_eq!(out.exit, 3, "{}", out.text);
        assert!(out.text.contains("error: link failure"), "{}", out.text);
        assert!(!out.text.contains("speedup"), "{}", out.text);
    }

    #[test]
    fn parses_recover_flags() {
        let a = parse_args(&argv("prog.f --recover on")).unwrap();
        assert_eq!(a.recover, Some(RecoverSpec::default()));
        let a = parse_args(&argv("prog.f --recover interval=2,spares=1")).unwrap();
        let spec = a.recover.unwrap();
        assert_eq!(spec.interval, 2);
        assert_eq!(spec.spares, 1);
        assert!(parse_args(&argv("prog.f")).unwrap().recover.is_none());
        assert!(parse_args(&argv("prog.f --recover")).is_err());
        assert!(parse_args(&argv("prog.f --recover nope=1")).is_err());
        // Recovery is a single-run feature; batch/serve spell it
        // `recover=` in the jobfile.
        assert!(parse_args(&argv("--batch j.txt --recover on")).is_err());
        assert!(parse_args(&argv("--serve s.txt --recover on")).is_err());
    }

    #[test]
    fn recovered_crash_exits_zero_and_appends_the_ledger() {
        let clean = run(SRC, &parse_args(&argv("x.f --grain fine")).unwrap()).unwrap();
        // A crash schedule that kills the plain run but is absorbable.
        let mut hit = None;
        for seed in 0..64u64 {
            let plain = parse_args(&argv(&format!(
                "x.f --grain fine --faults crash=0.5,seed={seed}"
            )))
            .unwrap();
            if run(SRC, &plain).unwrap().exit != 3 {
                continue;
            }
            let armed = parse_args(&argv(&format!(
                "x.f --grain fine --faults crash=0.5,seed={seed} --recover on"
            )))
            .unwrap();
            let out = run(SRC, &armed).unwrap();
            if out.exit == 0 {
                hit = Some(out);
                break;
            }
        }
        let out = hit.expect("no absorbable crashing seed in the scan");
        // The crash-free report is a byte prefix: recovery only appends.
        assert!(
            out.text.starts_with(&clean.text),
            "clean:\n{}\nrecovered:\n{}",
            clean.text,
            out.text
        );
        assert!(out.text.contains("absorbed [VPCE401]:"), "{}", out.text);
        assert!(out.text.contains("recovery time:"), "{}", out.text);
    }

    #[test]
    fn recover_without_crashes_reports_checkpoint_overhead_only() {
        let clean = run(SRC, &parse_args(&argv("x.f --grain fine")).unwrap()).unwrap();
        let armed =
            run(SRC, &parse_args(&argv("x.f --grain fine --recover on")).unwrap()).unwrap();
        assert_eq!(armed.exit, 0, "{}", armed.text);
        assert!(armed.text.starts_with(&clean.text));
        assert!(armed.text.contains("absorbed: no crashes"), "{}", armed.text);
        assert!(!armed.text.contains("VPCE401"), "{}", armed.text);
    }

    #[test]
    fn unabsorbable_crash_schedule_exits_3_with_a_vpce40x_code() {
        // rollbacks=0: the first predicted crash group busts the
        // budget before execution — a one-line VPCE402, never a panic.
        let seed = (0..64u64)
            .find(|s| {
                let plain = parse_args(&argv(&format!(
                    "x.f --grain fine --faults crash=0.5,seed={s}"
                )))
                .unwrap();
                run(SRC, &plain).unwrap().exit == 3
            })
            .expect("no crashing seed in the scan");
        let args = parse_args(&argv(&format!(
            "x.f --grain fine --faults crash=0.5,seed={seed} --recover rollbacks=0"
        )))
        .unwrap();
        let out = run(SRC, &args).unwrap();
        assert_eq!(out.exit, 3, "{}", out.text);
        assert!(out.text.contains("VPCE402"), "{}", out.text);
        assert!(!out.text.contains("speedup"), "{}", out.text);
    }

    #[test]
    fn exit_code_table_is_the_single_mapping() {
        // The documented table: every outcome, its one code.
        for (outcome, code) in [
            (Outcome::Success, 0),
            (Outcome::UsageError, 1),
            (Outcome::IoError, 1),
            (Outcome::LintWarnings, 1),
            (Outcome::LintConflicts, 2),
            (Outcome::RuntimeFault, 3),
            (Outcome::AdmissionFailure, 4),
            (Outcome::JournalCorrupt, 5),
        ] {
            assert_eq!(outcome.exit_code(), code, "{outcome:?}");
        }
        assert_eq!(Outcome::from_lint(0), Outcome::Success);
        assert_eq!(Outcome::from_lint(1), Outcome::LintWarnings);
        assert_eq!(Outcome::from_lint(2), Outcome::LintConflicts);
        let crash = VpceError::RankCrash { rank: 0, region: "r".into() };
        assert_eq!(Outcome::from_error(&crash), Outcome::RuntimeFault);
        let rej = VpceError::AdmissionRejected { job: "j".into(), reason: "r".into() };
        assert_eq!(Outcome::from_error(&rej), Outcome::AdmissionFailure);
        assert_eq!(Outcome::from_batch(0), Outcome::Success);
        assert_eq!(Outcome::from_batch(3), Outcome::RuntimeFault);
        assert_eq!(Outcome::from_batch(4), Outcome::AdmissionFailure);
        // Serve-mode classification: every VPCE30x code, its outcome
        // and (transitively) its exit — the round trip the daemon's
        // typed errors take through the CLI.
        use vpce_serve::ServeCode as S;
        for (code, outcome, exit) in [
            (S::TornTail, Outcome::RuntimeFault, 3),
            (S::JournalCorrupt, Outcome::JournalCorrupt, 5),
            (S::ReplayDivergence, Outcome::JournalCorrupt, 5),
            (S::UnknownJob, Outcome::UsageError, 1),
            (S::DuplicateSubmit, Outcome::UsageError, 1),
            (S::QuotaExceeded, Outcome::UsageError, 1),
            (S::BadCommand, Outcome::UsageError, 1),
            (S::NotPreemptible, Outcome::UsageError, 1),
        ] {
            assert_eq!(Outcome::from_serve(code), outcome, "{code:?}");
            assert_eq!(Outcome::from_serve(code).exit_code(), exit, "{code:?}");
        }
    }

    #[test]
    fn parses_batch_flags() {
        let a = parse_args(&argv("--batch jobs.txt --sched-seed 5 --batch-json b.json")).unwrap();
        assert_eq!(a.batch.as_deref(), Some("jobs.txt"));
        assert_eq!(a.sched_seed, Some(5));
        assert_eq!(a.batch_json.as_deref(), Some("b.json"));
        assert!(a.source_path.is_empty());
        // A source file and --batch are mutually exclusive; plain
        // parses still demand a source file.
        assert!(parse_args(&argv("x.f --batch jobs.txt")).is_err());
        assert!(parse_args(&argv("--sched-seed 5")).is_err());
        assert!(parse_args(&argv("--batch")).is_err());
        // Probation is a batch-scheduler knob: it needs --batch, a
        // positive interval count, and a number at all.
        let p = parse_args(&argv("--batch jobs.txt --probation 2")).unwrap();
        assert_eq!(p.probation, Some(2));
        assert!(parse_args(&argv("x.f --probation 2")).is_err());
        assert!(parse_args(&argv("--batch jobs.txt --probation 0")).is_err());
        assert!(parse_args(&argv("--batch jobs.txt --probation soon")).is_err());
    }

    #[test]
    fn batch_mode_runs_a_jobfile_end_to_end() {
        let jobfile = "nodes=4\nseed=1\n\
                       job name=a workload=mm ranks=2 param:N=8\n\
                       job name=b workload=mm ranks=2 param:N=8\n";
        let args = parse_args(&argv("--batch j.txt")).unwrap();
        let loader = |p: &str| Err::<String, _>(format!("unexpected load of `{p}`"));
        let out = run_batch(jobfile, &args, &loader).unwrap();
        assert_eq!(out.outcome, Outcome::Success, "{}", out.text);
        assert!(out.text.contains("2 submitted | 2 done"), "{}", out.text);
        let json = out.batch_json.expect("batch always renders JSON");
        assert!(json.contains("\"policy\": \"backfill\""), "{json}");
        assert!(out.trace_json.is_none(), "no --trace, no timeline file");
        // Byte-determinism straight through the CLI layer.
        let again = run_batch(jobfile, &args, &loader).unwrap();
        assert_eq!(out.text, again.text);
        assert_eq!(json, again.batch_json.unwrap());
        // A malformed jobfile is a usage error, not a report.
        assert!(run_batch("job huh", &args, &loader).is_err());
    }

    #[test]
    fn sched_seed_flag_overrides_the_jobfile() {
        let jobfile = "nodes=4\nseed=7\n\
                       storm count=2 prefix=s workload=mm ranks=2 param:N=8 mean-gap=1e-4\n";
        let args = parse_args(&argv("--batch j.txt")).unwrap();
        let loader = |p: &str| Err::<String, _>(format!("unexpected load of `{p}`"));
        let base = run_batch(jobfile, &args, &loader).unwrap();
        let seeded = parse_args(&argv("--batch j.txt --sched-seed 7")).unwrap();
        let same = run_batch(jobfile, &seeded, &loader).unwrap();
        assert_eq!(base.batch_json, same.batch_json, "--sched-seed 7 == seed=7");
        let other = parse_args(&argv("--batch j.txt --sched-seed 8")).unwrap();
        let diff = run_batch(jobfile, &other, &loader).unwrap();
        assert_ne!(base.batch_json, diff.batch_json, "storm arrivals re-draw");
    }

    #[test]
    fn parses_serve_flags() {
        let a = parse_args(&argv(
            "--serve s.txt --journal j.log --kill-after 64 --status hi",
        ))
        .unwrap();
        assert_eq!(a.serve.as_deref(), Some("s.txt"));
        assert_eq!(a.journal.as_deref(), Some("j.log"));
        assert_eq!(a.kill_after, Some(64));
        assert_eq!(a.status.as_deref(), Some("hi"));
        // `-` means stdin for both file-fed modes, never a source path.
        assert!(parse_args(&argv("--serve -")).is_ok());
        assert!(parse_args(&argv("--batch -")).is_ok());
        assert!(parse_args(&argv("-")).is_err());
        // Mode exclusivity and flag prerequisites.
        assert!(parse_args(&argv("x.f --serve s.txt")).is_err());
        assert!(parse_args(&argv("--batch j.txt --serve s.txt")).is_err());
        assert!(parse_args(&argv("--journal j.log --batch j.txt")).is_err());
        assert!(parse_args(&argv("--status hi x.f")).is_err());
        assert!(parse_args(&argv("--serve s.txt --kill-after x")).is_err());
        assert!(parse_args(&argv("--serve")).is_err());
    }

    const SERVE_SCRIPT: &str = "nodes=4\nseed=1\n\
                                tenant name=acme share=2\n\
                                job name=a tenant=acme workload=mm ranks=2 param:N=8\n\
                                job name=b workload=mm ranks=2 param:N=8 arrive=1e-4\n";

    #[test]
    fn serve_mode_drains_a_script_and_reports_like_batch() {
        let args = parse_args(&argv("--serve s.txt --status a")).unwrap();
        let mut storage = vpce_serve::MemStorage::default();
        let out = run_serve(SERVE_SCRIPT, &args, &mut storage);
        assert_eq!(out.outcome, Outcome::Success, "{}", out.text);
        assert!(out.text.contains("2 submitted | 2 done"), "{}", out.text);
        assert!(
            out.text.contains("a done tenant=acme attempts=1 preemptions=0"),
            "{}",
            out.text
        );
        let json = out.batch_json.as_deref().expect("serve always renders JSON");
        assert!(json.contains("\"tenant\": \"acme\""), "{json}");
        // Byte-determinism through the CLI layer, journal included.
        let mut storage2 = vpce_serve::MemStorage::default();
        let again = run_serve(SERVE_SCRIPT, &args, &mut storage2);
        assert_eq!(out.text, again.text);
        assert_eq!(storage.bytes, storage2.bytes);
    }

    #[test]
    fn serve_kill_after_then_restart_recovers_byte_identically() {
        let clean_args = parse_args(&argv("--serve s.txt")).unwrap();
        let mut clean = vpce_serve::MemStorage::default();
        let base = run_serve(SERVE_SCRIPT, &clean_args, &mut clean);
        assert_eq!(base.outcome, Outcome::Success, "{}", base.text);

        let killed_args = parse_args(&argv("--serve s.txt --kill-after 120")).unwrap();
        let mut storage = vpce_serve::MemStorage::default();
        let dead = run_serve(SERVE_SCRIPT, &killed_args, &mut storage);
        assert_eq!(dead.outcome, Outcome::RuntimeFault, "{}", dead.text);
        assert_eq!(dead.exit, 3);
        assert!(dead.text.contains("killed"), "{}", dead.text);
        assert!(dead.batch_json.is_none(), "no report from a dead daemon");
        assert!(storage.bytes.len() as u64 <= 120, "only the prefix survives");

        // Same journal, no kill: recovery replays to the same bytes.
        let recovered = run_serve(SERVE_SCRIPT, &clean_args, &mut storage);
        assert_eq!(recovered.outcome, Outcome::Success, "{}", recovered.text);
        assert!(recovered.text.contains("recovery #1"), "{}", recovered.text);
        assert_eq!(recovered.batch_json, base.batch_json);
        assert!(
            recovered.text.ends_with(&base.text),
            "report identical below the recovery banner:\n{}",
            recovered.text
        );
    }

    #[test]
    fn serve_refuses_bad_commands_with_typed_codes() {
        let args = parse_args(&argv("--serve s.txt")).unwrap();
        let mut s = vpce_serve::MemStorage::default();
        let out = run_serve("nodes=4\nfrobnicate the cluster\n", &args, &mut s);
        assert_eq!(out.outcome, Outcome::UsageError, "{}", out.text);
        assert!(out.text.contains("VPCE307"), "{}", out.text);
        let mut s = vpce_serve::MemStorage::default();
        let dup = run_serve(
            "nodes=4\njob name=a workload=mm ranks=2 param:N=8\n\
             job name=a workload=mm ranks=2 param:N=8\n",
            &args,
            &mut s,
        );
        assert_eq!(dup.outcome, Outcome::UsageError, "{}", dup.text);
        assert!(dup.text.contains("VPCE305"), "{}", dup.text);
    }

    #[test]
    fn front_errors_surface() {
        let args = parse_args(&argv("x.f --grain fine")).unwrap();
        let err = run("PROGRAM T\nX = \nEND\n", &args).unwrap_err();
        assert!(err.to_string().contains("line"));
    }

    #[test]
    fn machine_flags_parse_and_exclude_their_conflicts() {
        let a = parse_args(&argv("prog.f --machine torus3d")).unwrap();
        assert_eq!(a.machine.as_deref(), Some("torus3d"));
        assert!(!a.machine_dump);
        let d = parse_args(&argv("--machine-dump")).unwrap();
        assert!(d.machine_dump, "standalone mode needs no source file");
        let d = parse_args(&argv("--machine custom.machine --machine-dump")).unwrap();
        assert_eq!(d.machine.as_deref(), Some("custom.machine"));
        assert!(parse_args(&argv("prog.f --machine")).is_err());
        assert!(parse_args(&argv("prog.f --machine paper --prototype")).is_err());
        assert!(parse_args(&argv("prog.f --machine-dump")).is_err(), "dump is its own mode");
    }

    #[test]
    fn load_machine_resolves_builtins_files_and_includes() {
        let loader = |p: &str| -> Result<String, String> {
            match p {
                "slow.machine" => {
                    Ok("include = base.machine\n[nic]\npost_s = 9e-6\n".into())
                }
                "base.machine" => Ok("[cpu]\nclock_hz = 200e6\n".into()),
                other => Err(format!("no file `{other}`")),
            }
        };
        let builtin = load_machine("fast-ethernet", &loader).unwrap();
        assert_eq!(builtin.name, "fast-ethernet");
        let layered = load_machine("slow.machine", &loader).unwrap();
        assert_eq!(layered.cpu.clock_hz, 200e6, "include pulled the base in");
        assert_eq!(layered.nic.post_s, 9e-6, "top layer overrides");
        let e = load_machine("ghost.machine", &loader).unwrap_err();
        assert!(e.contains("ghost.machine"), "{e}");
    }

    #[test]
    fn paper_machine_report_is_byte_identical_to_the_default() {
        let bare = parse_args(&argv("x.f --nodes 4")).unwrap();
        let base = run(SRC, &bare).unwrap();
        let mut with = parse_args(&argv("x.f --nodes 4 --machine paper")).unwrap();
        with.machine_spec = Some(MachineSpec::default());
        let out = run(SRC, &with).unwrap();
        assert_eq!(out.text, base.text, "the built-in default must lower byte-identically");
        assert_eq!(out.exit, 0);
        // The prototype preset reproduces --prototype byte for byte.
        let proto = parse_args(&argv("x.f --nodes 4 --prototype")).unwrap();
        let proto_out = run(SRC, &proto).unwrap();
        let mut via = parse_args(&argv("x.f --nodes 4 --machine prototype")).unwrap();
        via.machine_spec = Some(MachineSpec::builtin("prototype").unwrap());
        assert_eq!(run(SRC, &via).unwrap().text, proto_out.text);
    }

    #[test]
    fn infeasible_machine_is_a_usage_error_not_a_panic() {
        let mut args = parse_args(&argv("x.f --nodes 6 --machine hypercube")).unwrap();
        args.machine_spec = Some(MachineSpec::builtin("hypercube").unwrap());
        let out = run(SRC, &args).unwrap();
        assert_eq!(out.outcome, Outcome::UsageError, "{}", out.text);
        assert!(out.text.contains("hypercube"), "{}", out.text);
    }

    #[test]
    fn machine_dump_round_trips_through_the_parser() {
        let mut args = parse_args(&argv("--machine-dump")).unwrap();
        let base = run_machine_dump(&args);
        assert_eq!(base.outcome, Outcome::Success);
        assert!(base.text.starts_with("# resolved machine description"), "{}", base.text);
        let reparsed = vpce_machine::parse::parse(&base.text).unwrap();
        assert_eq!(reparsed, MachineSpec::default(), "dump must re-parse to itself");
        args.machine_spec = Some(MachineSpec::builtin("torus3d").unwrap());
        let zoo = run_machine_dump(&args);
        let reparsed = vpce_machine::parse::parse(&zoo.text).unwrap();
        assert_eq!(reparsed, MachineSpec::builtin("torus3d").unwrap());
    }

    #[test]
    fn batch_mode_honours_machine_headers_and_defaults() {
        let jobs = "nodes=4\njob name=a workload=mm ranks=2 param:N=8\n";
        let bare = parse_args(&argv("--batch j.jobs")).unwrap();
        let loader = |p: &str| Err::<String, _>(format!("unexpected load of `{p}`"));
        let base = run_batch(jobs, &bare, &loader).unwrap();
        assert_eq!(base.outcome, Outcome::Success, "{}", base.text);
        // machine=paper header: byte-identical report and JSON.
        let hdr = format!("machine=paper\n{jobs}");
        let out = run_batch(&hdr, &bare, &loader).unwrap();
        assert_eq!(out.text, base.text);
        assert_eq!(out.batch_json, base.batch_json);
        // A zoo machine as the --machine default still finishes clean.
        let mut via = parse_args(&argv("--batch j.jobs")).unwrap();
        via.machine_spec = Some(MachineSpec::builtin("crossbar").unwrap());
        let zoo = run_batch(jobs, &via, &loader).unwrap();
        assert_eq!(zoo.outcome, Outcome::Success, "{}", zoo.text);
        // Per-job machine= beats the batch default; an infeasible one
        // is a typed admission record, not an error.
        let mix = "nodes=8\njob name=a workload=mm ranks=6 machine=hypercube param:N=8\n";
        let out = run_batch(mix, &bare, &loader).unwrap();
        assert_eq!(out.outcome, Outcome::AdmissionFailure, "{}", out.text);
    }

    #[test]
    fn serve_mode_accepts_machine_headers() {
        let args = parse_args(&argv("--serve s.txt")).unwrap();
        let mut s = vpce_serve::MemStorage::default();
        let out = run_serve(
            "machine=torus\nnodes=4\njob name=a workload=mm ranks=2 param:N=8\n",
            &args,
            &mut s,
        );
        assert_eq!(out.outcome, Outcome::Success, "{}", out.text);
        let mut s = vpce_serve::MemStorage::default();
        let late = run_serve(
            "nodes=4\njob name=a workload=mm ranks=2 param:N=8\nmachine=torus\n",
            &args,
            &mut s,
        );
        assert_eq!(late.outcome, Outcome::UsageError, "{}", late.text);
        assert!(late.text.contains("machine= must precede"), "{}", late.text);
    }
}
