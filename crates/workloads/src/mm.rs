//! MM — dense matrix multiplication (`C = A·B`), the paper's primary
//! benchmark (Table 1 sweeps 256²/512²/1024² over 1/2/4 nodes).
//!
//! The outermost `I` loop is parallel; with the default block schedule
//! each rank owns a band of rows of `C` (and reads the matching band
//! of `A` plus all of `B`). In the paper's column-major layout a row
//! band is a strided region — one contiguous run per column — which is
//! exactly the shape the fine/middle/coarse granularity levels tell
//! apart.

use crate::{idx2, Workload};

/// F77-mini source.
pub const SOURCE: &str = r"
      PROGRAM MM
      PARAMETER (N = 64)
      REAL A(N,N), B(N,N), C(N,N)
      INTEGER I, J, K
      DO I = 1, N
        DO J = 1, N
          A(I,J) = REAL(I+J) / REAL(N)
          B(I,J) = REAL(I-J) / REAL(N)
        ENDDO
      ENDDO
      DO I = 1, N
        DO J = 1, N
          C(I,J) = 0.0
          DO K = 1, N
            C(I,J) = C(I,J) + A(I,K) * B(K,J)
          ENDDO
        ENDDO
      ENDDO
      END
";

/// Workload descriptor (the paper's largest size is 1024).
pub const WORKLOAD: Workload = Workload {
    name: "MM",
    source: SOURCE,
    size_param: "N",
    paper_size: 1024,
};

/// Native reference: returns `(A, B, C)` in column-major order with
/// the same initialisation the F77 source uses.
pub fn reference(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut a = vec![0.0; n * n];
    let mut b = vec![0.0; n * n];
    let mut c = vec![0.0; n * n];
    for i in 1..=n {
        for j in 1..=n {
            a[idx2(i, j, n)] = (i + j) as f64 / n as f64;
            b[idx2(i, j, n)] = (i as f64 - j as f64) / n as f64;
        }
    }
    for i in 1..=n {
        for j in 1..=n {
            let mut s = 0.0;
            for k in 1..=n {
                s += a[idx2(i, k, n)] * b[idx2(k, j, n)];
            }
            c[idx2(i, j, n)] = s;
        }
    }
    (a, b, c)
}

/// Floating-point operations of the multiply kernel (2·N³).
pub fn flops(n: u64) -> u64 {
    2 * n * n * n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_small_case_by_hand() {
        // n = 2: A = [[1, 1.5],[1.5, 2]], B = [[0, -0.5],[0.5, 0]].
        let (_, _, c) = reference(2);
        // C(1,1) = 1*0 + 1.5*0.5 = 0.75
        assert!((c[idx2(1, 1, 2)] - 0.75).abs() < 1e-12);
        // C(1,2) = 1*(-0.5) + 1.5*0 = -0.5
        assert!((c[idx2(1, 2, 2)] - (-0.5)).abs() < 1e-12);
        // C(2,1) = 1.5*0 + 2*0.5 = 1.0
        assert!((c[idx2(2, 1, 2)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reference_is_symmetric_in_the_expected_way() {
        // With A symmetric and B antisymmetric, C should be
        // antisymmetric up to rounding: C^T = (AB)^T = B^T A^T = -BA.
        // Not exactly -C, so just sanity-check magnitudes instead.
        let (_, _, c) = reference(8);
        assert!(c.iter().all(|x| x.is_finite()));
        assert!(c.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn flop_count() {
        assert_eq!(flops(10), 2000);
    }
}
