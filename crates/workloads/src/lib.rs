//! # vpce-workloads — the paper's benchmark programs
//!
//! §6: "The benchmark codes used in this experiment are MM for a
//! matrix multiplication, a SWIM from the SPEC97 benchmark suite and
//! CFFT2INIT, a major subroutine of TFFT for the NASA codes."
//!
//! Each workload ships as F77-mini source (compiled through the full
//! Polaris pipeline) plus a native Rust reference implementation the
//! tests compare the compiled execution against.
//!
//! * [`mm`] — dense matrix multiplication, the Table-1/Table-2 kernel;
//! * [`swim`] — the shallow-water `CALC1`/`CALC2`/copy-back loop
//!   sequence (ITMAX=1), a 10-array stencil chain that exercises the
//!   AVPG;
//! * [`cfft`] — the `CFFT2INIT`-style trig-table initialisation whose
//!   stride-2 LMADs drive the paper's middle-granularity observation;
//! * [`irregular`] — an index-vector gather, the "irregular
//!   computation" class §2.2 says one-sided communication simplifies.

#![forbid(unsafe_code)]

pub mod cfft;
pub mod irregular;
pub mod mm;
pub mod swim;
pub mod swim_full;

/// A benchmark program: source plus the `PARAMETER` that scales it.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    pub name: &'static str,
    pub source: &'static str,
    /// Name of the size parameter (`N` or `M`).
    pub size_param: &'static str,
    /// The paper's evaluation size for this workload.
    pub paper_size: i64,
}

/// All three paper workloads (plus see [`irregular`] for the
/// §2.2-motivated extension).
pub fn all() -> [Workload; 3] {
    [mm::WORKLOAD, swim::WORKLOAD, cfft::WORKLOAD]
}

/// Column-major linear index for unit-lower-bound 2-D arrays.
#[inline]
pub fn idx2(i: usize, j: usize, rows: usize) -> usize {
    (i - 1) + (j - 1) * rows
}

/// Maximum absolute elementwise difference between two arrays.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "array shape mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx2_is_column_major() {
        // A(3,2) in an 8-row array: (3-1) + (2-1)*8 = 10.
        assert_eq!(idx2(3, 2, 8), 10);
        assert_eq!(idx2(1, 1, 8), 0);
    }

    #[test]
    fn all_workloads_have_distinct_names() {
        let ws = all();
        assert_eq!(ws.len(), 3);
        assert_ne!(ws[0].name, ws[1].name);
        assert_ne!(ws[1].name, ws[2].name);
    }

    #[test]
    fn max_abs_diff_basics() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.0, 2.5]), 0.5);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }
}
