//! SWIM-full — the complete three-time-level shallow-water step:
//! `CALC1`, `CALC2` and `CALC3` (the Robert–Asselin time smoothing
//! over `UOLD/VOLD/POLD`), with all thirteen state arrays of the SPEC
//! code. One time step (the paper's `ITMAX = 1`).
//!
//! Relative to [`crate::swim`] this doubles the array population the
//! AVPG must track and adds a region (`CALC3`) that reads *and*
//! rewrites six arrays in place — the `ReadWrite` classification path.

use crate::{idx2, Workload};

/// F77-mini source.
pub const SOURCE: &str = r"
      PROGRAM SWIMF
      PARAMETER (N = 32)
      REAL U(N,N), V(N,N), P(N,N)
      REAL UNEW(N,N), VNEW(N,N), PNEW(N,N)
      REAL UOLD(N,N), VOLD(N,N), POLD(N,N)
      REAL CU(N,N), CV(N,N), Z(N,N), H(N,N)
      REAL FSDX, FSDY, TDTS8, TDTSDX, TDTSDY, ALPHA
      INTEGER I, J
      FSDX = 4.0 / 0.25
      FSDY = 4.0 / 0.25
      TDTS8 = 90.0 / 8.0
      TDTSDX = 90.0 / 0.25
      TDTSDY = 90.0 / 0.25
      ALPHA = 0.001
      DO J = 1, N
        DO I = 1, N
          U(I,J) = SIN(REAL(I) / REAL(N)) * 0.5
          V(I,J) = COS(REAL(J) / REAL(N)) * 0.5
          P(I,J) = 2.0 + SIN(REAL(I+J) / REAL(N))
          UOLD(I,J) = U(I,J)
          VOLD(I,J) = V(I,J)
          POLD(I,J) = P(I,J)
        ENDDO
      ENDDO
      DO J = 1, N - 1
        DO I = 1, N - 1
          CU(I+1,J) = 0.5 * (P(I+1,J) + P(I,J)) * U(I+1,J)
          CV(I,J+1) = 0.5 * (P(I,J+1) + P(I,J)) * V(I,J+1)
          Z(I+1,J+1) = (FSDX * (V(I+1,J+1) - V(I,J+1)) - FSDY *
     & (U(I+1,J+1) - U(I+1,J))) /
     & (P(I,J) + P(I+1,J) + P(I+1,J+1) + P(I,J+1))
          H(I,J) = P(I,J) + 0.25 * (U(I+1,J) * U(I+1,J)
     & + U(I,J) * U(I,J)
     & + V(I,J+1) * V(I,J+1) + V(I,J) * V(I,J))
        ENDDO
      ENDDO
      DO J = 1, N - 2
        DO I = 1, N - 2
          UNEW(I+1,J) = UOLD(I+1,J) + TDTS8 * (Z(I+1,J+1) + Z(I+1,J)) *
     & (CV(I+1,J+1) + CV(I,J+1) + CV(I,J) + CV(I+1,J))
     & - TDTSDX * (H(I+1,J) - H(I,J))
          VNEW(I,J+1) = VOLD(I,J+1) - TDTS8 * (Z(I+1,J+1) + Z(I,J+1)) *
     & (CU(I+1,J+1) + CU(I,J+1) + CU(I,J) + CU(I+1,J))
     & - TDTSDY * (H(I,J+1) - H(I,J))
          PNEW(I,J) = POLD(I,J) - TDTSDX * (CU(I+1,J) - CU(I,J))
     & - TDTSDY * (CV(I,J+1) - CV(I,J))
        ENDDO
      ENDDO
      DO J = 1, N - 2
        DO I = 1, N - 2
          UOLD(I,J) = U(I,J) + ALPHA * (UNEW(I,J) - 2.0 * U(I,J)
     & + UOLD(I,J))
          VOLD(I,J) = V(I,J) + ALPHA * (VNEW(I,J) - 2.0 * V(I,J)
     & + VOLD(I,J))
          POLD(I,J) = P(I,J) + ALPHA * (PNEW(I,J) - 2.0 * P(I,J)
     & + POLD(I,J))
          U(I,J) = UNEW(I,J)
          V(I,J) = VNEW(I,J)
          P(I,J) = PNEW(I,J)
        ENDDO
      ENDDO
      END
";

/// Workload descriptor.
pub const WORKLOAD: Workload = Workload {
    name: "SWIM-full",
    source: SOURCE,
    size_param: "N",
    paper_size: 512,
};

/// Native reference state (thirteen arrays).
#[derive(Debug, Clone)]
pub struct State {
    pub u: Vec<f64>,
    pub v: Vec<f64>,
    pub p: Vec<f64>,
    pub uold: Vec<f64>,
    pub vold: Vec<f64>,
    pub pold: Vec<f64>,
    pub unew: Vec<f64>,
    pub vnew: Vec<f64>,
    pub pnew: Vec<f64>,
    pub cu: Vec<f64>,
    pub cv: Vec<f64>,
    pub z: Vec<f64>,
    pub h: Vec<f64>,
}

/// Run one reference step on an `n x n` grid.
pub fn reference(n: usize) -> State {
    let sz = n * n;
    let zeros = || vec![0.0; sz];
    let mut s = State {
        u: zeros(),
        v: zeros(),
        p: zeros(),
        uold: zeros(),
        vold: zeros(),
        pold: zeros(),
        unew: zeros(),
        vnew: zeros(),
        pnew: zeros(),
        cu: zeros(),
        cv: zeros(),
        z: zeros(),
        h: zeros(),
    };
    let fsdx = 4.0 / 0.25;
    let fsdy = 4.0 / 0.25;
    let tdts8 = 90.0 / 8.0;
    let tdtsdx = 90.0 / 0.25;
    let tdtsdy = 90.0 / 0.25;
    let alpha = 0.001;
    for j in 1..=n {
        for i in 1..=n {
            s.u[idx2(i, j, n)] = (i as f64 / n as f64).sin() * 0.5;
            s.v[idx2(i, j, n)] = (j as f64 / n as f64).cos() * 0.5;
            s.p[idx2(i, j, n)] = 2.0 + ((i + j) as f64 / n as f64).sin();
            s.uold[idx2(i, j, n)] = s.u[idx2(i, j, n)];
            s.vold[idx2(i, j, n)] = s.v[idx2(i, j, n)];
            s.pold[idx2(i, j, n)] = s.p[idx2(i, j, n)];
        }
    }
    let at = |a: &Vec<f64>, i: usize, j: usize| a[idx2(i, j, n)];
    for j in 1..=n - 1 {
        for i in 1..=n - 1 {
            s.cu[idx2(i + 1, j, n)] =
                0.5 * (at(&s.p, i + 1, j) + at(&s.p, i, j)) * at(&s.u, i + 1, j);
            s.cv[idx2(i, j + 1, n)] =
                0.5 * (at(&s.p, i, j + 1) + at(&s.p, i, j)) * at(&s.v, i, j + 1);
            s.z[idx2(i + 1, j + 1, n)] = (fsdx * (at(&s.v, i + 1, j + 1) - at(&s.v, i, j + 1))
                - fsdy * (at(&s.u, i + 1, j + 1) - at(&s.u, i + 1, j)))
                / (at(&s.p, i, j)
                    + at(&s.p, i + 1, j)
                    + at(&s.p, i + 1, j + 1)
                    + at(&s.p, i, j + 1));
            s.h[idx2(i, j, n)] = at(&s.p, i, j)
                + 0.25
                    * (at(&s.u, i + 1, j) * at(&s.u, i + 1, j)
                        + at(&s.u, i, j) * at(&s.u, i, j)
                        + at(&s.v, i, j + 1) * at(&s.v, i, j + 1)
                        + at(&s.v, i, j) * at(&s.v, i, j));
        }
    }
    for j in 1..=n - 2 {
        for i in 1..=n - 2 {
            s.unew[idx2(i + 1, j, n)] = at(&s.uold, i + 1, j)
                + tdts8
                    * (at(&s.z, i + 1, j + 1) + at(&s.z, i + 1, j))
                    * (at(&s.cv, i + 1, j + 1)
                        + at(&s.cv, i, j + 1)
                        + at(&s.cv, i, j)
                        + at(&s.cv, i + 1, j))
                - tdtsdx * (at(&s.h, i + 1, j) - at(&s.h, i, j));
            s.vnew[idx2(i, j + 1, n)] = at(&s.vold, i, j + 1)
                - tdts8
                    * (at(&s.z, i + 1, j + 1) + at(&s.z, i, j + 1))
                    * (at(&s.cu, i + 1, j + 1)
                        + at(&s.cu, i, j + 1)
                        + at(&s.cu, i, j)
                        + at(&s.cu, i + 1, j))
                - tdtsdy * (at(&s.h, i, j + 1) - at(&s.h, i, j));
            s.pnew[idx2(i, j, n)] = at(&s.pold, i, j)
                - tdtsdx * (at(&s.cu, i + 1, j) - at(&s.cu, i, j))
                - tdtsdy * (at(&s.cv, i, j + 1) - at(&s.cv, i, j));
        }
    }
    for j in 1..=n - 2 {
        for i in 1..=n - 2 {
            let k = idx2(i, j, n);
            s.uold[k] = s.u[k] + alpha * (s.unew[k] - 2.0 * s.u[k] + s.uold[k]);
            s.vold[k] = s.v[k] + alpha * (s.vnew[k] - 2.0 * s.v[k] + s.vold[k]);
            s.pold[k] = s.p[k] + alpha * (s.pnew[k] - 2.0 * s.p[k] + s.pold[k]);
            s.u[k] = s.unew[k];
            s.v[k] = s.vnew[k];
            s.p[k] = s.pnew[k];
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_runs_and_smooths() {
        let n = 16;
        let s = reference(n);
        // After the step, UOLD differs from both U's init and U's new
        // value (the smoothing blended three levels).
        let k = idx2(2, 2, n);
        assert_ne!(s.uold[k], s.u[k]);
        assert!(s.uold[k].is_finite());
    }

    #[test]
    fn interiors_updated_boundaries_kept() {
        let n = 16;
        let s = reference(n);
        // The copy-back only covers 1..N-2; the last column keeps its
        // initial values.
        let init_u_last = (16.0 / 16.0_f64).sin() * 0.5;
        assert_eq!(s.u[idx2(16, 16, n)], init_u_last);
    }
}
