//! SWIM — the SPEC CPU95/97 shallow-water model, reduced to one time
//! step (the paper runs `ITMAX = 1`): the `CALC1` and `CALC2` finite
//! difference sweeps plus the copy-back, as a chain of consecutive
//! parallel loops over ten N×N arrays.
//!
//! The chain is the AVPG's natural habitat: `CU/CV/Z/H` are produced
//! by `CALC1`, consumed by `CALC2`, and never used again — their
//! collects die on a Valid→Invalid edge; `U/V/P` scattered for `CALC1`
//! are re-read by `CALC2` unchanged — their re-scatter is elided.

use crate::{idx2, Workload};

/// F77-mini source (ITMAX = 1).
pub const SOURCE: &str = r"
      PROGRAM SWIM
      PARAMETER (N = 32)
      REAL U(N,N), V(N,N), P(N,N)
      REAL UNEW(N,N), VNEW(N,N), PNEW(N,N)
      REAL CU(N,N), CV(N,N), Z(N,N), H(N,N)
      REAL FSDX, FSDY, TDTS8, TDTSDX, TDTSDY
      INTEGER I, J
      FSDX = 4.0 / 0.25
      FSDY = 4.0 / 0.25
      TDTS8 = 90.0 / 8.0
      TDTSDX = 90.0 / 0.25
      TDTSDY = 90.0 / 0.25
      DO J = 1, N
        DO I = 1, N
          U(I,J) = SIN(REAL(I) / REAL(N)) * 0.5
          V(I,J) = COS(REAL(J) / REAL(N)) * 0.5
          P(I,J) = 2.0 + SIN(REAL(I+J) / REAL(N))
        ENDDO
      ENDDO
      DO J = 1, N - 1
        DO I = 1, N - 1
          CU(I+1,J) = 0.5 * (P(I+1,J) + P(I,J)) * U(I+1,J)
          CV(I,J+1) = 0.5 * (P(I,J+1) + P(I,J)) * V(I,J+1)
          Z(I+1,J+1) = (FSDX * (V(I+1,J+1) - V(I,J+1)) - FSDY *
     & (U(I+1,J+1) - U(I+1,J))) /
     & (P(I,J) + P(I+1,J) + P(I+1,J+1) + P(I,J+1))
          H(I,J) = P(I,J) + 0.25 * (U(I+1,J) * U(I+1,J)
     & + U(I,J) * U(I,J)
     & + V(I,J+1) * V(I,J+1) + V(I,J) * V(I,J))
        ENDDO
      ENDDO
      DO J = 1, N - 2
        DO I = 1, N - 2
          UNEW(I+1,J) = U(I+1,J) + TDTS8 * (Z(I+1,J+1) + Z(I+1,J)) *
     & (CV(I+1,J+1) + CV(I,J+1) + CV(I,J) + CV(I+1,J))
     & - TDTSDX * (H(I+1,J) - H(I,J))
          VNEW(I,J+1) = V(I,J+1) - TDTS8 * (Z(I+1,J+1) + Z(I,J+1)) *
     & (CU(I+1,J+1) + CU(I,J+1) + CU(I,J) + CU(I+1,J))
     & - TDTSDY * (H(I,J+1) - H(I,J))
          PNEW(I,J) = P(I,J) - TDTSDX * (CU(I+1,J) - CU(I,J))
     & - TDTSDY * (CV(I,J+1) - CV(I,J))
        ENDDO
      ENDDO
      DO J = 1, N - 2
        DO I = 1, N - 2
          U(I,J) = UNEW(I,J)
          V(I,J) = VNEW(I,J)
          P(I,J) = PNEW(I,J)
        ENDDO
      ENDDO
      END
";

/// Workload descriptor (SPEC's grid is 512x512; the paper's ITMAX=1).
pub const WORKLOAD: Workload = Workload {
    name: "SWIM",
    source: SOURCE,
    size_param: "N",
    paper_size: 512,
};

/// The same program structured like the real SPEC code: `CALC1` and
/// `CALC2` as subroutines, inlined by the front-end (§3 lists inlining
/// among Polaris's techniques). Must behave identically to [`SOURCE`].
pub const SOURCE_SUBROUTINES: &str = r"
      PROGRAM SWIMS
      PARAMETER (N = 32)
      REAL U(N,N), V(N,N), P(N,N)
      REAL UNEW(N,N), VNEW(N,N), PNEW(N,N)
      REAL CU(N,N), CV(N,N), Z(N,N), H(N,N)
      INTEGER I, J
      DO J = 1, N
        DO I = 1, N
          U(I,J) = SIN(REAL(I) / REAL(N)) * 0.5
          V(I,J) = COS(REAL(J) / REAL(N)) * 0.5
          P(I,J) = 2.0 + SIN(REAL(I+J) / REAL(N))
        ENDDO
      ENDDO
      CALL CALC1(U, V, P, CU, CV, Z, H, N)
      CALL CALC2(U, V, P, CU, CV, Z, H, UNEW, VNEW, PNEW, N)
      DO J = 1, N - 2
        DO I = 1, N - 2
          U(I,J) = UNEW(I,J)
          V(I,J) = VNEW(I,J)
          P(I,J) = PNEW(I,J)
        ENDDO
      ENDDO
      END

      SUBROUTINE CALC1(U, V, P, CU, CV, Z, H, N)
      INTEGER N
      REAL U(N,N), V(N,N), P(N,N)
      REAL CU(N,N), CV(N,N), Z(N,N), H(N,N)
      REAL FSDX, FSDY
      INTEGER I, J
      FSDX = 4.0 / 0.25
      FSDY = 4.0 / 0.25
      DO J = 1, N - 1
        DO I = 1, N - 1
          CU(I+1,J) = 0.5 * (P(I+1,J) + P(I,J)) * U(I+1,J)
          CV(I,J+1) = 0.5 * (P(I,J+1) + P(I,J)) * V(I,J+1)
          Z(I+1,J+1) = (FSDX * (V(I+1,J+1) - V(I,J+1)) - FSDY *
     & (U(I+1,J+1) - U(I+1,J))) /
     & (P(I,J) + P(I+1,J) + P(I+1,J+1) + P(I,J+1))
          H(I,J) = P(I,J) + 0.25 * (U(I+1,J) * U(I+1,J)
     & + U(I,J) * U(I,J)
     & + V(I,J+1) * V(I,J+1) + V(I,J) * V(I,J))
        ENDDO
      ENDDO
      END

      SUBROUTINE CALC2(U, V, P, CU, CV, Z, H, UNEW, VNEW, PNEW, N)
      INTEGER N
      REAL U(N,N), V(N,N), P(N,N)
      REAL UNEW(N,N), VNEW(N,N), PNEW(N,N)
      REAL CU(N,N), CV(N,N), Z(N,N), H(N,N)
      REAL TDTS8, TDTSDX, TDTSDY
      INTEGER I, J
      TDTS8 = 90.0 / 8.0
      TDTSDX = 90.0 / 0.25
      TDTSDY = 90.0 / 0.25
      DO J = 1, N - 2
        DO I = 1, N - 2
          UNEW(I+1,J) = U(I+1,J) + TDTS8 * (Z(I+1,J+1) + Z(I+1,J)) *
     & (CV(I+1,J+1) + CV(I,J+1) + CV(I,J) + CV(I+1,J))
     & - TDTSDX * (H(I+1,J) - H(I,J))
          VNEW(I,J+1) = V(I,J+1) - TDTS8 * (Z(I+1,J+1) + Z(I,J+1)) *
     & (CU(I+1,J+1) + CU(I,J+1) + CU(I,J) + CU(I+1,J))
     & - TDTSDY * (H(I,J+1) - H(I,J))
          PNEW(I,J) = P(I,J) - TDTSDX * (CU(I+1,J) - CU(I,J))
     & - TDTSDY * (CV(I,J+1) - CV(I,J))
        ENDDO
      ENDDO
      END
";

/// Arrays of the native reference state.
#[derive(Debug, Clone)]
pub struct SwimState {
    pub u: Vec<f64>,
    pub v: Vec<f64>,
    pub p: Vec<f64>,
    pub cu: Vec<f64>,
    pub cv: Vec<f64>,
    pub z: Vec<f64>,
    pub h: Vec<f64>,
    pub unew: Vec<f64>,
    pub vnew: Vec<f64>,
    pub pnew: Vec<f64>,
}

/// Native reference for one time step on an `n x n` grid, mirroring
/// the F77 source exactly.
pub fn reference(n: usize) -> SwimState {
    let sz = n * n;
    let mut s = SwimState {
        u: vec![0.0; sz],
        v: vec![0.0; sz],
        p: vec![0.0; sz],
        cu: vec![0.0; sz],
        cv: vec![0.0; sz],
        z: vec![0.0; sz],
        h: vec![0.0; sz],
        unew: vec![0.0; sz],
        vnew: vec![0.0; sz],
        pnew: vec![0.0; sz],
    };
    let fsdx = 4.0 / 0.25;
    let fsdy = 4.0 / 0.25;
    let tdts8 = 90.0 / 8.0;
    let tdtsdx = 90.0 / 0.25;
    let tdtsdy = 90.0 / 0.25;
    for j in 1..=n {
        for i in 1..=n {
            s.u[idx2(i, j, n)] = (i as f64 / n as f64).sin() * 0.5;
            s.v[idx2(i, j, n)] = (j as f64 / n as f64).cos() * 0.5;
            s.p[idx2(i, j, n)] = 2.0 + ((i + j) as f64 / n as f64).sin();
        }
    }
    let at = |a: &Vec<f64>, i: usize, j: usize| a[idx2(i, j, n)];
    for j in 1..=n - 1 {
        for i in 1..=n - 1 {
            s.cu[idx2(i + 1, j, n)] =
                0.5 * (at(&s.p, i + 1, j) + at(&s.p, i, j)) * at(&s.u, i + 1, j);
            s.cv[idx2(i, j + 1, n)] =
                0.5 * (at(&s.p, i, j + 1) + at(&s.p, i, j)) * at(&s.v, i, j + 1);
            s.z[idx2(i + 1, j + 1, n)] = (fsdx * (at(&s.v, i + 1, j + 1) - at(&s.v, i, j + 1))
                - fsdy * (at(&s.u, i + 1, j + 1) - at(&s.u, i + 1, j)))
                / (at(&s.p, i, j)
                    + at(&s.p, i + 1, j)
                    + at(&s.p, i + 1, j + 1)
                    + at(&s.p, i, j + 1));
            s.h[idx2(i, j, n)] = at(&s.p, i, j)
                + 0.25
                    * (at(&s.u, i + 1, j) * at(&s.u, i + 1, j)
                        + at(&s.u, i, j) * at(&s.u, i, j)
                        + at(&s.v, i, j + 1) * at(&s.v, i, j + 1)
                        + at(&s.v, i, j) * at(&s.v, i, j));
        }
    }
    for j in 1..=n - 2 {
        for i in 1..=n - 2 {
            s.unew[idx2(i + 1, j, n)] = at(&s.u, i + 1, j)
                + tdts8
                    * (at(&s.z, i + 1, j + 1) + at(&s.z, i + 1, j))
                    * (at(&s.cv, i + 1, j + 1)
                        + at(&s.cv, i, j + 1)
                        + at(&s.cv, i, j)
                        + at(&s.cv, i + 1, j))
                - tdtsdx * (at(&s.h, i + 1, j) - at(&s.h, i, j));
            s.vnew[idx2(i, j + 1, n)] = at(&s.v, i, j + 1)
                - tdts8
                    * (at(&s.z, i + 1, j + 1) + at(&s.z, i, j + 1))
                    * (at(&s.cu, i + 1, j + 1)
                        + at(&s.cu, i, j + 1)
                        + at(&s.cu, i, j)
                        + at(&s.cu, i + 1, j))
                - tdtsdy * (at(&s.h, i, j + 1) - at(&s.h, i, j));
            s.pnew[idx2(i, j, n)] = at(&s.p, i, j)
                - tdtsdx * (at(&s.cu, i + 1, j) - at(&s.cu, i, j))
                - tdtsdy * (at(&s.cv, i, j + 1) - at(&s.cv, i, j));
        }
    }
    for j in 1..=n - 2 {
        for i in 1..=n - 2 {
            s.u[idx2(i, j, n)] = s.unew[idx2(i, j, n)];
            s.v[idx2(i, j, n)] = s.vnew[idx2(i, j, n)];
            s.p[idx2(i, j, n)] = s.pnew[idx2(i, j, n)];
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_runs_and_stays_finite() {
        let s = reference(16);
        for arr in [&s.u, &s.v, &s.p, &s.cu, &s.cv, &s.z, &s.h] {
            assert!(arr.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn pressure_field_perturbed_by_the_step() {
        let s = reference(16);
        // PNEW differs from the initial P somewhere in the interior.
        let init_p_11 = 2.0 + (2.0 / 16.0_f64).sin();
        assert!((s.pnew[idx2(1, 1, 16)] - init_p_11).abs() > 1e-9);
    }

    #[test]
    fn boundary_rows_untouched_by_calc1() {
        let n = 16;
        let s = reference(n);
        // CU's first row (i = 1) is never written.
        for j in 1..=n {
            assert_eq!(s.cu[idx2(1, j, n)], 0.0);
        }
    }
}
