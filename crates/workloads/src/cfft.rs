//! CFFT2INIT — the trig-table initialisation of the NASA TFFT code
//! (the paper runs it with `M = 11`, i.e. 2¹¹-point tables).
//!
//! The loop writes four stride-2 regions — the forward and inverse
//! twiddle tables interleave cosine and sine values — which is the
//! access shape behind the paper's observation: "there exist several
//! LMADs with the stride of 2 in the subroutine. Although 50% of
//! communication was used to transfer redundant data, we were still
//! able to reduce the overall communication time" at middle grain.

use crate::Workload;

/// F77-mini source.
pub const SOURCE: &str = r"
      PROGRAM CFFTI
      PARAMETER (M = 5, N = 2**M)
      REAL W(2*N), WINV(2*N)
      INTEGER I
      REAL PI, ANG
      PI = 3.141592653589793
      DO I = 1, N
        ANG = 2.0 * PI * REAL(I-1) / REAL(N)
        W(2*I-1) = COS(ANG)
        W(2*I) = SIN(ANG)
        WINV(2*I-1) = COS(ANG)
        WINV(2*I) = 0.0 - SIN(ANG)
      ENDDO
      END
";

/// Workload descriptor: the paper's `M = 11`.
pub const WORKLOAD: Workload = Workload {
    name: "CFFT2INIT",
    source: SOURCE,
    size_param: "M",
    paper_size: 11,
};

/// Native reference: `(W, WINV)` for `n = 2^m` points.
pub fn reference(m: u32) -> (Vec<f64>, Vec<f64>) {
    let n = 1usize << m;
    let mut w = vec![0.0; 2 * n];
    let mut winv = vec![0.0; 2 * n];
    #[allow(clippy::approx_constant)] // mirrors the F77 source literal exactly
    let pi = 3.141592653589793_f64;
    for i in 1..=n {
        let ang = 2.0 * pi * (i as f64 - 1.0) / n as f64;
        w[2 * i - 2] = ang.cos();
        w[2 * i - 1] = ang.sin();
        winv[2 * i - 2] = ang.cos();
        winv[2 * i - 1] = -ang.sin();
    }
    (w, winv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_first_twiddle_is_unity() {
        let (w, winv) = reference(4);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!(w[1].abs() < 1e-12);
        assert_eq!(w[0], winv[0]);
    }

    #[test]
    fn inverse_table_conjugates() {
        let (w, winv) = reference(5);
        for i in 0..w.len() / 2 {
            assert_eq!(w[2 * i], winv[2 * i], "cos parts equal");
            assert_eq!(w[2 * i + 1], -winv[2 * i + 1], "sin parts negated");
        }
    }

    #[test]
    fn table_walks_the_unit_circle() {
        let (w, _) = reference(6);
        for i in 0..w.len() / 2 {
            let mag = w[2 * i] * w[2 * i] + w[2 * i + 1] * w[2 * i + 1];
            assert!((mag - 1.0).abs() < 1e-12);
        }
    }
}
