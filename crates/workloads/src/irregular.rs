//! IRRGATHER — an irregular gather, the access class §2.2 says
//! one-sided communication was built for: "it may also help the
//! compiler to simplify code generation for certain classes of
//! computations, such as irregular computations and pointer chasing.
//! This is because MPI_PUT/MPI_GET take place under the control of
//! only a single processor."
//!
//! `B(I) = A(IDX(I)) * 2` reads `A` through a runtime index vector.
//! The front-end cannot summarise `A(IDX(I))` as an affine LMAD, so it
//! falls back to a conservative whole-array `ReadOnly` region — the
//! loop still parallelises (the *writes* are affine), and the backend
//! simply scatters all of `A`. With two-sided message passing the
//! producer of each element would have to know who reads it; with
//! one-sided windows nobody needs to.

use crate::Workload;

/// F77-mini source. `IDX` is a bit-reversal-flavoured permutation
/// computed with `MOD`, so the gather is genuinely scrambled.
pub const SOURCE: &str = r"
      PROGRAM IRR
      PARAMETER (N = 64)
      REAL A(N), B(N)
      INTEGER IDX(N)
      INTEGER I
      DO I = 1, N
        A(I) = REAL(I) / 4.0
        IDX(I) = MOD(I * 7, N) + 1
      ENDDO
      DO I = 1, N
        B(I) = A(IDX(I)) * 2.0
      ENDDO
      END
";

/// Workload descriptor.
pub const WORKLOAD: Workload = Workload {
    name: "IRRGATHER",
    source: SOURCE,
    size_param: "N",
    paper_size: 4096,
};

/// Native reference: `(A, IDX, B)`.
pub fn reference(n: usize) -> (Vec<f64>, Vec<i64>, Vec<f64>) {
    let mut a = vec![0.0; n];
    let mut idx = vec![0i64; n];
    for i in 1..=n {
        a[i - 1] = i as f64 / 4.0;
        idx[i - 1] = ((i * 7) % n) as i64 + 1;
    }
    let b: Vec<f64> = (1..=n).map(|i| a[idx[i - 1] as usize - 1] * 2.0).collect();
    (a, idx, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_gathers_through_the_permutation() {
        let (a, idx, b) = reference(64);
        for i in 0..64 {
            assert_eq!(b[i], a[idx[i] as usize - 1] * 2.0);
        }
    }

    #[test]
    fn index_vector_stays_in_bounds() {
        let (_, idx, _) = reference(256);
        assert!(idx.iter().all(|&v| (1..=256).contains(&v)));
    }
}
