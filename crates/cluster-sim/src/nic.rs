//! Network-interface model: DMA vs. programmed I/O, and the software
//! stack between a user buffer and the wire.
//!
//! §2.2 of the paper:
//!
//! > "Contiguous MPI_PUT/MPI_GET use DMA so that data from the user
//! > buffer can be copied into the device driver buffer without
//! > interrupting the processor. But stride MPI_PUT/MPI_GET use
//! > programmed I/O where data in the user buffer is copied into the
//! > device driver buffer one-element by one-element. So, stride
//! > MPI_PUT/MPI_GET are generally less efficient … because they
//! > increase communication setup time significantly."
//!
//! and:
//!
//! > "Our MPI-2 library reduces the communication overheads by sharing
//! > a message queue between device driver … and a MPI-2 daemon
//! > process, and by transferring data directly from a user buffer to a
//! > device drive buffer."
//!
//! [`NicModel::host_overhead`] turns a transfer description into the
//! CPU-side cost; the wire time itself is the network simulator's job.

use crate::cpu::CpuModel;
use vpce_faults::{site, FaultInjector, VpceError};

/// Which transport protocol carries a one-sided transfer.
///
/// The split follows the MPICH2-over-InfiniBand design: small messages
/// go **eager** — the payload is staged into a pre-registered slot and
/// sent immediately, completion piggybacked on the data header — while
/// large messages go **rendezvous** — an RTS/CTS handshake pins the
/// receive side, then the NIC DMAs straight out of the source region
/// with no staging copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Copy into a registered slot, one message, piggybacked completion.
    Eager,
    /// RTS/CTS handshake, then zero-copy DMA from the source region.
    Rendezvous,
}

impl Protocol {
    /// Stable lowercase name (reports, benches, traces).
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Eager => "eager",
            Protocol::Rendezvous => "rendezvous",
        }
    }
}

/// Shape of a one-sided transfer as seen by the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferKind {
    /// One contiguous region: DMA path.
    Contiguous {
        bytes: usize,
    },
    /// A constant-stride region of `elems` elements of `elem_bytes`
    /// each: programmed-I/O path.
    Strided {
        elems: usize,
        elem_bytes: usize,
    },
}

impl TransferKind {
    /// Payload bytes that cross the wire.
    pub fn wire_bytes(&self) -> usize {
        match *self {
            TransferKind::Contiguous { bytes } => bytes,
            TransferKind::Strided { elems, elem_bytes } => elems * elem_bytes,
        }
    }
}

/// Decomposition of [`NicModel::host_overhead`] into its mechanisms —
/// the queue hops, the DMA descriptor programming, and the
/// programmed-I/O element copies — so a trace can show *which* part of
/// §2.2's "communication setup time" a transfer paid.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HostCostBreakdown {
    /// Message-queue hops: descriptor posts, plus (on the conventional
    /// kernel stack) context switches and staging copies.
    pub queue_s: f64,
    /// DMA descriptor programming time (contiguous path only).
    pub dma_setup_s: f64,
    /// Element-by-element programmed-I/O copy time (strided path only).
    pub pio_copy_s: f64,
    /// Eager staging-copy time: gathering the payload into a
    /// pre-registered slot at the machine's memcpy rate (eager protocol
    /// only; 0 on the legacy and rendezvous paths).
    pub copy_s: f64,
    /// Driver-buffer chunks the transfer was split into.
    pub chunks: usize,
    /// Extra host seconds spent on fault recovery: re-posting rejected
    /// DMA descriptors, redoing corrupted PIO copies, and riding out
    /// injected driver-queue stalls. Always 0 without fault injection.
    pub retry_s: f64,
    /// DMA descriptor re-posts plus PIO copy re-dos performed.
    pub retries: u64,
    /// Injected shared-queue stalls ridden out.
    pub stalls: u64,
}

impl HostCostBreakdown {
    /// Total host seconds — identical to what
    /// [`NicModel::host_overhead`] returns (which never pays retries),
    /// plus any fault-recovery cost on the injected path.
    pub fn total(&self) -> f64 {
        self.queue_s + self.dma_setup_s + self.pio_copy_s + self.copy_s + self.retry_s
    }
}

/// Cost parameters of one network card plus its driver stack.
#[derive(Debug, Clone)]
pub struct NicModel {
    /// CPU time to post one message descriptor (queue entry, doorbell).
    pub post_s: f64,
    /// CPU time to program one DMA descriptor for a contiguous region.
    pub dma_setup_s: f64,
    /// CPU time per element for the programmed-I/O element-by-element
    /// copy into the device-driver buffer.
    pub pio_per_elem_s: f64,
    /// `true` for the paper's optimized stack: the driver and the MPI
    /// daemon share a message queue and data moves directly from the
    /// user buffer to the driver buffer.
    pub shared_queue: bool,
    /// Context-switch cost into the kernel per message when the shared
    /// queue is absent (conventional system-level stack).
    pub context_switch_s: f64,
    /// Extra per-byte staging copy cost when data cannot go directly
    /// from the user buffer (conventional stack), s/byte.
    pub staging_copy_s_per_byte: f64,
    /// Device-driver buffer size; a transfer larger than this is split
    /// into buffer-sized chunks, each paying the post cost.
    pub driver_buf_bytes: usize,
    /// Registered eager slots per rank: the pre-posted buffer arena the
    /// eager protocol stages small payloads into.
    pub eager_slots: usize,
    /// Bytes per registered eager slot — the hard cap on eager payloads.
    pub eager_slot_bytes: usize,
    /// Descriptor-ring depth: consecutive same-window transfers share
    /// one doorbell until this many descriptors are batched.
    pub ring_depth: usize,
    /// CPU time to append one descriptor to an already-open ring
    /// (cheap WQE write, no doorbell).
    pub ring_entry_s: f64,
}

impl NicModel {
    /// The paper's V-Bus card with the user-level stack: cheap posts
    /// (shared queue), ~10 µs DMA setup, ~0.6 µs per PIO element
    /// (an uncached device-register write plus driver-loop overhead
    /// per element on the 300 MHz host).
    pub fn vbus_card() -> Self {
        NicModel {
            post_s: 3.0e-6,
            dma_setup_s: 10.0e-6,
            pio_per_elem_s: 0.6e-6,
            shared_queue: true,
            context_switch_s: 15.0e-6,
            staging_copy_s_per_byte: 1.0 / 180e6,
            driver_buf_bytes: 256 << 10,
            eager_slots: 16,
            eager_slot_bytes: 16 << 10,
            ring_depth: 8,
            ring_entry_s: 0.3e-6,
        }
    }

    /// The same silicon behind a conventional kernel-level stack
    /// (ablation A2): every message context-switches and pays a staging
    /// copy.
    pub fn vbus_card_kernel_stack() -> Self {
        NicModel {
            shared_queue: false,
            ..NicModel::vbus_card()
        }
    }

    /// A Fast-Ethernet NIC of the era: kernel sockets, interrupt-driven,
    /// staging copies — the reference point for the paper's "about four
    /// times lower latency" claim.
    pub fn fast_ethernet_card() -> Self {
        NicModel {
            post_s: 10.0e-6,
            dma_setup_s: 15.0e-6,
            pio_per_elem_s: 0.6e-6,
            shared_queue: false,
            context_switch_s: 25.0e-6,
            staging_copy_s_per_byte: 1.0 / 180e6,
            driver_buf_bytes: 64 << 10,
            eager_slots: 8,
            eager_slot_bytes: 8 << 10,
            ring_depth: 4,
            ring_entry_s: 1.0e-6,
        }
    }

    /// Number of driver-buffer chunks a transfer needs.
    pub fn chunks(&self, wire_bytes: usize) -> usize {
        wire_bytes.div_ceil(self.driver_buf_bytes).max(1)
    }

    /// CPU (host) seconds consumed to *initiate* the transfer. This is
    /// the "communication setup time" of §2.2 — the part the
    /// granularity optimization of §5.6 trades against redundant data.
    ///
    /// The DMA path blocks the host only for descriptor programming;
    /// the PIO path blocks it for the whole element-by-element copy.
    pub fn host_overhead(&self, kind: TransferKind, cpu: &CpuModel) -> f64 {
        self.host_breakdown(kind, cpu).total()
    }

    /// [`host_overhead`](Self::host_overhead) with the cost split by
    /// mechanism — what the tracer records per transfer.
    pub fn host_breakdown(&self, kind: TransferKind, cpu: &CpuModel) -> HostCostBreakdown {
        let wire = kind.wire_bytes();
        let per_msg = if self.shared_queue {
            self.post_s
        } else {
            // Conventional stack: kernel entry per chunk plus one
            // staging copy of the payload, amortised over the chunks.
            self.post_s
                + self.context_switch_s
                + wire as f64 * self.staging_copy_s_per_byte / self.chunks(wire) as f64
        };
        let n_chunks = self.chunks(wire);
        let mut out = HostCostBreakdown {
            queue_s: per_msg * n_chunks as f64,
            chunks: n_chunks,
            ..HostCostBreakdown::default()
        };
        match kind {
            TransferKind::Contiguous { .. } => {
                out.dma_setup_s = self.dma_setup_s * n_chunks as f64;
            }
            TransferKind::Strided { elems, .. } => {
                // Element-by-element copy by the CPU, plus one DMA-less
                // descriptor per chunk. The per-element cost includes
                // address generation, bounded below by the raw copy
                // speed.
                out.pio_copy_s = elems as f64 * self.pio_per_elem_s.max(
                    // never cheaper than the machine's memcpy rate
                    kind.wire_bytes() as f64 / elems.max(1) as f64 / cpu.memcpy_bps,
                );
            }
        }
        out
    }

    /// Protocol-aware host cost: what the eager/rendezvous transport
    /// pays to *initiate* one transfer from inside a registered region.
    ///
    /// Unlike the legacy [`host_breakdown`](Self::host_breakdown) path
    /// there is no driver-buffer chunking — eager payloads fit one
    /// registered slot by construction, and rendezvous transfers DMA
    /// straight out of the (already registered) source window with a
    /// single descriptor. The doorbell cost drops to
    /// [`ring_entry_s`](Self::ring_entry_s) when `batched` — the
    /// descriptor rides an already-open same-window ring.
    ///
    /// - **Eager**: doorbell + staging copy into the pre-posted slot at
    ///   the machine's memcpy rate. The slot's DMA descriptor was built
    ///   once at pool registration, so no `dma_setup_s` is paid.
    /// - **Rendezvous, contiguous**: doorbell + one DMA descriptor.
    /// - **Rendezvous, strided**: doorbell + the element-by-element PIO
    ///   gather (same per-element cost as the legacy path).
    pub fn host_breakdown_proto(
        &self,
        kind: TransferKind,
        proto: Protocol,
        batched: bool,
        cpu: &CpuModel,
    ) -> HostCostBreakdown {
        let wire = kind.wire_bytes();
        let doorbell = if batched { self.ring_entry_s } else { self.post_s };
        let per_msg = if self.shared_queue {
            doorbell
        } else {
            // Conventional stack: kernel entry plus a staging copy of
            // the payload on top of the doorbell.
            doorbell + self.context_switch_s + wire as f64 * self.staging_copy_s_per_byte
        };
        let mut out = HostCostBreakdown {
            queue_s: per_msg,
            chunks: 1,
            ..HostCostBreakdown::default()
        };
        match proto {
            Protocol::Eager => {
                out.copy_s = wire as f64 / cpu.memcpy_bps;
            }
            Protocol::Rendezvous => match kind {
                TransferKind::Contiguous { .. } => {
                    out.dma_setup_s = self.dma_setup_s;
                }
                TransferKind::Strided { elems, .. } => {
                    out.pio_copy_s = elems as f64 * self.pio_per_elem_s.max(
                        wire as f64 / elems.max(1) as f64 / cpu.memcpy_bps,
                    );
                }
            },
        }
        out
    }

    /// [`host_breakdown_proto`](Self::host_breakdown_proto) under an
    /// armed fault plane. The key transport property: an eager
    /// retransmit replays *out of the registered slot* — the payload is
    /// already staged, so recovery costs one doorbell re-post plus
    /// backoff, never a second copy. A rendezvous retry re-programs its
    /// single descriptor (contiguous) or redoes the PIO gather
    /// (strided), exactly like the legacy path but without chunking.
    #[allow(clippy::too_many_arguments)]
    pub fn host_breakdown_proto_faulty(
        &self,
        kind: TransferKind,
        proto: Protocol,
        batched: bool,
        cpu: &CpuModel,
        inj: &FaultInjector,
        rank: usize,
        seq: u64,
    ) -> Result<HostCostBreakdown, VpceError> {
        let mut out = self.host_breakdown_proto(kind, proto, batched, cpu);
        if !inj.enabled() {
            return Ok(out);
        }
        let spec = inj.spec();
        let key = ((rank as u64) << 32) ^ seq;
        if inj.hits(spec.nic_stall, site::NIC_STALL, key, 0) {
            out.retry_s += spec.nic_stall_s;
            out.stalls += 1;
        }
        match (proto, kind) {
            (Protocol::Eager, _) => {
                // The slot holds the staged payload across attempts:
                // recovery is a doorbell re-post, never a re-copy.
                let mut attempt: u32 = 1;
                while inj.hits(spec.dma_err, site::DMA_ERR, key, attempt as u64) {
                    if attempt >= spec.max_retries.saturating_add(1) {
                        return Err(VpceError::NicFailure {
                            rank,
                            what: "eager doorbell",
                            attempts: attempt,
                        });
                    }
                    out.retry_s += self.post_s + inj.backoff_delay(attempt);
                    out.retries += 1;
                    attempt += 1;
                }
            }
            (Protocol::Rendezvous, TransferKind::Contiguous { .. }) => {
                let mut attempt: u32 = 1;
                while inj.hits(spec.dma_err, site::DMA_ERR, key, attempt as u64) {
                    if attempt >= spec.max_retries.saturating_add(1) {
                        return Err(VpceError::NicFailure {
                            rank,
                            what: "DMA descriptor",
                            attempts: attempt,
                        });
                    }
                    out.retry_s += self.dma_setup_s + inj.backoff_delay(attempt);
                    out.retries += 1;
                    attempt += 1;
                }
            }
            (Protocol::Rendezvous, TransferKind::Strided { .. }) => {
                let mut attempt: u32 = 1;
                while inj.hits(spec.pio_err, site::PIO_ERR, key, attempt as u64) {
                    if attempt >= spec.max_retries.saturating_add(1) {
                        return Err(VpceError::NicFailure {
                            rank,
                            what: "PIO copy",
                            attempts: attempt,
                        });
                    }
                    out.retry_s += out.pio_copy_s;
                    out.retries += 1;
                    attempt += 1;
                }
            }
        }
        Ok(out)
    }

    /// [`host_breakdown`](Self::host_breakdown) under an armed fault
    /// plane: the shared driver queue may stall, each chunk's DMA
    /// descriptor may be rejected and re-programmed, and the PIO copy
    /// may be detected corrupt and redone — every recovery bounded by
    /// the spec's retry budget, every draw a pure hash of
    /// `(rank, seq, chunk, attempt)` so the cost is deterministic.
    /// `seq` is the caller's per-rank host-operation counter.
    pub fn host_breakdown_faulty(
        &self,
        kind: TransferKind,
        cpu: &CpuModel,
        inj: &FaultInjector,
        rank: usize,
        seq: u64,
    ) -> Result<HostCostBreakdown, VpceError> {
        let mut out = self.host_breakdown(kind, cpu);
        if !inj.enabled() {
            return Ok(out);
        }
        let spec = inj.spec();
        let key = ((rank as u64) << 32) ^ seq;
        if inj.hits(spec.nic_stall, site::NIC_STALL, key, 0) {
            out.retry_s += spec.nic_stall_s;
            out.stalls += 1;
        }
        match kind {
            TransferKind::Contiguous { .. } => {
                // Each chunk programs its own descriptor; a rejected
                // descriptor is re-programmed after a short backoff.
                for chunk in 0..out.chunks as u64 {
                    let mut attempt: u32 = 1;
                    while inj.hits(spec.dma_err, site::DMA_ERR, key, (chunk << 8) | attempt as u64)
                    {
                        if attempt >= spec.max_retries.saturating_add(1) {
                            return Err(VpceError::NicFailure {
                                rank,
                                what: "DMA descriptor",
                                attempts: attempt,
                            });
                        }
                        out.retry_s += self.dma_setup_s + inj.backoff_delay(attempt);
                        out.retries += 1;
                        attempt += 1;
                    }
                }
            }
            TransferKind::Strided { .. } => {
                // A corrupted element batch is detected at the end of
                // the copy and the whole copy redone.
                let mut attempt: u32 = 1;
                while inj.hits(spec.pio_err, site::PIO_ERR, key, attempt as u64) {
                    if attempt >= spec.max_retries.saturating_add(1) {
                        return Err(VpceError::NicFailure {
                            rank,
                            what: "PIO copy",
                            attempts: attempt,
                        });
                    }
                    out.retry_s += out.pio_copy_s;
                    out.retries += 1;
                    attempt += 1;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> CpuModel {
        CpuModel::pentium_ii_300()
    }

    #[test]
    fn strided_setup_dwarfs_contiguous_for_same_payload() {
        // 8192 f64 elements: contiguous pays one DMA setup; strided
        // pays 8192 PIO element copies.
        let nic = NicModel::vbus_card();
        let cont = nic.host_overhead(
            TransferKind::Contiguous { bytes: 8192 * 8 },
            &cpu(),
        );
        let strided = nic.host_overhead(
            TransferKind::Strided {
                elems: 8192,
                elem_bytes: 8,
            },
            &cpu(),
        );
        assert!(
            strided > 10.0 * cont,
            "strided {strided} should dwarf contiguous {cont}"
        );
    }

    #[test]
    fn small_strided_beats_padded_contiguous() {
        // The flip side that makes "fine" the right answer sometimes:
        // a few strided elements cost less host time than DMA-ing a
        // large bounding region would add in wire time. At the host
        // level alone, 8 PIO elements are cheaper than a DMA setup.
        let nic = NicModel::vbus_card();
        let strided = nic.host_overhead(
            TransferKind::Strided {
                elems: 8,
                elem_bytes: 8,
            },
            &cpu(),
        );
        let cont = nic.host_overhead(TransferKind::Contiguous { bytes: 64 }, &cpu());
        assert!(strided < cont);
    }

    #[test]
    fn kernel_stack_costs_more_per_message() {
        let user = NicModel::vbus_card();
        let kernel = NicModel::vbus_card_kernel_stack();
        let kind = TransferKind::Contiguous { bytes: 4096 };
        assert!(kernel.host_overhead(kind, &cpu()) > user.host_overhead(kind, &cpu()));
    }

    #[test]
    fn vbus_vs_fast_ethernet_small_message_host_cost_about_4x() {
        // Claim C2, host-side component: the user-level V-Bus stack vs
        // the kernel Fast-Ethernet stack on a small message.
        let vb = NicModel::vbus_card();
        let fe = NicModel::fast_ethernet_card();
        let kind = TransferKind::Contiguous { bytes: 1024 };
        let ratio = fe.host_overhead(kind, &cpu()) / vb.host_overhead(kind, &cpu());
        assert!(
            (2.5..8.0).contains(&ratio),
            "FE/V-Bus host cost ratio should be a few x, got {ratio}"
        );
    }

    #[test]
    fn large_transfers_split_into_driver_buffer_chunks() {
        let nic = NicModel::vbus_card();
        assert_eq!(nic.chunks(1), 1);
        assert_eq!(nic.chunks(256 << 10), 1);
        assert_eq!(nic.chunks((256 << 10) + 1), 2);
        assert_eq!(nic.chunks(1 << 20), 4);
        // Cost grows with chunk count.
        let small = nic.host_overhead(TransferKind::Contiguous { bytes: 256 << 10 }, &cpu());
        let big = nic.host_overhead(TransferKind::Contiguous { bytes: 1 << 20 }, &cpu());
        assert!(big > 3.0 * small);
    }

    #[test]
    fn breakdown_totals_match_host_overhead() {
        for nic in [
            NicModel::vbus_card(),
            NicModel::vbus_card_kernel_stack(),
            NicModel::fast_ethernet_card(),
        ] {
            for kind in [
                TransferKind::Contiguous { bytes: 4096 },
                TransferKind::Contiguous { bytes: 1 << 20 },
                TransferKind::Strided {
                    elems: 512,
                    elem_bytes: 8,
                },
            ] {
                let b = nic.host_breakdown(kind, &cpu());
                assert!((b.total() - nic.host_overhead(kind, &cpu())).abs() < 1e-15);
                match kind {
                    TransferKind::Contiguous { .. } => {
                        assert!(b.dma_setup_s > 0.0);
                        assert_eq!(b.pio_copy_s, 0.0);
                    }
                    TransferKind::Strided { .. } => {
                        assert!(b.pio_copy_s > 0.0);
                        assert_eq!(b.dma_setup_s, 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn faulty_breakdown_with_off_spec_is_identical() {
        use vpce_faults::FaultSpec;
        let nic = NicModel::vbus_card();
        let inj = FaultInjector::new(FaultSpec::off());
        for kind in [
            TransferKind::Contiguous { bytes: 1 << 20 },
            TransferKind::Strided { elems: 512, elem_bytes: 8 },
        ] {
            let plain = nic.host_breakdown(kind, &cpu());
            let faulty = nic.host_breakdown_faulty(kind, &cpu(), &inj, 0, 7).unwrap();
            assert_eq!(plain, faulty);
            assert_eq!(faulty.retry_s, 0.0);
        }
    }

    #[test]
    fn dma_and_pio_retries_cost_deterministic_host_time() {
        use vpce_faults::FaultSpec;
        let nic = NicModel::vbus_card();
        let inj = FaultInjector::new(FaultSpec {
            seed: 3,
            dma_err: 0.4,
            pio_err: 0.4,
            nic_stall: 0.3,
            ..FaultSpec::off()
        });
        let mut saw_retry = false;
        let mut saw_stall = false;
        for seq in 0..40u64 {
            for kind in [
                TransferKind::Contiguous { bytes: 1 << 20 },
                TransferKind::Strided { elems: 256, elem_bytes: 8 },
            ] {
                let a = nic.host_breakdown_faulty(kind, &cpu(), &inj, 1, seq).unwrap();
                let b = nic.host_breakdown_faulty(kind, &cpu(), &inj, 1, seq).unwrap();
                assert_eq!(a, b, "same (rank, seq) must cost the same");
                assert!(a.total() >= nic.host_overhead(kind, &cpu()));
                saw_retry |= a.retries > 0;
                saw_stall |= a.stalls > 0;
            }
        }
        assert!(saw_retry, "0.4 error rates must fire in 80 ops");
        assert!(saw_stall);
    }

    #[test]
    fn exhausted_nic_budget_is_a_typed_error() {
        use vpce_faults::FaultSpec;
        let nic = NicModel::vbus_card();
        let inj = FaultInjector::new(FaultSpec {
            seed: 0,
            dma_err: 1.0,
            max_retries: 2,
            ..FaultSpec::off()
        });
        let err = nic
            .host_breakdown_faulty(TransferKind::Contiguous { bytes: 64 }, &cpu(), &inj, 3, 0)
            .unwrap_err();
        match err {
            VpceError::NicFailure { rank: 3, what, attempts: 3 } => {
                assert_eq!(what, "DMA descriptor");
            }
            other => panic!("expected NicFailure, got {other:?}"),
        }
    }

    #[test]
    fn eager_pays_copy_not_dma_setup() {
        let nic = NicModel::vbus_card();
        let kind = TransferKind::Contiguous { bytes: 2048 };
        let b = nic.host_breakdown_proto(kind, Protocol::Eager, false, &cpu());
        assert_eq!(b.dma_setup_s, 0.0);
        assert_eq!(b.pio_copy_s, 0.0);
        assert!((b.copy_s - 2048.0 / cpu().memcpy_bps).abs() < 1e-15);
        assert_eq!(b.chunks, 1);
        assert!((b.total() - (nic.post_s + b.copy_s)).abs() < 1e-15);
    }

    #[test]
    fn rendezvous_contiguous_pays_one_descriptor_no_chunking() {
        // 1 MiB would be 4 driver-buffer chunks on the legacy path;
        // rendezvous DMAs straight from the registered window with a
        // single descriptor.
        let nic = NicModel::vbus_card();
        let kind = TransferKind::Contiguous { bytes: 1 << 20 };
        let b = nic.host_breakdown_proto(kind, Protocol::Rendezvous, false, &cpu());
        assert_eq!(b.chunks, 1);
        assert!((b.total() - (nic.post_s + nic.dma_setup_s)).abs() < 1e-15);
        assert!(b.total() < nic.host_overhead(kind, &cpu()));
    }

    #[test]
    fn rendezvous_strided_matches_legacy_pio_cost() {
        let nic = NicModel::vbus_card();
        let kind = TransferKind::Strided { elems: 512, elem_bytes: 8 };
        let proto = nic.host_breakdown_proto(kind, Protocol::Rendezvous, false, &cpu());
        let legacy = nic.host_breakdown(kind, &cpu());
        assert_eq!(proto.pio_copy_s, legacy.pio_copy_s);
        assert_eq!(proto.copy_s, 0.0);
    }

    #[test]
    fn batched_doorbell_is_cheaper_than_posted() {
        let nic = NicModel::vbus_card();
        let kind = TransferKind::Contiguous { bytes: 256 };
        for proto in [Protocol::Eager, Protocol::Rendezvous] {
            let posted = nic.host_breakdown_proto(kind, proto, false, &cpu());
            let batched = nic.host_breakdown_proto(kind, proto, true, &cpu());
            assert!(
                (posted.total() - batched.total() - (nic.post_s - nic.ring_entry_s)).abs()
                    < 1e-15,
                "{} batching should save exactly one doorbell",
                proto.name()
            );
        }
    }

    #[test]
    fn eager_retry_replays_from_slot_without_recopy() {
        use vpce_faults::FaultSpec;
        let nic = NicModel::vbus_card();
        let inj = FaultInjector::new(FaultSpec {
            seed: 11,
            dma_err: 0.5,
            ..FaultSpec::off()
        });
        // Large-ish eager payload: a re-copy would dwarf the doorbell.
        let kind = TransferKind::Contiguous { bytes: 16 << 10 };
        let base = nic.host_breakdown_proto(kind, Protocol::Eager, false, &cpu());
        let mut saw_retry = false;
        for seq in 0..60u64 {
            let b = nic
                .host_breakdown_proto_faulty(kind, Protocol::Eager, false, &cpu(), &inj, 0, seq)
                .unwrap();
            if b.retries > 0 {
                saw_retry = true;
                // Each retry costs a doorbell + backoff; never the
                // staging copy again.
                let per_retry = b.retry_s / b.retries as f64;
                assert!(
                    per_retry < base.copy_s,
                    "retry {per_retry} must be cheaper than re-copying {}",
                    base.copy_s
                );
            }
            // The staged copy is paid exactly once regardless of faults.
            assert_eq!(b.copy_s, base.copy_s);
        }
        assert!(saw_retry, "0.5 dma_err must fire in 60 ops");
    }

    #[test]
    fn proto_faulty_off_spec_is_identical_and_deterministic() {
        use vpce_faults::FaultSpec;
        let nic = NicModel::vbus_card();
        let off = FaultInjector::new(FaultSpec::off());
        let on = FaultInjector::new(FaultSpec {
            seed: 5,
            dma_err: 0.3,
            pio_err: 0.3,
            nic_stall: 0.2,
            ..FaultSpec::off()
        });
        for kind in [
            TransferKind::Contiguous { bytes: 4096 },
            TransferKind::Strided { elems: 128, elem_bytes: 8 },
        ] {
            for proto in [Protocol::Eager, Protocol::Rendezvous] {
                let plain = nic.host_breakdown_proto(kind, proto, false, &cpu());
                let quiet = nic
                    .host_breakdown_proto_faulty(kind, proto, false, &cpu(), &off, 0, 3)
                    .unwrap();
                assert_eq!(plain, quiet);
                let a = nic
                    .host_breakdown_proto_faulty(kind, proto, false, &cpu(), &on, 1, 9)
                    .unwrap();
                let b = nic
                    .host_breakdown_proto_faulty(kind, proto, false, &cpu(), &on, 1, 9)
                    .unwrap();
                assert_eq!(a, b, "same (rank, seq) must cost the same");
            }
        }
    }

    #[test]
    fn protocol_names_are_stable() {
        assert_eq!(Protocol::Eager.name(), "eager");
        assert_eq!(Protocol::Rendezvous.name(), "rendezvous");
    }

    #[test]
    fn wire_bytes() {
        assert_eq!(TransferKind::Contiguous { bytes: 10 }.wire_bytes(), 10);
        assert_eq!(
            TransferKind::Strided {
                elems: 4,
                elem_bytes: 8
            }
            .wire_bytes(),
            32
        );
    }
}
