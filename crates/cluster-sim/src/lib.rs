//! # cluster-sim — the PC-node model
//!
//! Models the compute side of the paper's machine: each node is a
//! 300 MHz Pentium-II PC with 64 MB of memory, running Linux, attached
//! to a V-Bus network card through a device driver.
//!
//! Three things matter for reproducing the paper's numbers:
//!
//! 1. **CPU cost** — a [`cpu::CpuModel`] converts operation counts
//!    (flops, loads, stores, loop overhead) into virtual seconds. Table 1
//!    speedups are ratios of compute time to communication time, so only
//!    the *ratio* between this model and the network model matters.
//! 2. **NIC cost** ([`nic::NicModel`]) — the MPI-2 implementation's key
//!    asymmetry: *contiguous* PUT/GET program a DMA descriptor once and
//!    let the engine stream from the user buffer ("without interrupting
//!    the processor", §2.2), whereas *strided* PUT/GET use programmed
//!    I/O, the CPU copying the user buffer into the device-driver buffer
//!    "one-element by one-element". This asymmetry is what makes the
//!    fine/middle/coarse granularity trade-off of §5.6 exist at all.
//! 3. **Software stack** — the paper's library shares a message queue
//!    between the device driver and the MPI daemon and copies directly
//!    from the user buffer into the driver buffer, performing
//!    "user-level communication rather than system-level communication
//!    which incurs additional overhead for context switching" (§7). The
//!    NIC model exposes both the optimized and the conventional stack so
//!    the ablation bench (A2) can quantify the gap.

#![forbid(unsafe_code)]

pub mod cpu;
pub mod memory;
pub mod nic;

use vbus_sim::NetConfig;

pub use cpu::{CpuModel, OpCounts};
pub use memory::MemoryTracker;
pub use nic::{HostCostBreakdown, NicModel, Protocol, TransferKind};
pub use vbus_sim::Mesh;

/// Maximum aspect ratio a rectangular job partition may have before
/// the exact factorization is considered degenerate and the allocator
/// falls back to a near-square shape with spare router positions.
pub const MAX_PARTITION_ASPECT: usize = 4;

/// Why a rectangular partition shape could not be produced. Machine
/// descriptions introduce topologies (crossbar, fat-tree) that have no
/// rectangular sub-shape at all, so shape requests need a typed error
/// instead of an assert: a scheduler can then reject the job or fall
/// back to a pure allocation footprint, rather than abort the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// A partition holds at least one rank.
    ZeroRanks,
    /// The machine's topology admits no rectangular sub-shape; callers
    /// that only need an *allocation footprint* (a NodeMap rectangle,
    /// not wires) should fall back to [`Mesh::near_square`] explicitly.
    NoRectangular {
        ranks: usize,
        /// Stable topology-kind name (`"crossbar"`, `"fattree"`, …).
        topology: &'static str,
    },
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::ZeroRanks => write!(f, "a partition holds at least one rank"),
            ShapeError::NoRectangular { ranks, topology } => write!(
                f,
                "a {topology} topology has no rectangular sub-shape for {ranks} ranks"
            ),
        }
    }
}

/// Shape of the rectangular partition a gang scheduler should carve
/// for a job of `ranks` processes.
///
/// Policy (documented here, pinned by tests): prefer the most-square
/// *exact* factorization of `ranks` with aspect ratio at most
/// [`MAX_PARTITION_ASPECT`] (no wasted positions); when none exists —
/// primes and other awkward counts like 7 or 13 — fall back
/// *deliberately* to [`Mesh::near_square`], which wastes under one row
/// of router positions but never produces a `1 x n` chain for
/// `ranks >= 3`. The degenerate chain is thus unreachable either way.
pub fn partition_shape(ranks: usize) -> Mesh {
    try_partition_shape(ranks).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`partition_shape`]: `Err(ShapeError::ZeroRanks)`
/// instead of the assert. Every positive rank count gets a shape on
/// rectangular topologies; the `NoRectangular` variant is produced by
/// topology-aware callers (the machine-description layer) for
/// switch-based fabrics.
pub fn try_partition_shape(ranks: usize) -> Result<Mesh, ShapeError> {
    if ranks == 0 {
        return Err(ShapeError::ZeroRanks);
    }
    Ok(Mesh::try_exact_factor(ranks, MAX_PARTITION_ASPECT)
        .expect("positive ranks and aspect")
        .unwrap_or_else(|| Mesh::near_square(ranks)))
}

/// Configuration of one PC in the cluster.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    pub cpu: CpuModel,
    pub nic: NicModel,
    /// Installed memory, bytes (the paper's nodes carry 64 MB).
    pub mem_bytes: usize,
}

impl NodeConfig {
    /// The paper's node: 300 MHz Pentium II, 64 MB, V-Bus card with the
    /// shared driver/daemon queue optimization.
    pub fn paper_pc() -> Self {
        NodeConfig {
            cpu: CpuModel::pentium_ii_300(),
            nic: NicModel::vbus_card(),
            mem_bytes: 64 << 20,
        }
    }
}

/// Configuration of the whole machine: homogeneous nodes plus the
/// interconnect.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub node: NodeConfig,
    pub net: NetConfig,
}

impl ClusterConfig {
    /// The machine of §6: 4 PCs on a 2x2 SKWP mesh with V-Bus broadcast.
    pub fn paper_4node() -> Self {
        Self::paper_n(4)
    }

    /// The paper's node/card scaled to `n` nodes (near-square mesh).
    pub fn paper_n(n: usize) -> Self {
        ClusterConfig {
            node: NodeConfig::paper_pc(),
            net: NetConfig::vbus_skwp(n),
        }
    }

    /// A rectangular sub-partition of the paper's machine: `ranks`
    /// paper PCs attached to an explicit `mesh` shape. This is the
    /// per-job machine a gang scheduler builds — the partition owns
    /// its wires and counters, so concurrent jobs are fully isolated.
    ///
    /// # Panics
    /// Panics if the mesh cannot hold `ranks` nodes.
    pub fn paper_partition(mesh: Mesh, ranks: usize) -> Self {
        ClusterConfig {
            node: NodeConfig::paper_pc(),
            net: NetConfig::vbus_skwp_mesh(mesh, ranks),
        }
    }

    /// Identical PCs on Fast Ethernet with a conventional kernel-level
    /// MPI stack — the baseline cluster the paper compares against.
    pub fn fast_ethernet_n(n: usize) -> Self {
        ClusterConfig {
            node: NodeConfig {
                nic: NicModel::fast_ethernet_card(),
                ..NodeConfig::paper_pc()
            },
            net: NetConfig::fast_ethernet(n),
        }
    }

    /// The paper's cluster with conventionally pipelined links —
    /// isolates the SKWP contribution (claim C1 at system level).
    pub fn conventional_links_n(n: usize) -> Self {
        ClusterConfig {
            node: NodeConfig::paper_pc(),
            net: NetConfig::vbus_conventional(n),
        }
    }

    /// Sensitivity variant: the same machine with the link rate
    /// derated to ≈6 MB/s of *achieved* MPI bandwidth. The paper's
    /// card nominally delivers 50 MB/s (4x Fast Ethernet), but its
    /// Table 1 speedups (1.75 @ 256²/4 nodes, 3.03 @ 1024²/4 nodes)
    /// are only consistent with a far lower effective rate — the
    /// authors call their prototype "premature". With 6 MB/s the
    /// reproduced MM speedups land within a few percent of Table 1
    /// (see EXPERIMENTS.md); `paper_n` keeps the nominal hardware.
    pub fn prototype_n(n: usize) -> Self {
        let mut cfg = Self::paper_n(n);
        cfg.net.link.bandwidth_bps = 6.0e6;
        cfg
    }

    /// Number of nodes in the machine.
    pub fn num_nodes(&self) -> usize {
        self.net.num_nodes()
    }
}

/// The rank→physical-node remap maintained by in-run rollback
/// recovery: every rank starts on its home node, and each respawn
/// moves a crashed rank onto the next node from a finite spare pool.
/// Spare node ids continue past the active partition (`ranks`,
/// `ranks+1`, …), matching how a real cluster keeps warm standby nodes
/// outside the job's gang. Purely bookkeeping — the virtual-time cost
/// model is node-homogeneous, so a remap changes placement history,
/// never timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverMap {
    /// Ranks in the partition.
    pub ranks: usize,
    /// Spare nodes provisioned at job start.
    pub spares_total: usize,
    /// Current physical node of each rank (`map[r]`).
    pub map: Vec<usize>,
    /// Every remap performed, in order: `(rank, from_node, to_node)`.
    pub history: Vec<(usize, usize, usize)>,
}

impl FailoverMap {
    /// Identity placement of `ranks` ranks with `spares` standby nodes.
    pub fn new(ranks: usize, spares: usize) -> Self {
        FailoverMap {
            ranks,
            spares_total: spares,
            map: (0..ranks).collect(),
            history: Vec::new(),
        }
    }

    /// Spare nodes not yet consumed by a failover.
    pub fn spares_left(&self) -> usize {
        self.spares_total - self.history.len()
    }

    /// The physical node rank `r` currently occupies.
    pub fn node_of(&self, r: usize) -> usize {
        self.map[r]
    }

    /// Move crashed rank `r` onto the next spare node. Returns the
    /// `(from, to)` pair, or `None` when the spare pool is exhausted
    /// (the caller then fails the recovery with VPCE403).
    pub fn remap(&mut self, r: usize) -> Option<(usize, usize)> {
        if self.spares_left() == 0 {
            return None;
        }
        let from = self.map[r];
        let to = self.ranks + self.history.len();
        self.map[r] = to;
        self.history.push((r, from, to));
        Some((from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_shape() {
        let c = ClusterConfig::paper_4node();
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.node.mem_bytes, 64 << 20);
        assert!((c.node.cpu.clock_hz - 300e6).abs() < 1.0);
    }

    #[test]
    fn fast_ethernet_cluster_uses_kernel_stack() {
        let c = ClusterConfig::fast_ethernet_n(4);
        assert!(!c.node.nic.shared_queue);
        assert!(c.net.vbus.is_none());
    }

    #[test]
    fn partition_shapes_are_exact_or_deliberately_near_square() {
        // Exact aspect-bounded factorizations win…
        assert_eq!(partition_shape(4), Mesh::new(2, 2));
        assert_eq!(partition_shape(8), Mesh::new(4, 2));
        assert_eq!(partition_shape(12), Mesh::new(4, 3));
        assert_eq!(partition_shape(2), Mesh::new(2, 1));
        // …awkward counts fall back to near-square, never a chain.
        for ranks in [5, 7, 11, 13, 17] {
            let m = partition_shape(ranks);
            assert!(m.rows >= 2, "ranks={ranks} got a {}x{} chain", m.cols, m.rows);
            assert!(m.num_nodes() >= ranks);
        }
    }

    #[test]
    fn try_partition_shape_matches_panicking_variant_and_types_zero() {
        assert_eq!(try_partition_shape(0), Err(ShapeError::ZeroRanks));
        // Primes and awkward counts still produce the near-square
        // fallback, identically to the panicking variant.
        for ranks in [1, 2, 3, 4, 5, 7, 8, 11, 12, 13, 16, 17, 22] {
            assert_eq!(try_partition_shape(ranks), Ok(partition_shape(ranks)), "ranks={ranks}");
        }
    }

    #[test]
    fn shape_errors_render_their_cause() {
        assert_eq!(
            ShapeError::ZeroRanks.to_string(),
            "a partition holds at least one rank"
        );
        let e = ShapeError::NoRectangular { ranks: 7, topology: "crossbar" };
        assert_eq!(
            e.to_string(),
            "a crossbar topology has no rectangular sub-shape for 7 ranks"
        );
    }

    #[test]
    fn paper_partition_isolates_shape_and_size() {
        let c = ClusterConfig::paper_partition(Mesh::new(2, 1), 2);
        assert_eq!(c.num_nodes(), 2);
        // The partition keeps the paper card (V-Bus present).
        assert!(c.net.vbus.is_some());
    }

    #[test]
    fn failover_map_consumes_spares_in_order_and_keeps_history() {
        let mut fm = FailoverMap::new(4, 2);
        assert_eq!(fm.spares_left(), 2);
        assert_eq!(fm.node_of(3), 3);
        // First failover: rank 3 moves to spare node 4.
        assert_eq!(fm.remap(3), Some((3, 4)));
        assert_eq!(fm.node_of(3), 4);
        assert_eq!(fm.spares_left(), 1);
        // A rank can fail over twice; the pool keeps draining in order.
        assert_eq!(fm.remap(3), Some((4, 5)));
        assert_eq!(fm.spares_left(), 0);
        assert_eq!(fm.remap(0), None, "exhausted pool refuses the remap");
        assert_eq!(fm.history, vec![(3, 3, 4), (3, 4, 5)]);
        // Untouched ranks keep their home nodes.
        assert_eq!(fm.node_of(0), 0);
        assert_eq!(fm.node_of(2), 2);
    }

    #[test]
    fn conventional_links_slower_than_skwp() {
        let skwp = ClusterConfig::paper_n(4).net.link.bandwidth_bps;
        let conv = ClusterConfig::conventional_links_n(4).net.link.bandwidth_bps;
        assert!(skwp / conv > 3.0);
    }
}
