//! Per-node memory accounting.
//!
//! The paper's PCs carry 64 MB each. In the master/slave execution
//! model every slave holds private copies of the regions scattered to
//! it, so the footprint per node can approach the master's full data
//! set; [`MemoryTracker`] lets the runtime detect configurations that
//! would not have fit on the real machine (and tests exercise that).

use std::fmt;

/// Error returned when an allocation would exceed the node's memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    pub requested: usize,
    pub in_use: usize,
    pub capacity: usize,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node out of memory: requested {} B with {} B in use of {} B",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Tracks live allocations against a node's installed memory.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    capacity: usize,
    in_use: usize,
    peak: usize,
}

impl MemoryTracker {
    /// A tracker for a node with `capacity` bytes installed.
    pub fn new(capacity: usize) -> Self {
        MemoryTracker {
            capacity,
            in_use: 0,
            peak: 0,
        }
    }

    /// Record an allocation of `bytes`.
    pub fn alloc(&mut self, bytes: usize) -> Result<(), OutOfMemory> {
        let new = self.in_use.saturating_add(bytes);
        if new > self.capacity {
            return Err(OutOfMemory {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use = new;
        self.peak = self.peak.max(new);
        Ok(())
    }

    /// Record a free of `bytes`.
    ///
    /// # Panics
    /// Panics if more is freed than is in use (an accounting bug).
    pub fn free(&mut self, bytes: usize) {
        assert!(
            bytes <= self.in_use,
            "freeing {bytes} B with only {} B in use",
            self.in_use
        );
        self.in_use -= bytes;
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// High-water mark.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Installed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut m = MemoryTracker::new(100);
        m.alloc(60).unwrap();
        m.alloc(40).unwrap();
        assert_eq!(m.in_use(), 100);
        m.free(50);
        assert_eq!(m.in_use(), 50);
        assert_eq!(m.peak(), 100);
    }

    #[test]
    fn overflow_is_reported_not_panicked() {
        let mut m = MemoryTracker::new(64 << 20);
        m.alloc(60 << 20).unwrap();
        let err = m.alloc(8 << 20).unwrap_err();
        assert_eq!(err.capacity, 64 << 20);
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn double_free_panics() {
        let mut m = MemoryTracker::new(10);
        m.alloc(5).unwrap();
        m.free(6);
    }

    #[test]
    fn paper_node_fits_three_1024_matrices() {
        // MM at 1024x1024 needs 3 x 8 MB on the master: fits in 64 MB.
        let mut m = MemoryTracker::new(64 << 20);
        for _ in 0..3 {
            m.alloc(1024 * 1024 * 8).unwrap();
        }
        assert!(m.in_use() < m.capacity());
    }
}
