//! CPU cost model: converts operation counts into virtual seconds.
//!
//! The model is a classic fixed-cost-per-operation table in the style of
//! compile-time performance predictors (the paper cites Cascaval's
//! compile-time performance prediction work as the guide for
//! granularity selection). It deliberately ignores caches and
//! superscalar effects: Table 1/2 shapes depend on the compute/
//! communication ratio, not on micro-architectural detail.

/// Cost table and clock for one CPU.
#[derive(Debug, Clone)]
pub struct CpuModel {
    /// Core clock, Hz.
    pub clock_hz: f64,
    /// Cycles per double-precision add/subtract.
    pub cyc_fadd: f64,
    /// Cycles per double-precision multiply.
    pub cyc_fmul: f64,
    /// Cycles per double-precision divide.
    pub cyc_fdiv: f64,
    /// Cycles per transcendental call (sin/cos/sqrt/exp).
    pub cyc_transcendental: f64,
    /// Cycles per memory load (blended cache model).
    pub cyc_load: f64,
    /// Cycles per memory store.
    pub cyc_store: f64,
    /// Cycles per integer/index ALU operation.
    pub cyc_int: f64,
    /// Cycles of loop bookkeeping per iteration (increment, compare,
    /// branch).
    pub cyc_loop: f64,
    /// Sustained memory-copy bandwidth for local `memcpy`, bytes/s
    /// (used for loopback transfers and driver-buffer staging).
    pub memcpy_bps: f64,
}

impl CpuModel {
    /// The paper's 300 MHz Pentium II.
    ///
    /// Latencies follow Intel's P6 optimization tables (blended with
    /// typical cache behaviour for the era): ~3-cycle FP add, ~5-cycle
    /// FP multiply, ~32-cycle divide, multi-ten-cycle transcendentals,
    /// and ≈180 MB/s sustained memcpy on 66 MHz SDRAM.
    pub fn pentium_ii_300() -> Self {
        CpuModel {
            clock_hz: 300e6,
            cyc_fadd: 3.0,
            cyc_fmul: 5.0,
            cyc_fdiv: 32.0,
            cyc_transcendental: 60.0,
            cyc_load: 2.5,
            cyc_store: 2.5,
            cyc_int: 1.0,
            cyc_loop: 2.0,
            memcpy_bps: 180e6,
        }
    }

    /// Seconds consumed by the given operation counts.
    pub fn time(&self, ops: &OpCounts) -> f64 {
        self.cycles(ops) / self.clock_hz
    }

    /// Cycles consumed by the given operation counts.
    pub fn cycles(&self, ops: &OpCounts) -> f64 {
        ops.fadd as f64 * self.cyc_fadd
            + ops.fmul as f64 * self.cyc_fmul
            + ops.fdiv as f64 * self.cyc_fdiv
            + ops.transcendental as f64 * self.cyc_transcendental
            + ops.loads as f64 * self.cyc_load
            + ops.stores as f64 * self.cyc_store
            + ops.int_ops as f64 * self.cyc_int
            + ops.loop_iters as f64 * self.cyc_loop
    }

    /// Seconds to copy `bytes` locally (loopback transfer, buffer
    /// staging).
    pub fn memcpy_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.memcpy_bps
    }

    /// Sustained double-precision multiply-add rate implied by the
    /// table, flop/s — a sanity metric for calibration (a 300 MHz P-II
    /// lands in the tens of Mflop/s on compiled Fortran).
    pub fn sustained_flops(&self) -> f64 {
        // One fused iteration: load+load+mul+add+store+loop.
        let cyc_per_madd = self.cyc_load * 2.0
            + self.cyc_fmul
            + self.cyc_fadd
            + self.cyc_store
            + self.cyc_loop;
        2.0 * self.clock_hz / cyc_per_madd
    }
}

/// Dynamic operation counts of a program region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    pub fadd: u64,
    pub fmul: u64,
    pub fdiv: u64,
    pub transcendental: u64,
    pub loads: u64,
    pub stores: u64,
    pub int_ops: u64,
    pub loop_iters: u64,
}

impl OpCounts {
    /// Counts for `n` fused multiply-add loop iterations (the MM inner
    /// loop): two loads, a multiply, an add, a store, loop overhead.
    pub fn madd_loop(n: u64) -> Self {
        OpCounts {
            fadd: n,
            fmul: n,
            loads: 2 * n,
            stores: n,
            loop_iters: n,
            ..OpCounts::default()
        }
    }

    /// Element-wise sum of two count sets.
    pub fn add(&self, other: &OpCounts) -> OpCounts {
        OpCounts {
            fadd: self.fadd + other.fadd,
            fmul: self.fmul + other.fmul,
            fdiv: self.fdiv + other.fdiv,
            transcendental: self.transcendental + other.transcendental,
            loads: self.loads + other.loads,
            stores: self.stores + other.stores,
            int_ops: self.int_ops + other.int_ops,
            loop_iters: self.loop_iters + other.loop_iters,
        }
    }

    /// All counts multiplied by `k` (a loop executing its body `k`
    /// times).
    pub fn scaled(&self, k: u64) -> OpCounts {
        OpCounts {
            fadd: self.fadd * k,
            fmul: self.fmul * k,
            fdiv: self.fdiv * k,
            transcendental: self.transcendental * k,
            loads: self.loads * k,
            stores: self.stores * k,
            int_ops: self.int_ops * k,
            loop_iters: self.loop_iters * k,
        }
    }

    /// Total floating-point operations.
    pub fn flops(&self) -> u64 {
        self.fadd + self.fmul + self.fdiv + self.transcendental
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pii_sustained_flops_is_tens_of_mflops() {
        let cpu = CpuModel::pentium_ii_300();
        let f = cpu.sustained_flops();
        assert!(
            (20e6..80e6).contains(&f),
            "a 300MHz P-II should sustain tens of Mflop/s, got {f}"
        );
    }

    #[test]
    fn time_is_cycles_over_clock() {
        let cpu = CpuModel::pentium_ii_300();
        let ops = OpCounts::madd_loop(1000);
        assert!((cpu.time(&ops) - cpu.cycles(&ops) / 300e6).abs() < 1e-18);
    }

    #[test]
    fn madd_loop_counts() {
        let ops = OpCounts::madd_loop(10);
        assert_eq!(ops.flops(), 20);
        assert_eq!(ops.loads, 20);
        assert_eq!(ops.stores, 10);
        assert_eq!(ops.loop_iters, 10);
    }

    #[test]
    fn scaled_and_add_compose() {
        let a = OpCounts::madd_loop(3);
        assert_eq!(a.scaled(4), OpCounts::madd_loop(12));
        assert_eq!(a.add(&OpCounts::madd_loop(5)), OpCounts::madd_loop(8));
    }

    #[test]
    fn mm_1024_sequential_time_is_tens_of_seconds() {
        // 1024^3 multiply-adds on the paper's node: the sequential MM
        // run Table 1 normalises against. Should land in O(10-100 s).
        let cpu = CpuModel::pentium_ii_300();
        let n = 1024u64;
        let t = cpu.time(&OpCounts::madd_loop(n * n * n));
        assert!((10.0..200.0).contains(&t), "t={t}");
    }

    #[test]
    fn memcpy_time_linear() {
        let cpu = CpuModel::pentium_ii_300();
        assert!((cpu.memcpy_time(180_000_000) - 1.0).abs() < 1e-12);
    }
}
