//! The fault schedule: which faults fire, how often, and how hard.
//!
//! A [`FaultSpec`] is pure data — rates, delays and budgets. Combined
//! with a seed it fully determines every injection decision (see
//! [`crate::FaultInjector`]); no wall clock, no global state. The same
//! spec + seed therefore reproduces the same faults bit-for-bit.

use std::collections::BTreeSet;
use std::fmt;

use vpce_diag::{DiagCode, Diagnostic, Severity};

/// Stable diagnostic codes for `--faults` / `faults=` parse failures,
/// registered in the shared `vpce-diag` registry (VPCE32x block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSpecCode {
    /// The same `key=value` key appeared more than once in one spec.
    DuplicateKey,
    /// A key the grammar does not know.
    UnknownKey,
    /// A value that fails to parse or falls outside its legal range.
    BadValue,
}

impl DiagCode for FaultSpecCode {
    fn as_str(self) -> &'static str {
        match self {
            FaultSpecCode::DuplicateKey => "VPCE320",
            FaultSpecCode::UnknownKey => "VPCE321",
            FaultSpecCode::BadValue => "VPCE322",
        }
    }
    fn severity(self) -> Severity {
        Severity::Error
    }
}

/// A typed `--faults` parse failure: stable code + human detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    pub code: FaultSpecCode,
    pub detail: String,
}

impl FaultParseError {
    fn new(code: FaultSpecCode, detail: impl Into<String>) -> Self {
        FaultParseError { code, detail: detail.into() }
    }

    /// The finding as a `vpce-diag` diagnostic (no source provenance —
    /// fault specs come from the command line or a jobfile record).
    pub fn to_diagnostic(&self) -> Diagnostic<FaultSpecCode> {
        let mut d = Diagnostic::bare(self.code);
        d.detail = self.detail.clone();
        d
    }
}

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code.as_str(), self.detail)
    }
}

impl std::error::Error for FaultParseError {}

/// Probabilities are per *event* (per packet attempt, per NIC chunk,
/// per region entry), not per second: the simulation is virtual-time
/// and event-driven, so event counts are the deterministic unit.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// PRNG seed for all injection decisions.
    pub seed: u64,
    /// P(per-packet-attempt) the CRC check fails on arrival.
    pub flit_corrupt: f64,
    /// P(per-packet-attempt) the packet vanishes (ack timeout).
    pub link_drop: f64,
    /// P(per-packet-attempt) the link stalls before forwarding.
    pub link_stall: f64,
    /// Virtual seconds a link stall holds the packet.
    pub stall_s: f64,
    /// P(per-acquisition-attempt) V-Bus construction fails.
    pub bus_fail: f64,
    /// Acquisition attempts before degrading to the software tree.
    pub bus_attempts: u32,
    /// P(per-chunk) a DMA descriptor is rejected and must be re-posted.
    pub dma_err: f64,
    /// P(per-element-batch) a PIO copy is corrupted and redone.
    pub pio_err: f64,
    /// P(per-host-op) the shared driver queue stalls.
    pub nic_stall: f64,
    /// Virtual seconds a NIC queue stall costs.
    pub nic_stall_s: f64,
    /// P(per-region-entry, per-rank) compute runs slowed this region.
    pub rank_slow: f64,
    /// Multiplier applied to slowed compute time.
    pub slow_factor: f64,
    /// P(per-region-entry, per-rank) the rank crashes outright.
    pub rank_crash: f64,
    /// Retransmit / re-post budget per packet or descriptor.
    pub max_retries: u32,
    /// Base of the bounded exponential backoff (virtual seconds).
    pub backoff_base_s: f64,
}

impl FaultSpec {
    /// The all-zeroes schedule: injection completely disabled.
    pub fn off() -> Self {
        FaultSpec {
            seed: 0,
            flit_corrupt: 0.0,
            link_drop: 0.0,
            link_stall: 0.0,
            stall_s: 20.0e-6,
            bus_fail: 0.0,
            bus_attempts: 3,
            dma_err: 0.0,
            pio_err: 0.0,
            nic_stall: 0.0,
            nic_stall_s: 30.0e-6,
            rank_slow: 0.0,
            slow_factor: 2.0,
            rank_crash: 0.0,
            max_retries: 8,
            backoff_base_s: 2.0e-6,
        }
    }

    /// Gentle transport-only noise: everything retries successfully
    /// with overwhelming probability, so runs always survive.
    pub fn light() -> Self {
        FaultSpec {
            flit_corrupt: 0.02,
            link_drop: 0.01,
            link_stall: 0.02,
            bus_fail: 0.05,
            dma_err: 0.02,
            pio_err: 0.01,
            nic_stall: 0.02,
            rank_slow: 0.05,
            ..FaultSpec::off()
        }
    }

    /// Aggressive transport faults — still survivable (rates well
    /// below what an 8-deep retry budget can absorb), but every
    /// recovery path gets exercised, including bus degradation.
    pub fn heavy() -> Self {
        FaultSpec {
            flit_corrupt: 0.15,
            link_drop: 0.10,
            link_stall: 0.10,
            bus_fail: 0.60,
            dma_err: 0.10,
            pio_err: 0.08,
            nic_stall: 0.10,
            rank_slow: 0.20,
            ..FaultSpec::off()
        }
    }

    /// Unsurvivable: ranks crash. Runs must end in a typed error.
    pub fn crashy() -> Self {
        FaultSpec { rank_crash: 0.5, ..FaultSpec::light() }
    }

    /// True when no fault can ever fire (rates all zero).
    pub fn is_off(&self) -> bool {
        self.flit_corrupt == 0.0
            && self.link_drop == 0.0
            && self.link_stall == 0.0
            && self.bus_fail == 0.0
            && self.dma_err == 0.0
            && self.pio_err == 0.0
            && self.nic_stall == 0.0
            && self.rank_slow == 0.0
            && self.rank_crash == 0.0
    }

    /// Parse `--faults` syntax: a preset name (`off`, `light`,
    /// `heavy`, `crashy`) optionally followed by comma-separated
    /// `key=value` overrides, or overrides alone (starting from
    /// `off`). Example: `light,drop=0.2,retries=10`. A repeated key is
    /// a typed VPCE320 error — silent last-wins would make two
    /// visually different specs produce identical runs.
    pub fn parse(s: &str) -> Result<FaultSpec, FaultParseError> {
        let mut spec = FaultSpec::off();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for (i, part) in s.split(',').enumerate() {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part {
                "off" | "light" | "heavy" | "crashy" => {
                    if i != 0 {
                        return Err(FaultParseError::new(
                            FaultSpecCode::BadValue,
                            format!("preset '{part}' must come first in a --faults spec"),
                        ));
                    }
                    spec = match part {
                        "off" => FaultSpec::off(),
                        "light" => FaultSpec::light(),
                        "heavy" => FaultSpec::heavy(),
                        _ => FaultSpec::crashy(),
                    };
                    continue;
                }
                _ => {}
            }
            let (key, value) = part.split_once('=').ok_or_else(|| {
                FaultParseError::new(
                    FaultSpecCode::BadValue,
                    format!("bad --faults item '{part}': expected key=value"),
                )
            })?;
            if !seen.insert(key.to_string()) {
                return Err(FaultParseError::new(
                    FaultSpecCode::DuplicateKey,
                    format!("duplicate --faults key '{key}': each key may appear once"),
                ));
            }
            let fval = || -> Result<f64, FaultParseError> {
                value.parse::<f64>().map_err(|_| {
                    FaultParseError::new(
                        FaultSpecCode::BadValue,
                        format!("bad --faults value '{value}' for '{key}'"),
                    )
                })
            };
            let uval = || -> Result<u32, FaultParseError> {
                value.parse::<u32>().map_err(|_| {
                    FaultParseError::new(
                        FaultSpecCode::BadValue,
                        format!("bad --faults value '{value}' for '{key}'"),
                    )
                })
            };
            let rate = |v: f64| -> Result<f64, FaultParseError> {
                if (0.0..=1.0).contains(&v) {
                    Ok(v)
                } else {
                    Err(FaultParseError::new(
                        FaultSpecCode::BadValue,
                        format!("--faults rate '{key}' must be in [0,1], got {v}"),
                    ))
                }
            };
            match key {
                "seed" => {
                    spec.seed = value.parse::<u64>().map_err(|_| {
                        FaultParseError::new(
                            FaultSpecCode::BadValue,
                            format!("bad --faults seed '{value}'"),
                        )
                    })?
                }
                "corrupt" => spec.flit_corrupt = rate(fval()?)?,
                "drop" => spec.link_drop = rate(fval()?)?,
                "stall" => spec.link_stall = rate(fval()?)?,
                "stall_s" => spec.stall_s = fval()?,
                "bus" => spec.bus_fail = rate(fval()?)?,
                "bus_attempts" => spec.bus_attempts = uval()?.max(1),
                "dma" => spec.dma_err = rate(fval()?)?,
                "pio" => spec.pio_err = rate(fval()?)?,
                "nicstall" => spec.nic_stall = rate(fval()?)?,
                "nicstall_s" => spec.nic_stall_s = fval()?,
                "slow" => spec.rank_slow = rate(fval()?)?,
                "slow_factor" => spec.slow_factor = fval()?.max(1.0),
                "crash" => spec.rank_crash = rate(fval()?)?,
                "retries" => spec.max_retries = uval()?,
                "backoff_s" => spec.backoff_base_s = fval()?,
                _ => {
                    return Err(FaultParseError::new(
                        FaultSpecCode::UnknownKey,
                        format!("unknown --faults key '{key}'"),
                    ))
                }
            }
        }
        Ok(spec)
    }
    /// The canonical `--faults` string for this spec: `off` when it
    /// equals [`FaultSpec::off`], otherwise comma-separated
    /// `key=value` overrides (only the fields that differ from `off`,
    /// in the fixed key order of [`FaultSpec::parse`]). Parsing the
    /// result reproduces the spec exactly, which is what lets jobfile
    /// records and the `vpce-serve` journal round-trip fault
    /// schedules.
    pub fn to_record(&self) -> String {
        let off = FaultSpec::off();
        let mut parts: Vec<String> = Vec::new();
        if self.seed != off.seed {
            parts.push(format!("seed={}", self.seed));
        }
        let floats = [
            ("corrupt", self.flit_corrupt, off.flit_corrupt),
            ("drop", self.link_drop, off.link_drop),
            ("stall", self.link_stall, off.link_stall),
            ("stall_s", self.stall_s, off.stall_s),
            ("bus", self.bus_fail, off.bus_fail),
            ("dma", self.dma_err, off.dma_err),
            ("pio", self.pio_err, off.pio_err),
            ("nicstall", self.nic_stall, off.nic_stall),
            ("nicstall_s", self.nic_stall_s, off.nic_stall_s),
            ("slow", self.rank_slow, off.rank_slow),
            ("slow_factor", self.slow_factor, off.slow_factor),
            ("crash", self.rank_crash, off.rank_crash),
            ("backoff_s", self.backoff_base_s, off.backoff_base_s),
        ];
        for (key, v, d) in floats {
            if v != d {
                parts.push(format!("{key}={v}"));
            }
        }
        if self.bus_attempts != off.bus_attempts {
            parts.push(format!("bus_attempts={}", self.bus_attempts));
        }
        if self.max_retries != off.max_retries {
            parts.push(format!("retries={}", self.max_retries));
        }
        if parts.is_empty() {
            "off".to_string()
        } else {
            parts.join(",")
        }
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_off_and_presets_are_not() {
        assert!(FaultSpec::off().is_off());
        assert!(!FaultSpec::light().is_off());
        assert!(!FaultSpec::heavy().is_off());
        assert!(!FaultSpec::crashy().is_off());
        assert!(FaultSpec::crashy().rank_crash > 0.0);
    }

    #[test]
    fn parse_preset_with_overrides() {
        let s = FaultSpec::parse("light,drop=0.25,retries=12,seed=7").unwrap();
        assert_eq!(s.link_drop, 0.25);
        assert_eq!(s.max_retries, 12);
        assert_eq!(s.seed, 7);
        assert_eq!(s.flit_corrupt, FaultSpec::light().flit_corrupt);
    }

    #[test]
    fn parse_bare_overrides_start_from_off() {
        let s = FaultSpec::parse("corrupt=0.1").unwrap();
        assert_eq!(s.flit_corrupt, 0.1);
        assert_eq!(s.link_drop, 0.0);
    }

    #[test]
    fn to_record_round_trips() {
        assert_eq!(FaultSpec::off().to_record(), "off");
        for spec in [
            FaultSpec::light(),
            FaultSpec::heavy(),
            FaultSpec::crashy(),
            FaultSpec::parse("heavy,seed=42,retries=3,stall_s=1e-5").unwrap(),
        ] {
            let rec = spec.to_record();
            assert_eq!(FaultSpec::parse(&rec).unwrap(), spec, "{rec}");
            assert!(!rec.contains(' '), "record must be one token: {rec}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultSpec::parse("drop=2.0").is_err());
        assert!(FaultSpec::parse("nope=1").is_err());
        assert!(FaultSpec::parse("drop").is_err());
        assert!(FaultSpec::parse("corrupt=0.1,light").is_err());
    }

    #[test]
    fn parse_errors_carry_stable_codes() {
        assert_eq!(FaultSpec::parse("drop=2.0").unwrap_err().code, FaultSpecCode::BadValue);
        assert_eq!(FaultSpec::parse("nope=1").unwrap_err().code, FaultSpecCode::UnknownKey);
        assert_eq!(FaultSpec::parse("drop").unwrap_err().code, FaultSpecCode::BadValue);
        assert_eq!(FaultSpecCode::DuplicateKey.as_str(), "VPCE320");
        assert_eq!(FaultSpecCode::UnknownKey.as_str(), "VPCE321");
        assert_eq!(FaultSpecCode::BadValue.as_str(), "VPCE322");
        assert_eq!(FaultSpecCode::DuplicateKey.severity(), Severity::Error);
    }

    #[test]
    fn duplicate_keys_are_a_typed_error_not_last_wins() {
        let err = FaultSpec::parse("drop=0.1,drop=0.2").unwrap_err();
        assert_eq!(err.code, FaultSpecCode::DuplicateKey);
        assert!(err.to_string().contains("VPCE320"), "{err}");
        assert!(err.to_string().contains("duplicate --faults key 'drop'"), "{err}");
        // Presets don't count as key tokens, and distinct keys still pass.
        assert!(FaultSpec::parse("light,drop=0.2,retries=3").is_ok());
        // A preset followed by an override of one of its fields is one
        // key occurrence — still legal.
        assert!(FaultSpec::parse("crashy,crash=0.9").is_ok());
        // Duplicates are caught across presets-with-overrides too.
        let err = FaultSpec::parse("light,seed=1,seed=2").unwrap_err();
        assert_eq!(err.code, FaultSpecCode::DuplicateKey);
        let d = err.to_diagnostic();
        assert_eq!(d.code, FaultSpecCode::DuplicateKey);
        assert!(d.detail.contains("seed"));
    }
}
