//! `vpce-faults`: the deterministic fault-injection plane and typed
//! error hierarchy for the V-Bus cluster reproduction.
//!
//! Three pieces, used across the whole stack:
//!
//! * [`FaultSpec`] / [`FaultInjector`] — a seeded, virtual-time fault
//!   schedule whose every decision is a pure hash of
//!   `(seed, site, key, salt)`. No wall clock, no shared RNG state:
//!   identical schedules reproduce identical faults regardless of OS
//!   thread interleaving.
//! * [`VpceError`] — the typed failure vocabulary replacing ad-hoc
//!   `panic!`/`unwrap` on the runtime paths of `mpi2` and `spmd-rt`.
//! * [`raise`] / [`take_raised`] — typed-panic plumbing that carries a
//!   `VpceError` out of a rank thread so `Universe::try_run` can hand
//!   the caller a clean `Result` instead of a process abort.

#![forbid(unsafe_code)]

mod error;
mod escalate;
mod inject;
mod spec;

pub use error::VpceError;
pub use escalate::{install_quiet_hook, raise, raised_ref, take_raised, Raised};
pub use inject::{site, FaultInjector};
pub use spec::{FaultParseError, FaultSpec, FaultSpecCode};
