//! The typed error hierarchy for the whole stack.
//!
//! Every non-test failure path in `mpi2` and `spmd-rt` funnels into
//! [`VpceError`]. Inside a rank thread the error travels as a typed
//! panic payload (see [`crate::raise`]) so it can cross the scoped
//! thread join; `Universe::try_run` downcasts it back and returns a
//! `Result`, so callers never see a raw panic for a modelled fault.
//!
//! Display strings are part of the public contract: several phrases
//! ("RMA past end of window", "compiled for", "INTEGER required",
//! "collective poisoned") are pinned by tests and by the infallible
//! wrappers that re-panic with the Display text.

use std::fmt;

/// A structured failure anywhere in the simulated stack.
#[derive(Debug, Clone, PartialEq)]
pub enum VpceError {
    /// A point-to-point packet exhausted its retransmit budget.
    LinkFailure {
        src: usize,
        dst: usize,
        attempts: u32,
    },
    /// V-Bus construction failed and no degraded path was permitted.
    BusFailure { root: usize, attempts: u32 },
    /// A NIC-level operation (DMA descriptor / PIO copy) exhausted
    /// its retry budget on the host side.
    NicFailure {
        rank: usize,
        what: &'static str,
        attempts: u32,
    },
    /// A rank was killed by the fault schedule.
    RankCrash { rank: usize, region: String },
    /// In-run rollback recovery could not absorb a crash: the rollback
    /// budget ran out, the spare pool was empty, or every replica of
    /// the crashed rank's checkpoint died with it. `code` is the
    /// stable VPCE40x diagnostic code.
    RecoveryFailed {
        code: &'static str,
        rank: usize,
        detail: String,
    },
    /// An RMA operation reached past the end of the target window.
    RmaBounds {
        target: usize,
        offset: usize,
        len: usize,
        size: usize,
    },
    /// A target rank outside the communicator.
    RankOutOfRange { what: &'static str, rank: usize, size: usize },
    /// Lock/unlock protocol misuse (double lock, unlock without lock,
    /// passive-target op outside an epoch).
    LockState { msg: String },
    /// A peer rank failed while this rank was blocked on it.
    PeerFailure { msg: String },
    /// The dynamic wait-for-graph detector found every live rank
    /// blocked on a condition no peer can ever satisfy: a communication
    /// deadlock. `graph` is the rendered wait-for graph at detection.
    DeadlockStall { graph: String },
    /// Program/cluster shape mismatch.
    SizeMismatch { program: usize, cluster: usize },
    /// Interpreter-level type violation (REAL where INTEGER required,
    /// division by zero, ...).
    TypeViolation { msg: String },
    /// Caller handed the runtime an argument that cannot be honoured.
    InvalidArgument { msg: String },
    /// Batch admission control refused a job at submission (bad spec,
    /// uncompilable source, or a request larger than the machine).
    AdmissionRejected { job: String, reason: String },
    /// A previously admitted job can no longer be placed — node drains
    /// shrank the machine below the job's partition footprint.
    AdmissionInfeasible { job: String, need: usize, have: usize },
    /// An internal invariant broke; always a bug, never a modelled fault.
    Internal { msg: String },
}

impl VpceError {
    /// Stable process exit code `vpcec` maps this error to.
    /// (0 = ok, 1 = usage/front-end, 2 = lint findings, 3 = runtime
    /// error, 4 = batch admission failure.)
    pub fn exit_code(&self) -> i32 {
        match self {
            VpceError::AdmissionRejected { .. } | VpceError::AdmissionInfeasible { .. } => 4,
            _ => 3,
        }
    }

    /// True when the error is an *injected* (modelled) fault rather
    /// than a program/runtime misuse.
    pub fn is_injected(&self) -> bool {
        matches!(
            self,
            VpceError::LinkFailure { .. }
                | VpceError::BusFailure { .. }
                | VpceError::NicFailure { .. }
                | VpceError::RankCrash { .. }
                | VpceError::RecoveryFailed { .. }
        )
    }

    /// Short stable category tag (used in diagnostics and JSON).
    pub fn kind(&self) -> &'static str {
        match self {
            VpceError::LinkFailure { .. } => "link-failure",
            VpceError::BusFailure { .. } => "bus-failure",
            VpceError::NicFailure { .. } => "nic-failure",
            VpceError::RankCrash { .. } => "rank-crash",
            VpceError::RecoveryFailed { .. } => "recovery-failed",
            VpceError::RmaBounds { .. } => "rma-bounds",
            VpceError::RankOutOfRange { .. } => "rank-out-of-range",
            VpceError::LockState { .. } => "lock-state",
            VpceError::PeerFailure { .. } => "peer-failure",
            VpceError::DeadlockStall { .. } => "deadlock-stall",
            VpceError::SizeMismatch { .. } => "size-mismatch",
            VpceError::TypeViolation { .. } => "type-violation",
            VpceError::InvalidArgument { .. } => "invalid-argument",
            VpceError::AdmissionRejected { .. } => "admission-rejected",
            VpceError::AdmissionInfeasible { .. } => "admission-infeasible",
            VpceError::Internal { .. } => "internal",
        }
    }
}

impl fmt::Display for VpceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VpceError::LinkFailure { src, dst, attempts } => write!(
                f,
                "link failure: packet {src}->{dst} lost after {attempts} attempts (retransmit budget exhausted)"
            ),
            VpceError::BusFailure { root, attempts } => write!(
                f,
                "V-Bus construction from node {root} failed after {attempts} attempts"
            ),
            VpceError::NicFailure { rank, what, attempts } => write!(
                f,
                "NIC failure on rank {rank}: {what} failed after {attempts} attempts"
            ),
            VpceError::RankCrash { rank, region } => {
                write!(f, "rank {rank} crashed (fault schedule) at {region}")
            }
            VpceError::RecoveryFailed { code, rank, detail } => {
                write!(f, "recovery failed [{code}] for rank {rank}: {detail}")
            }
            VpceError::RmaBounds { target, offset, len, size } => write!(
                f,
                "RMA past end of window: offset {offset} + len {len} > size {size} on target rank {target}"
            ),
            VpceError::RankOutOfRange { what, rank, size } => {
                write!(f, "{what} rank out of range: {rank} >= {size}")
            }
            VpceError::LockState { msg } => write!(f, "{msg}"),
            VpceError::PeerFailure { msg } => write!(f, "{msg}"),
            VpceError::DeadlockStall { graph } => {
                write!(f, "communication deadlock: all live ranks blocked\n{graph}")
            }
            VpceError::SizeMismatch { program, cluster } => write!(
                f,
                "program compiled for {program} ranks, cluster has {cluster}"
            ),
            VpceError::TypeViolation { msg } => write!(f, "{msg}"),
            VpceError::InvalidArgument { msg } => write!(f, "{msg}"),
            VpceError::AdmissionRejected { job, reason } => {
                write!(f, "admission rejected: job '{job}': {reason}")
            }
            VpceError::AdmissionInfeasible { job, need, have } => write!(
                f,
                "admission infeasible: job '{job}' needs {need} nodes, machine has {have} usable"
            ),
            VpceError::Internal { msg } => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for VpceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_display_phrases_survive() {
        // These substrings are load-bearing: infallible wrappers panic
        // with the Display text and existing tests match on them.
        let e = VpceError::RmaBounds { target: 1, offset: 9, len: 4, size: 8 };
        assert!(e.to_string().contains("RMA past end of window"));
        let e = VpceError::SizeMismatch { program: 4, cluster: 2 };
        assert!(e.to_string().contains("compiled for"));
        let e = VpceError::RankOutOfRange { what: "target", rank: 7, size: 4 };
        assert!(e.to_string().contains("target rank out of range"));
        let e = VpceError::PeerFailure {
            msg: "collective poisoned: a peer rank panicked".into(),
        };
        assert!(e.to_string().contains("collective poisoned"));
    }

    #[test]
    fn recovery_failed_is_exit_3_injected_and_names_its_code() {
        let e = VpceError::RecoveryFailed {
            code: "VPCE402",
            rank: 2,
            detail: "rollback budget exhausted".into(),
        };
        assert_eq!(e.exit_code(), 3);
        assert!(e.is_injected());
        assert_eq!(e.kind(), "recovery-failed");
        assert!(e.to_string().contains("VPCE402"), "{e}");
    }

    #[test]
    fn injected_vs_misuse_split() {
        assert!(VpceError::RankCrash { rank: 0, region: "r".into() }.is_injected());
        assert!(VpceError::LinkFailure { src: 0, dst: 1, attempts: 9 }.is_injected());
        assert!(!VpceError::LockState { msg: "x".into() }.is_injected());
        assert_eq!(
            VpceError::BusFailure { root: 0, attempts: 3 }.exit_code(),
            3
        );
    }

    #[test]
    fn admission_errors_are_exit_4_and_not_injected() {
        let rej = VpceError::AdmissionRejected {
            job: "wide".into(),
            reason: "requests 32 ranks on a 16-node machine".into(),
        };
        assert_eq!(rej.exit_code(), 4);
        assert!(!rej.is_injected());
        assert_eq!(rej.kind(), "admission-rejected");
        assert!(rej.to_string().contains("admission rejected"), "{rej}");
        let inf = VpceError::AdmissionInfeasible { job: "j".into(), need: 4, have: 3 };
        assert_eq!(inf.exit_code(), 4);
        assert_eq!(inf.kind(), "admission-infeasible");
        assert!(inf.to_string().contains("admission infeasible"), "{inf}");
    }
}
