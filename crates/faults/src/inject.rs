//! Pure-function fault draws.
//!
//! Every injection decision is a *stateless hash* of
//! `(seed, site, key, salt)` — there is no shared mutable RNG, so the
//! outcome of any draw is independent of thread scheduling and of how
//! many other draws happened first. Determinism then reduces to the
//! callers supplying deterministic keys (packet serials, rank numbers,
//! region indices), which they do.

use std::collections::BTreeSet;

use vpce_testkit::rng::SplitMix64;

use crate::spec::FaultSpec;

/// Injection-site discriminants. Distinct sites decorrelate draws that
/// happen to share a key (e.g. packet serial 5 on the corrupt site vs
/// the drop site).
pub mod site {
    pub const FLIT_CORRUPT: u64 = 0x01;
    pub const LINK_DROP: u64 = 0x02;
    pub const LINK_STALL: u64 = 0x03;
    pub const BUS_FAIL: u64 = 0x04;
    pub const DMA_ERR: u64 = 0x05;
    pub const PIO_ERR: u64 = 0x06;
    pub const NIC_STALL: u64 = 0x07;
    pub const RANK_SLOW: u64 = 0x08;
    pub const RANK_CRASH: u64 = 0x09;
    /// Service-layer kill points: `vpce-serve` draws journal byte
    /// offsets at which the daemon is murdered mid-write.
    pub const SERVER_KILL: u64 = 0x0A;
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Deterministic fault oracle for one run.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    spec: FaultSpec,
    /// Crash-site keys whose draws are masked for this run. Because
    /// every draw is a pure hash, masking one key shifts no other
    /// draw — this is what lets rollback recovery replay a region
    /// with an already-handled crash elided while every transport
    /// fault fires exactly as in the original attempt.
    suppressed_crashes: BTreeSet<u64>,
}

impl FaultInjector {
    pub fn new(spec: FaultSpec) -> Self {
        FaultInjector { spec, suppressed_crashes: BTreeSet::new() }
    }

    /// Mask the crash draws at these `RANK_CRASH` keys (builder form).
    pub fn with_suppressed_crashes(mut self, keys: BTreeSet<u64>) -> Self {
        self.suppressed_crashes = keys;
        self
    }

    /// The crash draw for `key`, honouring the suppression mask. Same
    /// hash as `hits(spec.rank_crash, site::RANK_CRASH, key, 0)` when
    /// the key is unmasked.
    pub fn crash_hits(&self, key: u64) -> bool {
        !self.suppressed_crashes.contains(&key)
            && self.hits(self.spec.rank_crash, site::RANK_CRASH, key, 0)
    }

    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    pub fn enabled(&self) -> bool {
        !self.spec.is_off()
    }

    /// Uniform draw in [0,1) as a pure hash of (seed, site, key, salt).
    pub fn draw(&self, site: u64, key: u64, salt: u64) -> f64 {
        let mut s = self.spec.seed;
        for w in [site, key, salt] {
            s = SplitMix64::new(s ^ w.wrapping_mul(GOLDEN)).next_u64();
        }
        // 53 high-quality bits -> f64 in [0,1).
        (s >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Does a fault with probability `rate` fire at this (site, key,
    /// salt)? Zero-rate short-circuits without hashing.
    pub fn hits(&self, rate: f64, site: u64, key: u64, salt: u64) -> bool {
        rate > 0.0 && self.draw(site, key, salt) < rate
    }

    /// Bounded exponential backoff delay before retransmit `attempt`
    /// (1-based), in virtual seconds. Doubling is capped at 2^6 so a
    /// deep retry budget cannot run the clock away.
    pub fn backoff_delay(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(6);
        self.spec.backoff_base_s * (1u64 << exp) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_site_decorrelated() {
        let inj = FaultInjector::new(FaultSpec { seed: 42, ..FaultSpec::light() });
        let a = inj.draw(site::FLIT_CORRUPT, 5, 0);
        let b = inj.draw(site::FLIT_CORRUPT, 5, 0);
        assert_eq!(a, b);
        let c = inj.draw(site::LINK_DROP, 5, 0);
        assert_ne!(a, c);
        assert!((0.0..1.0).contains(&a) && (0.0..1.0).contains(&c));
    }

    #[test]
    fn hit_rate_tracks_requested_probability() {
        let inj = FaultInjector::new(FaultSpec { seed: 7, ..FaultSpec::off() });
        let n = 20_000u64;
        let hits = (0..n)
            .filter(|&k| inj.hits(0.25, site::DMA_ERR, k, 0))
            .count() as f64;
        let freq = hits / n as f64;
        assert!((freq - 0.25).abs() < 0.02, "observed {freq}");
    }

    #[test]
    fn zero_rate_never_hits_and_one_always_does() {
        let inj = FaultInjector::new(FaultSpec::off());
        assert!(!inj.hits(0.0, site::FLIT_CORRUPT, 1, 1));
        assert!(inj.hits(1.0, site::FLIT_CORRUPT, 1, 1));
    }

    #[test]
    fn suppression_masks_only_the_named_key() {
        let spec = FaultSpec { seed: 3, rank_crash: 1.0, ..FaultSpec::off() };
        let plain = FaultInjector::new(spec.clone());
        assert!(plain.crash_hits(7));
        assert!(plain.crash_hits(8));
        let masked = FaultInjector::new(spec).with_suppressed_crashes([7u64].into());
        assert!(!masked.crash_hits(7));
        assert!(masked.crash_hits(8));
        // Non-crash draws are untouched by the mask.
        assert_eq!(
            plain.draw(site::LINK_DROP, 7, 0),
            masked.draw(site::LINK_DROP, 7, 0)
        );
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let inj = FaultInjector::new(FaultSpec::off());
        let base = inj.spec().backoff_base_s;
        assert_eq!(inj.backoff_delay(1), base);
        assert_eq!(inj.backoff_delay(2), base * 2.0);
        assert_eq!(inj.backoff_delay(3), base * 4.0);
        assert_eq!(inj.backoff_delay(7), base * 64.0);
        assert_eq!(inj.backoff_delay(30), base * 64.0);
    }
}
