//! Typed-panic propagation: how a [`VpceError`] crosses a rank thread.
//!
//! Rank bodies run as closures inside scoped threads; the only way out
//! of an arbitrary call depth without threading `Result` through every
//! user-visible signature is unwinding. [`raise`] wraps the error in
//! [`Raised`] and panics with it; the universe catches the join,
//! downcasts with [`take_raised`], and returns a proper `Result`.
//! Anything that unwinds with a *non*-`Raised` payload is a genuine
//! bug and is resumed as-is.

use std::any::Any;
use std::panic;
use std::sync::OnceLock;

use crate::error::VpceError;

/// Panic payload carrying a typed error across an unwind boundary.
pub struct Raised(pub VpceError);

/// Unwind out of the current rank with a typed error.
///
/// Installs the quiet panic hook first so the default hook does not
/// spray a backtrace for what is a modelled, recoverable failure.
pub fn raise(err: VpceError) -> ! {
    install_quiet_hook();
    panic::panic_any(Raised(err));
}

/// Recover the typed error from a caught unwind payload, or hand the
/// payload back unchanged if it was a plain panic.
pub fn take_raised(
    payload: Box<dyn Any + Send + 'static>,
) -> Result<VpceError, Box<dyn Any + Send + 'static>> {
    match payload.downcast::<Raised>() {
        Ok(r) => Ok(r.0),
        Err(other) => Err(other),
    }
}

/// Borrowing peek used by panic hooks and poison paths.
pub fn raised_ref(payload: &(dyn Any + Send)) -> Option<&VpceError> {
    payload.downcast_ref::<Raised>().map(|r| &r.0)
}

/// Install (once) a panic hook that stays silent for [`Raised`]
/// payloads and defers to the previously installed hook otherwise.
pub fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Raised>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_round_trips_through_catch_unwind() {
        let err = VpceError::RankCrash { rank: 2, region: "region 0".into() };
        let want = err.clone();
        let payload = panic::catch_unwind(|| raise(err)).unwrap_err();
        match take_raised(payload) {
            Ok(e) => assert_eq!(e, want),
            Err(_) => panic!("payload was not Raised"),
        }
    }

    #[test]
    fn plain_panics_pass_through_take_raised() {
        let payload = panic::catch_unwind(|| panic!("ordinary")).unwrap_err();
        let back = take_raised(payload).unwrap_err();
        let msg = back.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "ordinary");
    }

    #[test]
    fn raised_ref_peeks_without_consuming() {
        let payload =
            panic::catch_unwind(|| raise(VpceError::PeerFailure { msg: "p".into() }))
                .unwrap_err();
        assert!(matches!(
            raised_ref(payload.as_ref()),
            Some(VpceError::PeerFailure { .. })
        ));
    }
}
