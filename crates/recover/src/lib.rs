//! # vpce-recover — in-run rollback recovery for the V-Bus cluster
//!
//! Today a `RankCrash` aborts the whole attempt and the scheduler
//! requeues the job from scratch, discarding every cycle of virtual
//! time already spent. This crate adds the classic cluster reliability
//! primitive instead: **diskless checkpointing with buddy replication
//! and spare-node failover**.
//!
//! * After every `interval`-th parallel region, each rank's
//!   fence-boundary state (the exact `spmd_rt::checkpoint::Snapshot`
//!   payload) is PUT to `buddies` buddy ranks on other nodes, costed
//!   through the same eager/rendezvous transport model as any other
//!   one-sided transfer.
//! * When a rank crashes, the survivors quiesce, every rank rolls back
//!   to the last globally-consistent snapshot, the crashed rank is
//!   respawned from a buddy's replica onto a healthy spare node
//!   (remapped in [`cluster_sim::FailoverMap`]), and the lost regions
//!   replay deterministically.
//!
//! ## Why the recovered run is byte-identical
//!
//! Every fault draw is a pure hash of `(seed, site, key, salt)` and
//! every checkpoint is fence-exact, so a rollback + replay reproduces
//! precisely the virtual-time history the crash interrupted — the same
//! draws fire at the same keys, except the crash draw that was already
//! absorbed, which recovery masks. The driver therefore *predicts* the
//! full crash schedule up front (ascending region serial), validates
//! each crash group against the rollback budget, the replica placement
//! and the spare pool, and then executes **once** with exactly those
//! crash keys suppressed. The resulting report and trace are
//! byte-identical to the crash-free run; all recovery work lands in a
//! side [`RecoveryLedger`] whose components tile the `Recovery`
//! critical-path contribution exactly.
//!
//! ## Stable codes (VPCE40x)
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | VPCE401 | warning | recovery absorbed one or more crashes |
//! | VPCE402 | error | the crash schedule exceeded the rollback budget |
//! | VPCE403 | error | the spare-node pool ran dry |
//! | VPCE404 | error | a rank and every buddy replica crashed together |

#![forbid(unsafe_code)]

use std::collections::BTreeSet;

use cluster_sim::{ClusterConfig, FailoverMap};
use mpi2::{quiesce_cost, replica_put_cost, TransportPolicy, ELEM_BYTES};
use spmd_rt::{try_execute_suppressed, Block, ExecMode, RunReport, SpmdProgram};
use vpce_diag::{DiagCode, Severity};
use vpce_faults::{site, FaultInjector, FaultSpec, VpceError};
use vpce_trace::{EventKind, Tracer};

/// Stable diagnostic codes of the recovery driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoverCode {
    /// In-run recovery absorbed one or more crashes; the run completed.
    Succeeded,
    /// More crash groups than the rollback budget allows.
    BudgetExhausted,
    /// A crash group larger than the remaining spare pool.
    NoSpare,
    /// A rank and all of its buddy replicas crashed in the same group.
    ReplicaLost,
}

impl DiagCode for RecoverCode {
    fn as_str(self) -> &'static str {
        match self {
            RecoverCode::Succeeded => "VPCE401",
            RecoverCode::BudgetExhausted => "VPCE402",
            RecoverCode::NoSpare => "VPCE403",
            RecoverCode::ReplicaLost => "VPCE404",
        }
    }
    fn severity(self) -> Severity {
        match self {
            RecoverCode::Succeeded => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// The `--recover` configuration: checkpoint cadence, replication
/// degree, and failure budgets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoverSpec {
    /// Checkpoint after every `interval`-th parallel region (≥ 1).
    pub interval: usize,
    /// Standby nodes provisioned for failover.
    pub spares: usize,
    /// Buddy ranks holding a replica of each rank's snapshot (≥ 1).
    pub buddies: usize,
    /// Maximum rollbacks (crash groups) one run may absorb.
    pub rollbacks: usize,
}

impl Default for RecoverSpec {
    fn default() -> Self {
        RecoverSpec { interval: 1, spares: 4, buddies: 2, rollbacks: 16 }
    }
}

impl RecoverSpec {
    /// Parse `--recover` / `recover=` syntax: `on` (all defaults) or
    /// comma-separated `key=value` overrides
    /// (`interval=N,spares=K,buddies=B,rollbacks=R`), optionally led
    /// by `on`. Duplicate keys are rejected, mirroring the `--faults`
    /// grammar.
    pub fn parse(s: &str) -> Result<RecoverSpec, String> {
        let mut spec = RecoverSpec::default();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for (i, part) in s.split(',').enumerate() {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if part == "on" {
                if i != 0 {
                    return Err("'on' must come first in a --recover spec".into());
                }
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad --recover item '{part}': expected key=value"))?;
            if !seen.insert(key.to_string()) {
                return Err(format!("duplicate --recover key '{key}'"));
            }
            let uval = value
                .parse::<usize>()
                .map_err(|_| format!("bad --recover value '{value}' for '{key}'"))?;
            match key {
                "interval" => {
                    if uval == 0 {
                        return Err("--recover interval must be >= 1".into());
                    }
                    spec.interval = uval;
                }
                "spares" => spec.spares = uval,
                "buddies" => {
                    if uval == 0 {
                        return Err("--recover buddies must be >= 1".into());
                    }
                    spec.buddies = uval;
                }
                "rollbacks" => spec.rollbacks = uval,
                _ => return Err(format!("unknown --recover key '{key}'")),
            }
        }
        Ok(spec)
    }

    /// The canonical `recover=` string: `on` for the defaults,
    /// otherwise the overridden fields in fixed key order. Parsing the
    /// result reproduces the spec exactly (jobfile/journal round-trip).
    pub fn to_record(&self) -> String {
        let d = RecoverSpec::default();
        let mut parts: Vec<String> = Vec::new();
        if self.interval != d.interval {
            parts.push(format!("interval={}", self.interval));
        }
        if self.spares != d.spares {
            parts.push(format!("spares={}", self.spares));
        }
        if self.buddies != d.buddies {
            parts.push(format!("buddies={}", self.buddies));
        }
        if self.rollbacks != d.rollbacks {
            parts.push(format!("rollbacks={}", self.rollbacks));
        }
        if parts.is_empty() {
            "on".to_string()
        } else {
            parts.join(",")
        }
    }
}

/// Everything recovery did during one run, kept **out of band**: the
/// run's own report and trace stay byte-identical to the crash-free
/// execution, and this ledger carries the recovery work next to them.
/// The four time components sum to [`RecoveryLedger::recovery_total`]
/// exactly (bit-for-bit — each is a plain sum of f64 products), which
/// is the amount charged to the `Recovery` critical-path class.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryLedger {
    /// Fence-boundary checkpoints taken (= ⌊regions / interval⌋).
    pub checkpoints: usize,
    /// Bytes of one rank-0-visible snapshot payload (all arrays).
    pub payload_bytes: usize,
    /// Total bytes shipped to buddy replicas.
    pub replicated_bytes: usize,
    /// Crash groups absorbed (each = one quiesce + rollback).
    pub rollbacks: usize,
    /// Ranks respawned from a buddy replica onto a spare node.
    pub respawned: usize,
    /// Parallel regions re-executed during replays.
    pub replay_regions: usize,
    /// Virtual seconds spent replicating checkpoints to buddies.
    pub ckpt_time: f64,
    /// Virtual seconds spent quiescing survivors at rollbacks.
    pub quiesce_time: f64,
    /// Virtual seconds spent restoring replicas onto spare nodes.
    pub respawn_time: f64,
    /// Virtual seconds of deterministic re-execution after rollbacks.
    pub replay_time: f64,
    /// Every rank→node failover performed: `(rank, from, to)`.
    pub failovers: Vec<(usize, usize, usize)>,
    /// The recovery event stream (category `recovery`), in virtual-time
    /// order. Never emitted into the run's tracer — that is what keeps
    /// recovered traces byte-identical to crash-free ones.
    pub events: Vec<EventKind>,
}

impl RecoveryLedger {
    /// Total virtual time attributed to the `Recovery` critical-path
    /// class: the exact sum of the four components.
    pub fn recovery_total(&self) -> f64 {
        self.ckpt_time + self.quiesce_time + self.respawn_time + self.replay_time
    }

    /// True when recovery actually absorbed at least one crash.
    pub fn absorbed(&self) -> bool {
        self.rollbacks > 0
    }
}

/// One predicted crash group: every rank whose `RANK_CRASH` draw fires
/// at parallel-region serial `serial`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashGroup {
    pub serial: usize,
    pub ranks: Vec<usize>,
}

/// Predict the full crash schedule of a run: for each parallel-region
/// serial, the set of ranks whose crash draw fires. Pure — draws are
/// stateless hashes, so this is exactly what the run itself would see.
pub fn predict_crash_groups(
    faults: &FaultSpec,
    nprocs: usize,
    regions: usize,
) -> Vec<CrashGroup> {
    let inj = FaultInjector::new(faults.clone());
    let mut groups = Vec::new();
    for s in 0..regions {
        let ranks: Vec<usize> = (0..nprocs)
            .filter(|&r| {
                inj.hits(
                    faults.rank_crash,
                    site::RANK_CRASH,
                    ((r as u64) << 32) ^ s as u64,
                    0,
                )
            })
            .collect();
        if !ranks.is_empty() {
            groups.push(CrashGroup { serial: s, ranks });
        }
    }
    groups
}

/// Execute `prog` under `faults` with in-run rollback recovery armed.
///
/// The driver predicts every crash group, validates each in virtual-
/// time order — rollback budget, then replica survival, then spare
/// placement — and fails fast with a typed [`VpceError::RecoveryFailed`]
/// (VPCE402/404/403) if any group is unabsorbable. Otherwise it runs
/// the program **once** with exactly the absorbed crash draws masked:
/// the returned [`RunReport`] (report, arrays, boundaries, trace) is
/// byte-identical to the crash-free run, and the [`RecoveryLedger`]
/// carries the checkpoints, rollbacks, respawns and replay accounting
/// next to it.
pub fn run_recovering(
    prog: &SpmdProgram,
    cluster: &ClusterConfig,
    mode: ExecMode,
    tracer: Tracer,
    faults: FaultSpec,
    spec: &RecoverSpec,
) -> Result<(RunReport, RecoveryLedger), VpceError> {
    let n = prog.nprocs;
    // Block indices of the parallel regions, in program order; region
    // serial s executes at block pblocks[s].
    let pblocks: Vec<usize> = prog
        .blocks
        .iter()
        .enumerate()
        .filter(|(_, b)| matches!(b, Block::Parallel(_)))
        .map(|(i, _)| i)
        .collect();
    let regions = pblocks.len();

    let groups = predict_crash_groups(&faults, n, regions);
    let mut fm = FailoverMap::new(n, spec.spares);
    let mut ledger = RecoveryLedger::default();
    let mut suppressed: BTreeSet<u64> = BTreeSet::new();
    // Per absorbed group: (crash serial, checkpointed-region count
    // rolled back to, the failovers performed).
    let mut absorbed: Vec<(usize, usize, Vec<(usize, usize, usize)>)> = Vec::new();

    for g in &groups {
        let s = g.serial;
        if ledger.rollbacks + 1 > spec.rollbacks {
            return Err(VpceError::RecoveryFailed {
                code: RecoverCode::BudgetExhausted.as_str(),
                rank: g.ranks[0],
                detail: format!(
                    "crash at parallel region {s} needs rollback {} but the budget is {}",
                    ledger.rollbacks + 1,
                    spec.rollbacks
                ),
            });
        }
        // A rank is recoverable iff at least one buddy replica
        // survives the group. Buddy i of rank r lives on rank
        // (r + i) % n; a single-rank machine has no buddy at all.
        for &r in &g.ranks {
            let survivor =
                n > 1 && (1..=spec.buddies).any(|i| !g.ranks.contains(&((r + i) % n)));
            if !survivor {
                return Err(VpceError::RecoveryFailed {
                    code: RecoverCode::ReplicaLost.as_str(),
                    rank: r,
                    detail: format!(
                        "rank {r} and all {} buddy replicas crashed together at parallel region {s}",
                        spec.buddies
                    ),
                });
            }
        }
        if g.ranks.len() > fm.spares_left() {
            return Err(VpceError::RecoveryFailed {
                code: RecoverCode::NoSpare.as_str(),
                rank: g.ranks[fm.spares_left()],
                detail: format!(
                    "crash group of {} at parallel region {s} exceeds the {} spare node(s) left",
                    g.ranks.len(),
                    fm.spares_left()
                ),
            });
        }
        // The group is absorbable: consume budget and spares.
        ledger.rollbacks += 1;
        let ckpt = (s / spec.interval) * spec.interval;
        ledger.replay_regions += s - ckpt;
        let mut moves = Vec::with_capacity(g.ranks.len());
        for &r in &g.ranks {
            let (from, to) = fm.remap(r).expect("spares checked above");
            moves.push((r, from, to));
            ledger.respawned += 1;
            suppressed.insert(((r as u64) << 32) ^ s as u64);
        }
        absorbed.push((s, ckpt, moves));
    }

    // One real execution with exactly the absorbed crashes masked.
    // Every other draw — transport faults, slow ranks, unmasked
    // crashes — fires exactly as scheduled.
    let rep = try_execute_suppressed(prog, cluster, mode, tracer, faults, None, &suppressed)?;

    // Cost accounting from the final (crash-free-identical) timeline.
    let payload: usize = rep.arrays.iter().map(|a| a.len() * ELEM_BYTES).sum();
    let policy = TransportPolicy::from_config(cluster);
    let put = replica_put_cost(cluster, &policy, payload);
    ledger.checkpoints = regions / spec.interval;
    ledger.payload_bytes = payload;
    ledger.replicated_bytes = ledger.checkpoints * spec.buddies * payload;
    ledger.ckpt_time = ledger.checkpoints as f64 * spec.buddies as f64 * put;
    ledger.quiesce_time = ledger.rollbacks as f64 * quiesce_cost(cluster);
    ledger.respawn_time = ledger.respawned as f64 * put;
    // Replay time: from the rolled-back checkpoint's fence to the
    // crashed region's entry, read off the run's block boundaries.
    let entry_of = |region: usize| -> f64 {
        let blk = pblocks[region];
        if blk == 0 {
            0.0
        } else {
            rep.boundaries[blk - 1]
        }
    };
    let fence_of = |count: usize| -> f64 {
        if count == 0 {
            0.0
        } else {
            rep.boundaries[pblocks[count - 1]]
        }
    };
    for &(s, ckpt, _) in &absorbed {
        ledger.replay_time += entry_of(s) - fence_of(ckpt);
    }
    ledger.failovers = fm.history.clone();

    // The out-of-band event stream, in virtual-time order per region:
    // a crash (rollback/respawn/replay) strikes at region entry, a
    // checkpoint completes at region exit.
    let mut next = absorbed.iter().peekable();
    for j in 0..regions {
        if let Some((s, ckpt, moves)) = next.peek() {
            if *s == j {
                ledger.events.push(EventKind::Rollback { region: *ckpt, ranks: moves.len() });
                for &(rank, from, to) in moves {
                    ledger.events.push(EventKind::Respawn { rank, from, to });
                }
                ledger.events.push(EventKind::Replay { regions: s - ckpt });
                next.next();
            }
        }
        if (j + 1) % spec.interval == 0 {
            ledger.events.push(EventKind::RecoveryCheckpoint {
                region: j,
                bytes: payload,
                buddies: spec.buddies,
            });
        }
    }

    Ok((rep, ledger))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmad::RegionTransfer;
    use spmd_rt::ir::BinOp;
    use spmd_rt::{
        execute, try_execute, CommOp, CommPlan, Expr, Instr, IntrinsicOp, ParRegion, Schedule,
    };

    /// Hand-built program with `regions` identical parallel regions:
    /// each computes C[i] = A[i] * 2 over 16 iterations, block-
    /// scheduled. One crash site per (rank, region) pair.
    fn multi_region_prog(nprocs: usize, regions: usize) -> SpmdProgram {
        let n = 16usize;
        let chunk = n / nprocs;
        let per_rank = |array: usize| -> Vec<Vec<CommOp>> {
            (0..nprocs)
                .map(|r| {
                    if r == 0 {
                        vec![]
                    } else {
                        vec![CommOp {
                            array,
                            transfer: RegionTransfer {
                                offset: (r * chunk) as i64,
                                stride: 1,
                                count: chunk as u64,
                            },
                        }]
                    }
                })
                .collect()
        };
        let i_var = 0usize;
        let idx = || {
            Expr::Bin(
                BinOp::Sub,
                Box::new(Expr::Scalar(i_var)),
                Box::new(Expr::IConst(1)),
            )
        };
        let body = vec![Instr::StoreArray {
            array: 1,
            index: idx(),
            value: Expr::Bin(
                BinOp::Mul,
                Box::new(Expr::Load { array: 0, index: Box::new(idx()) }),
                Box::new(Expr::RConst(2.0)),
            ),
        }];
        let init = vec![Instr::Loop {
            var: i_var,
            lo: Expr::IConst(1),
            hi: Expr::IConst(n as i64),
            step: 1,
            body: vec![Instr::StoreArray {
                array: 0,
                index: idx(),
                value: Expr::Intr(IntrinsicOp::ToReal, vec![Expr::Scalar(i_var)]),
            }],
        }];
        let region = |line: usize| ParRegion {
            var: i_var,
            lo: 1,
            step: 1,
            trips: n as u64,
            sched: Schedule::Block,
            body: body.clone(),
            scatter: CommPlan { per_rank: per_rank(0), granularity: None },
            collect: CommPlan { per_rank: per_rank(1), granularity: None },
            pull_scatter: false,
            lock_reductions: false,
            scalars_in: vec![],
            private_scalars: vec![],
            reductions: vec![],
            line,
        };
        let mut blocks = vec![Block::MasterSeq(init.clone())];
        for k in 0..regions {
            blocks.push(Block::Parallel(region(10 + k)));
        }
        let sequential = {
            let mut s = init;
            for _ in 0..regions {
                s.push(Instr::Loop {
                    var: i_var,
                    lo: Expr::IConst(1),
                    hi: Expr::IConst(n as i64),
                    step: 1,
                    body: body.clone(),
                });
            }
            s
        };
        SpmdProgram {
            name: "MULTI".into(),
            nprocs,
            arrays: vec![("A".into(), n), ("C".into(), n)],
            scalars: vec![("I".into(), true)],
            blocks,
            sequential,
        }
    }

    fn crash_only(seed: u64, rate: f64) -> FaultSpec {
        FaultSpec { seed, rank_crash: rate, ..FaultSpec::off() }
    }

    fn generous() -> RecoverSpec {
        RecoverSpec { interval: 1, spares: 64, buddies: 3, rollbacks: 64 }
    }

    #[test]
    fn spec_parse_and_record_round_trip() {
        assert_eq!(RecoverSpec::parse("on").unwrap(), RecoverSpec::default());
        assert_eq!(RecoverSpec::parse("").unwrap(), RecoverSpec::default());
        let s = RecoverSpec::parse("interval=2,spares=3,buddies=1,rollbacks=5").unwrap();
        assert_eq!(
            s,
            RecoverSpec { interval: 2, spares: 3, buddies: 1, rollbacks: 5 }
        );
        assert_eq!(RecoverSpec::parse("on,spares=9").unwrap().spares, 9);
        for spec in [
            RecoverSpec::default(),
            s,
            RecoverSpec { interval: 4, ..RecoverSpec::default() },
            RecoverSpec { spares: 0, rollbacks: 0, ..RecoverSpec::default() },
        ] {
            let rec = spec.to_record();
            assert_eq!(RecoverSpec::parse(&rec).unwrap(), spec, "{rec}");
            assert!(!rec.contains(' '), "record must be one token: {rec}");
        }
        assert_eq!(RecoverSpec::default().to_record(), "on");
    }

    #[test]
    fn spec_parse_rejects_garbage_and_duplicates() {
        assert!(RecoverSpec::parse("interval=0").is_err());
        assert!(RecoverSpec::parse("buddies=0").is_err());
        assert!(RecoverSpec::parse("nope=1").is_err());
        assert!(RecoverSpec::parse("interval").is_err());
        assert!(RecoverSpec::parse("spares=1,on").is_err());
        let e = RecoverSpec::parse("spares=1,spares=2").unwrap_err();
        assert!(e.contains("duplicate"), "{e}");
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(RecoverCode::Succeeded.as_str(), "VPCE401");
        assert_eq!(RecoverCode::BudgetExhausted.as_str(), "VPCE402");
        assert_eq!(RecoverCode::NoSpare.as_str(), "VPCE403");
        assert_eq!(RecoverCode::ReplicaLost.as_str(), "VPCE404");
        assert_eq!(RecoverCode::Succeeded.severity(), Severity::Warning);
        assert_eq!(RecoverCode::NoSpare.severity(), Severity::Error);
    }

    #[test]
    fn prediction_matches_the_run() {
        let prog = multi_region_prog(4, 3);
        let cluster = ClusterConfig::paper_4node();
        for seed in 0..24 {
            let faults = crash_only(seed, 0.4);
            let groups = predict_crash_groups(&faults, 4, 3);
            let run = try_execute(&prog, &cluster, ExecMode::Full, faults);
            assert_eq!(
                run.is_err(),
                !groups.is_empty(),
                "seed {seed}: prediction and run disagree"
            );
        }
    }

    #[test]
    fn recovered_run_is_bit_identical_to_fault_free() {
        let prog = multi_region_prog(4, 3);
        let cluster = ClusterConfig::paper_4node();
        let clean = execute(&prog, &cluster, ExecMode::Full);
        let mut absorbed_any = false;
        for seed in 0..24 {
            let faults = crash_only(seed, 0.4);
            if try_execute(&prog, &cluster, ExecMode::Full, faults.clone()).is_ok() {
                continue;
            }
            let (rep, ledger) = run_recovering(
                &prog,
                &cluster,
                ExecMode::Full,
                Tracer::disabled(),
                faults,
                &generous(),
            )
            .unwrap_or_else(|e| panic!("seed {seed} not absorbed: {e}"));
            absorbed_any = true;
            assert!(ledger.absorbed());
            // Full canonical identity: timing bits, arrays, scalars,
            // fence boundaries.
            assert_eq!(rep.elapsed.to_bits(), clean.elapsed.to_bits(), "seed {seed}");
            assert_eq!(rep.arrays, clean.arrays, "seed {seed}");
            assert_eq!(rep.scalars, clean.scalars, "seed {seed}");
            assert_eq!(rep.boundaries, clean.boundaries, "seed {seed}");
        }
        assert!(absorbed_any, "no crashing seed in the scan — test is vacuous");
    }

    #[test]
    fn ledger_counters_and_times_tile_exactly() {
        let prog = multi_region_prog(4, 4);
        let cluster = ClusterConfig::paper_4node();
        // Find a seed with at least one crash.
        let seed = (0..64)
            .find(|&s| !predict_crash_groups(&crash_only(s, 0.4), 4, 4).is_empty())
            .expect("no crashing seed");
        let spec = RecoverSpec { interval: 2, ..generous() };
        let (rep, ledger) = run_recovering(
            &prog,
            &cluster,
            ExecMode::Full,
            Tracer::disabled(),
            crash_only(seed, 0.4),
            &spec,
        )
        .unwrap();
        // Checkpoint cadence: ⌊4 regions / interval 2⌋ = 2 snapshots.
        assert_eq!(ledger.checkpoints, 2);
        let payload: usize = rep.arrays.iter().map(|a| a.len() * ELEM_BYTES).sum();
        assert_eq!(ledger.payload_bytes, payload);
        assert_eq!(ledger.replicated_bytes, 2 * spec.buddies * payload);
        assert_eq!(ledger.respawned, ledger.failovers.len());
        // The four components tile the total bit-exactly.
        let total =
            ledger.ckpt_time + ledger.quiesce_time + ledger.respawn_time + ledger.replay_time;
        assert_eq!(total.to_bits(), ledger.recovery_total().to_bits());
        assert!(ledger.ckpt_time > 0.0);
        assert!(ledger.quiesce_time > 0.0);
        assert!(ledger.respawn_time > 0.0);
        assert!(ledger.replay_time >= 0.0);
        // Determinism: the same inputs reproduce the same ledger.
        let (_, again) = run_recovering(
            &prog,
            &cluster,
            ExecMode::Full,
            Tracer::disabled(),
            crash_only(seed, 0.4),
            &spec,
        )
        .unwrap();
        assert_eq!(ledger, again);
    }

    #[test]
    fn budget_exhaustion_is_vpce402() {
        let prog = multi_region_prog(4, 3);
        let cluster = ClusterConfig::paper_4node();
        let seed = (0..64)
            .find(|&s| !predict_crash_groups(&crash_only(s, 0.4), 4, 3).is_empty())
            .unwrap();
        let err = run_recovering(
            &prog,
            &cluster,
            ExecMode::Full,
            Tracer::disabled(),
            crash_only(seed, 0.4),
            &RecoverSpec { rollbacks: 0, ..generous() },
        )
        .unwrap_err();
        match err {
            VpceError::RecoveryFailed { code, .. } => assert_eq!(code, "VPCE402"),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn spare_exhaustion_is_vpce403() {
        let prog = multi_region_prog(4, 3);
        let cluster = ClusterConfig::paper_4node();
        // A group smaller than the machine (so replicas survive) but
        // larger than an empty spare pool.
        let seed = (0..256)
            .find(|&s| {
                let gs = predict_crash_groups(&crash_only(s, 0.4), 4, 3);
                !gs.is_empty() && gs.iter().all(|g| g.ranks.len() < 4)
            })
            .unwrap();
        let err = run_recovering(
            &prog,
            &cluster,
            ExecMode::Full,
            Tracer::disabled(),
            crash_only(seed, 0.4),
            &RecoverSpec { spares: 0, ..generous() },
        )
        .unwrap_err();
        match err {
            VpceError::RecoveryFailed { code, .. } => assert_eq!(code, "VPCE403"),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn replica_loss_is_vpce404() {
        // rate 1.0: every rank crashes at region 0, so every buddy
        // replica dies with its owner no matter the replication degree.
        let prog = multi_region_prog(4, 3);
        let cluster = ClusterConfig::paper_4node();
        let err = run_recovering(
            &prog,
            &cluster,
            ExecMode::Full,
            Tracer::disabled(),
            crash_only(1, 1.0),
            &generous(),
        )
        .unwrap_err();
        match err {
            VpceError::RecoveryFailed { code, .. } => assert_eq!(code, "VPCE404"),
            other => panic!("wrong error: {other}"),
        }
        // A single-node machine has no buddy to replicate to at all.
        let p1 = multi_region_prog(1, 2);
        let c1 = ClusterConfig::paper_n(1);
        let err = run_recovering(
            &p1,
            &c1,
            ExecMode::Full,
            Tracer::disabled(),
            crash_only(0, 1.0),
            &generous(),
        )
        .unwrap_err();
        match err {
            VpceError::RecoveryFailed { code, .. } => assert_eq!(code, "VPCE404"),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn crash_free_schedule_yields_checkpoints_but_no_rollbacks() {
        let prog = multi_region_prog(4, 3);
        let cluster = ClusterConfig::paper_4node();
        let clean = execute(&prog, &cluster, ExecMode::Full);
        let (rep, ledger) = run_recovering(
            &prog,
            &cluster,
            ExecMode::Full,
            Tracer::disabled(),
            FaultSpec::off(),
            &RecoverSpec::default(),
        )
        .unwrap();
        assert_eq!(rep.elapsed.to_bits(), clean.elapsed.to_bits());
        assert_eq!(rep.arrays, clean.arrays);
        assert!(!ledger.absorbed());
        assert_eq!(ledger.rollbacks, 0);
        assert_eq!(ledger.respawned, 0);
        assert_eq!(ledger.checkpoints, 3);
        assert_eq!(ledger.quiesce_time, 0.0);
        assert_eq!(ledger.replay_time, 0.0);
        assert!(ledger.ckpt_time > 0.0);
        // Events: exactly one checkpoint per region at interval=1.
        assert_eq!(ledger.events.len(), 3);
        assert!(ledger
            .events
            .iter()
            .all(|e| matches!(e, EventKind::RecoveryCheckpoint { .. })));
    }

    #[test]
    fn event_stream_orders_rollbacks_before_checkpoints() {
        let prog = multi_region_prog(4, 3);
        let cluster = ClusterConfig::paper_4node();
        let seed = (0..64)
            .find(|&s| !predict_crash_groups(&crash_only(s, 0.4), 4, 3).is_empty())
            .unwrap();
        let (_, ledger) = run_recovering(
            &prog,
            &cluster,
            ExecMode::Full,
            Tracer::disabled(),
            crash_only(seed, 0.4),
            &generous(),
        )
        .unwrap();
        let rollbacks = ledger
            .events
            .iter()
            .filter(|e| matches!(e, EventKind::Rollback { .. }))
            .count();
        let respawns = ledger
            .events
            .iter()
            .filter(|e| matches!(e, EventKind::Respawn { .. }))
            .count();
        assert_eq!(rollbacks, ledger.rollbacks);
        assert_eq!(respawns, ledger.respawned);
        assert!(ledger.events.iter().all(|e| e.category() == "recovery"));
    }
}
