//! # vpce-rmacheck — static RMA race & epoch-safety checker
//!
//! The paper's MPI-2 postpass (§5) emits one-sided `MPI_PUT`/`MPI_GET`
//! from splitted LMADs and elides scatter/collect traffic through the
//! AVPG — correctness silently depends on the generated transfers
//! being conflict-free within each synchronisation epoch. This crate
//! proves (or refutes) that property *before* execution:
//!
//! 1. the lowered SPMD program and its communication plan are lowered
//!    once more into per-rank event streams ([`trace::RmaTrace`]),
//!    mirroring the runtime's emission order exactly ([`lower`]);
//! 2. the epoch analysis ([`check`]) verifies synchronisation
//!    alignment (VPCE005), epoch closure (VPCE004) and scans each
//!    fence-delimited epoch for undefined-outcome pairs
//!    (VPCE001/002/003, warnings VPCE101/102) using the exact
//!    LMAD intersection algebra of `crates/lmad`;
//! 3. the AVPG staleness pass ([`stale`]) re-derives the soundness of
//!    every elided collect from the plan timeline (VPCE006).
//!
//! The analysis **over-approximates**: descriptor pairs the algebra
//! cannot decide exactly fall back to conservative interval tests, so
//! the checker may flag a conflict that cannot occur but never stays
//! green on a real one. The differential suite in `tests/` pits it
//! against the *dynamic* epoch-conflict ledger in `mpi2::conflict`
//! (exact, element-level, recorded at every closing fence) to hold
//! that soundness direction over thousands of random plans.

#![forbid(unsafe_code)]

pub mod check;
pub mod diag;
pub mod lower;
pub mod stale;
pub mod trace;

pub use diag::{Code, Diagnostic, LintReport, Severity};
pub use lower::lower;
pub use trace::{AccessKind, Event, Op, RmaTrace, Site, SyncKind};

use polaris_be::PlanReport;
use spmd_rt::ir::SpmdProgram;

/// Lint configuration.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Treat every array as live at program exit (the master's final
    /// copies are the program output). Must match the backend's
    /// `outputs_live` setting for the VPCE006 pass to agree with the
    /// AVPG's own liveness argument.
    pub outputs_live: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions { outputs_live: true }
    }
}

/// Run the full static check over a compiled program.
pub fn lint(prog: &SpmdProgram, report: &PlanReport, opts: &LintOptions) -> LintReport {
    let mut out = diag::new_report(prog.name.clone());
    let trace = lower::lower(prog, report);
    check::check_trace(&trace, &mut out);
    stale::check_elisions(prog, report, opts, &mut out);
    out.sort();
    out
}

/// Check a hand-built trace (no plan-level passes) — the entry point
/// the differential harness uses.
pub fn lint_trace(trace: &RmaTrace, program: &str) -> LintReport {
    let mut out = diag::new_report(program);
    check::check_trace(trace, &mut out);
    out.sort();
    out
}
