//! The linter's diagnostic surface: the stable `VPCE0xx` code enum
//! plus aliases onto the shared rendering model in [`vpce_diag`] (one
//! path serves `--lint` and `--verify`, so provenance format, ordering
//! and JSON shape stay consistent across tools — and the byte-exact
//! lint goldens pin that shared path).

pub use vpce_diag::Severity;

/// The stable lint diagnostic codes. Numeric values never change once
/// published: golden tests and CI diff against them. (The full VPCE
/// registry across tools is tabulated in `vpce_diag`.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// Two PUTs from different origins overlap on one shard inside a
    /// single access epoch.
    PutPut,
    /// A PUT and a GET touch the same elements inside one epoch
    /// (either the GET's target-side read or its origin-side write).
    PutGet,
    /// A remote operation collides with a rank's own local load/store
    /// while the window epoch is open.
    PutLocal,
    /// An RMA operation is issued after the last fence of its rank —
    /// it never completes inside any exposure epoch.
    Unfenced,
    /// Ranks disagree on the synchronisation sequence (fence/barrier/
    /// collective order): the program deadlocks or pairs fences across
    /// different epochs.
    DivergentSync,
    /// An AVPG-elided collect left the master copy stale, and the
    /// stale region is consumed later (or survives to program exit).
    UnsoundElision,
    /// One origin wrote the same elements twice in one epoch
    /// (last-writer ambiguity; the simulator resolves it by sequence
    /// number, real MPI-2 does not).
    SameOriginOverlap,
    /// One origin read and wrote the same elements in one epoch
    /// (e.g. overlapping GETs into the same local region).
    RedundantOverlap,
}

impl Code {
    /// The stable wire string, e.g. `"VPCE001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::PutPut => "VPCE001",
            Code::PutGet => "VPCE002",
            Code::PutLocal => "VPCE003",
            Code::Unfenced => "VPCE004",
            Code::DivergentSync => "VPCE005",
            Code::UnsoundElision => "VPCE006",
            Code::SameOriginOverlap => "VPCE101",
            Code::RedundantOverlap => "VPCE102",
        }
    }

    pub fn severity(self) -> Severity {
        match self {
            Code::SameOriginOverlap | Code::RedundantOverlap => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl vpce_diag::DiagCode for Code {
    fn as_str(self) -> &'static str {
        Code::as_str(self)
    }
    fn severity(self) -> Severity {
        Code::severity(self)
    }
}

/// One lint finding (the shared record, carrying this crate's codes).
pub type Diagnostic = vpce_diag::Diagnostic<Code>;

/// The full lint result for one compiled program.
pub type LintReport = vpce_diag::Report<Code>;

/// A fresh, empty lint report for `program` with the linter's
/// rendering style.
pub fn new_report(program: impl Into<String>) -> LintReport {
    LintReport::new("lint", "clean (no RMA conflicts)", program)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: Code) -> Diagnostic {
        Diagnostic {
            code,
            win: 0,
            win_name: "A".into(),
            shard: 0,
            ranks: (1, 2),
            line: 3,
            site: "collect".into(),
            detail: "x".into(),
        }
    }

    #[test]
    fn exit_codes_follow_severity() {
        let mut r = new_report("p");
        assert_eq!(r.exit_code(), 0);
        r.push(diag(Code::SameOriginOverlap));
        assert_eq!(r.exit_code(), 1);
        r.push(diag(Code::PutPut));
        assert_eq!(r.exit_code(), 2);
    }

    #[test]
    fn sort_puts_errors_before_warnings_and_dedups() {
        let mut r = new_report("p");
        r.push(diag(Code::SameOriginOverlap));
        r.push(diag(Code::PutPut));
        r.push(diag(Code::PutPut));
        r.sort();
        assert_eq!(r.diags.len(), 2);
        assert_eq!(r.diags[0].code, Code::PutPut);
        assert_eq!(r.diags[1].code, Code::SameOriginOverlap);
    }

    #[test]
    fn rendering_keeps_the_pre_extraction_format() {
        // The goldens pin these exact shapes; the shared emitter must
        // reproduce them byte-for-byte.
        let mut r = new_report("p");
        assert_eq!(r.render_human(), "lint: p: clean (no RMA conflicts)\n");
        r.push(diag(Code::PutPut));
        let text = r.render_human();
        assert_eq!(
            text,
            "error[VPCE001] window A shard 0 ranks 1/2 (loop at line 3) [collect]: x\n\
             lint: p: 1 error(s), 0 warning(s)\n"
        );
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = new_report("quo\"te");
        let mut d = diag(Code::PutGet);
        d.detail = "line1\nline2".into();
        r.push(d);
        let j = r.to_json();
        assert!(j.contains("\"program\": \"quo\\\"te\""));
        assert!(j.contains("\"code\": \"VPCE002\""));
        assert!(j.contains("line1\\nline2"));
        assert!(j.contains("\"exit\": 2"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::PutPut.as_str(), "VPCE001");
        assert_eq!(Code::PutGet.as_str(), "VPCE002");
        assert_eq!(Code::PutLocal.as_str(), "VPCE003");
        assert_eq!(Code::Unfenced.as_str(), "VPCE004");
        assert_eq!(Code::DivergentSync.as_str(), "VPCE005");
        assert_eq!(Code::UnsoundElision.as_str(), "VPCE006");
        assert_eq!(Code::SameOriginOverlap.as_str(), "VPCE101");
        assert_eq!(Code::RedundantOverlap.as_str(), "VPCE102");
    }
}
