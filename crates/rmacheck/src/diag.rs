//! Structured lint diagnostics: stable `VPCE0xx` codes, plan-site and
//! source-loop provenance, deterministic ordering, and a hand-rolled
//! machine-readable JSON rendering (no serialisation dependency).

use std::fmt::Write as _;

/// How bad a finding is. Errors are undefined-outcome RMA conflicts;
/// warnings are legal-but-suspect patterns (same-origin overlap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

/// The stable diagnostic codes. Numeric values never change once
/// published: golden tests and CI diff against them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// Two PUTs from different origins overlap on one shard inside a
    /// single access epoch.
    PutPut,
    /// A PUT and a GET touch the same elements inside one epoch
    /// (either the GET's target-side read or its origin-side write).
    PutGet,
    /// A remote operation collides with a rank's own local load/store
    /// while the window epoch is open.
    PutLocal,
    /// An RMA operation is issued after the last fence of its rank —
    /// it never completes inside any exposure epoch.
    Unfenced,
    /// Ranks disagree on the synchronisation sequence (fence/barrier/
    /// collective order): the program deadlocks or pairs fences across
    /// different epochs.
    DivergentSync,
    /// An AVPG-elided collect left the master copy stale, and the
    /// stale region is consumed later (or survives to program exit).
    UnsoundElision,
    /// One origin wrote the same elements twice in one epoch
    /// (last-writer ambiguity; the simulator resolves it by sequence
    /// number, real MPI-2 does not).
    SameOriginOverlap,
    /// One origin read and wrote the same elements in one epoch
    /// (e.g. overlapping GETs into the same local region).
    RedundantOverlap,
}

impl Code {
    /// The stable wire string, e.g. `"VPCE001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::PutPut => "VPCE001",
            Code::PutGet => "VPCE002",
            Code::PutLocal => "VPCE003",
            Code::Unfenced => "VPCE004",
            Code::DivergentSync => "VPCE005",
            Code::UnsoundElision => "VPCE006",
            Code::SameOriginOverlap => "VPCE101",
            Code::RedundantOverlap => "VPCE102",
        }
    }

    pub fn severity(self) -> Severity {
        match self {
            Code::SameOriginOverlap | Code::RedundantOverlap => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// One finding, with enough provenance to locate it in both the plan
/// (window, shard, ranks, phase) and the source (loop line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: Code,
    /// Window index (= array index); `usize::MAX` when not tied to a
    /// particular window.
    pub win: usize,
    /// Window (array) name, empty when not applicable.
    pub win_name: String,
    /// Rank owning the shard where the footprints collide.
    pub shard: usize,
    /// The two involved ranks (sorted; equal for single-rank findings).
    pub ranks: (usize, usize),
    /// Source line of the originating loop (0 = unknown).
    pub line: usize,
    /// Plan site: which lowering phase produced the operations
    /// (`scatter`, `collect`, `compute`, `sync`, `avpg`, ...).
    pub site: String,
    /// Human-readable explanation.
    pub detail: String,
}

impl Diagnostic {
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

/// The full lint result for one compiled program.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    pub program: String,
    pub diags: Vec<Diagnostic>,
}

impl LintReport {
    pub fn new(program: impl Into<String>) -> Self {
        LintReport {
            program: program.into(),
            diags: Vec::new(),
        }
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Deterministic presentation order: errors first, then by code,
    /// window, shard, ranks, line.
    pub fn sort(&mut self) {
        self.diags.sort_by(|a, b| {
            b.severity()
                .cmp(&a.severity())
                .then(a.code.cmp(&b.code))
                .then(a.win.cmp(&b.win))
                .then(a.shard.cmp(&b.shard))
                .then(a.ranks.cmp(&b.ranks))
                .then(a.line.cmp(&b.line))
                .then(a.detail.cmp(&b.detail))
        });
        self.diags.dedup();
    }

    pub fn errors(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .count()
    }

    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Process exit code: 0 clean, 1 warnings only, 2 any conflict.
    pub fn exit_code(&self) -> i32 {
        if self.errors() > 0 {
            2
        } else if self.warnings() > 0 {
            1
        } else {
            0
        }
    }

    /// Terminal rendering.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            let _ = writeln!(out, "lint: {}: clean (no RMA conflicts)", self.program);
            return out;
        }
        for d in &self.diags {
            let sev = match d.severity() {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let _ = write!(out, "{sev}[{}]", d.code.as_str());
            if !d.win_name.is_empty() {
                let _ = write!(out, " window {}", d.win_name);
            }
            if d.shard != usize::MAX {
                let _ = write!(out, " shard {}", d.shard);
            }
            if d.ranks.0 != usize::MAX {
                if d.ranks.0 == d.ranks.1 {
                    let _ = write!(out, " rank {}", d.ranks.0);
                } else {
                    let _ = write!(out, " ranks {}/{}", d.ranks.0, d.ranks.1);
                }
            }
            if d.line > 0 {
                let _ = write!(out, " (loop at line {})", d.line);
            }
            let _ = writeln!(out, " [{}]: {}", d.site, d.detail);
        }
        let _ = writeln!(
            out,
            "lint: {}: {} error(s), {} warning(s)",
            self.program,
            self.errors(),
            self.warnings()
        );
        out
    }

    /// Machine-readable JSON: stable key order, one canonical shape.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"program\": \"{}\",", json_escape(&self.program));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"code\": \"{}\", ", d.code.as_str());
            let sev = match d.severity() {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let _ = write!(out, "\"severity\": \"{sev}\", ");
            if d.win != usize::MAX {
                let _ = write!(out, "\"win\": {}, ", d.win);
                let _ = write!(out, "\"window\": \"{}\", ", json_escape(&d.win_name));
            }
            if d.shard != usize::MAX {
                let _ = write!(out, "\"shard\": {}, ", d.shard);
            }
            if d.ranks.0 != usize::MAX {
                let _ = write!(out, "\"ranks\": [{}, {}], ", d.ranks.0, d.ranks.1);
            }
            let _ = write!(out, "\"line\": {}, ", d.line);
            let _ = write!(out, "\"site\": \"{}\", ", json_escape(&d.site));
            let _ = write!(out, "\"detail\": \"{}\"", json_escape(&d.detail));
            out.push('}');
        }
        if !self.diags.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        let _ = writeln!(
            out,
            "  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"exit\": {}}}",
            self.errors(),
            self.warnings(),
            self.exit_code()
        );
        out.push('}');
        out.push('\n');
        out
    }
}

/// Minimal JSON string escaping (control chars, quotes, backslash).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: Code) -> Diagnostic {
        Diagnostic {
            code,
            win: 0,
            win_name: "A".into(),
            shard: 0,
            ranks: (1, 2),
            line: 3,
            site: "collect".into(),
            detail: "x".into(),
        }
    }

    #[test]
    fn exit_codes_follow_severity() {
        let mut r = LintReport::new("p");
        assert_eq!(r.exit_code(), 0);
        r.push(diag(Code::SameOriginOverlap));
        assert_eq!(r.exit_code(), 1);
        r.push(diag(Code::PutPut));
        assert_eq!(r.exit_code(), 2);
    }

    #[test]
    fn sort_puts_errors_before_warnings_and_dedups() {
        let mut r = LintReport::new("p");
        r.push(diag(Code::SameOriginOverlap));
        r.push(diag(Code::PutPut));
        r.push(diag(Code::PutPut));
        r.sort();
        assert_eq!(r.diags.len(), 2);
        assert_eq!(r.diags[0].code, Code::PutPut);
        assert_eq!(r.diags[1].code, Code::SameOriginOverlap);
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = LintReport::new("quo\"te");
        let mut d = diag(Code::PutGet);
        d.detail = "line1\nline2".into();
        r.push(d);
        let j = r.to_json();
        assert!(j.contains("\"program\": \"quo\\\"te\""));
        assert!(j.contains("\"code\": \"VPCE002\""));
        assert!(j.contains("line1\\nline2"));
        assert!(j.contains("\"exit\": 2"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::PutPut.as_str(), "VPCE001");
        assert_eq!(Code::PutGet.as_str(), "VPCE002");
        assert_eq!(Code::PutLocal.as_str(), "VPCE003");
        assert_eq!(Code::Unfenced.as_str(), "VPCE004");
        assert_eq!(Code::DivergentSync.as_str(), "VPCE005");
        assert_eq!(Code::UnsoundElision.as_str(), "VPCE006");
        assert_eq!(Code::SameOriginOverlap.as_str(), "VPCE101");
        assert_eq!(Code::RedundantOverlap.as_str(), "VPCE102");
    }
}
