//! Lower a compiled SPMD program plus its communication plan into an
//! [`RmaTrace`] — mirroring, event for event, the order in which
//! `spmd-rt::exec::run_region` drives the MPI library (§3's protocol):
//!
//! ```text
//! barrier                                  (slaves released)
//! [bcast]                                  (shared scalars in)
//! scatter  PUTs (push) / GETs (pull)       -- scatter epoch
//! fence
//! compute  local loads/stores              -- collect epoch opens
//! [reduce | barrier,barrier]               (reduction combine)
//! collect  PUTs (slaves -> master)
//! fence                                    -- collect epoch closes
//! barrier
//! ```
//!
//! Master-only sequential sections emit no events: they run strictly
//! between regions (barrier-ordered) with no epoch open, so they can
//! never participate in an RMA conflict. Their interaction with the
//! plan is checked separately by the AVPG staleness pass
//! ([`crate::stale`]).

use lmad::Lmad;
use polaris_be::PlanReport;
use spmd_rt::ir::{Block, ParRegion, SpmdProgram};

use crate::trace::{AccessKind, Op, RmaTrace, Site, SyncKind};

/// The memory region one wire transfer covers.
fn transfer_lmad(t: &lmad::RegionTransfer) -> Lmad {
    Lmad::strided(t.offset, t.stride as i64, t.count)
}

/// Build the per-rank event streams for `prog`. `report` supplies the
/// compute-phase footprints (local accesses that share the collect
/// epoch); when a region has no matching report entry the local
/// accesses are simply absent from the trace (communication events
/// are still complete).
pub fn lower(prog: &SpmdProgram, report: &PlanReport) -> RmaTrace {
    let n = prog.nprocs;
    let win_names = prog.arrays.iter().map(|(name, _)| name.clone()).collect();
    let mut trace = RmaTrace::new(n, win_names);
    let mut region_idx = 0usize;
    for block in &prog.blocks {
        let region = match block {
            Block::MasterSeq(_) => continue,
            Block::Parallel(r) => r,
        };
        let info = report.regions.get(region_idx);
        region_idx += 1;
        lower_region(&mut trace, region, info, n);
    }
    trace
}

fn lower_region(
    trace: &mut RmaTrace,
    region: &ParRegion,
    info: Option<&polaris_be::RegionPlanInfo>,
    n: usize,
) {
    let line = region.line;
    // Entry barrier: slaves join the computation.
    trace.sync_all(SyncKind::Barrier);

    // Shared scalars travel master -> everyone.
    if !region.scalars_in.is_empty() {
        trace.sync_all(SyncKind::Bcast);
    }

    // Scatter epoch. Push: the master PUTs every slave's regions.
    // Pull: each slave GETs its own regions from the master.
    if region.pull_scatter {
        for (r, ops) in region.scatter.per_rank.iter().enumerate().skip(1) {
            for op in ops {
                trace.op(
                    r,
                    Op {
                        win: op.array,
                        target: 0,
                        kind: AccessKind::Get,
                        region: transfer_lmad(&op.transfer),
                        line,
                        site: Site::Scatter,
                    },
                );
            }
        }
    } else {
        for (r, ops) in region.scatter.per_rank.iter().enumerate() {
            for op in ops {
                trace.op(
                    0,
                    Op {
                        win: op.array,
                        target: r,
                        kind: AccessKind::Put,
                        region: transfer_lmad(&op.transfer),
                        line,
                        site: Site::Scatter,
                    },
                );
            }
        }
    }
    trace.sync_all(SyncKind::Fence);

    // Compute phase: every rank's local loads/stores hit its own
    // shard while the collect epoch is open (the interpreter holds
    // the window locks). These can collide with incoming collect
    // PUTs on the master's shard.
    if let Some(info) = info {
        for r in 0..n {
            for (a, lm) in info.rank_writes.get(r).into_iter().flatten() {
                trace.op(
                    r,
                    Op {
                        win: *a,
                        target: r,
                        kind: AccessKind::LocalWrite,
                        region: lm.clone(),
                        line,
                        site: Site::Compute,
                    },
                );
            }
            for (a, lm) in info.rank_reads.get(r).into_iter().flatten() {
                trace.op(
                    r,
                    Op {
                        win: *a,
                        target: r,
                        kind: AccessKind::LocalRead,
                        region: lm.clone(),
                        line,
                        site: Site::Compute,
                    },
                );
            }
        }
    }

    // Reduction combine: the collective tree, or two barriers
    // bracketing the lock/accumulate critical sections (passive-target
    // epochs, serialised by the exclusive lock — not traced).
    if !region.reductions.is_empty() {
        if region.lock_reductions {
            trace.sync_all(SyncKind::Barrier);
            trace.sync_all(SyncKind::Barrier);
        } else {
            for _ in &region.reductions {
                trace.sync_all(SyncKind::Reduce);
            }
        }
    }

    // Collect: slaves PUT write-first/read-write regions back to the
    // master; closed by the second fence, then the exit barrier.
    for (r, ops) in region.collect.per_rank.iter().enumerate().skip(1) {
        for op in ops {
            trace.op(
                r,
                Op {
                    win: op.array,
                    target: 0,
                    kind: AccessKind::Put,
                    region: transfer_lmad(&op.transfer),
                    line,
                    site: Site::Collect,
                },
            );
        }
    }
    trace.sync_all(SyncKind::Fence);
    trace.sync_all(SyncKind::Barrier);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Event;
    use lmad::RegionTransfer;
    use spmd_rt::ir::{CommOp, CommPlan, Schedule};

    fn comm(per_rank: Vec<Vec<CommOp>>) -> CommPlan {
        CommPlan {
            per_rank,
            granularity: None,
        }
    }

    fn op(array: usize, offset: i64, count: u64) -> CommOp {
        CommOp {
            array,
            transfer: RegionTransfer {
                offset,
                stride: 1,
                count,
            },
        }
    }

    fn region(n: usize) -> ParRegion {
        ParRegion {
            var: 0,
            lo: 1,
            step: 1,
            trips: 8,
            sched: Schedule::Block,
            body: Vec::new(),
            scatter: comm(vec![Vec::new(); n]),
            collect: comm(vec![Vec::new(); n]),
            pull_scatter: false,
            lock_reductions: false,
            scalars_in: Vec::new(),
            private_scalars: Vec::new(),
            reductions: Vec::new(),
            line: 7,
        }
    }

    fn program(n: usize, blocks: Vec<Block>) -> SpmdProgram {
        SpmdProgram {
            name: "t".into(),
            nprocs: n,
            arrays: vec![("A".into(), 16)],
            scalars: Vec::new(),
            blocks,
            sequential: Vec::new(),
        }
    }

    fn syncs(evs: &[Event]) -> Vec<SyncKind> {
        evs.iter()
            .filter_map(|e| match e {
                Event::Sync(k) => Some(*k),
                Event::Rma(_) => None,
            })
            .collect()
    }

    #[test]
    fn push_scatter_emits_master_puts_in_scatter_epoch() {
        let mut r = region(2);
        r.scatter.per_rank[1].push(op(0, 8, 8));
        r.collect.per_rank[1].push(op(0, 8, 8));
        let prog = program(2, vec![Block::Parallel(r)]);
        let trace = lower(&prog, &PlanReport::default());
        // Master stream: barrier, scatter PUT, fence, fence, barrier.
        let m = &trace.ranks[0];
        assert!(matches!(
            &m[1],
            Event::Rma(Op { kind: AccessKind::Put, target: 1, site: Site::Scatter, .. })
        ));
        // Slave stream: barrier, fence, collect PUT, fence, barrier.
        let s = &trace.ranks[1];
        assert!(matches!(
            &s[2],
            Event::Rma(Op { kind: AccessKind::Put, target: 0, site: Site::Collect, line: 7, .. })
        ));
        // Sync sequences agree across ranks.
        assert_eq!(syncs(m), syncs(s));
        assert_eq!(
            syncs(m),
            vec![
                SyncKind::Barrier,
                SyncKind::Fence,
                SyncKind::Fence,
                SyncKind::Barrier
            ]
        );
    }

    #[test]
    fn pull_scatter_emits_slave_gets() {
        let mut r = region(2);
        r.pull_scatter = true;
        r.scatter.per_rank[1].push(op(0, 0, 4));
        let prog = program(2, vec![Block::Parallel(r)]);
        let trace = lower(&prog, &PlanReport::default());
        let s = &trace.ranks[1];
        assert!(matches!(
            &s[1],
            Event::Rma(Op { kind: AccessKind::Get, target: 0, .. })
        ));
        // Master issued no scatter ops.
        assert!(trace.ranks[0]
            .iter()
            .all(|e| matches!(e, Event::Sync(_))));
    }

    #[test]
    fn compute_footprints_land_in_collect_epoch() {
        let r = region(2);
        let prog = program(2, vec![Block::Parallel(r)]);
        let mut report = PlanReport::default();
        report.regions.push(polaris_be::RegionPlanInfo {
            rank_writes: vec![
                vec![(0, Lmad::contiguous(0, 8))],
                vec![(0, Lmad::contiguous(8, 8))],
            ],
            rank_reads: vec![Vec::new(), Vec::new()],
            ..Default::default()
        });
        let trace = lower(&prog, &report);
        // Master: barrier, fence, LocalWrite, fence, barrier — the
        // local write sits strictly between the two fences.
        let m = &trace.ranks[0];
        assert!(matches!(&m[1], Event::Sync(SyncKind::Fence)));
        assert!(matches!(
            &m[2],
            Event::Rma(Op { kind: AccessKind::LocalWrite, target: 0, site: Site::Compute, .. })
        ));
        assert!(matches!(&m[3], Event::Sync(SyncKind::Fence)));
    }

    #[test]
    fn reductions_and_scalars_shape_the_sync_sequence() {
        let mut r = region(2);
        r.scalars_in = vec![0];
        r.reductions.push(spmd_rt::ir::Reduction {
            scalar: 0,
            op: spmd_rt::ir::RedOp::Sum,
            identity: 0.0,
        });
        let prog = program(2, vec![Block::Parallel(r)]);
        let trace = lower(&prog, &PlanReport::default());
        assert_eq!(
            syncs(&trace.ranks[0]),
            vec![
                SyncKind::Barrier,
                SyncKind::Bcast,
                SyncKind::Fence,
                SyncKind::Reduce,
                SyncKind::Fence,
                SyncKind::Barrier
            ]
        );
        // Lock reductions: barriers instead of the collective.
        let mut r2 = region(2);
        r2.lock_reductions = true;
        r2.reductions.push(spmd_rt::ir::Reduction {
            scalar: 0,
            op: spmd_rt::ir::RedOp::Sum,
            identity: 0.0,
        });
        let prog2 = program(2, vec![Block::Parallel(r2)]);
        let trace2 = lower(&prog2, &PlanReport::default());
        assert_eq!(
            syncs(&trace2.ranks[0]),
            vec![
                SyncKind::Barrier,
                SyncKind::Fence,
                SyncKind::Barrier,
                SyncKind::Barrier,
                SyncKind::Fence,
                SyncKind::Barrier
            ]
        );
    }

    #[test]
    fn master_seq_blocks_emit_nothing() {
        let prog = program(2, vec![Block::MasterSeq(Vec::new())]);
        let trace = lower(&prog, &PlanReport::default());
        assert!(trace.ranks.iter().all(Vec::is_empty));
    }
}
