//! The checker's intermediate form: per-rank streams of RMA operations
//! and synchronisation events, abstracted from the lowered SPMD
//! program. Element footprints are [`Lmad`] descriptors, so the epoch
//! conflict scan inherits the exact/conservative intersection algebra
//! of `crates/lmad` (see [`Lmad::overlaps`]).

use lmad::Lmad;

/// What one operation does to a window shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// One-sided remote write (`MPI_PUT`): writes `target`'s shard.
    Put,
    /// One-sided remote read (`MPI_GET`): reads `target`'s shard *and*
    /// writes the origin's own shard at the same offsets (the windows
    /// are symmetric full-size arrays, §5.1).
    Get,
    /// A local store executed while the window epoch is open (the
    /// compute phase holds the window locks).
    LocalWrite,
    /// A local load under an open epoch.
    LocalRead,
}

/// Where in the lowering an operation comes from (plan-site
/// provenance for diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    Scatter,
    Collect,
    Compute,
    /// Hand-built traces (unit tests, differential harness).
    Synthetic,
}

impl Site {
    pub fn as_str(self) -> &'static str {
        match self {
            Site::Scatter => "scatter",
            Site::Collect => "collect",
            Site::Compute => "compute",
            Site::Synthetic => "synthetic",
        }
    }
}

/// One RMA or epoch-local access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// Window index (= array index in the SPMD program).
    pub win: usize,
    /// Rank whose shard the primary access touches (for local
    /// accesses this equals the issuing rank).
    pub target: usize,
    pub kind: AccessKind,
    /// Element footprint on the shard.
    pub region: Lmad,
    /// Source line of the originating loop (0 = unknown).
    pub line: usize,
    pub site: Site,
}

/// Synchronisation flavours that must agree across ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncKind {
    /// `MPI_WIN_FENCE` over all windows — the only event that closes
    /// an access epoch.
    Fence,
    Barrier,
    /// A value-carrying collective (broadcast of shared scalars).
    Bcast,
    /// A reduction tree combine.
    Reduce,
}

impl SyncKind {
    pub fn as_str(self) -> &'static str {
        match self {
            SyncKind::Fence => "fence",
            SyncKind::Barrier => "barrier",
            SyncKind::Bcast => "bcast",
            SyncKind::Reduce => "reduce",
        }
    }
}

/// One event in a rank's program-order stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    Rma(Op),
    Sync(SyncKind),
}

/// The whole-program trace: one event stream per rank.
#[derive(Debug, Clone, Default)]
pub struct RmaTrace {
    pub nranks: usize,
    /// Window (array) names, indexed by `Op::win`.
    pub win_names: Vec<String>,
    pub ranks: Vec<Vec<Event>>,
}

impl RmaTrace {
    pub fn new(nranks: usize, win_names: Vec<String>) -> Self {
        RmaTrace {
            nranks,
            win_names,
            ranks: vec![Vec::new(); nranks],
        }
    }

    pub fn win_name(&self, win: usize) -> &str {
        self.win_names.get(win).map_or("?", |s| s.as_str())
    }

    /// Append a sync event on every rank (collective call sites).
    pub fn sync_all(&mut self, kind: SyncKind) {
        for evs in &mut self.ranks {
            evs.push(Event::Sync(kind));
        }
    }

    /// Append an RMA op on one rank's stream.
    pub fn op(&mut self, rank: usize, op: Op) {
        self.ranks[rank].push(Event::Rma(op));
    }
}
