//! The epoch analysis over an [`RmaTrace`]:
//!
//! 1. **Sync alignment** — every rank must execute the same sequence
//!    of fences/barriers/collectives, or the program deadlocks and
//!    fences pair across different epochs (VPCE005).
//! 2. **Epoch closure** — an RMA operation issued after a rank's last
//!    fence never completes inside any exposure epoch (VPCE004).
//! 3. **Epoch conflicts** — within each fence-delimited epoch, every
//!    pair of operations touching the same (window, shard) is
//!    classified; overlapping element footprints with at least one
//!    write are undefined-outcome conflicts (VPCE001/002/003) or
//!    same-origin warnings (VPCE101/102).
//!
//! Footprint intersection uses [`lmad::Lmad::overlaps`], which is
//! exact whenever the closed-form/enumeration paths apply and falls
//! back to a conservative interval test otherwise — so this pass
//! **over-approximates**: it may flag a conflict that cannot happen,
//! but never stays green on a real one. That direction is what the
//! differential suite against the `mpi2` dynamic ledger relies on.
//!
//! Barriers and collectives inside an epoch do **not** split it: MPI-2
//! orders RMA only at fences (ops are buffered until the epoch
//! closes), so a barrier between two conflicting PUTs does not
//! serialise them.

use crate::diag::{Code, Diagnostic, LintReport};
use crate::trace::{AccessKind, Event, Op, RmaTrace, SyncKind};

/// One side of an operation's element-level effect on a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Write,
    Read,
}

/// A flattened effect: which shard it touches, how, and from where.
struct Effect<'a> {
    origin: usize,
    shard: usize,
    role: Role,
    op: &'a Op,
}

/// Mirror of the dynamic ledger's effect expansion
/// (`mpi2::conflict::effects`): a GET reads the target shard *and*
/// writes the origin's own shard at the same offsets; a self-GET is
/// the identity under the symmetric window layout.
fn effects<'a>(origin: usize, op: &'a Op) -> Vec<Effect<'a>> {
    match op.kind {
        AccessKind::Put => vec![Effect {
            origin,
            shard: op.target,
            role: Role::Write,
            op,
        }],
        AccessKind::Get => {
            if op.target == origin {
                return Vec::new();
            }
            vec![
                Effect {
                    origin,
                    shard: op.target,
                    role: Role::Read,
                    op,
                },
                Effect {
                    origin,
                    shard: origin,
                    role: Role::Write,
                    op,
                },
            ]
        }
        AccessKind::LocalWrite => vec![Effect {
            origin,
            shard: op.target,
            role: Role::Write,
            op,
        }],
        AccessKind::LocalRead => vec![Effect {
            origin,
            shard: op.target,
            role: Role::Read,
            op,
        }],
    }
}

fn is_local(k: AccessKind) -> bool {
    matches!(k, AccessKind::LocalWrite | AccessKind::LocalRead)
}

/// Pick the diagnostic code for a colliding pair.
fn pair_code(a: &Effect, b: &Effect) -> Code {
    if a.origin == b.origin {
        if a.role == Role::Write && b.role == Role::Write {
            Code::SameOriginOverlap
        } else {
            Code::RedundantOverlap
        }
    } else if is_local(a.op.kind) || is_local(b.op.kind) {
        Code::PutLocal
    } else if a.op.kind == AccessKind::Get || b.op.kind == AccessKind::Get {
        Code::PutGet
    } else {
        Code::PutPut
    }
}

/// Run the three epoch checks over `trace`, appending findings to
/// `out`.
pub fn check_trace(trace: &RmaTrace, out: &mut LintReport) {
    // ---- 1. sync alignment ----
    let sync_seqs: Vec<Vec<SyncKind>> = trace
        .ranks
        .iter()
        .map(|evs| {
            evs.iter()
                .filter_map(|e| match e {
                    Event::Sync(k) => Some(*k),
                    Event::Rma(_) => None,
                })
                .collect()
        })
        .collect();
    let mut divergent = false;
    for (r, seq) in sync_seqs.iter().enumerate().skip(1) {
        if seq != &sync_seqs[0] {
            divergent = true;
            let pos = seq
                .iter()
                .zip(&sync_seqs[0])
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| seq.len().min(sync_seqs[0].len()));
            let (a, b) = (
                sync_seqs[0].get(pos).map_or("end", |k| k.as_str()),
                seq.get(pos).map_or("end", |k| k.as_str()),
            );
            out.push(Diagnostic {
                code: Code::DivergentSync,
                win: usize::MAX,
                win_name: String::new(),
                shard: usize::MAX,
                ranks: (0, r),
                line: 0,
                site: "sync".into(),
                detail: format!(
                    "ranks disagree on synchronisation step {pos}: rank 0 \
                     performs `{a}` while rank {r} performs `{b}` — the \
                     program deadlocks or pairs fences across epochs"
                ),
            });
        }
    }

    // ---- 2. epoch closure ----
    for (r, evs) in trace.ranks.iter().enumerate() {
        let last_fence = evs
            .iter()
            .rposition(|e| matches!(e, Event::Sync(SyncKind::Fence)));
        let tail = match last_fence {
            Some(i) => &evs[i + 1..],
            None => &evs[..],
        };
        for e in tail {
            if let Event::Rma(op) = e {
                if !is_local(op.kind) {
                    out.push(Diagnostic {
                        code: Code::Unfenced,
                        win: op.win,
                        win_name: trace.win_name(op.win).to_string(),
                        shard: op.target,
                        ranks: (r, r),
                        line: op.line,
                        site: op.site.as_str().into(),
                        detail: format!(
                            "rank {r} issues a {} after its last fence: the \
                             operation never completes inside an exposure epoch",
                            match op.kind {
                                AccessKind::Put => "PUT",
                                _ => "GET",
                            }
                        ),
                    });
                }
            }
        }
    }

    // With divergent sync sequences the fences no longer pair up, so
    // cross-rank epoch grouping is meaningless; stop here.
    if divergent {
        return;
    }

    // ---- 3. epoch conflicts ----
    // Epoch e of rank r = ops between its e-th and (e+1)-th fence.
    // Only fence-closed epochs take part (an unclosed trailing epoch
    // never applies its ops; those were flagged above).
    let nepochs = sync_seqs
        .first()
        .map_or(0, |s| s.iter().filter(|k| **k == SyncKind::Fence).count());
    for epoch in 0..nepochs {
        let mut eff: Vec<Effect> = Vec::new();
        for (r, evs) in trace.ranks.iter().enumerate() {
            let mut fences = 0usize;
            for e in evs {
                match e {
                    Event::Sync(SyncKind::Fence) => {
                        fences += 1;
                        if fences > epoch {
                            break;
                        }
                    }
                    Event::Rma(op) if fences == epoch => eff.extend(effects(r, op)),
                    Event::Rma(_) | Event::Sync(_) => {}
                }
            }
        }
        for (i, a) in eff.iter().enumerate() {
            for b in &eff[i + 1..] {
                if a.op.win != b.op.win || a.shard != b.shard {
                    continue;
                }
                if a.role == Role::Read && b.role == Role::Read {
                    continue;
                }
                // Two local accesses on the same shard come from the
                // same rank: ordinary sequential program order, not an
                // epoch conflict.
                if is_local(a.op.kind) && is_local(b.op.kind) {
                    continue;
                }
                if !a.op.region.overlaps(&b.op.region) {
                    continue;
                }
                let code = pair_code(a, b);
                let (lo, hi) = if a.origin <= b.origin {
                    (a.origin, b.origin)
                } else {
                    (b.origin, a.origin)
                };
                out.push(Diagnostic {
                    code,
                    win: a.op.win,
                    win_name: trace.win_name(a.op.win).to_string(),
                    shard: a.shard,
                    ranks: (lo, hi),
                    line: a.op.line.max(b.op.line),
                    site: format!("{}/{}", a.op.site.as_str(), b.op.site.as_str()),
                    detail: format!(
                        "epoch {epoch}: {} by rank {} overlaps {} by rank {} \
                         on shard {} with no intervening fence",
                        kind_name(a.op.kind),
                        a.origin,
                        kind_name(b.op.kind),
                        b.origin,
                        a.shard,
                    ),
                });
            }
        }
    }
}

fn kind_name(k: AccessKind) -> &'static str {
    match k {
        AccessKind::Put => "PUT",
        AccessKind::Get => "GET",
        AccessKind::LocalWrite => "local store",
        AccessKind::LocalRead => "local load",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Site;
    use lmad::Lmad;

    fn op(kind: AccessKind, win: usize, target: usize, base: i64, count: u64) -> Op {
        Op {
            win,
            target,
            kind,
            region: Lmad::contiguous(base, count),
            line: 0,
            site: Site::Synthetic,
        }
    }

    fn check(trace: &RmaTrace) -> LintReport {
        let mut r = crate::diag::new_report("t");
        check_trace(trace, &mut r);
        r.sort();
        r
    }

    fn two_rank_trace() -> RmaTrace {
        RmaTrace::new(2, vec!["A".into()])
    }

    #[test]
    fn disjoint_puts_are_clean() {
        let mut t = RmaTrace::new(3, vec!["A".into()]);
        t.op(1, op(AccessKind::Put, 0, 0, 0, 4));
        t.op(2, op(AccessKind::Put, 0, 0, 4, 4));
        t.sync_all(SyncKind::Fence);
        assert!(check(&t).is_clean());
    }

    #[test]
    fn overlapping_puts_flag_vpce001() {
        let mut t = RmaTrace::new(3, vec!["A".into()]);
        t.op(1, op(AccessKind::Put, 0, 0, 0, 4));
        t.op(2, op(AccessKind::Put, 0, 0, 3, 4));
        t.sync_all(SyncKind::Fence);
        let r = check(&t);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].code, Code::PutPut);
        assert_eq!(r.diags[0].ranks, (1, 2));
        assert_eq!(r.exit_code(), 2);
    }

    #[test]
    fn fence_between_puts_resolves_conflict() {
        let mut t = RmaTrace::new(3, vec!["A".into()]);
        t.op(1, op(AccessKind::Put, 0, 0, 0, 4));
        t.sync_all(SyncKind::Fence);
        t.op(2, op(AccessKind::Put, 0, 0, 3, 4));
        t.sync_all(SyncKind::Fence);
        assert!(check(&t).is_clean());
    }

    #[test]
    fn barrier_does_not_split_an_epoch() {
        let mut t = RmaTrace::new(3, vec!["A".into()]);
        t.op(1, op(AccessKind::Put, 0, 0, 0, 4));
        t.sync_all(SyncKind::Barrier);
        t.op(2, op(AccessKind::Put, 0, 0, 3, 4));
        t.sync_all(SyncKind::Fence);
        let r = check(&t);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].code, Code::PutPut);
    }

    #[test]
    fn put_vs_get_flags_vpce002_both_sides() {
        // Target-side: PUT overlaps the GET's read of shard 0.
        let mut t = RmaTrace::new(3, vec!["A".into()]);
        t.op(1, op(AccessKind::Put, 0, 0, 2, 2));
        t.op(2, op(AccessKind::Get, 0, 0, 3, 4));
        t.sync_all(SyncKind::Fence);
        let r = check(&t);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].code, Code::PutGet);
        assert_eq!(r.diags[0].shard, 0);

        // Origin-side: a GET writes the origin's own shard; a PUT into
        // that shard at the same offsets collides there.
        let mut t2 = RmaTrace::new(3, vec!["A".into()]);
        t2.op(2, op(AccessKind::Get, 0, 0, 0, 4));
        t2.op(1, op(AccessKind::Put, 0, 2, 2, 2));
        t2.sync_all(SyncKind::Fence);
        let r2 = check(&t2);
        assert_eq!(r2.diags.len(), 1);
        assert_eq!(r2.diags[0].code, Code::PutGet);
        assert_eq!(r2.diags[0].shard, 2);
    }

    #[test]
    fn put_vs_local_access_flags_vpce003() {
        let mut t = two_rank_trace();
        t.op(1, op(AccessKind::Put, 0, 0, 0, 8));
        t.op(0, op(AccessKind::LocalWrite, 0, 0, 4, 4));
        t.sync_all(SyncKind::Fence);
        let r = check(&t);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].code, Code::PutLocal);
    }

    #[test]
    fn self_get_is_inert() {
        let mut t = two_rank_trace();
        t.op(1, op(AccessKind::Get, 0, 1, 0, 8));
        t.op(0, op(AccessKind::Put, 0, 1, 0, 8));
        t.sync_all(SyncKind::Fence);
        // Only the real PUT writes shard 1; the self-get vanished.
        assert!(check(&t).is_clean());
    }

    #[test]
    fn unfenced_put_flags_vpce004() {
        let mut t = two_rank_trace();
        t.sync_all(SyncKind::Fence);
        t.op(1, op(AccessKind::Put, 0, 0, 0, 4));
        let r = check(&t);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].code, Code::Unfenced);
        assert_eq!(r.diags[0].ranks, (1, 1));
    }

    #[test]
    fn trailing_epoch_ops_are_not_cross_matched() {
        // Two overlapping PUTs after the last fence: both unfenced,
        // but no VPCE001 — they are never applied.
        let mut t = RmaTrace::new(3, vec!["A".into()]);
        t.sync_all(SyncKind::Fence);
        t.op(1, op(AccessKind::Put, 0, 0, 0, 4));
        t.op(2, op(AccessKind::Put, 0, 0, 0, 4));
        let r = check(&t);
        assert_eq!(r.diags.len(), 2);
        assert!(r.diags.iter().all(|d| d.code == Code::Unfenced));
    }

    #[test]
    fn divergent_sync_flags_vpce005() {
        let mut t = two_rank_trace();
        t.ranks[0].push(Event::Sync(SyncKind::Fence));
        t.ranks[0].push(Event::Sync(SyncKind::Barrier));
        t.ranks[1].push(Event::Sync(SyncKind::Barrier));
        t.ranks[1].push(Event::Sync(SyncKind::Fence));
        let r = check(&t);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].code, Code::DivergentSync);
        assert!(r.diags[0].detail.contains("step 0"));
    }

    #[test]
    fn missing_collective_on_one_rank_flags_vpce005() {
        let mut t = two_rank_trace();
        t.ranks[0].push(Event::Sync(SyncKind::Reduce));
        t.ranks[0].push(Event::Sync(SyncKind::Fence));
        t.ranks[1].push(Event::Sync(SyncKind::Fence));
        let r = check(&t);
        assert_eq!(r.diags[0].code, Code::DivergentSync);
    }

    #[test]
    fn same_origin_overlapping_puts_warn_vpce101() {
        let mut t = two_rank_trace();
        t.op(1, op(AccessKind::Put, 0, 0, 0, 4));
        t.op(1, op(AccessKind::Put, 0, 0, 2, 4));
        t.sync_all(SyncKind::Fence);
        let r = check(&t);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].code, Code::SameOriginOverlap);
        assert_eq!(r.exit_code(), 1);
    }

    #[test]
    fn same_origin_put_get_overlap_warns_vpce102() {
        // Rank 1 PUTs to shard 0 and GETs an overlapping region from
        // shard 0 in the same epoch.
        let mut t = two_rank_trace();
        t.op(1, op(AccessKind::Put, 0, 0, 0, 4));
        t.op(1, op(AccessKind::Get, 0, 0, 2, 4));
        t.sync_all(SyncKind::Fence);
        let r = check(&t);
        assert!(r
            .diags
            .iter()
            .any(|d| d.code == Code::RedundantOverlap && d.shard == 0));
        assert_eq!(r.exit_code(), 1);
    }

    #[test]
    fn different_windows_never_conflict() {
        let mut t = RmaTrace::new(3, vec!["A".into(), "B".into()]);
        t.op(1, op(AccessKind::Put, 0, 0, 0, 4));
        t.op(2, op(AccessKind::Put, 1, 0, 0, 4));
        t.sync_all(SyncKind::Fence);
        assert!(check(&t).is_clean());
    }

    #[test]
    fn strided_interleaving_is_proved_disjoint() {
        // Evens vs odds: the conservative interval test overlaps, the
        // exact closed form proves disjointness — must stay clean.
        let mut t = RmaTrace::new(3, vec!["A".into()]);
        let mut a = op(AccessKind::Put, 0, 0, 0, 1);
        a.region = Lmad::strided(0, 2, 1 << 30);
        let mut b = op(AccessKind::Put, 0, 0, 0, 1);
        b.region = Lmad::strided(1, 2, 1 << 30);
        t.op(1, a);
        t.op(2, b);
        t.sync_all(SyncKind::Fence);
        assert!(check(&t).is_clean());
    }
}
