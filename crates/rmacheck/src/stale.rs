//! AVPG elision soundness (VPCE006): whole-program reasoning over the
//! planner's execution timeline ([`polaris_be::PlanStep`]).
//!
//! When the backend elides a collect (a `Valid -> Invalid` AVPG edge,
//! §5.2), the values a slave computed never reach the master copy —
//! the master is **stale** in exactly the slave-written regions. The
//! elision is sound only if every stale region is fully overwritten
//! (with the overwrite actually collected) before anything reads the
//! array again, and the program does not end with the stale array as
//! live output. This pass re-derives that argument from the lowered
//! plan alone, independently of the AVPG that justified the elision —
//! a planner bug (or a deliberately unsound ablation) surfaces as a
//! VPCE006 diagnostic.
//!
//! Soundness direction matches the rest of the lint: staleness is
//! only *cleared* when coverage is proved (exact region algebra with
//! a bounded enumeration fallback), so the pass may flag a sound
//! elision in unanalysable corners but never greenlights an unsound
//! one.

use lmad::Lmad;
use polaris_be::{PlanReport, PlanStep, RegionPlanInfo};
use spmd_rt::ir::{ParRegion, SpmdProgram};

use crate::diag::{Code, Diagnostic, LintReport};
use crate::LintOptions;

/// Enumeration budget for coverage proofs, elements.
const COVER_LIMIT: u64 = 1 << 16;

/// One stale region of the master copy: where it is, and which loop's
/// elided collect caused it.
#[derive(Debug, Clone)]
struct StaleRegion {
    region: Lmad,
    rank: usize,
    line: usize,
}

/// Is every element of `needed` provably inside the union of `have`?
/// (Bounded: answers `false` when the proof would need to enumerate
/// more than [`COVER_LIMIT`] elements.)
fn covered(needed: &Lmad, have: &[Lmad]) -> bool {
    if have.is_empty() {
        return false;
    }
    let n = needed.normalized();
    if have.iter().any(|h| h.normalized() == n) {
        return true;
    }
    if have.iter().any(|h| h.contains_all(needed, 4096)) {
        return true;
    }
    match needed.offsets(COVER_LIMIT) {
        Some(offs) => offs.iter().all(|&o| have.iter().any(|h| h.contains(o))),
        None => false,
    }
}

/// Regions of array `a` that reach the master copy in this parallel
/// region: rank 0's own stores plus everything the collect plan
/// actually transfers.
fn master_updates(region: &ParRegion, info: &RegionPlanInfo, a: usize) -> Vec<Lmad> {
    let mut updates: Vec<Lmad> = Vec::new();
    if let Some(w0) = info.rank_writes.first() {
        updates.extend(w0.iter().filter(|(arr, _)| *arr == a).map(|(_, lm)| lm.clone()));
    }
    for ops in region.collect.per_rank.iter().skip(1) {
        for op in ops {
            if op.array == a {
                updates.push(Lmad::strided(
                    op.transfer.offset,
                    op.transfer.stride as i64,
                    op.transfer.count,
                ));
            }
        }
    }
    updates
}

/// Slave-written regions of `a` that the collect plan does *not*
/// transfer back — the new staleness this region introduces.
fn uncollected_writes(region: &ParRegion, info: &RegionPlanInfo, a: usize) -> Vec<StaleRegion> {
    let mut stale = Vec::new();
    for (r, writes) in info.rank_writes.iter().enumerate().skip(1) {
        let collected: Vec<Lmad> = region
            .collect
            .per_rank
            .get(r)
            .into_iter()
            .flatten()
            .filter(|op| op.array == a)
            .map(|op| {
                Lmad::strided(op.transfer.offset, op.transfer.stride as i64, op.transfer.count)
            })
            .collect();
        for (arr, lm) in writes {
            if *arr != a {
                continue;
            }
            if !covered(lm, &collected) {
                stale.push(StaleRegion {
                    region: lm.clone(),
                    rank: r,
                    line: region.line,
                });
            }
        }
    }
    stale
}

fn flag(out: &mut LintReport, prog: &SpmdProgram, a: usize, s: &StaleRegion, site: &str, why: &str) {
    let name = prog.arrays.get(a).map_or("?", |(n, _)| n.as_str());
    out.push(Diagnostic {
        code: Code::UnsoundElision,
        win: a,
        win_name: name.to_string(),
        shard: 0,
        ranks: (s.rank, s.rank),
        line: s.line,
        site: site.into(),
        detail: format!(
            "collect of `{name}` elided for rank {} at the loop on line {} \
             left the master copy stale, and {why}",
            s.rank, s.line
        ),
    });
}

/// Walk the plan timeline and flag stale master regions that are
/// consumed (or survive to program exit while outputs are live).
pub fn check_elisions(
    prog: &SpmdProgram,
    report: &PlanReport,
    opts: &LintOptions,
    out: &mut LintReport,
) {
    let par_regions: Vec<&ParRegion> = prog.regions().collect();
    // Per-array stale master regions, keyed by array index.
    let mut stale: Vec<Vec<StaleRegion>> = vec![Vec::new(); prog.arrays.len()];

    for step in &report.steps {
        match step {
            PlanStep::Seq { reads, writes } => {
                for &a in reads {
                    if let Some(regions) = stale.get(a) {
                        for s in regions {
                            flag(
                                out,
                                prog,
                                a,
                                s,
                                "avpg/seq",
                                "a later sequential section reads the array on the master",
                            );
                        }
                    }
                }
                // A sequential write is whole-array granularity: it
                // *may* be a full overwrite, but that cannot be proved
                // here, so staleness is conservatively retained. (The
                // planner is equally conservative and never elides
                // across an unanalysed write, so sound plans do not
                // reach this corner.)
                let _ = writes;
            }
            PlanStep::Par(i) => {
                let (Some(region), Some(info)) = (par_regions.get(*i), report.regions.get(*i))
                else {
                    continue;
                };
                // Arrays this region consumes (analysis-level reads:
                // scatter-sourced compute inputs on any rank).
                let mut read_arrays: Vec<usize> = info
                    .rank_reads
                    .iter()
                    .flatten()
                    .map(|(a, _)| *a)
                    .collect();
                read_arrays.sort_unstable();
                read_arrays.dedup();
                for a in read_arrays {
                    if let Some(regions) = stale.get(a) {
                        for s in regions {
                            flag(
                                out,
                                prog,
                                a,
                                s,
                                "avpg/scatter",
                                "a later parallel region reads the array \
                                 (its scatter sources the stale master copy)",
                            );
                        }
                    }
                }
                // Update staleness from this region's writes.
                let mut written_arrays: Vec<usize> = info
                    .rank_writes
                    .iter()
                    .flatten()
                    .map(|(a, _)| *a)
                    .collect();
                written_arrays.sort_unstable();
                written_arrays.dedup();
                for a in written_arrays {
                    let updates = master_updates(region, info, a);
                    if let Some(regions) = stale.get_mut(a) {
                        regions.retain(|s| !covered(&s.region, &updates));
                        regions.extend(uncollected_writes(region, info, a));
                    }
                }
            }
        }
    }

    if opts.outputs_live {
        for (a, regions) in stale.iter().enumerate() {
            for s in regions {
                flag(
                    out,
                    prog,
                    a,
                    s,
                    "avpg/output",
                    "the program ends with the array as live output",
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmad::RegionTransfer;
    use spmd_rt::ir::{Block, CommOp, CommPlan, Schedule};

    fn comm(per_rank: Vec<Vec<CommOp>>) -> CommPlan {
        CommPlan {
            per_rank,
            granularity: None,
        }
    }

    fn op(array: usize, offset: i64, count: u64) -> CommOp {
        CommOp {
            array,
            transfer: RegionTransfer {
                offset,
                stride: 1,
                count,
            },
        }
    }

    /// Two ranks, one array of 16 elements; rank 0 writes [0,8), rank
    /// 1 writes [8,16). `collect` controls whether rank 1's half is
    /// transferred back.
    fn writing_region(collect: bool) -> (ParRegion, RegionPlanInfo) {
        let region = ParRegion {
            var: 0,
            lo: 1,
            step: 1,
            trips: 16,
            sched: Schedule::Block,
            body: Vec::new(),
            scatter: comm(vec![Vec::new(), Vec::new()]),
            collect: comm(vec![
                Vec::new(),
                if collect { vec![op(0, 8, 8)] } else { Vec::new() },
            ]),
            pull_scatter: false,
            lock_reductions: false,
            scalars_in: Vec::new(),
            private_scalars: Vec::new(),
            reductions: Vec::new(),
            line: 5,
        };
        let info = RegionPlanInfo {
            line: 5,
            rank_writes: vec![
                vec![(0, Lmad::contiguous(0, 8))],
                vec![(0, Lmad::contiguous(8, 8))],
            ],
            rank_reads: vec![Vec::new(), Vec::new()],
            ..Default::default()
        };
        (region, info)
    }

    fn reading_region_info() -> RegionPlanInfo {
        RegionPlanInfo {
            line: 9,
            rank_writes: vec![Vec::new(), Vec::new()],
            rank_reads: vec![
                vec![(0, Lmad::contiguous(0, 16))],
                vec![(0, Lmad::contiguous(0, 16))],
            ],
            ..Default::default()
        }
    }

    fn reading_region() -> ParRegion {
        ParRegion {
            var: 0,
            lo: 1,
            step: 1,
            trips: 16,
            sched: Schedule::Block,
            body: Vec::new(),
            scatter: comm(vec![Vec::new(), vec![op(0, 0, 16)]]),
            collect: comm(vec![Vec::new(), Vec::new()]),
            pull_scatter: false,
            lock_reductions: false,
            scalars_in: Vec::new(),
            private_scalars: Vec::new(),
            reductions: Vec::new(),
            line: 9,
        }
    }

    fn program(blocks: Vec<Block>) -> SpmdProgram {
        SpmdProgram {
            name: "t".into(),
            nprocs: 2,
            arrays: vec![("A".into(), 16)],
            scalars: Vec::new(),
            blocks,
            sequential: Vec::new(),
        }
    }

    fn run(prog: &SpmdProgram, report: &PlanReport, outputs_live: bool) -> LintReport {
        let mut out = crate::diag::new_report("t");
        check_elisions(
            prog,
            report,
            &LintOptions { outputs_live },
            &mut out,
        );
        out.sort();
        out
    }

    #[test]
    fn collected_writes_leave_no_staleness() {
        let (region, info) = writing_region(true);
        let prog = program(vec![Block::Parallel(region)]);
        let report = PlanReport {
            regions: vec![info],
            steps: vec![PlanStep::Par(0)],
            ..Default::default()
        };
        assert!(run(&prog, &report, true).is_clean());
    }

    #[test]
    fn elided_collect_with_live_output_flags_vpce006() {
        let (region, info) = writing_region(false);
        let prog = program(vec![Block::Parallel(region)]);
        let report = PlanReport {
            regions: vec![info],
            steps: vec![PlanStep::Par(0)],
            ..Default::default()
        };
        let r = run(&prog, &report, true);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].code, Code::UnsoundElision);
        assert_eq!(r.diags[0].ranks, (1, 1));
        // Dead outputs make the same elision sound.
        assert!(run(&prog, &report, false).is_clean());
    }

    #[test]
    fn elided_collect_read_by_later_region_flags_vpce006() {
        let (w, wi) = writing_region(false);
        let r2 = reading_region();
        let prog = program(vec![Block::Parallel(w), Block::Parallel(r2)]);
        let report = PlanReport {
            regions: vec![wi, reading_region_info()],
            steps: vec![PlanStep::Par(0), PlanStep::Par(1)],
            ..Default::default()
        };
        let r = run(&prog, &report, false);
        assert!(r
            .diags
            .iter()
            .any(|d| d.code == Code::UnsoundElision && d.site == "avpg/scatter"));
    }

    #[test]
    fn elided_collect_read_by_seq_section_flags_vpce006() {
        let (w, wi) = writing_region(false);
        let prog = program(vec![Block::Parallel(w), Block::MasterSeq(Vec::new())]);
        let report = PlanReport {
            regions: vec![wi],
            steps: vec![
                PlanStep::Par(0),
                PlanStep::Seq {
                    reads: vec![0],
                    writes: Vec::new(),
                },
            ],
            ..Default::default()
        };
        let r = run(&prog, &report, false);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].site, "avpg/seq");
    }

    #[test]
    fn full_overwrite_with_collection_clears_staleness() {
        let (w1, i1) = writing_region(false); // stale [8,16)
        let (w2, i2) = writing_region(true); // rewrites whole array, collected
        let prog = program(vec![Block::Parallel(w1), Block::Parallel(w2)]);
        let report = PlanReport {
            regions: vec![i1, i2],
            steps: vec![PlanStep::Par(0), PlanStep::Par(1)],
            ..Default::default()
        };
        assert!(run(&prog, &report, true).is_clean());
    }

    #[test]
    fn seq_write_does_not_clear_staleness() {
        let (w, wi) = writing_region(false);
        let prog = program(vec![Block::Parallel(w), Block::MasterSeq(Vec::new())]);
        let report = PlanReport {
            regions: vec![wi],
            steps: vec![
                PlanStep::Par(0),
                PlanStep::Seq {
                    reads: Vec::new(),
                    writes: vec![0],
                },
            ],
            ..Default::default()
        };
        // Whole-array seq write cannot be proved a full overwrite:
        // the live-output staleness survives.
        let r = run(&prog, &report, true);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].site, "avpg/output");
    }
}
