//! Differential soundness: the static checker is validated against
//! the *dynamic* epoch-conflict ledger in `mpi2::conflict` — the
//! runtime ground truth that records every undefined-outcome pair at
//! each closing fence with exact element-level intersection.
//!
//! The property (soundness direction): **no plan may pass the static
//! checker yet trip the dynamic ledger**. The static side is allowed
//! to over-approximate (flag a conflict the runtime never realises),
//! never to under-approximate. Random fence-structured plans are
//! executed on the simulated cluster and simultaneously lowered to an
//! [`rmacheck::RmaTrace`]; any dynamically recorded conflict must be
//! matched by a non-clean static verdict.
//!
//! Seeds are pinned in `testkit-regressions/` so known-hard cases
//! replay first.

use cluster_sim::ClusterConfig;
use lmad::Lmad;
use mpi2::Universe;
use rmacheck::{lint_trace, AccessKind, Op, RmaTrace, Site, SyncKind};
use vpce_testkit::prelude::*;

/// Every generated window has this many elements.
const WIN_LEN: usize = 16;

/// One random one-sided operation of a random plan.
#[derive(Debug, Clone, Copy)]
struct PlanOp {
    origin: usize,
    target: usize,
    win: usize,
    is_put: bool,
    off: usize,
    stride: usize,
    count: usize,
}

/// A random fence-structured plan: `epochs[e]` is the operation batch
/// every rank issues (filtered by origin) before the e-th fence.
#[derive(Debug, Clone)]
struct Plan {
    nranks: usize,
    nwins: usize,
    epochs: Vec<Vec<PlanOp>>,
}

fn plan_gen() -> Gen<Plan> {
    let op = zip4(
        zip2(usize_in(0, 2), usize_in(0, 2)),
        zip2(usize_in(0, 1), bool_any()),
        zip2(usize_in(0, WIN_LEN - 1), usize_in(1, 3)),
        usize_in(1, 6),
    )
    .map(
        |((origin, target), (win, is_put), (off, stride), count)| PlanOp {
            origin,
            target,
            win,
            is_put,
            off,
            stride,
            count,
        },
    );
    zip3(
        zip2(usize_in(2, 3), usize_in(1, 2)),
        vec_of(vec_of(op, 0, 5), 1, 3),
        just(()),
    )
    .map(|((nranks, nwins), epochs, ())| {
        // Clamp the raw draws into the plan's actual shape: ranks and
        // windows modulo the instance sizes, counts trimmed to stay
        // inside the window.
        let epochs = epochs
            .into_iter()
            .map(|ops| {
                ops.into_iter()
                    .map(|mut o| {
                        o.origin %= nranks;
                        o.target %= nranks;
                        o.win %= nwins;
                        let fit = 1 + (WIN_LEN - 1 - o.off) / o.stride;
                        o.count = o.count.min(fit);
                        o
                    })
                    .collect()
            })
            .collect();
        Plan {
            nranks,
            nwins,
            epochs,
        }
    })
}

/// Execute the plan on the simulated cluster and return the dynamic
/// ledger's verdict.
fn run_dynamic(plan: &Plan) -> Vec<mpi2::ConflictRecord> {
    let uni = Universe::new(ClusterConfig::paper_n(plan.nranks));
    let out = uni.run(|mpi| {
        let wins: Vec<_> = (0..plan.nwins).map(|_| mpi.win_create(WIN_LEN)).collect();
        let me = mpi.rank();
        for ops in &plan.epochs {
            for op in ops.iter().filter(|o| o.origin == me) {
                let w = &wins[op.win];
                if op.is_put {
                    let data = vec![me as f64 + 1.0; op.count];
                    if op.stride == 1 {
                        mpi.put(w, op.target, op.off, data);
                    } else {
                        mpi.put_strided(w, op.target, op.off, op.stride, data);
                    }
                } else if op.stride == 1 {
                    mpi.get(w, op.target, op.off, op.count);
                } else {
                    mpi.get_strided(w, op.target, op.off, op.stride, op.count);
                }
            }
            mpi.fence_all();
        }
    });
    out.rma_conflicts
}

/// Lower the same plan to the static checker's trace form.
fn to_trace(plan: &Plan) -> RmaTrace {
    let names = (0..plan.nwins).map(|w| format!("W{w}")).collect();
    let mut trace = RmaTrace::new(plan.nranks, names);
    for ops in &plan.epochs {
        for op in ops {
            trace.op(
                op.origin,
                Op {
                    win: op.win,
                    target: op.target,
                    kind: if op.is_put {
                        AccessKind::Put
                    } else {
                        AccessKind::Get
                    },
                    region: Lmad::strided(op.off as i64, op.stride as i64, op.count as u64),
                    line: 0,
                    site: Site::Synthetic,
                },
            );
        }
        trace.sync_all(SyncKind::Fence);
    }
    trace
}

/// The acceptance-criteria property: over ≥ 1000 seeded random plans,
/// the static checker never stays green on a run the dynamic ledger
/// flags.
#[test]
fn static_checker_is_sound_wrt_dynamic_ledger() {
    Check::new("rmacheck::static_checker_is_sound_wrt_dynamic_ledger")
        .cases(1000)
        .run(&plan_gen(), |plan| {
            let dynamic = run_dynamic(plan);
            let report = lint_trace(&to_trace(plan), "random-plan");
            prop_assert!(
                dynamic.is_empty() || !report.is_clean(),
                "soundness hole: dynamic ledger recorded {} conflict(s) \
                 (first: {:?}) but the static checker reported clean",
                dynamic.len(),
                dynamic.first()
            );
            Ok(())
        });
}

/// The static verdict is per-(window, shard) at least as specific as
/// the dynamic one: every dynamically flagged (win, shard) pair shows
/// up in some static diagnostic on the same window.
#[test]
fn static_diagnostics_cover_dynamic_conflict_sites() {
    Check::new("rmacheck::static_diagnostics_cover_dynamic_conflict_sites")
        .cases(300)
        .run(&plan_gen(), |plan| {
            let dynamic = run_dynamic(plan);
            let report = lint_trace(&to_trace(plan), "random-plan");
            for c in &dynamic {
                prop_assert!(
                    report
                        .diags
                        .iter()
                        .any(|d| d.win == c.win && d.shard == c.shard),
                    "dynamic conflict on (win {}, shard {}) has no static \
                     diagnostic at that site",
                    c.win,
                    c.shard
                );
            }
            Ok(())
        });
}
