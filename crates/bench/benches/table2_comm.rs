//! Criterion bench behind Table 2: plan + simulate each workload at
//! each granularity (moderate sizes keep the sweep quick; the printed
//! table uses the paper's full sizes via `cargo run --bin table2`).

use vpce_testkit::bench::{BenchmarkId, Criterion};
use vpce_testkit::{criterion_group, criterion_main};
use cluster_sim::ClusterConfig;
use lmad::Granularity;
use vpce_bench::table2::{measure, Bench};

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_comm");
    g.sample_size(10);
    let cluster = ClusterConfig::paper_4node();
    let benches = [
        Bench {
            name: "mm256",
            source: vpce_workloads::mm::SOURCE,
            params: ("N", 256),
            schedule: None,
        },
        Bench {
            name: "swim128",
            source: vpce_workloads::swim::SOURCE,
            params: ("N", 128),
            schedule: None,
        },
        Bench {
            name: "cfft11",
            source: vpce_workloads::cfft::SOURCE,
            params: ("M", 11),
            schedule: None,
        },
    ];
    for b in &benches {
        for grain in Granularity::ALL {
            g.bench_with_input(
                BenchmarkId::new(b.name, grain.name()),
                &grain,
                |bench, &grain| {
                    bench.iter(|| std::hint::black_box(measure(b, grain, &cluster).comm_time));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
