//! Criterion bench behind Table 1: the full compile-and-simulate
//! pipeline for MM across node counts (analytic mode — virtual times
//! are identical to full execution; wall time here measures the
//! reproduction system itself).

use vpce_testkit::bench::{BenchmarkId, Criterion};
use vpce_testkit::{criterion_group, criterion_main};
use lmad::Granularity;
use polaris_be::BackendOptions;
use spmd_rt::ExecMode;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_mm");
    g.sample_size(10);
    for &nodes in &[1usize, 2, 4] {
        for &n in &[256i64, 1024] {
            g.bench_with_input(
                BenchmarkId::new(format!("{nodes}nodes"), n),
                &(nodes, n),
                |b, &(nodes, n)| {
                    let cluster = cluster_sim::ClusterConfig::paper_n(nodes);
                    let opts = BackendOptions::new(nodes).granularity(Granularity::Coarse);
                    let compiled =
                        vpce::compile(vpce_workloads::mm::SOURCE, &[("N", n)], &opts).unwrap();
                    b.iter(|| {
                        let rep =
                            spmd_rt::execute(&compiled.program, &cluster, ExecMode::Analytic);
                        std::hint::black_box(rep.elapsed)
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
