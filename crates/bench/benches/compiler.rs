//! Compiler throughput: front-end analysis and the MPI-2 postpass on
//! the paper workloads.

use vpce_testkit::bench::{BenchmarkId, Criterion};
use vpce_testkit::{criterion_group, criterion_main};
use lmad::Granularity;
use polaris_be::BackendOptions;

fn bench_compiler(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler");
    g.sample_size(20);
    let cases = [
        ("mm", vpce_workloads::mm::SOURCE, ("N", 256i64)),
        ("swim", vpce_workloads::swim::SOURCE, ("N", 128)),
        ("cfft", vpce_workloads::cfft::SOURCE, ("M", 11)),
    ];
    for (name, src, params) in cases {
        g.bench_function(BenchmarkId::new("frontend", name), |b| {
            b.iter(|| std::hint::black_box(polaris_fe::compile(src, &[params]).unwrap()))
        });
        g.bench_function(BenchmarkId::new("backend", name), |b| {
            let analyzed = polaris_fe::compile(src, &[params]).unwrap();
            let opts = BackendOptions::new(4).granularity(Granularity::Fine);
            b.iter(|| std::hint::black_box(polaris_be::compile_backend(&analyzed, &opts)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_compiler);
criterion_main!(benches);
