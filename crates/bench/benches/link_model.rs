//! Claim C1 bench: the signal-level link model and the wormhole
//! message scheduler.

use vpce_testkit::bench::{BenchmarkId, Criterion};
use vpce_testkit::{criterion_group, criterion_main};
use vbus_sim::{LinkPhy, NetConfig, NetSim, SignallingMode};

fn bench_phy(c: &mut Criterion) {
    let phy = LinkPhy::paper_card();
    c.bench_function("link_phy/skwp_gain", |b| {
        b.iter(|| std::hint::black_box(phy.skwp_gain()))
    });
    for mode in [
        SignallingMode::Conventional,
        SignallingMode::WavePipelined,
        SignallingMode::Skwp,
    ] {
        c.bench_with_input(
            BenchmarkId::new("link_phy/bandwidth", mode.name()),
            &mode,
            |b, &mode| b.iter(|| std::hint::black_box(phy.bandwidth_bps(mode))),
        );
    }
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("wormhole_scheduler");
    for &nodes in &[4usize, 16] {
        g.bench_with_input(
            BenchmarkId::new("p2p_1k_msgs", nodes),
            &nodes,
            |b, &nodes| {
                b.iter(|| {
                    let mut sim = NetSim::new(NetConfig::vbus_skwp(nodes));
                    let mut t = 0.0;
                    for i in 0..1000 {
                        let src = i % nodes;
                        let dst = (i * 7 + 3) % nodes;
                        t = sim.p2p(src, dst, 1024 + i, i as f64 * 1e-6).end;
                    }
                    std::hint::black_box(t)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_phy, bench_scheduler);
criterion_main!(benches);
