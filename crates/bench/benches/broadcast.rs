//! Claim C3 bench: hardware virtual-bus broadcast against the
//! software binomial tree, across node counts and payload sizes.

use vpce_testkit::bench::{BenchmarkId, Criterion};
use vpce_testkit::{criterion_group, criterion_main};
use vbus_sim::sweep::{broadcast_sweep, tree_broadcast_time};
use vbus_sim::{NetConfig, NetSim};

fn bench_broadcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("broadcast");
    g.sample_size(20);
    for &nodes in &[4usize, 16] {
        g.bench_with_input(BenchmarkId::new("vbus", nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                let mut sim = NetSim::new(NetConfig::vbus_skwp(nodes));
                std::hint::black_box(sim.vbus_broadcast(0, 1 << 16, 0.0))
            })
        });
        g.bench_with_input(BenchmarkId::new("tree", nodes), &nodes, |b, &nodes| {
            let cfg = NetConfig::vbus_skwp(nodes);
            b.iter(|| std::hint::black_box(tree_broadcast_time(&cfg, 1 << 16)))
        });
        g.bench_with_input(BenchmarkId::new("sweep", nodes), &nodes, |b, &nodes| {
            let cfg = NetConfig::vbus_skwp(nodes);
            b.iter(|| {
                std::hint::black_box(broadcast_sweep(&cfg, &[1 << 10, 1 << 16, 1 << 20]))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_broadcast);
criterion_main!(benches);
