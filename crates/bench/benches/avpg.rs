//! Ablation A1 bench: backend planning with and without the AVPG
//! elimination, plus the resulting simulated communication.

use vpce_testkit::bench::{BenchmarkId, Criterion};
use vpce_testkit::{criterion_group, criterion_main};
use cluster_sim::ClusterConfig;
use lmad::Granularity;
use polaris_be::BackendOptions;
use spmd_rt::ExecMode;

fn bench_avpg(c: &mut Criterion) {
    let mut g = c.benchmark_group("avpg");
    g.sample_size(10);
    let cluster = ClusterConfig::paper_4node();
    for avpg in [true, false] {
        g.bench_with_input(
            BenchmarkId::new("swim128_end_to_end", avpg),
            &avpg,
            |b, &avpg| {
                b.iter(|| {
                    let opts = BackendOptions::new(4)
                        .granularity(Granularity::Coarse)
                        .avpg(avpg);
                    let compiled =
                        vpce::compile(vpce_workloads::swim::SOURCE, &[("N", 128)], &opts)
                            .unwrap();
                    let rep = spmd_rt::execute(&compiled.program, &cluster, ExecMode::Analytic);
                    std::hint::black_box(rep.comm_time)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_avpg);
criterion_main!(benches);
