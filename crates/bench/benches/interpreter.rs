//! Interpreter throughput: full numeric execution of the MM kernel on
//! the simulated cluster (the Full/Analytic split exists because of
//! this cost — measure it).

use vpce_testkit::bench::{BenchmarkId, Criterion};
use vpce_testkit::{criterion_group, criterion_main};
use cluster_sim::ClusterConfig;
use lmad::Granularity;
use polaris_be::BackendOptions;
use spmd_rt::ExecMode;

fn bench_interpreter(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpreter");
    g.sample_size(10);
    let cluster = ClusterConfig::paper_4node();
    let opts = BackendOptions::new(4).granularity(Granularity::Coarse);
    let compiled = vpce::compile(vpce_workloads::mm::SOURCE, &[("N", 64)], &opts).unwrap();
    for mode in [ExecMode::Full, ExecMode::Analytic] {
        g.bench_with_input(
            BenchmarkId::new("mm64", format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    std::hint::black_box(
                        spmd_rt::execute(&compiled.program, &cluster, mode).elapsed,
                    )
                })
            },
        );
    }
    g.bench_function("mm64/sequential_full", |b| {
        b.iter(|| {
            std::hint::black_box(
                spmd_rt::execute_sequential(&compiled.program, &cluster.node.cpu, ExecMode::Full)
                    .elapsed,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_interpreter);
criterion_main!(benches);
