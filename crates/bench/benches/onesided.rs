//! Claim C4 bench: one-sided PUT/GET through the MPI-2 layer —
//! contiguous (DMA) versus strided (PIO) paths, including the fence.

use vpce_testkit::bench::{BenchmarkId, Criterion};
use vpce_testkit::{criterion_group, criterion_main};
use cluster_sim::ClusterConfig;
use mpi2::Universe;

fn bench_onesided(c: &mut Criterion) {
    let mut g = c.benchmark_group("onesided");
    g.sample_size(10);
    for &elems in &[1024usize, 16384] {
        g.bench_with_input(
            BenchmarkId::new("put_contiguous", elems),
            &elems,
            |b, &elems| {
                b.iter(|| {
                    let uni = Universe::new(ClusterConfig::paper_n(2));
                    let out = uni.run(|mpi| {
                        let w = mpi.win_create(2 * elems);
                        if mpi.rank() == 0 {
                            mpi.put_region(&w, 1, 0, elems);
                        }
                        mpi.fence_all();
                        mpi.now()
                    });
                    std::hint::black_box(out.elapsed())
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("put_strided", elems),
            &elems,
            |b, &elems| {
                b.iter(|| {
                    let uni = Universe::new(ClusterConfig::paper_n(2));
                    let out = uni.run(|mpi| {
                        let w = mpi.win_create(2 * elems);
                        if mpi.rank() == 0 {
                            mpi.put_region_strided(&w, 1, 0, 2, elems / 2);
                        }
                        mpi.fence_all();
                        mpi.now()
                    });
                    std::hint::black_box(out.elapsed())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_onesided);
criterion_main!(benches);
