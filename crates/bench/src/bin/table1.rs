//! Regenerate Table 1: MM speedups for 256^2/512^2/1024^2 on 1/2/4
//! nodes, on the nominal card and on the calibrated prototype.
//! `--json PATH` additionally writes both sweeps as JSON (the CI
//! benchmark artifact).

use cluster_sim::ClusterConfig;
use vpce_bench::table1;

fn main() {
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            other => {
                eprintln!("unknown argument `{other}` (only --json PATH is accepted)");
                std::process::exit(2);
            }
        }
    }
    let nominal = table1::sweep(ClusterConfig::paper_n);
    table1::print_sweep("nominal card: 50 MB/s SKWP links", &nominal);
    let proto = table1::sweep(ClusterConfig::prototype_n);
    table1::print_sweep("calibrated prototype: ~6 MB/s achieved", &proto);
    if let Some(path) = json_path {
        let doc = format!(
            "{{\n  \"nominal\": {},\n  \"prototype\": {}\n}}\n",
            table1::to_json(&nominal),
            table1::to_json(&proto)
        );
        std::fs::write(&path, doc).expect("write --json output");
        eprintln!("wrote {path}");
    }
    println!("\npaper Table 1 for reference:");
    println!("{:>10} {:>8} {:>8} {:>8}", "size", "1 node", "2 nodes", "4 nodes");
    for (i, &size) in table1::SIZES.iter().enumerate() {
        println!(
            "{:>7}^2 {:>8} {:>8} {:>8}",
            size,
            table1::PAPER[i][0],
            table1::PAPER[i][1],
            table1::PAPER[i][2]
        );
    }
}
