//! Run the machines × workloads sweep: every built-in machine
//! description (the paper baseline, its link ablations, and the
//! non-mesh topology zoo) executes every example workload end to end.
//! With `--json PATH` writes the JSON artifact the CI `machine` job
//! uploads (`BENCH_machine.json`). Exits nonzero if any cell's
//! numerics diverged from sequential execution or the zoo lost its
//! non-mesh coverage — fabric choice must never change results.

use vpce_bench::machine;

fn main() {
    let mut json_path = None;
    let mut nodes = 8usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--nodes" => {
                nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--nodes needs a number")
            }
            other => {
                eprintln!("unknown argument `{other}` (accepted: --json PATH, --nodes N)");
                std::process::exit(2);
            }
        }
    }
    let points = machine::sweep(machine::MACHINES, nodes);
    machine::print(&points);
    if let Some(path) = json_path {
        std::fs::write(&path, machine::to_json(&points)).expect("write --json output");
        eprintln!("wrote {path}");
    }
    if !machine::healthy(&points) {
        eprintln!("FAIL: a sweep cell diverged from sequential numerics or the zoo lost coverage");
        std::process::exit(1);
    }
}
