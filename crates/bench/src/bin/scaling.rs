//! Scaling beyond the paper: the paper stops at 4 nodes ("we plan to
//! extend our experiment", §7); the simulated machine scales the mesh
//! to any size. Sweep MM and SWIM over 1..16 nodes on the nominal and
//! prototype cards.

use cluster_sim::ClusterConfig;
use lmad::Granularity;
use polaris_be::BackendOptions;
use spmd_rt::ExecMode;
use vpce_bench::fmt_secs;

fn sweep(name: &str, source: &str, params: (&str, i64), cluster_of: fn(usize) -> ClusterConfig) {
    println!("\n== {name} ==");
    println!(
        "{:>6} {:>12} {:>12} {:>9} {:>12} {:>10}",
        "nodes", "T_seq", "T_par", "speedup", "comm", "eff"
    );
    let seq = {
        let opts = BackendOptions::new(1).granularity(Granularity::Coarse);
        let compiled = vpce::compile(source, &[params], &opts).unwrap();
        spmd_rt::execute_sequential(&compiled.program, &cluster_of(1).node.cpu, ExecMode::Analytic)
            .elapsed
    };
    for nodes in [1usize, 2, 4, 8, 16] {
        let opts = BackendOptions::new(nodes).granularity(Granularity::Coarse);
        let compiled = vpce::compile(source, &[params], &opts).unwrap();
        let rep = spmd_rt::execute(&compiled.program, &cluster_of(nodes), ExecMode::Analytic);
        let speedup = seq / rep.elapsed;
        println!(
            "{:>6} {:>12} {:>12} {:>9.3} {:>12} {:>9.1}%",
            nodes,
            fmt_secs(seq),
            fmt_secs(rep.elapsed),
            speedup,
            fmt_secs(rep.comm_time),
            100.0 * speedup / nodes as f64
        );
    }
}

fn main() {
    println!("scaling sweeps (coarse granularity, analytic mode)");
    sweep(
        "MM 512^2, nominal card",
        vpce_workloads::mm::SOURCE,
        ("N", 512),
        ClusterConfig::paper_n,
    );
    sweep(
        "MM 512^2, calibrated prototype",
        vpce_workloads::mm::SOURCE,
        ("N", 512),
        ClusterConfig::prototype_n,
    );
    sweep(
        "SWIM 256, nominal card",
        vpce_workloads::swim::SOURCE,
        ("N", 256),
        ClusterConfig::paper_n,
    );
}
