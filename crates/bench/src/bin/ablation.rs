//! Regenerate the ablations A1-A4 (DESIGN.md section 4).

use cluster_sim::ClusterConfig;
use vpce_bench::{ablation, fmt_secs};

fn main() {
    let cluster = ClusterConfig::paper_4node();

    println!("== A1: AVPG redundant-communication elimination (SWIM 256) ==");
    let a1 = ablation::a1_avpg(256, &cluster);
    println!(
        "  with AVPG:    comm {} / {} msgs / {} B",
        fmt_secs(a1.with_avpg_comm),
        a1.with_msgs,
        a1.with_bytes
    );
    println!(
        "  without AVPG: comm {} / {} msgs / {} B",
        fmt_secs(a1.without_avpg_comm),
        a1.without_msgs,
        a1.without_bytes
    );
    println!(
        "  elided: {} scatters, {} collects ({:.1}% comm-time saved)",
        a1.scatters_elided,
        a1.collects_elided,
        100.0 * (1.0 - a1.with_avpg_comm / a1.without_avpg_comm)
    );

    println!("\n== A2: shared driver/daemon queue vs kernel stack (MM 256, fine) ==");
    let a2 = ablation::a2_stack(256);
    println!(
        "  user-level {} vs kernel-level {} ({:.2}x)",
        fmt_secs(a2.user_level_comm),
        fmt_secs(a2.kernel_level_comm),
        a2.kernel_level_comm / a2.user_level_comm
    );

    println!("\n== A3: block vs cyclic partitioning (triangular matmul 256) ==");
    let a3 = ablation::a3_partitioning(256, &cluster);
    println!(
        "  block {} vs cyclic {} ({:.2}x); heuristic picked cyclic: {}",
        fmt_secs(a3.block_elapsed),
        fmt_secs(a3.cyclic_elapsed),
        a3.block_elapsed / a3.cyclic_elapsed,
        a3.heuristic_is_cyclic
    );

    println!("\n== A5: push (master PUT) vs pull (slave GET) scattering (SWIM 256, fine) ==");
    let a5 = ablation::a5_push_vs_pull(256, &cluster);
    println!(
        "  push comm {} (master host {}) vs pull comm {} (master host {})",
        fmt_secs(a5.push_comm),
        fmt_secs(a5.push_master_host),
        fmt_secs(a5.pull_comm),
        fmt_secs(a5.pull_master_host)
    );

    println!("\n== A4: section 5.6 overlap safety check (coarse collection) ==");
    let (mm_fb, swim_fb) = ablation::a4_overlap_check(256);
    println!("  MM (interleaved row bands): {mm_fb} arrays forced to fine collection");
    println!("  SWIM (disjoint column bands): {swim_fb} arrays forced to fine collection");
}
