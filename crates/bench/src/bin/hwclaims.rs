//! Regenerate the hardware claims C1-C4 (DESIGN.md section 4).

use vpce_bench::{fmt_secs, hwclaims};

fn main() {
    println!("== C1: link signalling modes (SKWP vs conventional, paper: ~4x) ==");
    println!("{:>16} {:>10} {:>12} {:>7}", "mode", "period", "bandwidth", "gain");
    for r in hwclaims::c1_link_modes() {
        println!(
            "{:>16} {:>8.1}ns {:>9.1}MB/s {:>6.2}x",
            r.mode.name(),
            r.period_ns,
            r.bandwidth_mbps,
            r.gain_over_conventional
        );
    }
    let (skwp, conv) = hwclaims::c1_system_level(512);
    println!(
        "system level (MM 512 comm time): SKWP {} vs conventional {} ({:.2}x)",
        fmt_secs(skwp),
        fmt_secs(conv),
        conv / skwp
    );

    println!("\n== C2: V-Bus card vs Fast Ethernet (paper: ~4x latency & bandwidth) ==");
    println!(
        "{:>10} {:>12} {:>12} {:>7} {:>12} {:>12}",
        "bytes", "vbus lat", "eth lat", "ratio", "vbus bw", "eth bw"
    );
    for r in hwclaims::c2_vbus_vs_ethernet(&[64, 1024, 65536, 1 << 20, 1 << 22]) {
        println!(
            "{:>10} {:>12} {:>12} {:>6.2}x {:>9.1}MB/s {:>9.1}MB/s",
            r.bytes,
            fmt_secs(r.vbus.latency_s),
            fmt_secs(r.ethernet.latency_s),
            r.ethernet.latency_s / r.vbus.latency_s,
            r.vbus.bandwidth_mbps,
            r.ethernet.bandwidth_mbps
        );
    }

    println!("\n== C3: virtual-bus broadcast vs software tree ==");
    for nodes in [4usize, 9, 16] {
        println!("  {nodes} nodes:");
        for p in hwclaims::c3_broadcast(nodes, &[1 << 10, 1 << 16, 1 << 20]) {
            println!(
                "    {:>9}B: vbus {:>10} tree {:>10} ({:.2}x)",
                p.bytes,
                fmt_secs(p.vbus_s),
                fmt_secs(p.tree_s),
                p.tree_s / p.vbus_s
            );
        }
    }

    println!("\n== C4: DMA (contiguous) vs PIO (strided) host cost ==");
    println!("{:>10} {:>12} {:>12} {:>8}", "elements", "contiguous", "strided", "ratio");
    for r in hwclaims::c4_dma_vs_pio(&[16, 256, 4096, 65536]) {
        println!(
            "{:>10} {:>12} {:>12} {:>7.1}x",
            r.elems,
            fmt_secs(r.contiguous_host_s),
            fmt_secs(r.strided_host_s),
            r.ratio
        );
    }

    println!("\n== C5: machines x workloads (the declarative zoo, 8 nodes) ==");
    vpce_bench::machine::print(&vpce_bench::machine::sweep(vpce_bench::machine::MACHINES, 8));
}
