//! Run the chaos matrix: the paper workloads under seeded fault
//! schedules on 4 nodes, printing the self-healing counters and, with
//! `--json PATH`, writing the fault-counter JSON the CI `chaos` job
//! uploads as an artifact. Exits nonzero if any survived run diverged
//! from its fault-free results — the one outcome the fault plane must
//! never produce.

use cluster_sim::ClusterConfig;
use vpce_bench::chaos;

fn main() {
    let mut json_path = None;
    let mut seeds = 5u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--seeds" => {
                seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds needs a number")
            }
            other => {
                eprintln!("unknown argument `{other}` (accepted: --json PATH, --seeds N)");
                std::process::exit(2);
            }
        }
    }
    let cells = chaos::sweep(&ClusterConfig::paper_4node(), seeds);
    chaos::print_sweep("nominal card, 4 nodes", &cells);
    if let Some(path) = json_path {
        let doc = format!("{{\n  \"cells\": {}\n}}\n", chaos::to_json(&cells));
        std::fs::write(&path, doc).expect("write --json output");
        eprintln!("wrote {path}");
    }
    let diverged: Vec<_> = cells.iter().filter(|c| c.survived && !c.identical).collect();
    let survived = cells.iter().filter(|c| c.survived).count();
    let typed_errors = cells.len() - survived;
    println!(
        "\n{} cells: {survived} survived byte-identical, {typed_errors} typed errors, {} diverged",
        cells.len(),
        diverged.len()
    );
    if !diverged.is_empty() {
        eprintln!("FAIL: survived runs diverged from fault-free results");
        std::process::exit(1);
    }
}
