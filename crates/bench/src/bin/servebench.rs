//! Run the `vpced` service benchmark: sustained submission ingest,
//! time-to-recovery from a sealed journal, and the seeded kill/restart
//! matrix. With `--json PATH` writes the JSON artifact the CI `serve`
//! job uploads (`BENCH_serve.json`). Exits nonzero if any kill point
//! failed to fire or any recovered run diverged from the baseline —
//! the crash-safety outcome the daemon must never produce.

use vpce_bench::serve;

fn main() {
    let mut json_path = None;
    let mut jobs = 24usize;
    let mut points = 64usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs needs a number")
            }
            "--points" => {
                points = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--points needs a number")
            }
            other => {
                eprintln!(
                    "unknown argument `{other}` (accepted: --json PATH, --jobs N, --points N)"
                );
                std::process::exit(2);
            }
        }
    }
    let bench = serve::run(jobs, points);
    serve::print(&bench);
    if let Some(path) = json_path {
        std::fs::write(&path, serve::to_json(&bench)).expect("write --json output");
        eprintln!("wrote {path}");
    }
    if !serve::healthy(&bench) {
        eprintln!(
            "FAIL: kill matrix unhealthy ({} divergent, {} restarts over {} points)",
            bench.kill_divergent, bench.kill_restarts, bench.kill_points
        );
        std::process::exit(1);
    }
}
