//! Run the rollback-recovery benchmark: checkpoint premium on a
//! crash-free run, time-to-recover and replay amplification across
//! seeded crash schedules, per workload. With `--json PATH` writes the
//! JSON artifact the CI `recovery` job uploads (`BENCH_recovery.json`).
//! Exits nonzero if any recovered run diverged from the crash-free
//! baseline or a workload absorbed no crashes at all.

use vpce_bench::recover;

fn main() {
    let mut json_path = None;
    let mut seeds = 32u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--seeds" => {
                seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds needs a number")
            }
            other => {
                eprintln!("unknown argument `{other}` (accepted: --json PATH, --seeds N)");
                std::process::exit(2);
            }
        }
    }
    let bench = recover::run(seeds);
    recover::print(&bench);
    if let Some(path) = json_path {
        std::fs::write(&path, recover::to_json(&bench)).expect("write --json output");
        eprintln!("wrote {path}");
    }
    if !recover::healthy(&bench) {
        eprintln!("FAIL: recovery sweep unhealthy: {bench:?}");
        std::process::exit(1);
    }
}
