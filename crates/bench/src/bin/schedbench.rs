//! Run the scheduler sweep: seeded traffic storms over machine size ×
//! arrival rate × policy (fcfs vs backfill), printing the throughput
//! grid and, with `--json PATH`, writing the JSON artifact the CI
//! `sched` job uploads. Exits nonzero if any fault-free storm fails
//! to complete every job — the liveness outcome the gang scheduler
//! must never produce.

use vpce_bench::sched;

fn main() {
    let mut json_path = None;
    let mut seed = 1u64;
    let mut per_storm = 6usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number")
            }
            "--jobs" => {
                per_storm = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs needs a number")
            }
            other => {
                eprintln!("unknown argument `{other}` (accepted: --json PATH, --seed N, --jobs N)");
                std::process::exit(2);
            }
        }
    }
    let cells = sched::sweep(seed, per_storm);
    sched::print_sweep(&format!("seed {seed}, {per_storm} jobs per storm"), &cells);
    if let Some(path) = json_path {
        let doc = format!("{{\n  \"cells\": {}\n}}\n", sched::to_json(&cells));
        std::fs::write(&path, doc).expect("write --json output");
        eprintln!("wrote {path}");
    }
    let incomplete: Vec<_> = cells.iter().filter(|c| c.done != c.jobs).collect();
    println!(
        "\n{} cells: {} completed every job, {} incomplete",
        cells.len(),
        cells.len() - incomplete.len(),
        incomplete.len()
    );
    if !incomplete.is_empty() {
        eprintln!("FAIL: fault-free storms left jobs unfinished");
        std::process::exit(1);
    }
}
