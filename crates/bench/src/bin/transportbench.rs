//! Run the transport sweep: a neighbour ring of one-sided PUTs over
//! message size × protocol mode (auto / forced-eager /
//! forced-rendezvous) × registered pool size, printing the crossover
//! grid and, with `--json PATH`, writing the artifact the CI
//! `transport` job uploads (`BENCH_transport.json` at the repo root).
//! Exits nonzero if the policy's auto mode ever loses to *both* forced
//! modes at the same size — the one outcome a cost-model threshold
//! must never produce.

use cluster_sim::ClusterConfig;
use vpce_bench::transport;

fn main() {
    let mut json_path = None;
    let mut epochs = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--epochs" => {
                epochs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--epochs needs a number")
            }
            other => {
                eprintln!("unknown argument `{other}` (accepted: --json PATH, --epochs N)");
                std::process::exit(2);
            }
        }
    }
    let cells = transport::sweep(&ClusterConfig::paper_n(4), epochs);
    transport::print_sweep("nominal card, 4-rank ring", &cells);
    if let Some(path) = json_path {
        let doc = format!("{{\n  \"cells\": {}\n}}\n", transport::to_json(&cells));
        std::fs::write(&path, doc).expect("write --json output");
        eprintln!("wrote {path}");
    }
    let mut regressions = 0;
    for bytes in transport::SWEEP_BYTES {
        for slots in transport::POOL_SIZES {
            let by = |m: &str| {
                cells
                    .iter()
                    .find(|c| c.bytes == bytes && c.slots == slots && c.mode == m)
                    .expect("full grid")
            };
            let worst = by("eager").elapsed.max(by("rendezvous").elapsed);
            if by("auto").elapsed > worst + 1e-12 {
                eprintln!("FAIL: auto slower than both forced modes at {bytes} B, {slots} slots");
                regressions += 1;
            }
        }
    }
    let both = cells.iter().any(|c| c.mode == "auto" && c.eager_ops > 0)
        && cells.iter().any(|c| c.mode == "auto" && c.rdvz_ops > 0);
    if !both {
        eprintln!("FAIL: auto mode did not exercise both protocols across the sweep");
        regressions += 1;
    }
    if regressions > 0 {
        std::process::exit(1);
    }
}
