//! Regenerate Table 2: communication time at fine/middle/coarse for
//! MM(1024), SWIM(512, ITMAX=1) and CFFT2INIT(M=11) on 4 nodes.
//! `--json PATH` additionally writes the grid as JSON (the CI
//! benchmark artifact).

use cluster_sim::ClusterConfig;
use vpce_bench::table2;

fn main() {
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            other => {
                eprintln!("unknown argument `{other}` (only --json PATH is accepted)");
                std::process::exit(2);
            }
        }
    }
    let cells = table2::sweep(&ClusterConfig::paper_4node());
    table2::print_sweep("nominal card, 4 nodes", &cells);
    if let Some(path) = json_path {
        let doc = format!("{{\n  \"cells\": {}\n}}\n", table2::to_json(&cells));
        std::fs::write(&path, doc).expect("write --json output");
        eprintln!("wrote {path}");
    }
    println!("\npaper Table 2 for reference (seconds; * = not reported):");
    println!("{:>18} {:>10} {:>10} {:>10}", "workload", "fine", "middle", "coarse");
    for row in table2::PAPER {
        let f = |v: Option<f64>| v.map_or("*".to_string(), |x| format!("{x}"));
        println!(
            "{:>18} {:>10} {:>10} {:>10}",
            row.name,
            f(row.fine),
            f(row.middle),
            f(row.coarse)
        );
    }
    println!("\nSee EXPERIMENTS.md for the shape analysis (the paper's MM row");
    println!("is internally inconsistent with its own link-rate claims).");
}
