//! # vpce-bench — the paper's evaluation, regenerated
//!
//! One module per experiment of `DESIGN.md` §4:
//!
//! * [`table1`] — MM speedups over matrix size × node count;
//! * [`table2`] — communication time at fine/middle/coarse granularity
//!   for MM, SWIM and CFFT2INIT;
//! * [`hwclaims`] — the §1/§2 hardware claims: SKWP vs conventional
//!   pipelining (C1), V-Bus card vs Fast Ethernet (C2), virtual-bus vs
//!   software broadcast (C3), DMA vs PIO one-sided transfers (C4);
//! * [`machine`] — the machines × workloads sweep: every built-in
//!   machine description (paper baseline, link ablations, the non-mesh
//!   topology zoo) runs every example workload end to end, with the
//!   fabric-independent-numerics invariant checked per cell;
//! * [`ablation`] — AVPG elimination (A1), user-level vs kernel stack
//!   (A2), block vs cyclic partitioning (A3), and the §5.6 overlap
//!   safety check (A4);
//! * [`chaos`] — the fault matrix: workloads under seeded fault
//!   schedules, recording the self-healing transport's counters and
//!   the byte-identity invariant;
//! * [`sched`] — the batch-scheduler sweep: seeded traffic storms over
//!   machine size × arrival rate × policy (fcfs vs backfill),
//!   recording utilization, gang concurrency and wait percentiles;
//! * [`transport`] — the eager/rendezvous crossover grid: message size
//!   × protocol mode (auto and both forced) × registered pool size,
//!   recording the per-protocol ledgers and the achieved bandwidth;
//! * [`serve`] — the `vpced` service benchmark: sustained submission
//!   ingest, time-to-recovery from a sealed journal, and the seeded
//!   kill/restart matrix (amortised cost per kill point);
//! * [`recover`] — the rollback-recovery sweep: checkpoint premium on
//!   a crash-free run, time-to-recover and replay amplification across
//!   seeded crash schedules, with byte-identity cross-checked on every
//!   absorbed schedule.
//!
//! Each module computes plain data structures; the `table1`, `table2`,
//! `hwclaims`, `ablation` and `chaos` binaries print them as the
//! paper-style rows recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]

pub mod ablation;
pub mod chaos;
pub mod hwclaims;
pub mod machine;
pub mod recover;
pub mod sched;
pub mod serve;
pub mod table1;
pub mod table2;
pub mod transport;

/// Render a float as a JSON number. Rust's `Display` for `f64` never
/// produces exponents, so the only invalid outputs to guard against
/// are the non-finite values (which would mean a broken sweep anyway).
pub fn json_num(v: f64) -> String {
    assert!(v.is_finite(), "non-finite value in benchmark output: {v}");
    let s = format!("{v}");
    debug_assert!(!s.contains(['e', 'E']), "exponent in JSON number: {s}");
    s
}

/// Render a float with engineering-style precision for tables.
pub fn fmt_secs(s: f64) -> String {
    if s == 0.0 {
        "0".into()
    } else if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.2}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(0.0), "0");
        assert_eq!(fmt_secs(2.5), "2.500s");
        assert_eq!(fmt_secs(0.0025), "2.500ms");
        assert_eq!(fmt_secs(2.5e-6), "2.50us");
    }
}
