//! Rollback-recovery benchmark — what does the insurance premium cost,
//! and how fast is a claim? For each workload the sweep measures:
//!
//! * **checkpoint overhead** — the virtual time spent replicating
//!   fence-boundary snapshots to buddy ranks on a crash-free run, as a
//!   percentage of the run itself (the always-on premium);
//! * **time-to-recover** — the mean virtual time charged to the
//!   `Recovery` critical-path class per absorbed crash schedule
//!   (quiesce + respawn + replay, on top of the premium);
//! * **replay amplification** — total compute done over compute
//!   needed, `(run + replayed regions) / run`, averaged across the
//!   absorbed schedules.
//!
//! Every absorbed schedule is also cross-checked byte-for-byte against
//! the crash-free run — a divergence is a hard failure, not a data
//! point. The `recoverybench` binary prints the table and exports the
//! CI `--json` artifact (`BENCH_recovery.json`).

use std::time::Instant;

use spmd_rt::{ExecMode, FaultSpec};
use vpce::{compile, BackendOptions, ClusterConfig, Granularity, Tracer};
use vpce_recover::{run_recovering, RecoverSpec};
use vpce_workloads::{mm, swim};

/// One workload's row in the recovery sweep.
#[derive(Debug, Clone)]
pub struct RecoverRow {
    pub workload: &'static str,
    /// Per-rank-per-region crash probability driven through the sweep.
    pub crash_rate: f64,
    /// Fence-boundary checkpoints taken on a crash-free run.
    pub checkpoints: usize,
    /// Bytes shipped to buddy replicas per crash-free run.
    pub replicated_bytes: usize,
    /// Crash-free virtual elapsed time (the denominator).
    pub baseline_s: f64,
    /// ckpt_time / baseline, in percent — the always-on premium.
    pub ckpt_overhead_pct: f64,
    /// Seeds whose schedule actually fired (failed without recovery).
    pub crashing: usize,
    /// Schedules the default RecoverSpec absorbed (byte-identical).
    pub recovered: usize,
    /// Schedules typed out as VPCE402/403/404.
    pub unsurvivable: usize,
    /// Mean Recovery-class charge per absorbed schedule.
    pub mean_time_to_recover_s: f64,
    /// Mean (baseline + replay_time) / baseline over absorbed runs.
    pub replay_amplification: f64,
}

/// The whole sweep: one row per workload plus the wall clock.
#[derive(Debug, Clone)]
pub struct RecoverBench {
    pub seeds: u64,
    pub rows: Vec<RecoverRow>,
    pub wall_s: f64,
}

fn sweep(workload: &'static str, source: &str, n: i64, rate: f64, seeds: u64) -> RecoverRow {
    let opts = BackendOptions::new(4).granularity(Granularity::Fine);
    let compiled = compile(source, &[("N", n)], &opts).expect("workload compiles");
    let cluster = ClusterConfig::paper_4node();
    let spec = RecoverSpec::default();
    let clean = spmd_rt::execute(&compiled.program, &cluster, ExecMode::Full);

    // The premium: recovery armed, no crash schedule. The run must
    // stay byte-identical and the ledger must stay claim-free.
    let (idle_rep, idle) = run_recovering(
        &compiled.program,
        &cluster,
        ExecMode::Full,
        Tracer::disabled(),
        FaultSpec::off(),
        &spec,
    )
    .expect("crash-free run never needs a claim");
    assert_eq!(idle_rep.arrays, clean.arrays, "{workload}: idle recovery perturbed the run");
    assert!(!idle.absorbed(), "{workload}: phantom rollback on a crash-free run");

    let mut crashing = 0usize;
    let mut recovered = 0usize;
    let mut unsurvivable = 0usize;
    let mut recover_s = 0.0f64;
    let mut amplification = 0.0f64;
    for seed in 0..seeds {
        let faults = FaultSpec::parse(&format!("crash={rate},seed={seed}"))
            .expect("crash spec parses");
        if spmd_rt::try_execute(&compiled.program, &cluster, ExecMode::Full, faults.clone())
            .is_ok()
        {
            continue; // the schedule never fired — not a claim
        }
        crashing += 1;
        match run_recovering(
            &compiled.program,
            &cluster,
            ExecMode::Full,
            Tracer::disabled(),
            faults,
            &spec,
        ) {
            Ok((rep, ledger)) => {
                assert_eq!(
                    rep.arrays, clean.arrays,
                    "{workload} seed {seed}: recovered run diverged"
                );
                assert!(ledger.absorbed());
                recovered += 1;
                recover_s += ledger.recovery_total();
                amplification += (rep.elapsed + ledger.replay_time) / rep.elapsed;
            }
            Err(e) => {
                assert!(e.is_injected(), "{workload} seed {seed}: non-typed failure {e}");
                unsurvivable += 1;
            }
        }
    }

    RecoverRow {
        workload,
        crash_rate: rate,
        checkpoints: idle.checkpoints,
        replicated_bytes: idle.replicated_bytes,
        baseline_s: clean.elapsed,
        ckpt_overhead_pct: 100.0 * idle.ckpt_time / clean.elapsed,
        crashing,
        recovered,
        unsurvivable,
        mean_time_to_recover_s: recover_s / (recovered.max(1) as f64),
        replay_amplification: amplification / (recovered.max(1) as f64),
    }
}

/// Run the sweep: `seeds` crash-only schedules per workload, at the
/// hottest rate each workload still frequently survives.
pub fn run(seeds: u64) -> RecoverBench {
    let start = Instant::now();
    let rows = vec![
        sweep("mm", mm::SOURCE, 12, 0.5, seeds),
        sweep("swim", swim::SOURCE, 8, 0.2, seeds),
    ];
    RecoverBench { seeds, rows, wall_s: start.elapsed().as_secs_f64() }
}

/// Sanity-check a finished sweep (the binary exits nonzero otherwise):
/// every workload must have exercised real recoveries, paid a real
/// (finite, sub-100%) premium, and replayed at least as much as it ran.
pub fn healthy(b: &RecoverBench) -> bool {
    b.rows.iter().all(|r| {
        r.recovered > 0
            && r.crashing == r.recovered + r.unsurvivable
            && r.ckpt_overhead_pct.is_finite()
            && r.ckpt_overhead_pct > 0.0
            && r.mean_time_to_recover_s > 0.0
            && r.replay_amplification >= 1.0
    })
}

/// Print the table.
pub fn print(b: &RecoverBench) {
    println!("\n== rollback recovery: {} seeds per workload ==", b.seeds);
    for r in &b.rows {
        println!(
            "  {:<6} crash={:<4} | {} ckpts, {} replica bytes | premium {:.2}% of {}",
            r.workload,
            r.crash_rate,
            r.checkpoints,
            r.replicated_bytes,
            r.ckpt_overhead_pct,
            crate::fmt_secs(r.baseline_s),
        );
        println!(
            "         {} crashing: {} recovered, {} unsurvivable | \
             time-to-recover {} | replay x{:.3}",
            r.crashing,
            r.recovered,
            r.unsurvivable,
            crate::fmt_secs(r.mean_time_to_recover_s),
            r.replay_amplification,
        );
    }
    println!("  wall {}", crate::fmt_secs(b.wall_s));
}

/// Render the sweep as the CI JSON artifact.
pub fn to_json(b: &RecoverBench) -> String {
    let rows: Vec<String> = b
        .rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"workload\": \"{}\",\n      \"crash_rate\": {},\n      \
                 \"checkpoints\": {},\n      \"replicated_bytes\": {},\n      \
                 \"baseline_s\": {},\n      \"ckpt_overhead_pct\": {},\n      \
                 \"crashing\": {},\n      \"recovered\": {},\n      \
                 \"unsurvivable\": {},\n      \"mean_time_to_recover_s\": {},\n      \
                 \"replay_amplification\": {}\n    }}",
                r.workload,
                crate::json_num(r.crash_rate),
                r.checkpoints,
                r.replicated_bytes,
                crate::json_num(r.baseline_s),
                crate::json_num(r.ckpt_overhead_pct),
                r.crashing,
                r.recovered,
                r.unsurvivable,
                crate::json_num(r.mean_time_to_recover_s),
                crate::json_num(r.replay_amplification),
            )
        })
        .collect();
    format!(
        "{{\n  \"seeds\": {},\n  \"wall_s\": {},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        b.seeds,
        crate::json_num(b.wall_s),
        rows.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_healthy_and_exports_wellformed_json() {
        let b = run(16);
        assert!(healthy(&b), "{b:?}");
        assert_eq!(b.rows.len(), 2);
        let json = to_json(&b);
        assert!(json.contains("\"ckpt_overhead_pct\""), "{json}");
        assert!(json.contains("\"replay_amplification\""), "{json}");
        assert!(!json.contains("inf") && !json.contains("NaN"), "{json}");
    }

    #[test]
    fn sweep_is_deterministic_in_virtual_time() {
        // Wall clock aside, every virtual-time figure must reproduce.
        let a = run(8);
        let b = run(8);
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.baseline_s.to_bits(), y.baseline_s.to_bits());
            assert_eq!(x.ckpt_overhead_pct.to_bits(), y.ckpt_overhead_pct.to_bits());
            assert_eq!(x.recovered, y.recovered);
            assert_eq!(x.mean_time_to_recover_s.to_bits(), y.mean_time_to_recover_s.to_bits());
            assert_eq!(x.replay_amplification.to_bits(), y.replay_amplification.to_bits());
        }
    }
}
