//! Machines × workloads sweep — every built-in machine description of
//! the zoo runs every example workload end to end, recording the
//! makespan, communication time, speedup over the same machine's
//! sequential execution, and the byte-identity invariant (numerics
//! must never depend on the fabric).
//!
//! The `machinebench` binary prints the table and exports the CI
//! `--json` artifact (`BENCH_machine.json`); the `hwclaims` binary
//! prints the same sweep as its final section.

use lmad::Granularity;
use polaris_be::BackendOptions;
use spmd_rt::ExecMode;
use vpce_machine::MachineSpec;

/// One cell of the sweep.
#[derive(Debug, Clone)]
pub struct MachinePoint {
    pub machine: String,
    pub topology: String,
    pub workload: String,
    pub nodes: usize,
    pub elapsed_s: f64,
    pub comm_s: f64,
    pub speedup: f64,
    pub identical: bool,
}

/// The default machine set: the paper baseline, its conventional-link
/// and Fast-Ethernet ablations, and the non-mesh topology zoo.
pub const MACHINES: &[&str] = &[
    "paper",
    "conventional",
    "fast-ethernet",
    "torus",
    "torus3d",
    "crossbar",
    "fattree",
    "hypercube",
];

const WORKLOADS: &[(&str, &str, i64)] = &[
    ("mm", vpce_workloads::mm::SOURCE, 32),
    ("swim", vpce_workloads::swim::SOURCE, 32),
];

/// Run the sweep: every machine in `machines` × every example
/// workload, on `nodes` PCs. Each workload compiles once; only the
/// lowered cluster varies across machines.
pub fn sweep(machines: &[&str], nodes: usize) -> Vec<MachinePoint> {
    let mut out = Vec::new();
    for &(name, source, n) in WORKLOADS {
        let opts = BackendOptions::new(nodes).granularity(Granularity::Coarse);
        let compiled = vpce::compile(source, &[("N", n)], &opts).expect("workloads compile");
        for &machine in machines {
            let spec = MachineSpec::builtin(machine)
                .unwrap_or_else(|| panic!("unknown built-in machine `{machine}`"));
            let cluster = spec
                .lower(nodes)
                .unwrap_or_else(|e| panic!("machine `{machine}` lowers at {nodes} nodes: {e}"));
            let par = spmd_rt::execute(&compiled.program, &cluster, ExecMode::Full);
            let seq = spmd_rt::execute_sequential(&compiled.program, &cluster.node.cpu, ExecMode::Full);
            out.push(MachinePoint {
                machine: machine.to_string(),
                topology: spec.topology.kind.name().to_string(),
                workload: name.to_string(),
                nodes,
                elapsed_s: par.elapsed,
                comm_s: par.comm_time,
                speedup: seq.elapsed / par.elapsed,
                identical: par.arrays == seq.arrays,
            });
        }
    }
    out
}

/// Sanity gate for CI: every cell finished with fabric-independent
/// numerics, and the zoo really exercised at least three non-mesh
/// fabrics end to end.
pub fn healthy(points: &[MachinePoint]) -> bool {
    let non_mesh: std::collections::BTreeSet<&str> = points
        .iter()
        .filter(|p| p.topology != "mesh" && p.topology != "torus")
        .map(|p| p.topology.as_str())
        .collect();
    !points.is_empty()
        && points.iter().all(|p| p.identical && p.elapsed_s > 0.0)
        && non_mesh.len() >= 3
}

/// Print the paper-style table.
pub fn print(points: &[MachinePoint]) {
    println!(
        "{:>14} {:>9} {:>8} {:>6} {:>12} {:>12} {:>8} {:>6}",
        "machine", "topology", "workload", "nodes", "elapsed", "comm", "speedup", "ident"
    );
    for p in points {
        println!(
            "{:>14} {:>9} {:>8} {:>6} {:>10} {:>10} {:>7.2}x {:>6}",
            p.machine,
            p.topology,
            p.workload,
            p.nodes,
            crate::fmt_secs(p.elapsed_s),
            crate::fmt_secs(p.comm_s),
            p.speedup,
            p.identical
        );
    }
}

/// Stable-JSON export for the CI artifact.
pub fn to_json(points: &[MachinePoint]) -> String {
    let mut s = String::from("{\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"machine\": \"{}\", \"topology\": \"{}\", \"workload\": \"{}\", \
             \"nodes\": {}, \"elapsed_s\": {}, \"comm_s\": {}, \"speedup\": {}, \
             \"identical\": {}}}{}\n",
            p.machine,
            p.topology,
            p.workload,
            p.nodes,
            crate::json_num(p.elapsed_s),
            crate::json_num(p.comm_s),
            crate::json_num(p.speedup),
            p.identical,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_zoo_and_stays_numerics_identical() {
        let points = sweep(MACHINES, 8);
        assert_eq!(points.len(), MACHINES.len() * 2);
        assert!(healthy(&points), "{points:?}");
        // The conventional links must visibly slow communication on
        // the same workload.
        let comm = |m: &str, w: &str| {
            points
                .iter()
                .find(|p| p.machine == m && p.workload == w)
                .unwrap()
                .comm_s
        };
        assert!(
            comm("conventional", "mm") > 2.0 * comm("paper", "mm"),
            "conventional links should cost >2x comm: {} vs {}",
            comm("conventional", "mm"),
            comm("paper", "mm")
        );
        let json = to_json(&points);
        assert!(json.contains("\"crossbar\""), "{json}");
        assert!(json.contains("\"fattree\""), "{json}");
        assert!(json.contains("\"torus3d\""), "{json}");
    }
}
