//! `vpced` service benchmark — what does crash-safety cost, and how
//! fast does the daemon come back? A synthetic two-tenant storm is
//! driven through a journaled daemon three ways:
//!
//! * **ingest** — wall-clock to apply + journal every submission
//!   (sustained submissions/sec, the line-protocol ceiling);
//! * **recovery** — wall-clock to reopen the sealed journal, replay
//!   every input, cross-check every derived record and re-derive the
//!   report (time-to-recovery after a crash at the worst offset: the
//!   very end);
//! * **kill matrix** — the full seeded murder sweep, amortised per
//!   kill point.
//!
//! The `servebench` binary prints the table and exports the CI
//! `--json` artifact (`BENCH_serve.json`).

use std::time::Instant;

use spmd_rt::ExecMode;
use vpce_serve::{kill_matrix, Daemon, MemStorage, Runner};

/// Headline numbers of one service benchmark run.
#[derive(Debug, Clone)]
pub struct ServeBench {
    pub jobs: usize,
    /// Input lines journaled (directives + submissions).
    pub inputs: usize,
    /// Sealed journal size in bytes.
    pub journal_bytes: u64,
    pub ingest_wall_s: f64,
    pub submissions_per_s: f64,
    pub drain_wall_s: f64,
    /// Reopen the sealed journal: replay + cross-check + re-report.
    pub recovery_wall_s: f64,
    pub kill_points: usize,
    pub kill_restarts: u64,
    pub kill_divergent: usize,
    pub kill_matrix_wall_s: f64,
}

/// The benchmark script: two tenants (one quota-throttled), `jobs`
/// alternating 1-/2-rank submissions with staggered arrivals.
pub fn storm_script(jobs: usize) -> Vec<String> {
    let mut lines = vec![
        "nodes=16".to_string(),
        "seed=1".to_string(),
        "tenant name=acme share=2 quota=8".to_string(),
        "tenant name=beta share=1".to_string(),
    ];
    for i in 0..jobs {
        let tenant = if i % 2 == 0 { "acme" } else { "beta" };
        lines.push(format!(
            "job name=j{i} tenant={tenant} workload=mm ranks={} param:N=8 arrive={}",
            1 + i % 2,
            (i as f64) * 2e-5,
        ));
    }
    lines
}

/// Run the benchmark: ingest + drain a fresh daemon, recover from the
/// sealed journal, then sweep `kill_points` seeded kills.
pub fn run(jobs: usize, kill_points: usize) -> ServeBench {
    let runner = Runner::new(ExecMode::Full);
    let script = storm_script(jobs);

    let mut storage = MemStorage::default();
    let ingest_start = Instant::now();
    let ingest_wall_s;
    let drain_wall_s;
    {
        let (mut daemon, _) = Daemon::open(&mut storage, &runner).expect("fresh journal opens");
        for line in &script {
            daemon.submit(line).expect("benchmark submissions are valid");
        }
        ingest_wall_s = ingest_start.elapsed().as_secs_f64();
        let drain_start = Instant::now();
        daemon.drain().expect("benchmark batch drains");
        drain_wall_s = drain_start.elapsed().as_secs_f64();
    }
    let journal_bytes = storage.bytes.len() as u64;

    // Time-to-recovery: a daemon that died right after sealing.
    let recovery_start = Instant::now();
    let recovered = {
        let (mut daemon, recovery) =
            Daemon::open(&mut storage, &runner).expect("sealed journal recovers");
        assert!(recovery.finished, "journal must be sealed");
        daemon.drain().expect("replay drains");
        daemon.report_json().len()
    };
    let recovery_wall_s = recovery_start.elapsed().as_secs_f64();
    assert!(recovered > 0);

    let kill_start = Instant::now();
    let summary = kill_matrix(&runner, &script, kill_points).expect("kill matrix completes");
    let kill_matrix_wall_s = kill_start.elapsed().as_secs_f64();

    ServeBench {
        jobs,
        inputs: script.len(),
        journal_bytes,
        ingest_wall_s,
        submissions_per_s: script.len() as f64 / ingest_wall_s.max(1e-9),
        drain_wall_s,
        recovery_wall_s,
        kill_points: summary.points,
        kill_restarts: summary.restarts,
        kill_divergent: summary.divergent.len(),
        kill_matrix_wall_s,
    }
}

/// Sanity-check a finished run (the binary exits nonzero otherwise):
/// the kill matrix must fire everywhere and never diverge.
pub fn healthy(b: &ServeBench) -> bool {
    b.kill_divergent == 0 && b.kill_restarts >= b.kill_points as u64 && b.journal_bytes > 0
}

/// Print the table.
pub fn print(b: &ServeBench) {
    println!("\n== vpced service benchmark: {} jobs, {} inputs ==", b.jobs, b.inputs);
    println!("  journal           {:>10} bytes (sealed)", b.journal_bytes);
    println!(
        "  ingest            {:>10} | {:.0} submissions/s",
        crate::fmt_secs(b.ingest_wall_s),
        b.submissions_per_s
    );
    println!("  drain             {:>10}", crate::fmt_secs(b.drain_wall_s));
    println!(
        "  time-to-recovery  {:>10} (reopen + replay + cross-check)",
        crate::fmt_secs(b.recovery_wall_s)
    );
    println!(
        "  kill matrix       {:>10} | {} points, {} restarts, {} divergent ({} per point)",
        crate::fmt_secs(b.kill_matrix_wall_s),
        b.kill_points,
        b.kill_restarts,
        b.kill_divergent,
        crate::fmt_secs(b.kill_matrix_wall_s / (b.kill_points.max(1) as f64)),
    );
}

/// Render the run as the CI JSON artifact.
pub fn to_json(b: &ServeBench) -> String {
    format!(
        "{{\n  \"jobs\": {},\n  \"inputs\": {},\n  \"journal_bytes\": {},\n  \
         \"ingest_wall_s\": {},\n  \"submissions_per_s\": {},\n  \"drain_wall_s\": {},\n  \
         \"recovery_wall_s\": {},\n  \"kill_points\": {},\n  \"kill_restarts\": {},\n  \
         \"kill_divergent\": {},\n  \"kill_matrix_wall_s\": {}\n}}\n",
        b.jobs,
        b.inputs,
        b.journal_bytes,
        crate::json_num(b.ingest_wall_s),
        crate::json_num(b.submissions_per_s),
        crate::json_num(b.drain_wall_s),
        crate::json_num(b.recovery_wall_s),
        b.kill_points,
        b.kill_restarts,
        b.kill_divergent,
        crate::json_num(b.kill_matrix_wall_s)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpce_serve::{run_session, KillStorage};

    #[test]
    fn bench_runs_and_exports_wellformed_json() {
        let b = run(6, 8);
        assert!(healthy(&b), "{b:?}");
        assert_eq!(b.jobs, 6);
        assert_eq!(b.inputs, 10, "4 directives + 6 jobs");
        assert!(b.submissions_per_s > 0.0);
        let json = to_json(&b);
        assert!(json.contains("\"recovery_wall_s\""), "{json}");
        assert!(!json.contains("inf") && !json.contains("NaN"), "{json}");
    }

    #[test]
    fn storm_script_replays_deterministically() {
        let runner = Runner::new(ExecMode::Full);
        let script = storm_script(4);
        let mut a = MemStorage::default();
        let mut b = MemStorage::default();
        let ra = run_session(&runner, &mut a, &script).unwrap();
        let rb = run_session(&runner, &mut b, &script).unwrap();
        assert_eq!(ra.report_json, rb.report_json);
        assert_eq!(a.bytes, b.bytes);
        // And a killed session converges to the same bytes.
        let mut k = KillStorage::new(MemStorage::default(), Some(64)).unwrap();
        let rk = run_session(&runner, &mut k, &script).unwrap();
        assert!(rk.restarts >= 1);
        assert_eq!(rk.report_json, ra.report_json);
    }
}
