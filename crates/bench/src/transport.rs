//! Transport sweep — message size × protocol mode × pool size.
//!
//! The eager/rendezvous counterpart of the paper's Table-2: a neighbour
//! ring of one-sided PUTs swept across payload sizes that straddle the
//! derived threshold, run three ways — the policy's own choice
//! (`auto`), and both protocols forced via [`TransportPolicy::forced`]
//! so the crossover is *measured*, not assumed — and across registered
//! pool sizes, so the cost of a starved pool (fallbacks, waits) is a
//! row in the table rather than folklore.
//!
//! The `transportbench` binary prints the grid and, with `--json PATH`,
//! writes the artifact the CI `transport` job uploads
//! (`BENCH_transport.json` at the repo root).

use cluster_sim::{ClusterConfig, Protocol};
use mpi2::{TransportPolicy, Universe, ELEM_BYTES};

/// Ranks in the neighbour ring.
const RANKS: usize = 4;
/// PUTs each rank issues per epoch: more than the smallest pool swept,
/// so the 4-slot rows show starvation (eager fallbacks) that the
/// 16-slot rows absorb — and enough in-flight descriptors to exercise
/// doorbell ring batching.
const PUTS_PER_EPOCH: usize = 6;

/// Payload sizes in bytes, bracketing the few-KB threshold.
pub const SWEEP_BYTES: [usize; 5] = [64, 512, 4096, 65_536, 1 << 20];

/// Registered-pool sizes swept (slots per rank).
pub const POOL_SIZES: [usize; 2] = [4, 16];

/// The protocol-mode axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The policy derived from the machine cost model decides.
    Auto,
    /// Every transfer forced eager (staged copy, no handshake).
    Eager,
    /// Every transfer forced rendezvous (RTS/CTS, zero-copy DMA).
    Rendezvous,
}

impl Mode {
    pub fn name(self) -> &'static str {
        match self {
            Mode::Auto => "auto",
            Mode::Eager => "eager",
            Mode::Rendezvous => "rendezvous",
        }
    }

    pub const ALL: [Mode; 3] = [Mode::Auto, Mode::Eager, Mode::Rendezvous];
}

/// One (size, mode, pool) cell of the sweep.
#[derive(Debug, Clone)]
pub struct Cell {
    pub bytes: usize,
    pub mode: &'static str,
    pub slots: usize,
    /// Virtual elapsed time of the whole ring exchange, seconds.
    pub elapsed: f64,
    /// Payload bandwidth: total payload bytes over elapsed, bytes/s.
    pub bandwidth_bps: f64,
    pub eager_ops: u64,
    pub rdvz_ops: u64,
    pub eager_copy_s: f64,
    pub eager_fallbacks: u64,
    pub pool_waits: u64,
    pub pool_wait_s: f64,
    pub pool_hwm: u64,
    pub doorbells: u64,
    pub ring_batched: u64,
    pub rdvz_handshakes: u64,
    pub wire_bytes: u64,
}

/// Resolve the policy for one cell.
fn policy_for(mode: Mode, cfg: &ClusterConfig, bytes: usize, slots: usize) -> TransportPolicy {
    match mode {
        Mode::Auto => {
            let mut p = TransportPolicy::from_config(cfg);
            p.slots = slots;
            p
        }
        Mode::Eager => TransportPolicy::forced(Protocol::Eager, bytes, slots),
        Mode::Rendezvous => TransportPolicy::forced(Protocol::Rendezvous, bytes, slots),
    }
}

/// Run one cell: `epochs` rounds of a neighbour ring where every rank
/// PUTs `PUTS_PER_EPOCH` payloads of `bytes` to its successor.
fn run_cell(cfg: &ClusterConfig, mode: Mode, bytes: usize, slots: usize, epochs: usize) -> Cell {
    let elems = (bytes / ELEM_BYTES).max(1);
    let policy = policy_for(mode, cfg, bytes, slots);
    let uni = Universe::new(cfg.clone()).with_transport(policy);
    let out = uni.run(move |mpi| {
        let w = mpi.win_create(elems * PUTS_PER_EPOCH);
        let next = (mpi.rank() + 1) % mpi.size();
        for _ in 0..epochs {
            for p in 0..PUTS_PER_EPOCH {
                mpi.put_region(&w, next, p * elems, elems);
            }
            mpi.fence_all();
        }
    });
    let s = out.total_stats();
    let payload = (RANKS * PUTS_PER_EPOCH * epochs * elems * ELEM_BYTES) as f64;
    let elapsed = out.elapsed();
    Cell {
        bytes,
        mode: mode.name(),
        slots,
        elapsed,
        bandwidth_bps: payload / elapsed,
        eager_ops: s.eager_ops,
        rdvz_ops: s.rdvz_ops,
        eager_copy_s: s.eager_copy_s,
        eager_fallbacks: s.eager_fallbacks,
        pool_waits: s.pool_waits,
        pool_wait_s: s.pool_wait_s,
        pool_hwm: s.pool_hwm,
        doorbells: s.doorbells,
        ring_batched: s.ring_batched,
        rdvz_handshakes: out.net.rdvz_handshakes,
        wire_bytes: out.net.p2p_bytes,
    }
}

/// The full grid: size × mode × pool, `epochs` fence epochs per cell.
pub fn sweep(cluster: &ClusterConfig, epochs: usize) -> Vec<Cell> {
    let mut cells = Vec::new();
    for bytes in SWEEP_BYTES {
        for mode in Mode::ALL {
            for slots in POOL_SIZES {
                cells.push(run_cell(cluster, mode, bytes, slots, epochs));
            }
        }
    }
    cells
}

/// Print the grid.
pub fn print_sweep(title: &str, cells: &[Cell]) {
    println!("\n== Transport sweep: eager/rendezvous crossover ({title}) ==");
    println!(
        "{:>9} {:>11} {:>5} {:>10} {:>12} {:>6} {:>6} {:>5} {:>6} {:>6} {:>7}",
        "bytes", "mode", "pool", "elapsed", "bandwidth", "eager", "rdvz", "fall", "waits", "drbl", "batched"
    );
    for c in cells {
        println!(
            "{:>9} {:>11} {:>5} {:>10} {:>10}/s {:>6} {:>6} {:>5} {:>6} {:>6} {:>7}",
            c.bytes,
            c.mode,
            c.slots,
            crate::fmt_secs(c.elapsed),
            fmt_bytes(c.bandwidth_bps),
            c.eager_ops,
            c.rdvz_ops,
            c.eager_fallbacks,
            c.pool_waits,
            c.doorbells,
            c.ring_batched,
        );
    }
}

fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2}GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2}MB", b / 1e6)
    } else {
        format!("{:.1}KB", b / 1e3)
    }
}

/// Render the grid as a JSON array for the CI artifact.
pub fn to_json(cells: &[Cell]) -> String {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"bytes\": {}, \"mode\": \"{}\", \"pool_slots\": {}, \"elapsed_s\": {}, \"bandwidth_bps\": {}, \"eager_ops\": {}, \"rdvz_ops\": {}, \"eager_copy_s\": {}, \"eager_fallbacks\": {}, \"pool_waits\": {}, \"pool_wait_s\": {}, \"pool_hwm\": {}, \"doorbells\": {}, \"ring_batched\": {}, \"rdvz_handshakes\": {}, \"wire_bytes\": {}}}",
                c.bytes,
                c.mode,
                c.slots,
                crate::json_num(c.elapsed),
                crate::json_num(c.bandwidth_bps),
                c.eager_ops,
                c.rdvz_ops,
                crate::json_num(c.eager_copy_s),
                c.eager_fallbacks,
                c.pool_waits,
                crate::json_num(c.pool_wait_s),
                c.pool_hwm,
                c.doorbells,
                c.ring_batched,
                c.rdvz_handshakes,
                c.wire_bytes
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_modes_pin_the_protocol_and_auto_crosses_over() {
        let cells = sweep(&ClusterConfig::paper_n(RANKS), 2);
        assert_eq!(cells.len(), SWEEP_BYTES.len() * 3 * POOL_SIZES.len());
        for c in &cells {
            match c.mode {
                // Forced eager only goes rendezvous when the pool
                // starves — and a pool bigger than the per-epoch burst
                // never starves.
                "eager" => {
                    assert_eq!(c.rdvz_ops, c.eager_fallbacks, "{c:?}");
                    if c.slots >= PUTS_PER_EPOCH {
                        assert_eq!(c.eager_fallbacks, 0, "{c:?}");
                    }
                }
                "rendezvous" => assert_eq!(c.eager_ops, 0, "{c:?}"),
                _ => {}
            }
        }
        // The pool axis is live: the small pool starves under the
        // per-epoch burst on at least one forced-eager row.
        assert!(
            cells
                .iter()
                .any(|c| c.mode == "eager" && c.slots < PUTS_PER_EPOCH && c.eager_fallbacks > 0),
            "small pool never starved — the pool-size axis measures nothing"
        );
        // Auto mode must use both protocols across the size axis.
        let auto: Vec<_> = cells.iter().filter(|c| c.mode == "auto").collect();
        assert!(auto.iter().any(|c| c.eager_ops > 0 && c.rdvz_ops == 0));
        assert!(auto.iter().any(|c| c.rdvz_ops > 0 && c.eager_ops == 0));
        // And at every size, auto is no slower than the worse forced
        // mode — the threshold earns its keep.
        for bytes in SWEEP_BYTES {
            for slots in POOL_SIZES {
                let by = |m: &str| {
                    cells
                        .iter()
                        .find(|c| c.bytes == bytes && c.slots == slots && c.mode == m)
                        .unwrap()
                };
                let worst = by("eager").elapsed.max(by("rendezvous").elapsed);
                assert!(
                    by("auto").elapsed <= worst + 1e-12,
                    "auto slower than both forced modes at {bytes} B"
                );
            }
        }
    }

    #[test]
    fn json_export_is_wellformed() {
        let cells = sweep(&ClusterConfig::paper_n(RANKS), 1);
        let json = to_json(&cells);
        assert_eq!(json.matches('{').count(), cells.len());
        assert!(json.contains("\"rdvz_handshakes\""), "{json}");
        assert!(!json.contains("inf") && !json.contains("NaN"), "{json}");
    }
}
