//! Table 1 — "Total execution time of the MM code": speedups of the
//! compiled parallel MM over the sequential original, for matrix
//! sizes 256²/512²/1024² on 1/2/4 nodes.
//!
//! Two hardware variants are reported: the nominal card (§2.1 specs:
//! 50 MB/s SKWP links) and the calibrated prototype
//! ([`cluster_sim::ClusterConfig::prototype_n`]), whose ≈6 MB/s
//! achieved bandwidth reconciles the paper's own speedup numbers.

use cluster_sim::ClusterConfig;
use lmad::Granularity;
use polaris_be::BackendOptions;
use spmd_rt::ExecMode;
use vpce_workloads::mm;

/// The paper's Table 1 values, `paper[size][nodes]` with
/// sizes = [256, 512, 1024] and nodes = [1, 2, 4].
pub const PAPER: [[f64; 3]; 3] = [
    [0.96, 1.086, 1.75],
    [0.96, 1.53, 2.74],
    [0.96, 1.60, 3.033],
];

/// Sizes and node counts of the sweep.
pub const SIZES: [i64; 3] = [256, 512, 1024];
pub const NODES: [usize; 3] = [1, 2, 4];

/// One measured cell.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    pub size: i64,
    pub nodes: usize,
    pub seq_time: f64,
    pub par_time: f64,
    pub speedup: f64,
    pub comm_time: f64,
}

/// Run the whole sweep on a cluster family (e.g.
/// `ClusterConfig::paper_n` or `ClusterConfig::prototype_n`).
///
/// Uses coarse granularity (the fewest-setup plan — what a user would
/// pick for MM per §5.6) and analytic execution (identical virtual
/// times to full execution; see `spmd-rt` docs).
pub fn sweep(cluster_of: impl Fn(usize) -> ClusterConfig) -> Vec<Cell> {
    let mut out = Vec::new();
    for &size in &SIZES {
        // The sequential baseline does not depend on the node count.
        let opts = BackendOptions::new(1).granularity(Granularity::Coarse);
        let compiled = vpce::compile(mm::SOURCE, &[("N", size)], &opts).expect("MM compiles");
        let seq =
            spmd_rt::execute_sequential(&compiled.program, &cluster_of(1).node.cpu, ExecMode::Analytic);
        for &nodes in &NODES {
            let opts = BackendOptions::new(nodes).granularity(Granularity::Coarse);
            let compiled =
                vpce::compile(mm::SOURCE, &[("N", size)], &opts).expect("MM compiles");
            let rep = spmd_rt::execute(&compiled.program, &cluster_of(nodes), ExecMode::Analytic);
            out.push(Cell {
                size,
                nodes,
                seq_time: seq.elapsed,
                par_time: rep.elapsed,
                speedup: seq.elapsed / rep.elapsed,
                comm_time: rep.comm_time,
            });
        }
    }
    out
}

/// Pretty-print one sweep next to the paper's numbers.
pub fn print_sweep(title: &str, cells: &[Cell]) {
    println!("\n== Table 1: MM speedups ({title}) ==");
    println!(
        "{:>10} {:>6} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "size", "nodes", "T_seq", "T_par", "speedup", "paper", "comm"
    );
    for c in cells {
        let si = SIZES.iter().position(|&s| s == c.size).unwrap();
        let ni = NODES.iter().position(|&n| n == c.nodes).unwrap();
        println!(
            "{:>7}^2 {:>6} {:>10} {:>10} {:>9.3} {:>9.3} {:>9}",
            c.size,
            c.nodes,
            crate::fmt_secs(c.seq_time),
            crate::fmt_secs(c.par_time),
            c.speedup,
            PAPER[si][ni],
            crate::fmt_secs(c.comm_time),
        );
    }
}

/// Render a sweep as a JSON array (hand-rolled — the workspace has no
/// serde) for the CI benchmark artifacts.
pub fn to_json(cells: &[Cell]) -> String {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"size\": {}, \"nodes\": {}, \"seq_time\": {}, \"par_time\": {}, \"speedup\": {}, \"comm_time\": {}}}",
                c.size,
                c.nodes,
                crate::json_num(c.seq_time),
                crate::json_num(c.par_time),
                crate::json_num(c.speedup),
                crate::json_num(c.comm_time)
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep(cluster_of: impl Fn(usize) -> ClusterConfig, size: i64) -> Vec<Cell> {
        let mut out = Vec::new();
        let opts = BackendOptions::new(1).granularity(Granularity::Coarse);
        let compiled = vpce::compile(mm::SOURCE, &[("N", size)], &opts).unwrap();
        let seq = spmd_rt::execute_sequential(
            &compiled.program,
            &cluster_of(1).node.cpu,
            ExecMode::Analytic,
        );
        for nodes in [1usize, 2, 4] {
            let opts = BackendOptions::new(nodes).granularity(Granularity::Coarse);
            let compiled = vpce::compile(mm::SOURCE, &[("N", size)], &opts).unwrap();
            let rep =
                spmd_rt::execute(&compiled.program, &cluster_of(nodes), ExecMode::Analytic);
            out.push(Cell {
                size,
                nodes,
                seq_time: seq.elapsed,
                par_time: rep.elapsed,
                speedup: seq.elapsed / rep.elapsed,
                comm_time: rep.comm_time,
            });
        }
        out
    }

    #[test]
    fn json_export_is_wellformed() {
        let cells = small_sweep(ClusterConfig::paper_n, 64);
        let json = to_json(&cells);
        assert_eq!(json.matches('{').count(), cells.len());
        assert_eq!(json.matches('}').count(), cells.len());
        assert!(json.contains("\"speedup\": "));
        assert!(!json.contains("inf") && !json.contains("NaN"), "{json}");
    }

    #[test]
    fn single_node_speedup_is_the_calibrated_0_96() {
        let cells = small_sweep(ClusterConfig::paper_n, 64);
        assert!(
            (cells[0].speedup - 0.96).abs() < 0.01,
            "got {}",
            cells[0].speedup
        );
    }

    #[test]
    fn speedup_monotone_in_nodes() {
        let cells = small_sweep(ClusterConfig::paper_n, 128);
        assert!(cells[0].speedup < cells[1].speedup);
        assert!(cells[1].speedup < cells[2].speedup);
    }

    #[test]
    fn larger_matrices_scale_better() {
        // The paper's key Table-1 shape: speedup at 4 nodes grows with
        // the matrix size (compute grows N^3, communication N^2).
        let s64 = small_sweep(ClusterConfig::prototype_n, 64)[2].speedup;
        let s256 = small_sweep(ClusterConfig::prototype_n, 256)[2].speedup;
        assert!(
            s256 > s64,
            "4-node speedup should grow with N: {s64} vs {s256}"
        );
    }
}
