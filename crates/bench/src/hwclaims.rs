//! The paper's quantitative hardware claims (C1–C4 of `DESIGN.md`):
//! everything §1/§2 asserts about the card, regenerated from the
//! models.

use cluster_sim::{ClusterConfig, CpuModel, NicModel, TransferKind};
use vbus_sim::sweep::{broadcast_sweep, link_mode_table, p2p_sweep, BroadcastPoint, LinkModeRow, P2pPoint};
use vbus_sim::{LinkPhy, NetConfig};

/// C1 — "SKWP increases the bandwidth up to four times higher than
/// conventional pipelining."
pub fn c1_link_modes() -> Vec<LinkModeRow> {
    link_mode_table(&LinkPhy::paper_card())
}

/// C2 — "a V-Bus network card provides about four times lower latency
/// than the Fast Ethernet card" (and 4x the bandwidth): small-message
/// latency and large-message bandwidth of an MPI ping on both cards.
#[derive(Debug, Clone)]
pub struct C2Row {
    pub bytes: usize,
    pub vbus: P2pPoint,
    pub ethernet: P2pPoint,
}

pub fn c2_vbus_vs_ethernet(sizes: &[usize]) -> Vec<C2Row> {
    let vb = p2p_sweep(&NetConfig::vbus_skwp(4), sizes);
    let fe = p2p_sweep(&NetConfig::fast_ethernet(4), sizes);
    // Add the NIC software stack on both sides (the paper's latency
    // claim is end-to-end, §7: user-level vs kernel communication).
    let cpu = CpuModel::pentium_ii_300();
    let vb_nic = NicModel::vbus_card();
    let fe_nic = NicModel::fast_ethernet_card();
    sizes
        .iter()
        .enumerate()
        .map(|(i, &bytes)| {
            let kind = TransferKind::Contiguous { bytes };
            let mut v = vb[i].clone();
            v.latency_s += vb_nic.host_overhead(kind, &cpu) + vb_nic.post_s;
            v.bandwidth_mbps = bytes as f64 / v.latency_s / 1e6;
            let mut e = fe[i].clone();
            e.latency_s += fe_nic.host_overhead(kind, &cpu) + fe_nic.post_s;
            e.bandwidth_mbps = bytes as f64 / e.latency_s / 1e6;
            C2Row {
                bytes,
                vbus: v,
                ethernet: e,
            }
        })
        .collect()
}

/// C3 — hardware virtual-bus broadcast vs software binomial tree on
/// the same mesh.
pub fn c3_broadcast(n_nodes: usize, sizes: &[usize]) -> Vec<BroadcastPoint> {
    broadcast_sweep(&NetConfig::vbus_skwp(n_nodes), sizes)
}

/// C4 — DMA (contiguous) vs PIO (strided) one-sided transfer host
/// cost: the asymmetry behind §5.6.
#[derive(Debug, Clone)]
pub struct C4Row {
    pub elems: usize,
    pub contiguous_host_s: f64,
    pub strided_host_s: f64,
    pub ratio: f64,
}

pub fn c4_dma_vs_pio(elem_counts: &[usize]) -> Vec<C4Row> {
    let cpu = CpuModel::pentium_ii_300();
    let nic = NicModel::vbus_card();
    elem_counts
        .iter()
        .map(|&elems| {
            let c = nic.host_overhead(TransferKind::Contiguous { bytes: elems * 8 }, &cpu);
            let s = nic.host_overhead(
                TransferKind::Strided {
                    elems,
                    elem_bytes: 8,
                },
                &cpu,
            );
            C4Row {
                elems,
                contiguous_host_s: c,
                strided_host_s: s,
                ratio: s / c,
            }
        })
        .collect()
}

/// System-level C1: MM end-to-end on SKWP vs conventionally pipelined
/// links.
pub fn c1_system_level(size: i64) -> (f64, f64) {
    use lmad::Granularity;
    use polaris_be::BackendOptions;
    use spmd_rt::ExecMode;
    let opts = BackendOptions::new(4).granularity(Granularity::Coarse);
    let compiled =
        vpce::compile(vpce_workloads::mm::SOURCE, &[("N", size)], &opts).expect("compiles");
    let skwp = spmd_rt::execute(&compiled.program, &ClusterConfig::paper_n(4), ExecMode::Analytic);
    let conv = spmd_rt::execute(
        &compiled.program,
        &ClusterConfig::conventional_links_n(4),
        ExecMode::Analytic,
    );
    (skwp.comm_time, conv.comm_time)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2_latency_ratio_about_four() {
        let rows = c2_vbus_vs_ethernet(&[64]);
        let ratio = rows[0].ethernet.latency_s / rows[0].vbus.latency_s;
        assert!(
            (3.0..6.0).contains(&ratio),
            "small-message latency ratio should be ~4 (paper §2.1), got {ratio}"
        );
    }

    #[test]
    fn c2_bandwidth_ratio_about_four() {
        let rows = c2_vbus_vs_ethernet(&[1 << 22]);
        let ratio = rows[0].vbus.bandwidth_mbps / rows[0].ethernet.bandwidth_mbps;
        assert!(
            (3.0..5.0).contains(&ratio),
            "large-message bandwidth ratio should be ~4, got {ratio}"
        );
    }

    #[test]
    fn c3_vbus_wins_and_gap_grows_with_fanout() {
        let small = c3_broadcast(4, &[1 << 16]);
        let large = c3_broadcast(16, &[1 << 16]);
        let g4 = small[0].tree_s / small[0].vbus_s;
        let g16 = large[0].tree_s / large[0].vbus_s;
        assert!(g4 > 1.0);
        assert!(g16 > g4, "bus advantage grows with node count");
    }

    #[test]
    fn c4_pio_ratio_grows_with_size() {
        let rows = c4_dma_vs_pio(&[16, 1024, 65536]);
        assert!(rows[0].ratio < rows[1].ratio);
        assert!(rows[1].ratio < rows[2].ratio);
        assert!(rows[2].ratio > 100.0, "large strided transfers are PIO-bound");
    }

    #[test]
    fn c1_system_conventional_links_slow_mm_comm() {
        let (skwp, conv) = c1_system_level(128);
        assert!(
            conv / skwp > 2.0,
            "conventional links should hurt: {skwp} vs {conv}"
        );
    }
}
