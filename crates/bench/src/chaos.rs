//! Chaos matrix — the fault-injection counterpart of the paper's
//! tables: run the evaluated workloads under seeded fault schedules
//! and record what the self-healing transport did (retransmits,
//! backoff, V-Bus degradation, NIC retries), together with the
//! headline invariant: survivable schedules leave workload results
//! byte-identical to the fault-free run.
//!
//! The `chaos` binary prints the grid and exports it as the CI
//! fault-counter JSON artifact.

use cluster_sim::ClusterConfig;
use lmad::Granularity;
use polaris_be::BackendOptions;
use spmd_rt::{ExecMode, FaultSpec};
use vpce_workloads::{mm, swim};

/// One (workload, schedule, seed) cell of the chaos matrix.
#[derive(Debug, Clone)]
pub struct Cell {
    pub workload: String,
    pub schedule: &'static str,
    pub seed: u64,
    /// The run completed (no typed error).
    pub survived: bool,
    /// Survived AND produced byte-identical arrays/scalars to the
    /// fault-free run. `false` on a survived run is a bug.
    pub identical: bool,
    /// Typed error kind for unsurvivable schedules, empty otherwise.
    pub error: String,
    pub elapsed: f64,
    pub crc_failures: u64,
    pub packets_dropped: u64,
    pub link_stalls: u64,
    pub retransmits: u64,
    pub backoff_s: f64,
    pub recovery_s: f64,
    pub bus_degraded: u64,
    pub nic_retries: u64,
    pub nic_stalls: u64,
}

/// Workloads evaluated at chaos-matrix size (Full mode, small N —
/// byte-identity needs real numerics).
fn workloads() -> Vec<(&'static str, &'static str, (&'static str, i64))> {
    vec![
        ("MM(16)", mm::SOURCE, ("N", 16)),
        ("SWIM(12)", swim::SOURCE, ("N", 12)),
    ]
}

/// The schedule axis: base presets the matrix sweeps seeds over.
fn schedules() -> Vec<(&'static str, FaultSpec)> {
    vec![
        ("light", FaultSpec::light()),
        ("heavy", FaultSpec::heavy()),
        ("crashy", FaultSpec::crashy()),
    ]
}

/// Run the full matrix on `cluster` with `seeds` seeds per
/// (workload, schedule) pair.
pub fn sweep(cluster: &ClusterConfig, seeds: u64) -> Vec<Cell> {
    let mut out = Vec::new();
    for (name, source, params) in workloads() {
        let opts = BackendOptions::new(cluster.num_nodes()).granularity(Granularity::Fine);
        let compiled = vpce::compile(source, &[params], &opts).expect("workload compiles");
        let clean = spmd_rt::execute(&compiled.program, cluster, ExecMode::Full);
        for (sched_name, base) in schedules() {
            for seed in 1..=seeds {
                let spec = FaultSpec { seed, ..base.clone() };
                let mut cell = Cell {
                    workload: name.to_string(),
                    schedule: sched_name,
                    seed,
                    survived: false,
                    identical: false,
                    error: String::new(),
                    elapsed: 0.0,
                    crc_failures: 0,
                    packets_dropped: 0,
                    link_stalls: 0,
                    retransmits: 0,
                    backoff_s: 0.0,
                    recovery_s: 0.0,
                    bus_degraded: 0,
                    nic_retries: 0,
                    nic_stalls: 0,
                };
                match spmd_rt::try_execute(&compiled.program, cluster, ExecMode::Full, spec) {
                    Ok(rep) => {
                        cell.survived = true;
                        cell.identical =
                            rep.arrays == clean.arrays && rep.scalars == clean.scalars;
                        cell.elapsed = rep.elapsed;
                        cell.crc_failures = rep.net.crc_failures;
                        cell.packets_dropped = rep.net.packets_dropped;
                        cell.link_stalls = rep.net.link_stalls;
                        cell.retransmits = rep.net.retransmits;
                        cell.backoff_s = rep.net.backoff_time;
                        cell.recovery_s = rep.net.recovery_time;
                        cell.bus_degraded = rep.net.bus_degraded;
                        for s in &rep.rank_stats {
                            cell.nic_retries += s.nic_retries;
                            cell.nic_stalls += s.nic_stalls;
                        }
                    }
                    Err(e) => {
                        cell.error = e.kind().to_string();
                    }
                }
                out.push(cell);
            }
        }
    }
    out
}

/// Print the matrix.
pub fn print_sweep(title: &str, cells: &[Cell]) {
    println!("\n== Chaos matrix: self-healing under injected faults ({title}) ==");
    println!(
        "{:>10} {:>7} {:>5} {:>9} {:>10} {:>6} {:>6} {:>6} {:>7} {:>12}",
        "workload", "sched", "seed", "outcome", "elapsed", "crc", "drop", "rexmt", "degrade", "error"
    );
    for c in cells {
        let outcome = if !c.survived {
            "error"
        } else if c.identical {
            "ok"
        } else {
            "DIVERGED"
        };
        println!(
            "{:>10} {:>7} {:>5} {:>9} {:>10} {:>6} {:>6} {:>6} {:>7} {:>12}",
            c.workload,
            c.schedule,
            c.seed,
            outcome,
            crate::fmt_secs(c.elapsed),
            c.crc_failures,
            c.packets_dropped,
            c.retransmits,
            c.bus_degraded,
            if c.error.is_empty() { "-" } else { &c.error },
        );
    }
}

/// Render the matrix as a JSON array for the CI fault-counter
/// artifact.
pub fn to_json(cells: &[Cell]) -> String {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"workload\": \"{}\", \"schedule\": \"{}\", \"seed\": {}, \"survived\": {}, \"identical\": {}, \"error\": \"{}\", \"elapsed\": {}, \"crc_failures\": {}, \"packets_dropped\": {}, \"link_stalls\": {}, \"retransmits\": {}, \"backoff_s\": {}, \"recovery_s\": {}, \"bus_degraded\": {}, \"nic_retries\": {}, \"nic_stalls\": {}}}",
                c.workload,
                c.schedule,
                c.seed,
                c.survived,
                c.identical,
                c.error,
                crate::json_num(c.elapsed),
                c.crc_failures,
                c.packets_dropped,
                c.link_stalls,
                c.retransmits,
                crate::json_num(c.backoff_s),
                crate::json_num(c.recovery_s),
                c.bus_degraded,
                c.nic_retries,
                c.nic_stalls
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_holds_the_invariant_and_counts_recovery() {
        let cells = sweep(&ClusterConfig::paper_4node(), 3);
        assert_eq!(cells.len(), 2 * 3 * 3);
        let mut recovery = 0u64;
        for c in &cells {
            assert!(
                !c.survived || c.identical,
                "{} {} seed {}: survived but diverged",
                c.workload,
                c.schedule,
                c.seed
            );
            assert!(c.survived || !c.error.is_empty(), "errors carry a kind");
            recovery += c.retransmits + c.bus_degraded + c.nic_retries + c.link_stalls;
        }
        assert!(recovery > 0, "matrix exercised no recovery machinery");
        // Non-crashy schedules are survivable at these sizes.
        assert!(cells
            .iter()
            .filter(|c| c.schedule != "crashy")
            .all(|c| c.survived));
    }

    #[test]
    fn json_export_is_wellformed() {
        let cells = sweep(&ClusterConfig::paper_4node(), 1);
        let json = to_json(&cells);
        assert_eq!(json.matches('{').count(), cells.len());
        assert!(json.contains("\"retransmits\""), "{json}");
        assert!(!json.contains("inf") && !json.contains("NaN"), "{json}");
    }
}
