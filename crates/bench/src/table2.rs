//! Table 2 — "Communication time for matrix multiplication, swim and
//! CFFZINIT of TFFT" at the three §5.6 granularities.
//!
//! The reproduced quantities per (workload, granularity):
//! critical-path communication time, message count, strided (PIO)
//! message count, wire volume, and redundancy versus the exact
//! regions. MM is reported under both schedules: block (the §5.3
//! default for its rectangular loops — per-column transfers) and
//! cyclic (interleaved rows — the strided-PUT shape that makes the
//! middle grain pay, matching the paper's "middle worse than fine"
//! observation).

use cluster_sim::ClusterConfig;
use lmad::Granularity;
use polaris_be::BackendOptions;
use spmd_rt::{ExecMode, Schedule};
use vpce_workloads::{cfft, mm, swim};

/// The paper's Table 2 (seconds); `None` marks the entry the paper
/// prints as "*" (SWIM at middle grain).
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    pub name: &'static str,
    pub fine: Option<f64>,
    pub middle: Option<f64>,
    pub coarse: Option<f64>,
}

/// Paper values as printed (the MM row's text and numbers disagree —
/// see EXPERIMENTS.md).
pub const PAPER: [PaperRow; 3] = [
    PaperRow {
        name: "MM(1024*1024)",
        fine: Some(0.72),
        middle: Some(0.89),
        coarse: Some(0.01128),
    },
    PaperRow {
        name: "Swim(ITMAX=1)",
        fine: Some(0.20590),
        middle: None,
        coarse: Some(0.072166),
    },
    PaperRow {
        name: "CFFZINIT(M=11)",
        fine: Some(0.3584),
        middle: Some(0.0768),
        coarse: Some(0.0068),
    },
];

/// One measured cell.
#[derive(Debug, Clone)]
pub struct Cell {
    pub workload: String,
    pub granularity: Granularity,
    /// Critical-path communication time, seconds.
    pub comm_time: f64,
    pub messages: usize,
    pub strided_messages: usize,
    pub wire_bytes: u64,
    /// Wire elements over exact elements (>= 1).
    pub redundancy: f64,
    /// Arrays whose collection fell back to fine grain under the §5.6
    /// overlap check.
    pub overlap_fallbacks: usize,
}

/// Benchmark descriptor for the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Bench {
    pub name: &'static str,
    pub source: &'static str,
    pub params: (&'static str, i64),
    pub schedule: Option<Schedule>,
}

/// The paper's three benchmarks at their §6 sizes, plus the cyclic MM
/// variant.
pub fn paper_benches() -> Vec<Bench> {
    vec![
        Bench {
            name: "MM(1024,block)",
            source: mm::SOURCE,
            params: ("N", 1024),
            schedule: None,
        },
        Bench {
            name: "MM(1024,cyclic)",
            source: mm::SOURCE,
            params: ("N", 1024),
            schedule: Some(Schedule::Cyclic),
        },
        Bench {
            name: "SWIM(512)",
            source: swim::SOURCE,
            params: ("N", 512),
            schedule: None,
        },
        Bench {
            name: "CFFT2INIT(M=11)",
            source: cfft::SOURCE,
            params: ("M", 11),
            schedule: None,
        },
    ]
}

/// Measure one (bench, granularity) cell on the given cluster.
pub fn measure(bench: &Bench, g: Granularity, cluster: &ClusterConfig) -> Cell {
    let nprocs = cluster.num_nodes();
    let mut opts = BackendOptions::new(nprocs).granularity(g);
    if let Some(s) = bench.schedule {
        opts = opts.schedule(s);
    }
    let compiled =
        vpce::compile(bench.source, &[bench.params], &opts).expect("workload compiles");
    let rep = spmd_rt::execute(&compiled.program, cluster, ExecMode::Analytic);
    let mut messages = 0;
    let mut strided = 0;
    let mut total = 0u64;
    let mut fallbacks = 0;
    for region in compiled.program.regions() {
        for plan in [&region.scatter, &region.collect] {
            messages += plan.num_messages();
            strided += plan.strided_messages();
            total += plan.total_elems();
        }
    }
    for info in &compiled.report.regions {
        fallbacks += info.collect_fallback_fine.len();
    }
    // Exact need: the fine plan of the same program.
    let exact = {
        let mut fine_opts = BackendOptions::new(nprocs).granularity(Granularity::Fine);
        if let Some(s) = bench.schedule {
            fine_opts = fine_opts.schedule(s);
        }
        let fine = vpce::compile(bench.source, &[bench.params], &fine_opts).unwrap();
        let (_, fine_elems) = fine.program.comm_summary();
        fine_elems
    };
    Cell {
        workload: bench.name.to_string(),
        granularity: g,
        comm_time: rep.comm_time,
        messages,
        strided_messages: strided,
        wire_bytes: total * 8,
        redundancy: total as f64 / exact.max(1) as f64,
        overlap_fallbacks: fallbacks,
    }
}

/// Measure the full Table-2 grid.
pub fn sweep(cluster: &ClusterConfig) -> Vec<Cell> {
    let mut out = Vec::new();
    for b in paper_benches() {
        for g in Granularity::ALL {
            out.push(measure(&b, g, cluster));
        }
    }
    out
}

/// Print the grid.
pub fn print_sweep(title: &str, cells: &[Cell]) {
    println!("\n== Table 2: communication time by granularity ({title}) ==");
    println!(
        "{:>18} {:>8} {:>10} {:>8} {:>8} {:>10} {:>7} {:>9}",
        "workload", "grain", "comm", "msgs", "strided", "wire", "redund", "fallback"
    );
    for c in cells {
        println!(
            "{:>18} {:>8} {:>10} {:>8} {:>8} {:>9}B {:>7.2} {:>9}",
            c.workload,
            c.granularity.name(),
            crate::fmt_secs(c.comm_time),
            c.messages,
            c.strided_messages,
            c.wire_bytes,
            c.redundancy,
            c.overlap_fallbacks,
        );
    }
}

/// Render the grid as a JSON array (hand-rolled) for the CI benchmark
/// artifacts.
pub fn to_json(cells: &[Cell]) -> String {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"workload\": \"{}\", \"granularity\": \"{}\", \"comm_time\": {}, \"messages\": {}, \"strided_messages\": {}, \"wire_bytes\": {}, \"redundancy\": {}, \"overlap_fallbacks\": {}}}",
                c.workload,
                c.granularity.name(),
                crate::json_num(c.comm_time),
                c.messages,
                c.strided_messages,
                c.wire_bytes,
                crate::json_num(c.redundancy),
                c.overlap_fallbacks
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(src: &'static str, params: (&'static str, i64), g: Granularity) -> Cell {
        let b = Bench {
            name: "t",
            source: src,
            params,
            schedule: None,
        };
        measure(&b, g, &ClusterConfig::paper_4node())
    }

    #[test]
    fn cfft_shape_matches_paper() {
        // At the paper's size (M=11): fine uses strided PIO and is the
        // slowest; middle converts to contiguous with ~2x redundancy
        // and wins; coarse merges the interleaved regions into one
        // exact contiguous block and wins more.
        let fine = cell(cfft::SOURCE, ("M", 11), Granularity::Fine);
        let middle = cell(cfft::SOURCE, ("M", 11), Granularity::Middle);
        let coarse = cell(cfft::SOURCE, ("M", 11), Granularity::Coarse);
        assert!(fine.strided_messages > 0);
        assert_eq!(middle.strided_messages, 0);
        assert!(
            middle.comm_time < fine.comm_time,
            "middle {} vs fine {}",
            middle.comm_time,
            fine.comm_time
        );
        assert!(coarse.comm_time < middle.comm_time);
        assert!((1.5..2.5).contains(&middle.redundancy));
    }

    #[test]
    fn swim_coarse_beats_fine() {
        // Setup-dominated regime: per-column messages at fine grain
        // versus a handful of bounding transfers at coarse.
        let fine = cell(swim::SOURCE, ("N", 64), Granularity::Fine);
        let coarse = cell(swim::SOURCE, ("N", 64), Granularity::Coarse);
        assert!(
            coarse.comm_time < fine.comm_time,
            "coarse {} vs fine {}",
            coarse.comm_time,
            fine.comm_time
        );
        assert!(coarse.messages < fine.messages / 4);
    }

    #[test]
    fn mm_cyclic_middle_worse_than_fine() {
        // The paper's MM observation: "at the middle grain,
        // communication cost increases" — redundant contiguous data
        // outweighs the saved PIO.
        let b = Bench {
            name: "mm-cyc",
            source: mm::SOURCE,
            params: ("N", 256),
            schedule: Some(Schedule::Cyclic),
        };
        let cluster = ClusterConfig::paper_4node();
        let fine = measure(&b, Granularity::Fine, &cluster);
        let middle = measure(&b, Granularity::Middle, &cluster);
        assert!(fine.strided_messages > 0, "cyclic MM uses strided PUTs");
        assert!(
            middle.comm_time > fine.comm_time,
            "middle {} should exceed fine {}",
            middle.comm_time,
            fine.comm_time
        );
    }

    #[test]
    fn mm_coarse_triggers_overlap_fallback_under_cyclic() {
        // §5.6's safety check in action: interleaved rows make the
        // slaves' approximate collect regions overlap.
        let b = Bench {
            name: "mm-cyc",
            source: mm::SOURCE,
            params: ("N", 128),
            schedule: Some(Schedule::Cyclic),
        };
        let coarse = measure(&b, Granularity::Coarse, &ClusterConfig::paper_4node());
        assert!(coarse.overlap_fallbacks > 0);
    }

    #[test]
    fn json_export_is_wellformed() {
        let c = cell(cfft::SOURCE, ("M", 6), Granularity::Middle);
        let json = to_json(std::slice::from_ref(&c));
        assert!(json.contains("\"workload\": \"t\""), "{json}");
        assert!(json.contains("\"granularity\": \"middle\""), "{json}");
        assert_eq!(json.matches('{').count(), 1);
        assert!(!json.contains("inf") && !json.contains("NaN"), "{json}");
    }

    #[test]
    fn redundancy_is_one_at_fine_grain() {
        for (src, params) in [
            (mm::SOURCE, ("N", 64i64)),
            (swim::SOURCE, ("N", 32)),
            (cfft::SOURCE, ("M", 6)),
        ] {
            let c = cell(src, params, Granularity::Fine);
            assert!(
                (c.redundancy - 1.0).abs() < 1e-12,
                "{src:.20}: {}",
                c.redundancy
            );
        }
    }
}
