//! Ablations A1–A4 of `DESIGN.md`: each design choice the paper calls
//! out, measured with the mechanism switched on and off.

use cluster_sim::{ClusterConfig, NicModel};
use lmad::Granularity;
use polaris_be::BackendOptions;
use spmd_rt::{ExecMode, Schedule};
use vpce_workloads::{mm, swim};

/// A1 — AVPG redundant-communication elimination on the SWIM loop
/// chain: comm time and traffic with and without the graph.
#[derive(Debug, Clone)]
pub struct A1Result {
    pub with_avpg_comm: f64,
    pub without_avpg_comm: f64,
    pub with_msgs: usize,
    pub without_msgs: usize,
    pub with_bytes: u64,
    pub without_bytes: u64,
    pub scatters_elided: usize,
    pub collects_elided: usize,
}

pub fn a1_avpg(n: i64, cluster: &ClusterConfig) -> A1Result {
    let p = cluster.num_nodes();
    let run = |avpg: bool| {
        let opts = BackendOptions::new(p)
            .granularity(Granularity::Coarse)
            .avpg(avpg);
        let compiled = vpce::compile(swim::SOURCE, &[("N", n)], &opts).unwrap();
        let rep = spmd_rt::execute(&compiled.program, cluster, ExecMode::Analytic);
        let (msgs, elems) = compiled.program.comm_summary();
        (rep.comm_time, msgs, elems * 8, compiled.report.elisions)
    };
    let (with_comm, with_msgs, with_bytes, elisions) = run(true);
    let (wo_comm, wo_msgs, wo_bytes, _) = run(false);
    A1Result {
        with_avpg_comm: with_comm,
        without_avpg_comm: wo_comm,
        with_msgs,
        without_msgs: wo_msgs,
        with_bytes,
        without_bytes: wo_bytes,
        scatters_elided: elisions.scatters_elided,
        collects_elided: elisions.collects_elided,
    }
}

/// A2 — the §2.2 software-stack optimization: the shared
/// driver/daemon message queue and direct user→driver copies, versus
/// a conventional kernel stack on identical silicon.
#[derive(Debug, Clone)]
pub struct A2Result {
    pub user_level_comm: f64,
    pub kernel_level_comm: f64,
}

pub fn a2_stack(n: i64) -> A2Result {
    let opts = BackendOptions::new(4).granularity(Granularity::Fine);
    let compiled = vpce::compile(mm::SOURCE, &[("N", n)], &opts).unwrap();
    let user = ClusterConfig::paper_n(4);
    let mut kernel = ClusterConfig::paper_n(4);
    kernel.node.nic = NicModel::vbus_card_kernel_stack();
    A2Result {
        user_level_comm: spmd_rt::execute(&compiled.program, &user, ExecMode::Analytic).comm_time,
        kernel_level_comm: spmd_rt::execute(&compiled.program, &kernel, ExecMode::Analytic)
            .comm_time,
    }
}

/// A3 — block vs cyclic partitioning on a triangular loop: total
/// execution time (load balance) under each schedule.
#[derive(Debug, Clone)]
pub struct A3Result {
    pub block_elapsed: f64,
    pub cyclic_elapsed: f64,
    /// What the §5.3 heuristic picked on its own.
    pub heuristic_is_cyclic: bool,
}

/// A triangular matrix product (`C = A·B` on the lower triangle):
/// iteration `I` costs ~`I·N` flops, so block scheduling leaves the
/// high-index ranks with most of the work while cyclic interleaves it.
pub const TRIANGULAR_SOURCE: &str = r"
      PROGRAM TRI
      PARAMETER (N = 256)
      REAL A(N,N), B(N,N), C(N,N)
      INTEGER I, J, K
      DO I = 1, N
        DO J = 1, N
          A(I,J) = REAL(I+J) / REAL(N)
          B(I,J) = REAL(I-J) / REAL(N)
        ENDDO
      ENDDO
      DO I = 1, N
        DO J = 1, I
          C(I,J) = 0.0
          DO K = 1, N
            C(I,J) = C(I,J) + A(I,K) * B(K,J)
          ENDDO
        ENDDO
      ENDDO
      END
";

pub fn a3_partitioning(n: i64, cluster: &ClusterConfig) -> A3Result {
    let p = cluster.num_nodes();
    let run = |sched: Option<Schedule>| {
        let mut opts = BackendOptions::new(p).granularity(Granularity::Coarse);
        if let Some(s) = sched {
            opts = opts.schedule(s);
        }
        let compiled = vpce::compile(TRIANGULAR_SOURCE, &[("N", n)], &opts).unwrap();
        let heuristic_cyclic = compiled
            .report
            .regions
            .iter()
            .any(|r| r.sched_cyclic);
        (
            spmd_rt::execute(&compiled.program, cluster, ExecMode::Analytic).elapsed,
            heuristic_cyclic,
        )
    };
    let (block_elapsed, _) = run(Some(Schedule::Block));
    let (cyclic_elapsed, _) = run(Some(Schedule::Cyclic));
    let (_, heuristic_is_cyclic) = run(None);
    A3Result {
        block_elapsed,
        cyclic_elapsed,
        heuristic_is_cyclic,
    }
}

/// A4 — the §5.6 overlap safety check. MM partitions *rows* of
/// column-major arrays, so the slaves' bounding collect regions
/// interleave and coarse collection must fall back to fine; SWIM
/// partitions *columns*, whose bounding regions are disjoint, so
/// coarse collection stays legal. Returns (MM fallbacks, SWIM
/// fallbacks). Correctness under both outcomes is covered by the
/// integration tests.
pub fn a4_overlap_check(n: i64) -> (usize, usize) {
    let fallbacks = |src: &str, params: (&str, i64)| -> usize {
        let opts = BackendOptions::new(4).granularity(Granularity::Coarse);
        let compiled = vpce::compile(src, &[params], &opts).unwrap();
        compiled
            .report
            .regions
            .iter()
            .map(|r| r.collect_fallback_fine.len())
            .sum()
    };
    (
        fallbacks(mm::SOURCE, ("N", n)),
        fallbacks(swim::SOURCE, ("N", n)),
    )
}

/// A5 — push (master `MPI_PUT`) vs pull (slave `MPI_GET`) data
/// scattering. One-sided communication makes the initiator a free
/// choice; pulling parallelises the per-message host setup across the
/// slaves, which matters exactly when Table 2's fine grain floods the
/// master with setups.
#[derive(Debug, Clone)]
pub struct A5Result {
    pub push_comm: f64,
    pub pull_comm: f64,
    pub push_master_host: f64,
    pub pull_master_host: f64,
}

pub fn a5_push_vs_pull(n: i64, cluster: &ClusterConfig) -> A5Result {
    let p = cluster.num_nodes();
    let run = |pull: bool| {
        let opts = BackendOptions::new(p)
            .granularity(Granularity::Fine)
            .pull(pull);
        let compiled = vpce::compile(swim::SOURCE, &[("N", n)], &opts).unwrap();
        let rep = spmd_rt::execute(&compiled.program, cluster, ExecMode::Analytic);
        (rep.comm_time, rep.rank_stats[0].comm_host)
    };
    let (push_comm, push_master_host) = run(false);
    let (pull_comm, pull_master_host) = run(true);
    A5Result {
        push_comm,
        pull_comm,
        push_master_host,
        pull_master_host,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_avpg_reduces_communication() {
        let r = a1_avpg(64, &ClusterConfig::paper_4node());
        assert!(r.scatters_elided > 0);
        assert!(r.with_msgs < r.without_msgs);
        assert!(r.with_bytes < r.without_bytes);
        assert!(r.with_avpg_comm < r.without_avpg_comm);
    }

    #[test]
    fn a2_user_level_stack_is_faster() {
        let r = a2_stack(64);
        assert!(
            r.kernel_level_comm > 1.2 * r.user_level_comm,
            "kernel {} vs user {}",
            r.kernel_level_comm,
            r.user_level_comm
        );
    }

    #[test]
    fn a3_cyclic_balances_the_triangle() {
        let r = a3_partitioning(256, &ClusterConfig::paper_4node());
        assert!(
            r.cyclic_elapsed < r.block_elapsed,
            "cyclic {} vs block {}",
            r.cyclic_elapsed,
            r.block_elapsed
        );
        assert!(r.heuristic_is_cyclic, "§5.3 heuristic must pick cyclic");
    }

    #[test]
    fn a5_pull_unloads_the_master() {
        let r = a5_push_vs_pull(128, &ClusterConfig::paper_4node());
        assert!(r.pull_master_host < r.push_master_host / 2.0);
        assert!(r.pull_comm < r.push_comm);
    }

    #[test]
    fn a4_overlap_check_fires_only_when_regions_interleave() {
        let (mm_fb, swim_fb) = a4_overlap_check(64);
        assert!(mm_fb > 0, "interleaved row bands must trigger the fallback");
        assert_eq!(swim_fb, 0, "column bands are disjoint");
    }
}
