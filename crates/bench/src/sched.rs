//! Scheduler sweep — batch throughput over arrival rate × machine
//! size × policy. Each cell submits the same seeded traffic storm (a
//! half-machine-wide low-priority job plus two narrow storms) to
//! `vpce_sched::run_batch` and records the report's headline numbers:
//! utilization, peak gang concurrency, queue-wait and makespan
//! percentiles. The `schedbench` binary prints the grid and exports
//! the CI `--json` artifact; the interesting comparison is fcfs vs
//! backfill under heavy load, where backfill fills the holes in front
//! of the wide job's reservation.

use vpce_sched::{
    run_batch, BatchOptions, BatchReport, BatchSpec, JobSource, JobSpec, Policy, StormSpec,
};

/// One (machine, load, policy) cell of the scheduler sweep.
#[derive(Debug, Clone)]
pub struct Cell {
    pub nodes: usize,
    pub mesh: String,
    pub load: &'static str,
    pub mean_gap_s: f64,
    pub policy: &'static str,
    pub jobs: usize,
    pub done: usize,
    pub failed: usize,
    pub rejected: usize,
    pub peak_concurrent: usize,
    pub utilization: f64,
    pub horizon_s: f64,
    pub throughput_jobs_per_s: f64,
    pub queue_p50_s: f64,
    pub queue_p99_s: f64,
    pub makespan_p50_s: f64,
    pub makespan_p99_s: f64,
}

/// The arrival-rate axis: mean inter-arrival gap of the storms, from
/// saturating (every job queues) to sparse (the machine drains
/// between arrivals).
pub fn loads() -> Vec<(&'static str, f64)> {
    vec![("heavy", 5e-5), ("medium", 2e-4), ("light", 1e-3)]
}

/// The seeded storm submitted to every cell: one half-machine wide
/// job arriving mid-storm (it blocks the queue head while narrow jobs
/// hold the mesh — the case that separates fcfs from backfill), plus
/// `per_storm` single-rank and `per_storm` two-rank jobs with
/// exponential arrivals.
fn storm_batch(nodes: usize, policy: Policy, mean_gap_s: f64, per_storm: usize) -> BatchSpec {
    let job = |name: &str, ranks: usize, prio: i64| {
        let mut j = JobSpec::new(name, JobSource::Workload("mm".into()), ranks);
        j.priority = prio;
        j.params = vec![("N".into(), 8)];
        j.granularity = Some(lmad::Granularity::Fine);
        j
    };
    let storm = |prefix: &str, ranks: usize| StormSpec {
        prefix: prefix.into(),
        count: per_storm,
        mean_gap_s,
        start_s: 0.0,
        template: job("", ranks, 1),
    };
    let mut wide = job("wide", nodes / 2, 2);
    // Arrive a few gaps into the storm: the mesh is already occupied,
    // so the wide job becomes the blocked head of the queue.
    wide.arrival = 2.0 * mean_gap_s;
    BatchSpec {
        nodes: Some(nodes),
        policy: Some(policy),
        seed: None, // the sweep seed decides
        probation: None,
        machine: None,
        tenants: Vec::new(),
        jobs: vec![wide],
        storms: vec![storm("a", 1), storm("b", 2)],
    }
}

fn cell(rep: &BatchReport, load: &'static str, mean_gap_s: f64) -> Cell {
    let (queue_p50_s, queue_p99_s) = rep.queue_wait_percentiles();
    let (makespan_p50_s, makespan_p99_s) = rep.makespan_percentiles();
    Cell {
        nodes: rep.nodes,
        mesh: format!("{}x{}", rep.mesh.cols, rep.mesh.rows),
        load,
        mean_gap_s,
        policy: rep.policy.name(),
        jobs: rep.records.len(),
        done: rep.done(),
        failed: rep.failed(),
        rejected: rep.rejected(),
        peak_concurrent: rep.peak_concurrent,
        utilization: rep.utilization,
        horizon_s: rep.horizon,
        throughput_jobs_per_s: rep.throughput(),
        queue_p50_s,
        queue_p99_s,
        makespan_p50_s,
        makespan_p99_s,
    }
}

/// Run the sweep: machine sizes × loads × policies, `per_storm` jobs
/// per storm (two storms per cell, plus the wide job).
pub fn sweep(seed: u64, per_storm: usize) -> Vec<Cell> {
    let loader = |p: &str| Err(format!("sweep jobs are self-contained: `{p}`"));
    let mut out = Vec::new();
    for &nodes in &[8usize, 16] {
        for (load, mean_gap_s) in loads() {
            for policy in [Policy::Fcfs, Policy::Backfill] {
                let spec = storm_batch(nodes, policy, mean_gap_s, per_storm);
                let opts = BatchOptions { seed: Some(seed), ..BatchOptions::default() };
                let rep = run_batch(&spec, &opts, &loader).expect("sweep batch runs");
                out.push(cell(&rep, load, mean_gap_s));
            }
        }
    }
    out
}

/// Print the grid.
pub fn print_sweep(title: &str, cells: &[Cell]) {
    println!("\n== Scheduler sweep: storm throughput by policy ({title}) ==");
    println!(
        "{:>5} {:>5} {:>7} {:>9} {:>5} {:>5} {:>5} {:>6} {:>10} {:>12} {:>12}",
        "nodes", "mesh", "load", "policy", "jobs", "done", "peak", "util", "horizon", "queue p99", "mkspan p99"
    );
    for c in cells {
        println!(
            "{:>5} {:>5} {:>7} {:>9} {:>5} {:>5} {:>5} {:>5.0}% {:>10} {:>12} {:>12}",
            c.nodes,
            c.mesh,
            c.load,
            c.policy,
            c.jobs,
            c.done,
            c.peak_concurrent,
            c.utilization * 100.0,
            crate::fmt_secs(c.horizon_s),
            crate::fmt_secs(c.queue_p99_s),
            crate::fmt_secs(c.makespan_p99_s),
        );
    }
}

/// Render the sweep as a JSON array for the CI artifact.
pub fn to_json(cells: &[Cell]) -> String {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"nodes\": {}, \"mesh\": \"{}\", \"load\": \"{}\", \"mean_gap_s\": {}, \"policy\": \"{}\", \"jobs\": {}, \"done\": {}, \"failed\": {}, \"rejected\": {}, \"peak_concurrent\": {}, \"utilization\": {}, \"horizon_s\": {}, \"throughput_jobs_per_s\": {}, \"queue_p50_s\": {}, \"queue_p99_s\": {}, \"makespan_p50_s\": {}, \"makespan_p99_s\": {}}}",
                c.nodes,
                c.mesh,
                c.load,
                crate::json_num(c.mean_gap_s),
                c.policy,
                c.jobs,
                c.done,
                c.failed,
                c.rejected,
                c.peak_concurrent,
                crate::json_num(c.utilization),
                crate::json_num(c.horizon_s),
                crate::json_num(c.throughput_jobs_per_s),
                crate::json_num(c.queue_p50_s),
                crate::json_num(c.queue_p99_s),
                crate::json_num(c.makespan_p50_s),
                crate::json_num(c.makespan_p99_s)
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_completes_every_job_and_is_deterministic() {
        let cells = sweep(1, 4);
        assert_eq!(cells.len(), 2 * 3 * 2);
        for c in &cells {
            assert_eq!(c.jobs, 9, "wide + two 4-job storms");
            assert_eq!(c.done, c.jobs, "fault-free storms complete: {c:?}");
            assert_eq!(c.failed + c.rejected, 0, "{c:?}");
            assert!(c.horizon_s > 0.0 && c.utilization > 0.0, "{c:?}");
        }
        let again = sweep(1, 4);
        assert_eq!(to_json(&cells), to_json(&again), "sweep must be seed-deterministic");
    }

    #[test]
    fn heavy_load_gangs_more_jobs_than_it_has_room_for_serially() {
        let cells = sweep(1, 4);
        let heavy16 = cells
            .iter()
            .find(|c| c.nodes == 16 && c.load == "heavy" && c.policy == "backfill")
            .unwrap();
        assert!(
            heavy16.peak_concurrent >= 3,
            "heavy storm must gang-schedule: {heavy16:?}"
        );
    }

    #[test]
    fn json_export_is_wellformed() {
        let cells = sweep(1, 2);
        let json = to_json(&cells);
        assert_eq!(json.matches('{').count(), cells.len());
        assert!(json.contains("\"queue_p99_s\""), "{json}");
        assert!(!json.contains("inf") && !json.contains("NaN"), "{json}");
    }
}
