//! # vpce-diag — the shared diagnostic model of the static checkers
//!
//! `vpcec --lint` (the RMA race checker, `vpce-rmacheck`) and
//! `vpcec --verify` (the progress verifier, `vpce-commcheck`) emit
//! findings through one rendering path defined here, so codes,
//! severities, provenance fields, ordering, and both output formats
//! (terminal text and stable JSON) stay consistent across tools. The
//! byte-exact golden tests of both tools pin this module's output.
//!
//! ## The VPCE code registry
//!
//! Codes are stable wire strings: once published they never change
//! meaning or number. The registry, across all tools:
//!
//! | code    | severity | tool   | meaning |
//! |---------|----------|--------|---------|
//! | VPCE001 | error    | lint   | PUT/PUT overlap inside one epoch |
//! | VPCE002 | error    | lint   | PUT/GET overlap inside one epoch |
//! | VPCE003 | error    | lint   | remote op vs. local access in an open epoch |
//! | VPCE004 | error    | lint   | RMA op never closed by a fence |
//! | VPCE005 | error    | lint   | ranks disagree on the sync sequence |
//! | VPCE006 | error    | lint   | unsound AVPG elision (stale master copy) |
//! | VPCE101 | warning  | lint   | same-origin overlapping writes |
//! | VPCE102 | warning  | lint   | same-origin redundant read/write overlap |
//! | VPCE201 | error    | verify | deadlock: an interleaving reaches a global stall |
//! | VPCE202 | error    | verify | collective/fence mismatch or rank-divergent sync |
//! | VPCE203 | error    | verify | rendezvous RTS/CTS wait cycle |
//! | VPCE204 | error    | verify | registered-pool exhaustion deadlock |
//! | VPCE205 | error    | verify | blocked on a crash-drained peer (orphaned handshake) |
//! | VPCE206 | error    | verify | scheduler-reservation deadlock |
//! | VPCE207 | error    | verify | receive no surviving rank ever matches |
//! | VPCE208 | error    | verify | handshake half orphaned by a finished peer |
//! | VPCE210 | warning  | verify | progress depends on eager pool size ≥ N |
//! | VPCE301 | warning  | serve  | torn journal tail truncated (crash mid-append) |
//! | VPCE302 | error    | serve  | journal corrupt before the tail; recovery refused |
//! | VPCE303 | error    | serve  | replay re-derived a different history than journaled |
//! | VPCE304 | error    | serve  | client verb names a job the journal never saw |
//! | VPCE305 | error    | serve  | submission reuses a live job name |
//! | VPCE306 | error    | serve  | submission can never run under its tenant's quota |
//! | VPCE307 | error    | serve  | serve-script line is not a record or known verb |
//! | VPCE308 | warning  | serve  | cancel/preempt target cannot stop at a boundary |
//! | VPCE310 | error    | jobfile | unrecognisable jobfile line |
//! | VPCE311 | error    | jobfile | unknown key on a jobfile record |
//! | VPCE312 | error    | jobfile | unparsable value for a jobfile field |
//! | VPCE313 | error    | jobfile | required jobfile field missing |
//! | VPCE314 | error    | jobfile | duplicate job name in one jobfile |
//! | VPCE315 | error    | jobfile | mutually exclusive jobfile fields combined |
//! | VPCE320 | error    | faults | duplicate key in one --faults spec |
//! | VPCE321 | error    | faults | unknown --faults key |
//! | VPCE322 | error    | faults | unparsable or out-of-range --faults value |
//! | VPCE401 | warning  | recover | in-run recovery absorbed one or more crashes |
//! | VPCE402 | error    | recover | rollback budget exhausted by the crash schedule |
//! | VPCE403 | error    | recover | spare-node pool exhausted; crashed rank unplaceable |
//! | VPCE404 | error    | recover | every buddy replica died with the crashed rank |
//! | VPCE500 | error    | machine | unrecognisable machine-description line |
//! | VPCE501 | error    | machine | unknown machine-description section |
//! | VPCE502 | error    | machine | unknown key for a machine-description section |
//! | VPCE503 | error    | machine | unparsable or out-of-range machine value |
//! | VPCE504 | error    | machine | unresolvable, cyclic, or misplaced include |
//! | VPCE505 | error    | machine | topology constraints unsatisfiable (dims, pod counts) |
//!
//! Each checker owns its code *enum* (and therefore the
//! 0xx/2xx/30x/31x namespace split); this crate owns everything the
//! enums have in common: the [`DiagCode`] trait, the [`Diagnostic`]
//! record, and the [`Report`] container with its two renderers.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

/// How bad a finding is. Errors are undefined-outcome conflicts or
/// guaranteed-stall interleavings; warnings are legal-but-suspect
/// patterns (overlap, conditional progress).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

/// A tool's stable diagnostic code enum. Implementations must keep
/// `as_str` values frozen once published — golden tests and CI diff
/// against them.
pub trait DiagCode: Copy + Eq + Ord + std::fmt::Debug {
    /// The stable wire string, e.g. `"VPCE001"`.
    fn as_str(self) -> &'static str;
    /// The fixed severity of this code.
    fn severity(self) -> Severity;
}

/// One finding, with enough provenance to locate it in both the plan
/// (window, shard, ranks, phase) and the source (loop line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic<C> {
    pub code: C,
    /// Window index (= array index); `usize::MAX` when not tied to a
    /// particular window.
    pub win: usize,
    /// Window (array) name, empty when not applicable.
    pub win_name: String,
    /// Rank owning the shard where the footprints collide;
    /// `usize::MAX` when not applicable.
    pub shard: usize,
    /// The two involved ranks (sorted; equal for single-rank
    /// findings; `usize::MAX` when not applicable).
    pub ranks: (usize, usize),
    /// Source line of the originating loop (0 = unknown).
    pub line: usize,
    /// Plan site: which lowering phase produced the operations
    /// (`scatter`, `collect`, `compute`, `sync`, `avpg`, ...).
    pub site: String,
    /// Human-readable explanation.
    pub detail: String,
}

impl<C: DiagCode> Diagnostic<C> {
    /// A finding with every provenance field at its "not applicable"
    /// sentinel; callers fill in what they know.
    pub fn bare(code: C) -> Self {
        Diagnostic {
            code,
            win: usize::MAX,
            win_name: String::new(),
            shard: usize::MAX,
            ranks: (usize::MAX, usize::MAX),
            line: 0,
            site: String::new(),
            detail: String::new(),
        }
    }

    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

/// The full result of one static-checker run over one program. `tool`
/// and `clean_message` parameterise the rendering (`lint: p: clean
/// (no RMA conflicts)` vs. `verify: p: clean (...)`); everything else
/// is shared verbatim between the tools.
#[derive(Debug, Clone)]
pub struct Report<C> {
    /// The renderer prefix: `"lint"` or `"verify"`.
    pub tool: &'static str,
    /// What a finding-free run prints after the program name.
    pub clean_message: &'static str,
    pub program: String,
    pub diags: Vec<Diagnostic<C>>,
}

impl<C: DiagCode> Report<C> {
    pub fn new(
        tool: &'static str,
        clean_message: &'static str,
        program: impl Into<String>,
    ) -> Self {
        Report {
            tool,
            clean_message,
            program: program.into(),
            diags: Vec::new(),
        }
    }

    pub fn push(&mut self, d: Diagnostic<C>) {
        self.diags.push(d);
    }

    /// Deterministic presentation order: errors first, then by code,
    /// window, shard, ranks, line.
    pub fn sort(&mut self) {
        self.diags.sort_by(|a, b| {
            b.severity()
                .cmp(&a.severity())
                .then(a.code.cmp(&b.code))
                .then(a.win.cmp(&b.win))
                .then(a.shard.cmp(&b.shard))
                .then(a.ranks.cmp(&b.ranks))
                .then(a.line.cmp(&b.line))
                .then(a.detail.cmp(&b.detail))
        });
        self.diags.dedup();
    }

    pub fn errors(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .count()
    }

    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Process exit code: 0 clean, 1 warnings only, 2 any error.
    pub fn exit_code(&self) -> i32 {
        if self.errors() > 0 {
            2
        } else if self.warnings() > 0 {
            1
        } else {
            0
        }
    }

    /// Terminal rendering.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            let _ = writeln!(
                out,
                "{}: {}: {}",
                self.tool, self.program, self.clean_message
            );
            return out;
        }
        for d in &self.diags {
            let sev = match d.severity() {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let _ = write!(out, "{sev}[{}]", d.code.as_str());
            if !d.win_name.is_empty() {
                let _ = write!(out, " window {}", d.win_name);
            }
            if d.shard != usize::MAX {
                let _ = write!(out, " shard {}", d.shard);
            }
            if d.ranks.0 != usize::MAX {
                if d.ranks.0 == d.ranks.1 {
                    let _ = write!(out, " rank {}", d.ranks.0);
                } else {
                    let _ = write!(out, " ranks {}/{}", d.ranks.0, d.ranks.1);
                }
            }
            if d.line > 0 {
                let _ = write!(out, " (loop at line {})", d.line);
            }
            let _ = writeln!(out, " [{}]: {}", d.site, d.detail);
        }
        let _ = writeln!(
            out,
            "{}: {}: {} error(s), {} warning(s)",
            self.tool,
            self.program,
            self.errors(),
            self.warnings()
        );
        out
    }

    /// Machine-readable JSON: stable key order, one canonical shape.
    pub fn to_json(&self) -> String {
        self.to_json_with(&[])
    }

    /// JSON rendering with extra top-level sections spliced between
    /// `diagnostics` and `summary`. Each entry is `(key, raw JSON
    /// value)`; with no extras the output is byte-identical to
    /// [`Report::to_json`] (the shape the lint goldens pin).
    pub fn to_json_with(&self, extras: &[(&str, String)]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"program\": \"{}\",", json_escape(&self.program));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"code\": \"{}\", ", d.code.as_str());
            let sev = match d.severity() {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let _ = write!(out, "\"severity\": \"{sev}\", ");
            if d.win != usize::MAX {
                let _ = write!(out, "\"win\": {}, ", d.win);
                let _ = write!(out, "\"window\": \"{}\", ", json_escape(&d.win_name));
            }
            if d.shard != usize::MAX {
                let _ = write!(out, "\"shard\": {}, ", d.shard);
            }
            if d.ranks.0 != usize::MAX {
                let _ = write!(out, "\"ranks\": [{}, {}], ", d.ranks.0, d.ranks.1);
            }
            let _ = write!(out, "\"line\": {}, ", d.line);
            let _ = write!(out, "\"site\": \"{}\", ", json_escape(&d.site));
            let _ = write!(out, "\"detail\": \"{}\"", json_escape(&d.detail));
            out.push('}');
        }
        if !self.diags.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        for (key, value) in extras {
            let _ = writeln!(out, "  \"{}\": {},", json_escape(key), value);
        }
        let _ = writeln!(
            out,
            "  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"exit\": {}}}",
            self.errors(),
            self.warnings(),
            self.exit_code()
        );
        out.push('}');
        out.push('\n');
        out
    }
}

/// Minimal JSON string escaping (control chars, quotes, backslash).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum TestCode {
        Boom,
        Meh,
    }

    impl DiagCode for TestCode {
        fn as_str(self) -> &'static str {
            match self {
                TestCode::Boom => "VPCE901",
                TestCode::Meh => "VPCE999",
            }
        }
        fn severity(self) -> Severity {
            match self {
                TestCode::Boom => Severity::Error,
                TestCode::Meh => Severity::Warning,
            }
        }
    }

    fn diag(code: TestCode) -> Diagnostic<TestCode> {
        Diagnostic {
            code,
            win: 0,
            win_name: "A".into(),
            shard: 0,
            ranks: (1, 2),
            line: 3,
            site: "collect".into(),
            detail: "x".into(),
        }
    }

    fn report() -> Report<TestCode> {
        Report::new("check", "clean (nothing found)", "p")
    }

    #[test]
    fn exit_codes_follow_severity() {
        let mut r = report();
        assert_eq!(r.exit_code(), 0);
        r.push(diag(TestCode::Meh));
        assert_eq!(r.exit_code(), 1);
        r.push(diag(TestCode::Boom));
        assert_eq!(r.exit_code(), 2);
    }

    #[test]
    fn sort_puts_errors_before_warnings_and_dedups() {
        let mut r = report();
        r.push(diag(TestCode::Meh));
        r.push(diag(TestCode::Boom));
        r.push(diag(TestCode::Boom));
        r.sort();
        assert_eq!(r.diags.len(), 2);
        assert_eq!(r.diags[0].code, TestCode::Boom);
        assert_eq!(r.diags[1].code, TestCode::Meh);
    }

    #[test]
    fn human_rendering_uses_tool_and_clean_message() {
        let mut r = report();
        assert_eq!(r.render_human(), "check: p: clean (nothing found)\n");
        r.push(diag(TestCode::Boom));
        let text = r.render_human();
        assert!(text.starts_with("error[VPCE901] window A shard 0 ranks 1/2"));
        assert!(text.ends_with("check: p: 1 error(s), 0 warning(s)\n"));
    }

    #[test]
    fn bare_sentinels_suppress_provenance_fields() {
        let mut r = report();
        let mut d = Diagnostic::bare(TestCode::Boom);
        d.site = "explore".into();
        d.detail = "stalls".into();
        r.push(d);
        let text = r.render_human();
        assert!(text.contains("error[VPCE901] [explore]: stalls"), "{text}");
        assert!(!text.contains("window") && !text.contains("shard"));
        let json = r.to_json();
        assert!(!json.contains("\"win\"") && !json.contains("\"ranks\""));
        assert!(json.contains("\"line\": 0"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = Report::<TestCode>::new("check", "clean", "quo\"te");
        let mut d = diag(TestCode::Boom);
        d.detail = "line1\nline2".into();
        r.push(d);
        let j = r.to_json();
        assert!(j.contains("\"program\": \"quo\\\"te\""));
        assert!(j.contains("\"code\": \"VPCE901\""));
        assert!(j.contains("line1\\nline2"));
        assert!(j.contains("\"exit\": 2"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn extras_splice_between_diagnostics_and_summary() {
        let r = report();
        let plain = r.to_json();
        let with = r.to_json_with(&[("counterexample", "{\"steps\": []}".into())]);
        assert_ne!(plain, with);
        assert!(with.contains("  \"counterexample\": {\"steps\": []},\n  \"summary\""));
        // No extras → byte-identical to the plain rendering.
        assert_eq!(plain, r.to_json_with(&[]));
    }
}
