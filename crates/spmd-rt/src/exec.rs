//! The SPMD interpreter: runs a compiled [`SpmdProgram`] on the
//! simulated cluster (and sequentially, for the reference baseline).

use std::collections::HashMap;

use cluster_sim::{ClusterConfig, CpuModel, OpCounts};
use mpi2::{AccumulateOp, Elem, Mpi, RankStats, Universe, WindowRef};
use mpi2::sync::ArcMutexGuard;
use vbus_sim::NetStats;
use vpce_faults::{raise, site, FaultSpec, VpceError};
use vpce_trace::{EventKind, Lane, TraceReport, Tracer};

use crate::cost::instr_ops_shallow;
use crate::ir::*;
use crate::value::Value;

/// Multiplicative compute overhead of SPMD-generated code relative to
/// the sequential original: the master/slave code computes
/// global-to-local iteration mappings and guards region boundaries.
/// Calibrated to the paper's Table 1, where the 1-node parallel run
/// achieves a speedup of 0.96 (i.e. ≈4% slower than sequential).
pub const SPMD_OVERHEAD: f64 = 1.0 / 0.96;

/// How loop bodies execute. See the crate docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Execute all numerics (correctness runs).
    Full,
    /// Charge compute cost analytically; skip numeric execution of
    /// parallel-region bodies. Communication still moves real bytes.
    Analytic,
}

/// Result of a parallel execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual execution time (slowest rank), seconds.
    pub elapsed: f64,
    /// Critical-path communication time (max over ranks of
    /// `comm_host + comm_wait`) — the Table-2 metric.
    pub comm_time: f64,
    pub rank_stats: Vec<RankStats>,
    pub net: NetStats,
    /// Master's final array contents (meaningful in `Full` mode).
    pub arrays: Vec<Vec<Elem>>,
    /// Master's final scalar values.
    pub scalars: Vec<Value>,
    /// Rank-0 virtual time after each executed top-level block — the
    /// program's *fence boundaries*. A fresh run records one entry per
    /// block; a resumed run records entries for the remaining blocks
    /// only. By determinism, `boundaries[k-1]` of a fresh run equals,
    /// bit for bit, the `elapsed` of a fresh run of the first `k`
    /// blocks — which is what makes checkpoint-by-prefix exact (see
    /// [`crate::checkpoint`]).
    pub boundaries: Vec<f64>,
    /// Undefined-outcome RMA pairs recorded by the dynamic
    /// epoch-conflict ledger (`mpi2::conflict`). Empty for a
    /// well-synchronised plan; the differential ground truth for the
    /// static `vpce-rmacheck` pass.
    pub rma_conflicts: Vec<mpi2::ConflictRecord>,
    /// Trace analyses (rollups + critical path) when the run was
    /// executed through [`execute_traced`] with a live tracer.
    pub trace: Option<TraceReport>,
}

/// Result of a sequential execution.
#[derive(Debug)]
pub struct SeqReport {
    /// Virtual execution time, seconds.
    pub elapsed: f64,
    pub arrays: Vec<Vec<Elem>>,
    pub scalars: Vec<Value>,
}

/// Execute the SPMD program on the given cluster.
///
/// # Panics
/// Panics if the cluster size differs from the one the program's
/// communication plans were generated for.
pub fn execute(prog: &SpmdProgram, cluster: &ClusterConfig, mode: ExecMode) -> RunReport {
    execute_traced(prog, cluster, mode, Tracer::disabled())
}

/// [`execute`] with a tracer attached: every MPI call, link transfer
/// and SPMD phase of the run lands in the tracer's buffer, and the
/// report carries the derived analyses. Passing a disabled tracer is
/// exactly `execute` (and costs nothing).
pub fn execute_traced(
    prog: &SpmdProgram,
    cluster: &ClusterConfig,
    mode: ExecMode,
    tracer: Tracer,
) -> RunReport {
    try_execute_traced(prog, cluster, mode, tracer, FaultSpec::off())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`execute`]: runs under the given fault schedule and
/// returns a typed [`VpceError`] instead of panicking when the program
/// does not fit the cluster or an injected fault proves unsurvivable.
pub fn try_execute(
    prog: &SpmdProgram,
    cluster: &ClusterConfig,
    mode: ExecMode,
    faults: FaultSpec,
) -> Result<RunReport, VpceError> {
    try_execute_traced(prog, cluster, mode, Tracer::disabled(), faults)
}

/// [`try_execute`] with a tracer attached.
pub fn try_execute_traced(
    prog: &SpmdProgram,
    cluster: &ClusterConfig,
    mode: ExecMode,
    tracer: Tracer,
    faults: FaultSpec,
) -> Result<RunReport, VpceError> {
    try_execute_resumed(prog, cluster, mode, tracer, faults, None)
}

/// [`try_execute_traced`] continuing from a fence-boundary snapshot:
/// the first `snapshot.boundary` blocks are skipped, the master's
/// windows and scalars are seeded from the snapshot before any rank
/// communicates, and the region serial counter starts at the
/// snapshot's base so rank-level fault draws line up with the
/// uninterrupted run. With `resume: None` this *is*
/// `try_execute_traced`.
pub fn try_execute_resumed(
    prog: &SpmdProgram,
    cluster: &ClusterConfig,
    mode: ExecMode,
    tracer: Tracer,
    faults: FaultSpec,
    resume: Option<&crate::checkpoint::Snapshot>,
) -> Result<RunReport, VpceError> {
    try_execute_suppressed(
        prog,
        cluster,
        mode,
        tracer,
        faults,
        resume,
        &std::collections::BTreeSet::new(),
    )
}

/// [`try_execute_resumed`] with a crash-suppression mask: the
/// `RANK_CRASH` draws at the given `(rank << 32) ^ region_serial` keys
/// are elided, every other fault draw is untouched (draws are pure
/// hashes, so masking one shifts none). This is the execution
/// primitive of in-run rollback recovery: the recovery driver predicts
/// which crashes it can absorb, masks exactly those, and runs once.
#[allow(clippy::too_many_arguments)]
pub fn try_execute_suppressed(
    prog: &SpmdProgram,
    cluster: &ClusterConfig,
    mode: ExecMode,
    tracer: Tracer,
    faults: FaultSpec,
    resume: Option<&crate::checkpoint::Snapshot>,
    suppressed_crashes: &std::collections::BTreeSet<u64>,
) -> Result<RunReport, VpceError> {
    if prog.nprocs != cluster.num_nodes() {
        return Err(VpceError::SizeMismatch {
            program: prog.nprocs,
            cluster: cluster.num_nodes(),
        });
    }
    let uni = Universe::new(cluster.clone())
        .with_tracer(tracer)
        .with_faults(faults)
        .with_crash_suppression(suppressed_crashes.clone());
    let out = uni.try_run(|mpi| run_rank(prog, mpi, mode, resume))?;
    let (arrays, scalars, boundaries) = out.results[0].clone();
    Ok(RunReport {
        elapsed: out.elapsed(),
        comm_time: out.max_comm_time(),
        rank_stats: out.rank_stats,
        net: out.net,
        arrays,
        scalars,
        boundaries,
        rma_conflicts: out.rma_conflicts,
        trace: out.trace,
    })
}

/// Execute the program's sequential form on one node (the Table-1
/// baseline: no MPI environment, no windows, no synchronization).
pub fn execute_sequential(prog: &SpmdProgram, cpu: &CpuModel, mode: ExecMode) -> SeqReport {
    let mut interp = Interp {
        scalars: init_scalars(prog),
        mem: prog.arrays.iter().map(|(_, len)| vec![0.0; *len]).collect(),
        cycles: 0.0,
        cost_cache: HashMap::new(),
        int_scalars: int_table(prog),
        mode,
    };
    match mode {
        ExecMode::Full => interp.run(&prog.sequential),
        ExecMode::Analytic => interp.charge_analytic(&prog.sequential),
    }
    SeqReport {
        elapsed: interp.cycles / cpu.clock_hz,
        arrays: interp.mem,
        scalars: interp.scalars,
    }
}

fn int_table(prog: &SpmdProgram) -> Vec<bool> {
    prog.scalars.iter().map(|(_, is_int)| *is_int).collect()
}

fn init_scalars(prog: &SpmdProgram) -> Vec<Value> {
    prog.scalars
        .iter()
        .map(|(_, is_int)| if *is_int { Value::I(0) } else { Value::R(0.0) })
        .collect()
}

impl From<RedOp> for AccumulateOp {
    fn from(op: RedOp) -> Self {
        match op {
            RedOp::Sum => AccumulateOp::Sum,
            RedOp::Prod => AccumulateOp::Prod,
            RedOp::Min => AccumulateOp::Min,
            RedOp::Max => AccumulateOp::Max,
        }
    }
}

fn combine(op: RedOp, a: f64, b: f64) -> f64 {
    match op {
        RedOp::Sum => a + b,
        RedOp::Prod => a * b,
        RedOp::Min => a.min(b),
        RedOp::Max => a.max(b),
    }
}

/// Emit a phase span `[t0, now]` on this rank's lane. The name
/// closure only runs when somebody is tracing.
fn phase(mpi: &Mpi, t0: f64, name: impl FnOnce() -> String) {
    if mpi.tracer().is_enabled() {
        mpi.tracer().push(
            Lane::Rank(mpi.rank()),
            t0,
            mpi.now(),
            EventKind::Phase { name: name() },
        );
    }
}

/// Per-rank execution of the whole program (or, when resuming, of its
/// remaining blocks). Returns rank-0's view of the final arrays and
/// scalars plus the block-boundary times (empty on slave ranks).
fn run_rank(
    prog: &SpmdProgram,
    mpi: &mut Mpi,
    mode: ExecMode,
    resume: Option<&crate::checkpoint::Snapshot>,
) -> (Vec<Vec<Elem>>, Vec<Value>, Vec<f64>) {
    let rank = mpi.rank();
    let nprocs = mpi.size();
    let t_init = mpi.now();
    // One window per array, full-size on every rank ("all data
    // declared are intrinsically private", §3).
    let wins: Vec<WindowRef> = prog
        .arrays
        .iter()
        .map(|(_, len)| mpi.win_create(*len))
        .collect();
    // Lock-based reductions need a shared accumulator window.
    let max_reds = prog
        .regions()
        .filter(|r| r.lock_reductions)
        .map(|r| r.reductions.len())
        .max()
        .unwrap_or(0);
    let red_win: Option<WindowRef> = (max_reds > 0).then(|| mpi.win_create(max_reds));
    phase(mpi, t_init, || "init".to_string());
    let mut interp = Interp {
        scalars: init_scalars(prog),
        mem: Vec::new(), // unused on the MPI path; windows hold memory
        cycles: 0.0,
        cost_cache: HashMap::new(),
        int_scalars: int_table(prog),
        mode,
    };

    // Resuming: master state (windows + scalars) is authoritative at
    // every block boundary — each parallel region ends collect → fence
    // → barrier, and sequential blocks run on the master only. Slave
    // copies that survive a boundary (the AVPG's delayed-communication
    // elisions skip re-scattering regions a slave already holds fresh)
    // agree with the master's content by the validity invariant, so
    // seeding *every* rank with the master image reconstructs them
    // exactly; stale slave regions are overwritten with data the
    // program would never read un-scattered anyway. The seeding costs
    // no virtual time; the service layer charges restore overhead
    // explicitly. The first region's join barrier sequences all fills
    // before any cross-rank access.
    let skip = resume.map_or(0, |s| s.boundary);
    if let Some(snap) = resume {
        for (win, data) in wins.iter().zip(&snap.arrays) {
            win.fill_from(data);
        }
        interp.scalars = snap.scalars.clone();
    }

    // Serial number of the parallel region being entered — the
    // deterministic key for rank-level fault draws. A resumed run
    // starts at the snapshot's base so draws line up with the
    // uninterrupted execution.
    let mut region_serial: u64 = resume.map_or(0, |s| s.region_serial_base);
    let mut boundaries = Vec::new();
    for block in &prog.blocks[skip..] {
        match block {
            Block::MasterSeq(instrs) => {
                if rank == 0 {
                    let t_serial = mpi.now();
                    let mut guards = lock_all(&wins);
                    match mode {
                        ExecMode::Full => interp.run_on(instrs, &mut guards),
                        // Sequential sections are cheap scalar set-up;
                        // execute them numerically in both modes so
                        // integer control state stays meaningful.
                        ExecMode::Analytic => interp.run_on(instrs, &mut guards),
                    }
                    drop(guards);
                    flush_cycles(&mut interp, mpi);
                    phase(mpi, t_serial, || "serial".to_string());
                }
            }
            Block::Parallel(region) => {
                run_region(
                    prog,
                    region,
                    mpi,
                    &wins,
                    red_win.as_ref(),
                    &mut interp,
                    rank,
                    nprocs,
                    region_serial,
                );
                region_serial += 1;
            }
        }
        if rank == 0 {
            boundaries.push(mpi.now());
        }
    }

    // Final results: master's view.
    let arrays = if rank == 0 {
        wins.iter().map(WindowRef::snapshot).collect()
    } else {
        Vec::new()
    };
    (arrays, interp.scalars.clone(), boundaries)
}

type Guard = ArcMutexGuard<Vec<Elem>>;

fn lock_all(wins: &[WindowRef]) -> Vec<Guard> {
    wins.iter().map(WindowRef::lock_arc).collect()
}

fn flush_cycles(interp: &mut Interp, mpi: &mut Mpi) {
    if interp.cycles > 0.0 {
        let secs = interp.cycles / mpi.cpu().clock_hz;
        mpi.advance(secs);
        interp.cycles = 0.0;
    }
}

/// Execute one parallel region: the §3 protocol.
#[allow(clippy::too_many_arguments)]
fn run_region(
    prog: &SpmdProgram,
    region: &ParRegion,
    mpi: &mut Mpi,
    wins: &[WindowRef],
    red_win: Option<&WindowRef>,
    interp: &mut Interp,
    rank: usize,
    nprocs: usize,
    region_serial: u64,
) {
    let line = region.line;
    // Rank-level fault draws, keyed (rank, region serial) so the
    // outcome is a pure function of the schedule, not of thread
    // interleaving. A crash unwinds before the join barrier; peers
    // then observe poisoned collectives and the universe reports the
    // crash as the root cause.
    let fault_key = ((rank as u64) << 32) ^ region_serial;
    let (crash, slow_factor) = {
        let inj = mpi.fault_injector();
        let spec = inj.spec();
        (
            inj.crash_hits(fault_key),
            if inj.hits(spec.rank_slow, site::RANK_SLOW, fault_key, 0) {
                spec.slow_factor
            } else {
                1.0
            },
        )
    };
    if crash {
        raise(VpceError::RankCrash {
            rank,
            region: format!("L{line}"),
        });
    }
    let t_join = mpi.now();
    // Barrier: slaves are released to join the computation.
    mpi.barrier();

    // Shared scalars travel master -> everyone (values as f64; the
    // slot type restores integers).
    if !region.scalars_in.is_empty() {
        let payload = (rank == 0).then(|| {
            region
                .scalars_in
                .iter()
                .map(|&s| interp.scalars[s].as_real())
                .collect::<Vec<f64>>()
        });
        let vals = mpi.bcast(0, payload);
        for (&slot, &v) in region.scalars_in.iter().zip(&vals) {
            interp.scalars[slot] = if prog.scalars[slot].1 {
                Value::I(v as i64)
            } else {
                Value::R(v)
            };
        }
    }

    phase(mpi, t_join, || format!("join@L{line}"));
    let t_scatter = mpi.now();

    // Data scattering, completed by a fence. Push mode: the master
    // PUTs every slave's regions (its host pays all setup costs,
    // serially). Pull mode: each slave GETs its own regions from the
    // master (setup costs paid in parallel) — one-sided communication
    // makes the initiator a free choice (§2.2).
    if region.pull_scatter {
        if rank != 0 {
            for op in &region.scatter.per_rank[rank] {
                get_transfer(mpi, &wins[op.array], 0, &op.transfer);
            }
        }
    } else if rank == 0 {
        for (r, ops) in region.scatter.per_rank.iter().enumerate() {
            for op in ops {
                put_transfer(mpi, &wins[op.array], r, &op.transfer);
            }
        }
    }
    mpi.fence_all();
    phase(mpi, t_scatter, || format!("scatter@L{line}"));
    let t_compute = mpi.now();

    // Reductions: save master's running value, seed local accumulator.
    let saved: Vec<f64> = region
        .reductions
        .iter()
        .map(|r| interp.scalars[r.scalar].as_real())
        .collect();
    for red in &region.reductions {
        interp.scalars[red.scalar] = Value::R(red.identity);
    }

    // Partitioned execution of this rank's iterations.
    let (start, every, count) = region.sched.assignment(region.trips, rank, nprocs);
    if count > 0 {
        let before = interp.cycles;
        let mut guards = lock_all(wins);
        match interp.mode {
            ExecMode::Full => {
                interp.run_iterations(region, start, every, count, &mut guards);
            }
            ExecMode::Analytic => {
                interp.charge_region_body(region, start, every, count);
            }
        }
        drop(guards);
        // SPMD addressing overhead on the region's compute; an
        // injected rank slowdown stretches the same interval (timing
        // only — numeric results are untouched).
        interp.cycles = before + (interp.cycles - before) * SPMD_OVERHEAD * slow_factor;
    }
    flush_cycles(interp, mpi);
    phase(mpi, t_compute, || format!("compute@L{line}"));
    let t_reduce = mpi.now();

    // Reduction combine: everyone contributes its partial — through
    // the collective tree, or through §3's lock/accumulate critical
    // sections when the backend chose `lock_reductions`.
    if !region.reductions.is_empty() {
        let partials: Vec<f64> = region
            .reductions
            .iter()
            .map(|r| interp.scalars[r.scalar].as_real())
            .collect();
        if region.lock_reductions {
            let red_win = red_win.expect("reduction window created at startup");
            // Master seeds the accumulator slots with identities.
            if rank == 0 {
                let mut m = red_win.lock();
                for (i, red) in region.reductions.iter().enumerate() {
                    m[i] = red.identity;
                }
            }
            mpi.barrier();
            for (i, red) in region.reductions.iter().enumerate() {
                mpi.win_lock(red_win, 0);
                mpi.accumulate_now(red_win, 0, i, vec![partials[i]], red.op.into());
                mpi.win_unlock(red_win, 0);
            }
            mpi.barrier();
            if rank == 0 {
                let m = red_win.snapshot();
                for (i, red) in region.reductions.iter().enumerate() {
                    interp.scalars[red.scalar] = Value::R(combine(red.op, saved[i], m[i]));
                }
            }
        } else {
            for (i, red) in region.reductions.iter().enumerate() {
                let reduced = mpi.reduce(0, vec![partials[i]], red.op.into());
                if let Some(v) = reduced {
                    interp.scalars[red.scalar] = Value::R(combine(red.op, saved[i], v[0]));
                }
            }
        }
    }

    if !region.reductions.is_empty() {
        phase(mpi, t_reduce, || format!("reduce@L{line}"));
    }
    let t_collect = mpi.now();

    // Data collecting (slaves put WriteFirst/ReadWrite regions back to
    // the master), completed by a fence; final barrier closes the
    // region.
    if rank != 0 {
        for op in &region.collect.per_rank[rank] {
            put_transfer(mpi, &wins[op.array], 0, &op.transfer);
        }
    }
    mpi.fence_all();
    mpi.barrier();
    phase(mpi, t_collect, || format!("collect@L{line}"));
}

fn get_transfer(mpi: &mut Mpi, win: &WindowRef, target: usize, t: &lmad::RegionTransfer) {
    debug_assert!(t.offset >= 0, "transfers are in-bounds by construction");
    if t.is_contiguous() {
        mpi.get(win, target, t.offset as usize, t.count as usize);
    } else {
        mpi.get_strided(
            win,
            target,
            t.offset as usize,
            t.stride as usize,
            t.count as usize,
        );
    }
}

fn put_transfer(mpi: &mut Mpi, win: &WindowRef, target: usize, t: &lmad::RegionTransfer) {
    debug_assert!(t.offset >= 0, "transfers are in-bounds by construction");
    if t.is_contiguous() {
        mpi.put_region(win, target, t.offset as usize, t.count as usize);
    } else {
        mpi.put_region_strided(
            win,
            target,
            t.offset as usize,
            t.stride as usize,
            t.count as usize,
        );
    }
}

/// The statement interpreter. `mem` is used on the sequential path;
/// the MPI path passes window guards explicitly.
struct Interp {
    scalars: Vec<Value>,
    mem: Vec<Vec<Elem>>,
    /// Accumulated un-flushed compute cycles.
    cycles: f64,
    /// Cached per-instruction shallow cycle costs, keyed by address.
    cost_cache: HashMap<usize, f64>,
    /// INTEGER-ness per scalar slot (cost model input).
    int_scalars: Vec<bool>,
    mode: ExecMode,
}

/// P-II cycle table used to price OpCounts. The actual conversion to
/// seconds uses the cluster's CPU model clock; the *table* must match
/// the one in `cluster-sim` so Full and Analytic agree.
fn ops_cycles(ops: &OpCounts) -> f64 {
    CpuModel::pentium_ii_300().cycles(ops)
}

impl Interp {
    fn shallow_cost(&mut self, i: &Instr) -> f64 {
        let key = i as *const Instr as usize;
        if let Some(&c) = self.cost_cache.get(&key) {
            return c;
        }
        let c = ops_cycles(&instr_ops_shallow(i, &self.int_scalars));
        self.cost_cache.insert(key, c);
        c
    }

    /// Run instructions against `self.mem` (sequential path).
    fn run(&mut self, instrs: &[Instr]) {
        // Move the memory out to satisfy the borrow checker, run, put
        // it back.
        let mut mem = std::mem::take(&mut self.mem);
        {
            let mut guards: Vec<&mut Vec<Elem>> = mem.iter_mut().collect();
            self.run_generic(instrs, &mut guards);
        }
        self.mem = mem;
    }

    /// Run instructions against window guards (MPI path).
    fn run_on(&mut self, instrs: &[Instr], guards: &mut [Guard]) {
        let mut views: Vec<&mut Vec<Elem>> = guards.iter_mut().map(|g| &mut **g).collect();
        self.run_generic(instrs, &mut views);
    }

    /// Run this rank's iterations of a parallel region (views built
    /// once, not per iteration).
    fn run_iterations(
        &mut self,
        region: &ParRegion,
        start: u64,
        every: u64,
        count: u64,
        guards: &mut [Guard],
    ) {
        let mut views: Vec<&mut Vec<Elem>> = guards.iter_mut().map(|g| &mut **g).collect();
        for k in 0..count {
            let t = start + k * every;
            self.scalars[region.var] = Value::I(region.lo + t as i64 * region.step);
            self.cycles += 2.0; // outer loop bookkeeping
            self.run_generic(&region.body, &mut views);
        }
    }

    fn run_generic(&mut self, instrs: &[Instr], mem: &mut [&mut Vec<Elem>]) {
        for i in instrs {
            self.cycles += self.shallow_cost(i);
            match i {
                Instr::StoreArray {
                    array,
                    index,
                    value,
                } => {
                    let idx = self.eval(index, mem).as_int();
                    let v = self.eval(value, mem).as_real();
                    let m = &mut *mem[*array];
                    assert!(
                        (idx as usize) < m.len(),
                        "store out of bounds: array {} index {idx} len {}",
                        array,
                        m.len()
                    );
                    m[idx as usize] = v;
                }
                Instr::StoreScalar { slot, value } => {
                    self.scalars[*slot] = self.eval(value, mem);
                }
                Instr::Loop {
                    var,
                    lo,
                    hi,
                    step,
                    body,
                } => {
                    let lo = self.eval(lo, mem).as_int();
                    let hi = self.eval(hi, mem).as_int();
                    let step = *step;
                    let mut v = lo;
                    while (step > 0 && v <= hi) || (step < 0 && v >= hi) {
                        self.scalars[*var] = Value::I(v);
                        self.cycles += 2.0; // loop bookkeeping
                        self.run_generic(body, mem);
                        v += step;
                    }
                }
                Instr::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    if self.eval(cond, mem).is_true() {
                        self.run_generic(then_body, mem);
                    } else {
                        self.run_generic(else_body, mem);
                    }
                }
            }
        }
    }

    fn eval(&self, e: &Expr, mem: &[&mut Vec<Elem>]) -> Value {
        match e {
            Expr::IConst(v) => Value::I(*v),
            Expr::RConst(v) => Value::R(*v),
            Expr::Scalar(slot) => self.scalars[*slot],
            Expr::Load { array, index } => {
                let idx = self.eval(index, mem).as_int();
                let m = &*mem[*array];
                assert!(
                    (idx as usize) < m.len(),
                    "load out of bounds: array {} index {idx} len {}",
                    array,
                    m.len()
                );
                Value::R(m[idx as usize])
            }
            Expr::Neg(a) => self.eval(a, mem).neg(),
            Expr::Not(a) => self.eval(a, mem).not(),
            Expr::Bin(op, a, b) => {
                let x = self.eval(a, mem);
                let y = self.eval(b, mem);
                match op {
                    BinOp::Add => x.add(y),
                    BinOp::Sub => x.sub(y),
                    BinOp::Mul => x.mul(y),
                    BinOp::Div => x.div(y),
                    BinOp::Pow => x.pow(y),
                    BinOp::Lt => x.lt(y),
                    BinOp::Le => x.le(y),
                    BinOp::Gt => x.gt(y),
                    BinOp::Ge => x.ge(y),
                    BinOp::Eq => x.eq_v(y),
                    BinOp::Ne => x.ne_v(y),
                    BinOp::And => x.and(y),
                    BinOp::Or => x.or(y),
                }
            }
            Expr::Intr(op, args) => {
                let a0 = self.eval(&args[0], mem);
                match op {
                    IntrinsicOp::Sqrt => Value::R(a0.as_real().sqrt()),
                    IntrinsicOp::Abs => match a0 {
                        Value::I(v) => Value::I(v.abs()),
                        Value::R(v) => Value::R(v.abs()),
                    },
                    IntrinsicOp::Sin => Value::R(a0.as_real().sin()),
                    IntrinsicOp::Cos => Value::R(a0.as_real().cos()),
                    IntrinsicOp::Exp => Value::R(a0.as_real().exp()),
                    IntrinsicOp::ToReal => Value::R(a0.as_real()),
                    IntrinsicOp::ToInt => Value::I(a0.as_real().trunc() as i64),
                    IntrinsicOp::Mod => {
                        let a1 = self.eval(&args[1], mem);
                        match (a0, a1) {
                            (Value::I(x), Value::I(y)) => Value::I(x % y),
                            (x, y) => Value::R(x.as_real() % y.as_real()),
                        }
                    }
                    IntrinsicOp::Min => {
                        let a1 = self.eval(&args[1], mem);
                        match (a0, a1) {
                            (Value::I(x), Value::I(y)) => Value::I(x.min(y)),
                            (x, y) => Value::R(x.as_real().min(y.as_real())),
                        }
                    }
                    IntrinsicOp::Max => {
                        let a1 = self.eval(&args[1], mem);
                        match (a0, a1) {
                            (Value::I(x), Value::I(y)) => Value::I(x.max(y)),
                            (x, y) => Value::R(x.as_real().max(y.as_real())),
                        }
                    }
                }
            }
        }
    }

    // ---------------- analytic costing ----------------

    /// Charge the cost of this rank's share of a region body without
    /// executing numerics.
    fn charge_region_body(&mut self, region: &ParRegion, start: u64, every: u64, count: u64) {
        // If no inner bound depends on the parallel index, one
        // iteration prices them all.
        if !body_mentions_scalar(&region.body, region.var) {
            self.scalars[region.var] = Value::I(region.lo + start as i64 * region.step);
            let per = self.analytic_cost(&region.body);
            self.cycles += (per + 2.0) * count as f64;
        } else {
            for k in 0..count {
                let t = start + k * every;
                self.scalars[region.var] = Value::I(region.lo + t as i64 * region.step);
                let per = self.analytic_cost(&region.body);
                self.cycles += per + 2.0;
            }
        }
    }

    /// Charge a whole statement list analytically (sequential
    /// baseline).
    fn charge_analytic(&mut self, instrs: &[Instr]) {
        let c = self.analytic_cost(instrs);
        self.cycles += c;
    }

    /// Cycle cost of executing `instrs` once, evaluating loop bounds
    /// through the current integer scalar state but skipping all
    /// numeric work. Conditionals are priced as condition + THEN
    /// branch (a documented approximation; the evaluated benchmarks
    /// have no data-dependent branches in hot regions).
    fn analytic_cost(&mut self, instrs: &[Instr]) -> f64 {
        let mut total = 0.0;
        for i in instrs {
            total += self.shallow_cost(i);
            match i {
                Instr::StoreArray { .. } | Instr::StoreScalar { .. } => {}
                Instr::Loop {
                    var,
                    lo,
                    hi,
                    step,
                    body,
                } => {
                    let lo = self.eval(lo, &[]).as_int();
                    let hi = self.eval(hi, &[]).as_int();
                    let trips = ((hi - lo + step) / step).max(0) as u64;
                    if trips == 0 {
                        continue;
                    }
                    if !body_mentions_scalar(body, *var) {
                        self.scalars[*var] = Value::I(lo);
                        let per = self.analytic_cost(body);
                        total += (per + 2.0) * trips as f64;
                    } else {
                        let mut v = lo;
                        for _ in 0..trips {
                            self.scalars[*var] = Value::I(v);
                            total += self.analytic_cost(body) + 2.0;
                            v += step;
                        }
                    }
                }
                Instr::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    let t = self.analytic_cost(then_body);
                    let e = self.analytic_cost(else_body);
                    total += t.max(e);
                }
            }
        }
        total
    }
}

/// Does any expression in the body mention scalar `var` outside of
/// plain stores (i.e. in loop bounds or conditions that shape cost)?
fn body_mentions_scalar(instrs: &[Instr], var: usize) -> bool {
    fn expr_mentions(e: &Expr, var: usize) -> bool {
        match e {
            Expr::Scalar(s) => *s == var,
            Expr::IConst(_) | Expr::RConst(_) => false,
            Expr::Load { index, .. } => expr_mentions(index, var),
            Expr::Neg(a) | Expr::Not(a) => expr_mentions(a, var),
            Expr::Bin(_, a, b) => expr_mentions(a, var) || expr_mentions(b, var),
            Expr::Intr(_, args) => args.iter().any(|a| expr_mentions(a, var)),
        }
    }
    instrs.iter().any(|i| match i {
        Instr::Loop { lo, hi, body, .. } => {
            expr_mentions(lo, var) || expr_mentions(hi, var) || body_mentions_scalar(body, var)
        }
        Instr::If {
            cond,
            then_body,
            else_body,
        } => {
            expr_mentions(cond, var)
                || body_mentions_scalar(then_body, var)
                || body_mentions_scalar(else_body, var)
        }
        // Store costs are var-independent (shallow cost is static).
        _ => false,
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use lmad::RegionTransfer;

    /// Hand-built program: arrays A (len 16) and C (len 16);
    /// parallel region computes C[i] = A[i] * 2 over 16 iterations,
    /// block-scheduled on 4 ranks. A is initialised by the master.
    pub(crate) fn axpy_prog(nprocs: usize) -> SpmdProgram {
        let n = 16usize;
        let chunk = n / nprocs;
        // Scatter: rank r receives A[r*chunk .. (r+1)*chunk].
        // Collect: rank r returns C[...] likewise.
        let per_rank = |array: usize| -> Vec<Vec<CommOp>> {
            (0..nprocs)
                .map(|r| {
                    if r == 0 {
                        vec![]
                    } else {
                        vec![CommOp {
                            array,
                            transfer: RegionTransfer {
                                offset: (r * chunk) as i64,
                                stride: 1,
                                count: chunk as u64,
                            },
                        }]
                    }
                })
                .collect()
        };
        let i_var = 0usize;
        let body = vec![Instr::StoreArray {
            array: 1,
            index: Expr::Bin(
                crate::ir::BinOp::Sub,
                Box::new(Expr::Scalar(i_var)),
                Box::new(Expr::IConst(1)),
            ),
            value: Expr::Bin(
                crate::ir::BinOp::Mul,
                Box::new(Expr::Load {
                    array: 0,
                    index: Box::new(Expr::Bin(
                        crate::ir::BinOp::Sub,
                        Box::new(Expr::Scalar(i_var)),
                        Box::new(Expr::IConst(1)),
                    )),
                }),
                Box::new(Expr::RConst(2.0)),
            ),
        }];
        // Master init: A[i] = i (1-based value).
        let init = vec![Instr::Loop {
            var: i_var,
            lo: Expr::IConst(1),
            hi: Expr::IConst(n as i64),
            step: 1,
            body: vec![Instr::StoreArray {
                array: 0,
                index: Expr::Bin(
                    crate::ir::BinOp::Sub,
                    Box::new(Expr::Scalar(i_var)),
                    Box::new(Expr::IConst(1)),
                ),
                value: Expr::Intr(IntrinsicOp::ToReal, vec![Expr::Scalar(i_var)]),
            }],
        }];
        let region = ParRegion {
            var: i_var,
            lo: 1,
            step: 1,
            trips: n as u64,
            sched: Schedule::Block,
            body: body.clone(),
            scatter: CommPlan {
                per_rank: per_rank(0),
                granularity: None,
            },
            collect: CommPlan {
                per_rank: per_rank(1),
                granularity: None,
            },
            pull_scatter: false,
            lock_reductions: false,
            scalars_in: vec![],
            private_scalars: vec![],
            reductions: vec![],
            line: 1,
        };
        let sequential = {
            let mut s = init.clone();
            s.push(Instr::Loop {
                var: i_var,
                lo: Expr::IConst(1),
                hi: Expr::IConst(n as i64),
                step: 1,
                body,
            });
            s
        };
        SpmdProgram {
            name: "AXPY".into(),
            nprocs,
            arrays: vec![("A".into(), n), ("C".into(), n)],
            scalars: vec![("I".into(), true)],
            blocks: vec![Block::MasterSeq(init), Block::Parallel(region)],
            sequential,
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let prog = axpy_prog(4);
        let cluster = ClusterConfig::paper_4node();
        let par = execute(&prog, &cluster, ExecMode::Full);
        let seq = execute_sequential(&prog, &cluster.node.cpu, ExecMode::Full);
        assert_eq!(par.arrays[1], seq.arrays[1]);
        assert_eq!(
            par.arrays[1],
            (1..=16).map(|i| 2.0 * i as f64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_rank_execution_works() {
        let prog = axpy_prog(1);
        let cluster = ClusterConfig::paper_n(1);
        let par = execute(&prog, &cluster, ExecMode::Full);
        assert_eq!(par.arrays[1][15], 32.0);
    }

    #[test]
    fn analytic_mode_matches_full_mode_timing() {
        let prog = axpy_prog(4);
        let cluster = ClusterConfig::paper_4node();
        let full = execute(&prog, &cluster, ExecMode::Full);
        let ana = execute(&prog, &cluster, ExecMode::Analytic);
        assert!(
            (full.elapsed - ana.elapsed).abs() / full.elapsed < 1e-9,
            "full {} vs analytic {}",
            full.elapsed,
            ana.elapsed
        );
        assert_eq!(full.net.p2p_messages, ana.net.p2p_messages);
        assert_eq!(full.net.p2p_bytes, ana.net.p2p_bytes);
    }

    #[test]
    fn analytic_sequential_matches_full_sequential_timing() {
        let prog = axpy_prog(4);
        let cpu = CpuModel::pentium_ii_300();
        let f = execute_sequential(&prog, &cpu, ExecMode::Full);
        let a = execute_sequential(&prog, &cpu, ExecMode::Analytic);
        assert!((f.elapsed - a.elapsed).abs() / f.elapsed.max(1e-30) < 1e-9);
    }

    #[test]
    fn deterministic_across_runs() {
        let prog = axpy_prog(4);
        let cluster = ClusterConfig::paper_4node();
        let a = execute(&prog, &cluster, ExecMode::Full);
        let b = execute(&prog, &cluster, ExecMode::Full);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.comm_time, b.comm_time);
        assert_eq!(a.arrays, b.arrays);
    }

    #[test]
    fn comm_time_positive_and_below_elapsed() {
        let prog = axpy_prog(4);
        let cluster = ClusterConfig::paper_4node();
        let r = execute(&prog, &cluster, ExecMode::Full);
        assert!(r.comm_time > 0.0);
        assert!(r.comm_time < r.elapsed);
    }

    #[test]
    #[should_panic(expected = "compiled for")]
    fn cluster_size_mismatch_rejected() {
        let prog = axpy_prog(4);
        execute(&prog, &ClusterConfig::paper_n(2), ExecMode::Full);
    }

    #[test]
    fn size_mismatch_is_a_typed_error_on_the_fallible_path() {
        let prog = axpy_prog(4);
        let err = try_execute(
            &prog,
            &ClusterConfig::paper_n(2),
            ExecMode::Full,
            FaultSpec::off(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            VpceError::SizeMismatch { program: 4, cluster: 2 }
        ));
    }

    #[test]
    fn survivable_faults_preserve_program_results() {
        let prog = axpy_prog(4);
        let cluster = ClusterConfig::paper_4node();
        let clean = execute(&prog, &cluster, ExecMode::Full);
        let mut recovered = 0u64;
        for seed in 0..6 {
            let spec = FaultSpec { seed, ..FaultSpec::heavy() };
            let faulty = try_execute(&prog, &cluster, ExecMode::Full, spec)
                .expect("heavy schedules without crashes are survivable");
            assert_eq!(faulty.arrays, clean.arrays, "seed {seed}");
            assert_eq!(faulty.scalars, clean.scalars, "seed {seed}");
            assert!(faulty.elapsed >= clean.elapsed, "seed {seed}");
            recovered += faulty.net.retransmits + faulty.net.bus_degraded;
        }
        assert!(recovered > 0, "heavy schedules must exercise recovery");
    }

    #[test]
    fn certain_crash_yields_typed_rank_crash() {
        let prog = axpy_prog(4);
        let spec = FaultSpec { rank_crash: 1.0, ..FaultSpec::off() };
        let err = try_execute(&prog, &ClusterConfig::paper_4node(), ExecMode::Full, spec)
            .unwrap_err();
        match err {
            VpceError::RankCrash { region, .. } => assert!(region.starts_with('L')),
            other => panic!("expected RankCrash, got {other}"),
        }
    }

    #[test]
    fn rank_slowdown_stretches_time_but_not_results() {
        let prog = axpy_prog(4);
        let cluster = ClusterConfig::paper_4node();
        let clean = execute(&prog, &cluster, ExecMode::Full);
        let spec = FaultSpec { rank_slow: 1.0, slow_factor: 4.0, ..FaultSpec::off() };
        let slow = try_execute(&prog, &cluster, ExecMode::Full, spec).unwrap();
        assert_eq!(slow.arrays, clean.arrays);
        assert!(
            slow.elapsed > clean.elapsed,
            "slowdown {} vs clean {}",
            slow.elapsed,
            clean.elapsed
        );
    }

    #[test]
    fn traced_execution_emits_phases_without_perturbing_timing() {
        let prog = axpy_prog(4);
        let cluster = ClusterConfig::paper_4node();
        let plain = execute(&prog, &cluster, ExecMode::Full);
        assert!(plain.trace.is_none(), "default runs carry no trace");

        let tracer = Tracer::enabled();
        let traced = execute_traced(&prog, &cluster, ExecMode::Full, tracer.clone());
        assert_eq!(traced.elapsed, plain.elapsed, "tracing must not change time");
        assert_eq!(traced.arrays, plain.arrays);

        let rep = traced.trace.expect("traced run carries the report");
        for stage in ["init", "join@L", "scatter@L", "compute@L", "collect@L"] {
            assert!(
                rep.summary.phases.iter().any(|p| p.name.starts_with(stage)),
                "missing phase {stage}: {:?}",
                rep.summary.phases.iter().map(|p| &p.name).collect::<Vec<_>>()
            );
        }
        // The critical-path components tile the whole run.
        let total = rep.critical.breakdown.total();
        assert!(
            (total - traced.elapsed).abs() <= 1e-9 * traced.elapsed.max(1e-30),
            "breakdown {total} vs elapsed {}",
            traced.elapsed
        );
        // And the raw buffer exports as Chrome JSON with rank lanes.
        let json = tracer.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("rank 0"));
    }
}
