//! Static operation counting: per-statement [`OpCounts`] used both to
//! charge virtual CPU time in `Full` mode and to price whole loop
//! nests analytically.

use cluster_sim::OpCounts;

use crate::ir::{BinOp, Expr, Instr, IntrinsicOp};

/// Operation counts of evaluating `e` once. `int_scalars[slot]`
/// marks INTEGER scalars so index arithmetic is priced as integer
/// ALU work, not floating point.
pub fn expr_ops(e: &Expr, int_scalars: &[bool]) -> OpCounts {
    let mut ops = OpCounts::default();
    collect_expr(e, int_scalars, &mut ops);
    ops
}

fn collect_expr(e: &Expr, int_scalars: &[bool], ops: &mut OpCounts) {
    match e {
        Expr::IConst(_) | Expr::RConst(_) => {}
        Expr::Scalar(_) => {
            // Register-resident in practice; free.
        }
        Expr::Load { index, .. } => {
            ops.loads += 1;
            collect_expr(index, int_scalars, ops);
        }
        Expr::Neg(a) | Expr::Not(a) => {
            ops.int_ops += 1;
            collect_expr(a, int_scalars, ops);
        }
        Expr::Bin(op, a, b) => {
            collect_expr(a, int_scalars, ops);
            collect_expr(b, int_scalars, ops);
            let int = is_int(a, int_scalars) && is_int(b, int_scalars);
            match op {
                BinOp::Add | BinOp::Sub => {
                    if int {
                        ops.int_ops += 1;
                    } else {
                        ops.fadd += 1;
                    }
                }
                BinOp::Mul => {
                    if int {
                        ops.int_ops += 1;
                    } else {
                        ops.fmul += 1;
                    }
                }
                BinOp::Div => {
                    if int {
                        ops.int_ops += 1;
                    } else {
                        ops.fdiv += 1;
                    }
                }
                BinOp::Pow => ops.transcendental += 1,
                _ => ops.int_ops += 1, // relational/logical
            }
        }
        Expr::Intr(op, args) => {
            for a in args {
                collect_expr(a, int_scalars, ops);
            }
            match op {
                IntrinsicOp::Sqrt
                | IntrinsicOp::Sin
                | IntrinsicOp::Cos
                | IntrinsicOp::Exp => ops.transcendental += 1,
                IntrinsicOp::Abs | IntrinsicOp::Min | IntrinsicOp::Max => ops.fadd += 1,
                IntrinsicOp::Mod | IntrinsicOp::ToReal | IntrinsicOp::ToInt => ops.int_ops += 1,
            }
        }
    }
}

/// Does the expression produce an integer?
fn is_int(e: &Expr, int_scalars: &[bool]) -> bool {
    match e {
        Expr::IConst(_) => true,
        Expr::RConst(_) => false,
        Expr::Scalar(s) => int_scalars.get(*s).copied().unwrap_or(false),
        Expr::Load { .. } => false,
        Expr::Neg(a) => is_int(a, int_scalars),
        Expr::Not(_) => true,
        Expr::Bin(BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne, _, _) => {
            true
        }
        Expr::Bin(_, a, b) => is_int(a, int_scalars) && is_int(b, int_scalars),
        Expr::Intr(IntrinsicOp::ToInt | IntrinsicOp::Mod, _) => true,
        Expr::Intr(_, _) => false,
    }
}

/// Operation counts of executing `i` once, *excluding* loop bodies
/// (the interpreter charges bodies per executed iteration; the
/// analytic path multiplies by trip counts itself).
pub fn instr_ops_shallow(i: &Instr, int_scalars: &[bool]) -> OpCounts {
    let mut ops = OpCounts::default();
    match i {
        Instr::StoreArray { index, value, .. } => {
            collect_expr(index, int_scalars, &mut ops);
            collect_expr(value, int_scalars, &mut ops);
            ops.stores += 1;
        }
        Instr::StoreScalar { value, .. } => {
            collect_expr(value, int_scalars, &mut ops);
        }
        Instr::Loop { lo, hi, .. } => {
            collect_expr(lo, int_scalars, &mut ops);
            collect_expr(hi, int_scalars, &mut ops);
        }
        Instr::If { cond, .. } => {
            collect_expr(cond, int_scalars, &mut ops);
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(array: usize) -> Expr {
        Expr::Load {
            array,
            index: Box::new(Expr::IConst(0)),
        }
    }

    #[test]
    fn madd_statement_counts() {
        // C[i] = C[i] + A[i] * B[i]
        let value = Expr::Bin(
            BinOp::Add,
            Box::new(load(2)),
            Box::new(Expr::Bin(BinOp::Mul, Box::new(load(0)), Box::new(load(1)))),
        );
        let instr = Instr::StoreArray {
            array: 2,
            index: Expr::IConst(0),
            value,
        };
        let ops = instr_ops_shallow(&instr, &[]);
        assert_eq!(ops.loads, 3);
        assert_eq!(ops.stores, 1);
        assert_eq!(ops.fadd, 1);
        assert_eq!(ops.fmul, 1);
    }

    #[test]
    fn index_arithmetic_counts_as_int_ops() {
        // (I-1) + N*(J-1) with I, J integer scalars: the heuristic
        // treats scalars as real, so verify via constants.
        let idx = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::IConst(0)),
            Box::new(Expr::Bin(
                BinOp::Mul,
                Box::new(Expr::IConst(8)),
                Box::new(Expr::IConst(3)),
            )),
        );
        let ops = expr_ops(&idx, &[]);
        assert_eq!(ops.int_ops, 2);
        assert_eq!(ops.fadd + ops.fmul, 0);
    }

    #[test]
    fn transcendental_counted() {
        let e = Expr::Intr(IntrinsicOp::Cos, vec![Expr::Scalar(0)]);
        assert_eq!(expr_ops(&e, &[]).transcendental, 1);
    }
}
