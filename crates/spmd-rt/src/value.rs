//! Runtime scalar values: Fortran INTEGER/REAL semantics.

use vpce_faults::{raise, VpceError};

/// A runtime scalar. Arithmetic follows Fortran: INTEGER÷INTEGER
//  truncates, mixed operands promote to REAL.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    I(i64),
    R(f64),
}

#[allow(clippy::should_implement_trait)] // Fortran semantics, deliberately not std ops
impl Value {
    /// Integer view (required for subscripts and loop bounds).
    ///
    /// INTEGER *arrays* are stored in the same f64 windows as REAL
    /// ones, so an integral-valued REAL (e.g. `IDX(I)` read back from
    /// an integer array) converts exactly.
    ///
    /// # Panics
    /// Raises [`VpceError::TypeViolation`] on a fractional REAL — the
    /// translator only emits integer-valued expressions in integer
    /// positions, so this indicates a compiler bug, not a user error.
    pub fn as_int(self) -> i64 {
        match self {
            Value::I(v) => v,
            Value::R(v) if v.fract() == 0.0 && v.abs() < 2f64.powi(53) => v as i64,
            Value::R(v) => raise(VpceError::TypeViolation {
                msg: format!("REAL value {v} used where INTEGER required"),
            }),
        }
    }

    /// Numeric view as f64 (Fortran implicit conversion).
    pub fn as_real(self) -> f64 {
        match self {
            Value::I(v) => v as f64,
            Value::R(v) => v,
        }
    }

    /// Truth view (relational results are stored as I(0)/I(1)).
    pub fn is_true(self) -> bool {
        match self {
            Value::I(v) => v != 0,
            Value::R(v) => v != 0.0,
        }
    }

    fn bool(b: bool) -> Value {
        Value::I(b as i64)
    }

    pub fn add(self, o: Value) -> Value {
        match (self, o) {
            (Value::I(a), Value::I(b)) => Value::I(a.wrapping_add(b)),
            _ => Value::R(self.as_real() + o.as_real()),
        }
    }

    pub fn sub(self, o: Value) -> Value {
        match (self, o) {
            (Value::I(a), Value::I(b)) => Value::I(a.wrapping_sub(b)),
            _ => Value::R(self.as_real() - o.as_real()),
        }
    }

    pub fn mul(self, o: Value) -> Value {
        match (self, o) {
            (Value::I(a), Value::I(b)) => Value::I(a.wrapping_mul(b)),
            _ => Value::R(self.as_real() * o.as_real()),
        }
    }

    /// Fortran division: INTEGER/INTEGER truncates toward zero.
    pub fn div(self, o: Value) -> Value {
        match (self, o) {
            (Value::I(a), Value::I(b)) => {
                if b == 0 {
                    raise(VpceError::TypeViolation {
                        msg: "integer division by zero".into(),
                    });
                }
                Value::I(a / b)
            }
            _ => Value::R(self.as_real() / o.as_real()),
        }
    }

    /// Fortran `**`.
    pub fn pow(self, o: Value) -> Value {
        match (self, o) {
            (Value::I(a), Value::I(b)) if b >= 0 => Value::I(a.pow(b.min(62) as u32)),
            _ => Value::R(self.as_real().powf(o.as_real())),
        }
    }

    pub fn neg(self) -> Value {
        match self {
            Value::I(v) => Value::I(-v),
            Value::R(v) => Value::R(-v),
        }
    }

    pub fn lt(self, o: Value) -> Value {
        Value::bool(self.as_real() < o.as_real())
    }
    pub fn le(self, o: Value) -> Value {
        Value::bool(self.as_real() <= o.as_real())
    }
    pub fn gt(self, o: Value) -> Value {
        Value::bool(self.as_real() > o.as_real())
    }
    pub fn ge(self, o: Value) -> Value {
        Value::bool(self.as_real() >= o.as_real())
    }
    pub fn eq_v(self, o: Value) -> Value {
        Value::bool(self.as_real() == o.as_real())
    }
    pub fn ne_v(self, o: Value) -> Value {
        Value::bool(self.as_real() != o.as_real())
    }
    pub fn and(self, o: Value) -> Value {
        Value::bool(self.is_true() && o.is_true())
    }
    pub fn or(self, o: Value) -> Value {
        Value::bool(self.is_true() || o.is_true())
    }
    pub fn not(self) -> Value {
        Value::bool(!self.is_true())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_division_truncates() {
        assert_eq!(Value::I(7).div(Value::I(2)), Value::I(3));
        assert_eq!(Value::I(-7).div(Value::I(2)), Value::I(-3));
    }

    #[test]
    fn mixed_arithmetic_promotes() {
        assert_eq!(Value::I(1).add(Value::R(0.5)), Value::R(1.5));
        assert_eq!(Value::I(7).div(Value::R(2.0)), Value::R(3.5));
    }

    #[test]
    fn integer_pow() {
        assert_eq!(Value::I(2).pow(Value::I(10)), Value::I(1024));
        assert_eq!(Value::R(2.0).pow(Value::I(3)), Value::R(8.0));
    }

    #[test]
    fn relational_yields_int_bool() {
        assert_eq!(Value::I(1).lt(Value::I(2)), Value::I(1));
        assert_eq!(Value::R(2.0).lt(Value::I(1)), Value::I(0));
        assert!(Value::I(1).is_true());
        assert!(!Value::I(0).is_true());
    }

    #[test]
    fn fractional_real_as_int_raises_type_violation() {
        let payload = std::panic::catch_unwind(|| Value::R(1.5).as_int()).unwrap_err();
        match vpce_faults::take_raised(payload) {
            Ok(VpceError::TypeViolation { msg }) => assert!(msg.contains("INTEGER required")),
            Ok(other) => panic!("wrong error: {other}"),
            Err(_) => panic!("payload was not a typed Raised error"),
        }
    }

    #[test]
    fn integer_division_by_zero_raises_type_violation() {
        let payload =
            std::panic::catch_unwind(|| Value::I(1).div(Value::I(0))).unwrap_err();
        match vpce_faults::take_raised(payload) {
            Ok(VpceError::TypeViolation { msg }) => assert!(msg.contains("division by zero")),
            Ok(other) => panic!("wrong error: {other}"),
            Err(_) => panic!("payload was not a typed Raised error"),
        }
    }

    #[test]
    fn integral_real_as_int_converts_exactly() {
        // INTEGER arrays live in f64 windows; their values round-trip.
        assert_eq!(Value::R(42.0).as_int(), 42);
        assert_eq!(Value::R(-7.0).as_int(), -7);
    }
}
