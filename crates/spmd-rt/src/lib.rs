//! # spmd-rt — the SPMD target program and its runtime
//!
//! §3 of the paper describes the code the compiler emits: "a single
//! program multiple data (SPMD) form using the master/slave model of
//! execution, where one of the parallel processes (the master)
//! executes all sequential sections and the other processes (the
//! slaves) participate only in the computations of parallel sections",
//! with explicit barriers, fences and one-sided communication. This
//! crate defines that target form ([`SpmdProgram`]) and executes it on
//! the simulated cluster through the `mpi2` library.
//!
//! ## Execution modes
//!
//! * [`ExecMode::Full`] — every assignment runs numerically; results
//!   are bit-comparable against the sequential reference
//!   ([`execute_sequential`]). Used by all correctness tests.
//! * [`ExecMode::Analytic`] — loop bodies inside compute regions are
//!   *not* executed; their cycle cost is charged from iteration counts
//!   and per-iteration operation counts. All communication still moves
//!   real (if numerically meaningless) bytes through the simulated
//!   network, so communication times are identical to `Full` mode.
//!   Used for the paper-scale (1024x1024) timing runs where full
//!   interpretation is needlessly slow. See `DESIGN.md` §2.
//!
//! Master copies of all program data live on rank 0 (the paper: "the
//! master initially holds all program data objects"). Every rank's
//! copy of every array is full-size, so a region occupies the same
//! element offsets on master and slaves and scatter/collect transfers
//! are offset-preserving (`mpi2::Mpi::put_region` et al.).

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod cost;
pub mod exec;
pub mod ir;
pub mod value;

pub use checkpoint::Snapshot;
pub use exec::{
    execute, execute_sequential, execute_traced, try_execute, try_execute_resumed,
    try_execute_suppressed, try_execute_traced, ExecMode, RunReport, SeqReport,
};
pub use vpce_faults::{FaultSpec, VpceError};
pub use ir::{
    Block, CommOp, CommPlan, Expr, Instr, IntrinsicOp, ParRegion, RedOp, Schedule, SpmdProgram,
};
pub use value::Value;
