//! Fence-boundary checkpoint/restart.
//!
//! The service layer (`vpce-serve`) preempts running jobs by
//! snapshotting their universe at a *block boundary* and resuming the
//! remainder later. Two properties of the runtime make this exact
//! rather than approximate:
//!
//! 1. **Master state is authoritative at every boundary.** The §3
//!    protocol ends every parallel region with collect → fence →
//!    barrier, and sequential blocks execute on the master only — so
//!    at a top-level block boundary the master's windows and scalars
//!    determine all live program state. Slave copies that survive a
//!    boundary (the AVPG's delayed-communication elisions skip
//!    re-scattering regions a slave already holds fresh) agree with
//!    the master's content by the validity invariant, so re-seeding
//!    every rank with the master image reconstructs them exactly.
//! 2. **Execution is a pure function of (program, cluster, faults).**
//!    A fresh run of the first `k` blocks therefore reconstructs the
//!    boundary-`k` state bit for bit — no mid-run capture machinery,
//!    no serialization of in-flight messages (there are none at a
//!    boundary; the fence drained them).
//!
//! So a checkpoint is literally *a run of the prefix program*
//! ([`checkpoint_at`]), and a restart is *a run of the remaining
//! blocks with the master pre-seeded* ([`resume`], via
//! [`try_execute_resumed`]). Rank-level fault draws are keyed by
//! `(rank, region_serial)`; the resumed run starts its serial counter
//! at [`Snapshot::region_serial_base`] so crash/slowdown draws land on
//! the same regions as in the uninterrupted execution.
//!
//! What is and is not bit-exact:
//!
//! * final arrays and scalars of `resume(checkpoint_at(k))` equal the
//!   uninterrupted run's, byte for byte (asserted in tests);
//! * `snapshot.elapsed` equals the uninterrupted run's
//!   `boundaries[k-1]`, byte for byte;
//! * `snapshot.elapsed + resume.elapsed` is only *approximately* the
//!   uninterrupted `elapsed` — the virtual clocks accumulate the same
//!   increments from a different origin, and f64 addition is not
//!   associative. Nothing in the service layer depends on exact
//!   additivity; every duration it schedules with is itself a pure
//!   per-segment value.

use cluster_sim::ClusterConfig;
use mpi2::Elem;
use vpce_faults::{FaultSpec, VpceError};
use vpce_trace::Tracer;

use crate::exec::{try_execute, try_execute_resumed, ExecMode, RunReport};
use crate::ir::{Block, SpmdProgram};
use crate::value::Value;

/// Master state at a top-level block boundary. Everything needed to
/// continue the program later is here; the universe itself (windows,
/// network, clocks) is reconstructed on resume.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Number of top-level blocks already executed.
    pub boundary: usize,
    /// Number of *parallel* blocks among the executed prefix — the
    /// region serial the resumed run must start fault draws at.
    pub region_serial_base: u64,
    /// Virtual seconds the prefix took (rank-max). Equals the
    /// uninterrupted run's `boundaries[boundary - 1]` bit for bit.
    pub elapsed: f64,
    /// Master's window contents at the boundary, one per program
    /// array, full-size.
    pub arrays: Vec<Vec<Elem>>,
    /// Master's scalar values at the boundary.
    pub scalars: Vec<Value>,
}

impl Snapshot {
    /// Payload bytes a journaled/serialized form of this snapshot
    /// would carry (array elements only — scalars are noise). Used by
    /// the service layer to charge checkpoint I/O deterministically.
    pub fn payload_bytes(&self) -> u64 {
        self.arrays
            .iter()
            .map(|a| (a.len() * std::mem::size_of::<Elem>()) as u64)
            .sum()
    }
}

/// Number of parallel blocks among the first `k` blocks — the region
/// serial base for a boundary-`k` snapshot.
pub fn parallel_blocks_before(prog: &SpmdProgram, k: usize) -> u64 {
    prog.blocks[..k]
        .iter()
        .filter(|b| matches!(b, Block::Parallel(_)))
        .count() as u64
}

/// The prefix program: the first `k` blocks of `prog` (the sequential
/// reference is irrelevant for a parallel run and carried unchanged).
fn prefix_program(prog: &SpmdProgram, k: usize) -> SpmdProgram {
    let mut pre = prog.clone();
    pre.blocks.truncate(k);
    pre
}

/// Capture the boundary-`k` state of `prog` under the given fault
/// schedule by running the prefix fresh. Errors if an injected fault
/// in the prefix is unsurvivable — a crashed attempt has no
/// checkpointable state and goes through the normal requeue path.
///
/// # Panics
/// Panics if `k` is not an interior boundary (`1..=blocks.len()`).
pub fn checkpoint_at(
    prog: &SpmdProgram,
    cluster: &ClusterConfig,
    mode: ExecMode,
    faults: FaultSpec,
    k: usize,
) -> Result<Snapshot, VpceError> {
    assert!(
        k >= 1 && k <= prog.blocks.len(),
        "boundary {k} out of range for a {}-block program",
        prog.blocks.len()
    );
    let rep = try_execute(&prefix_program(prog, k), cluster, mode, faults)?;
    Ok(Snapshot {
        boundary: k,
        region_serial_base: parallel_blocks_before(prog, k),
        elapsed: rep.elapsed,
        arrays: rep.arrays,
        scalars: rep.scalars,
    })
}

/// Continue `prog` from a snapshot: run the remaining blocks with the
/// master pre-seeded. The report's `elapsed` is the remainder's cost
/// from a zero clock (pure, cacheable); its arrays/scalars are the
/// program's final state.
pub fn resume(
    prog: &SpmdProgram,
    cluster: &ClusterConfig,
    mode: ExecMode,
    faults: FaultSpec,
    snap: &Snapshot,
) -> Result<RunReport, VpceError> {
    try_execute_resumed(prog, cluster, mode, Tracer::disabled(), faults, Some(snap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::tests::axpy_prog;
    use crate::exec::ExecMode;
    use crate::ir::*;
    use lmad::RegionTransfer;

    /// axpy followed by a second region that rewrites C in place
    /// (C[i] = C[i] + A[i]) and a trailing master block that sums C
    /// into scalar S — three boundaries, master scalar state crossing
    /// the last one.
    fn two_region_prog(nprocs: usize) -> SpmdProgram {
        let mut prog = axpy_prog(nprocs);
        let n = 16usize;
        let chunk = n / nprocs;
        let per_rank = |array: usize| -> Vec<Vec<CommOp>> {
            (0..nprocs)
                .map(|r| {
                    if r == 0 {
                        vec![]
                    } else {
                        vec![CommOp {
                            array,
                            transfer: RegionTransfer {
                                offset: (r * chunk) as i64,
                                stride: 1,
                                count: chunk as u64,
                            },
                        }]
                    }
                })
                .collect()
        };
        let i_var = 0usize;
        let idx = |v: usize| {
            Expr::Bin(
                BinOp::Sub,
                Box::new(Expr::Scalar(v)),
                Box::new(Expr::IConst(1)),
            )
        };
        let body = vec![Instr::StoreArray {
            array: 1,
            index: idx(i_var),
            value: Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Load { array: 1, index: Box::new(idx(i_var)) }),
                Box::new(Expr::Load { array: 0, index: Box::new(idx(i_var)) }),
            ),
        }];
        let region2 = ParRegion {
            var: i_var,
            lo: 1,
            step: 1,
            trips: n as u64,
            sched: Schedule::Block,
            body,
            // C is read-write in this region: scatter and collect it.
            scatter: CommPlan { per_rank: per_rank(1), granularity: None },
            collect: CommPlan { per_rank: per_rank(1), granularity: None },
            pull_scatter: false,
            lock_reductions: false,
            scalars_in: vec![],
            private_scalars: vec![],
            reductions: vec![],
            line: 2,
        };
        prog.scalars.push(("S".into(), false));
        let s_var = prog.scalars.len() - 1;
        let tail = vec![Instr::Loop {
            var: i_var,
            lo: Expr::IConst(1),
            hi: Expr::IConst(n as i64),
            step: 1,
            body: vec![Instr::StoreScalar {
                slot: s_var,
                value: Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Scalar(s_var)),
                    Box::new(Expr::Load { array: 1, index: Box::new(idx(i_var)) }),
                ),
            }],
        }];
        prog.blocks.push(Block::Parallel(region2));
        prog.blocks.push(Block::MasterSeq(tail));
        prog
    }

    #[test]
    fn boundaries_match_prefix_elapsed_bit_for_bit() {
        let prog = two_region_prog(4);
        let cluster = ClusterConfig::paper_4node();
        let full = try_execute(&prog, &cluster, ExecMode::Full, FaultSpec::off()).unwrap();
        assert_eq!(full.boundaries.len(), prog.blocks.len());
        for k in 1..=prog.blocks.len() {
            let pre =
                try_execute(&prefix_program(&prog, k), &cluster, ExecMode::Full, FaultSpec::off())
                    .unwrap();
            assert_eq!(
                pre.elapsed.to_bits(),
                full.boundaries[k - 1].to_bits(),
                "boundary {k}"
            );
        }
        assert_eq!(full.boundaries.last().unwrap().to_bits(), full.elapsed.to_bits());
    }

    #[test]
    fn resume_from_every_boundary_reproduces_final_state() {
        let prog = two_region_prog(4);
        let cluster = ClusterConfig::paper_4node();
        let full = try_execute(&prog, &cluster, ExecMode::Full, FaultSpec::off()).unwrap();
        for k in 1..prog.blocks.len() {
            let snap =
                checkpoint_at(&prog, &cluster, ExecMode::Full, FaultSpec::off(), k).unwrap();
            assert_eq!(snap.region_serial_base, parallel_blocks_before(&prog, k));
            let res = resume(&prog, &cluster, ExecMode::Full, FaultSpec::off(), &snap).unwrap();
            assert_eq!(res.arrays, full.arrays, "boundary {k}");
            assert_eq!(res.scalars, full.scalars, "boundary {k}");
            // Remainder + prefix covers the run: the overshoot is the
            // resumed universe's re-initialization (win_create et al.)
            // — the natural restore overhead — never a shortfall.
            let sum = snap.elapsed + res.elapsed;
            assert!(
                sum >= full.elapsed * (1.0 - 1e-12) && sum - full.elapsed < 1e-3,
                "boundary {k}: {sum} vs {}",
                full.elapsed
            );
        }
    }

    #[test]
    fn resumed_fault_draws_line_up_with_the_full_run() {
        let prog = two_region_prog(4);
        let cluster = ClusterConfig::paper_4node();
        // Find a seed whose crash draw fires in the *second* region:
        // the prefix through region 1 survives, the full run dies.
        let mut exercised = 0;
        for seed in 0..200u64 {
            let spec = FaultSpec { seed, rank_crash: 0.05, ..FaultSpec::off() };
            let full = try_execute(&prog, &cluster, ExecMode::Full, spec.clone());
            let Ok(snap) = checkpoint_at(&prog, &cluster, ExecMode::Full, spec.clone(), 2)
            else {
                // Crash in region 1: nothing to resume, consistent with
                // the full run also dying.
                assert!(full.is_err(), "seed {seed}");
                continue;
            };
            let res = resume(&prog, &cluster, ExecMode::Full, spec, &snap);
            // The remainder must reproduce the full run's fate exactly:
            // same survival, and on crash the same region label.
            match (full, res) {
                (Ok(f), Ok(r)) => assert_eq!(f.arrays, r.arrays, "seed {seed}"),
                (Err(ef), Err(er)) => {
                    assert_eq!(ef.to_string(), er.to_string(), "seed {seed}");
                    exercised += 1;
                }
                (f, r) => panic!("seed {seed}: full {f:?} vs resumed {r:?}"),
            }
        }
        assert!(exercised > 0, "no seed crashed in the resumed remainder");
    }

    #[test]
    fn snapshot_payload_counts_array_bytes() {
        let prog = axpy_prog(4);
        let cluster = ClusterConfig::paper_4node();
        let snap = checkpoint_at(&prog, &cluster, ExecMode::Full, FaultSpec::off(), 1).unwrap();
        assert_eq!(snap.payload_bytes(), (2 * 16 * std::mem::size_of::<Elem>()) as u64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn boundary_zero_is_not_a_checkpoint() {
        let prog = axpy_prog(4);
        let _ = checkpoint_at(
            &prog,
            &ClusterConfig::paper_4node(),
            ExecMode::Full,
            FaultSpec::off(),
            0,
        );
    }
}
