//! The SPMD intermediate representation — the "machine independent
//! intermediate representation" of §3, with the properties the paper
//! lists: explicit synchronization (barriers/fences), all data
//! intrinsically private (per-rank copies), and explicit communication
//! via PUT/GET.

use lmad::{Granularity, RegionTransfer};

/// Binary operators (arithmetic, relational, logical).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

/// Intrinsic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntrinsicOp {
    Sqrt,
    Abs,
    Mod,
    Min,
    Max,
    Sin,
    Cos,
    Exp,
    /// INTEGER → REAL conversion.
    ToReal,
    /// REAL → INTEGER truncation.
    ToInt,
}

/// IR expressions. Scalars index the per-rank scalar bank; arrays
/// index the program's array table (one memory window each); `Load`
/// indices are *linearised element offsets* (subscript arithmetic is
/// compiled in).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    IConst(i64),
    RConst(f64),
    Scalar(usize),
    Load {
        array: usize,
        index: Box<Expr>,
    },
    Neg(Box<Expr>),
    Not(Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Intr(IntrinsicOp, Vec<Expr>),
}

/// IR statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `arrays[array][index] = value` (index pre-linearised).
    StoreArray {
        array: usize,
        index: Expr,
        value: Expr,
    },
    /// `scalars[slot] = value`.
    StoreScalar { slot: usize, value: Expr },
    /// Counted loop over an integer scalar slot.
    Loop {
        var: usize,
        lo: Expr,
        hi: Expr,
        step: i64,
        body: Vec<Instr>,
    },
    If {
        cond: Expr,
        then_body: Vec<Instr>,
        else_body: Vec<Instr>,
    },
}

/// Loop scheduling of §5.3: "cyclic assignment for triangular loops,
/// and block assignment for square loops".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    Block,
    Cyclic,
}

impl Schedule {
    /// The iterations rank `r` of `p` executes, as (start-iteration,
    /// every, count) over `0..trips`.
    pub fn assignment(self, trips: u64, r: usize, p: usize) -> (u64, u64, u64) {
        let (r, p) = (r as u64, p as u64);
        match self {
            Schedule::Block => {
                let chunk = trips.div_ceil(p);
                let start = (chunk * r).min(trips);
                let count = chunk.min(trips - start);
                (start, 1, count)
            }
            Schedule::Cyclic => {
                let count = if trips > r { (trips - r).div_ceil(p) } else { 0 };
                (r, p, count)
            }
        }
    }
}

/// One planned transfer of a scatter or collect batch.
#[derive(Debug, Clone, PartialEq)]
pub struct CommOp {
    pub array: usize,
    pub transfer: RegionTransfer,
}

/// The communication plan of one region boundary: per-slave transfer
/// lists (index 0 — the master's own chunk — is always empty: the
/// master's data is already in place).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CommPlan {
    pub per_rank: Vec<Vec<CommOp>>,
    /// Granularity the plan was lowered at (reporting).
    pub granularity: Option<Granularity>,
}

impl CommPlan {
    /// Total messages in the plan.
    pub fn num_messages(&self) -> usize {
        self.per_rank.iter().map(Vec::len).sum()
    }

    /// Total elements crossing the wire.
    pub fn total_elems(&self) -> u64 {
        self.per_rank
            .iter()
            .flatten()
            .map(|op| op.transfer.elems())
            .sum()
    }

    /// Messages that must use the strided (programmed-I/O) path.
    pub fn strided_messages(&self) -> usize {
        self.per_rank
            .iter()
            .flatten()
            .filter(|op| !op.transfer.is_contiguous())
            .count()
    }
}

/// Scalar reduction operators at the IR level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedOp {
    Sum,
    Prod,
    Min,
    Max,
}

/// A reduction: every rank's private copy of `scalar` is combined
/// onto the master at region exit.
#[derive(Debug, Clone, PartialEq)]
pub struct Reduction {
    pub scalar: usize,
    pub op: RedOp,
    /// Identity element used to seed slave-local accumulators.
    pub identity: f64,
}

/// One parallel region: the §3 shape — barrier, data scattering,
/// partitioned loop execution, reduction, data collecting, fence,
/// barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct ParRegion {
    /// Scalar slot of the parallel loop index.
    pub var: usize,
    /// First index value.
    pub lo: i64,
    pub step: i64,
    pub trips: u64,
    pub sched: Schedule,
    pub body: Vec<Instr>,
    /// Master → slave transfers at entry (ReadOnly/ReadWrite LMADs).
    pub scatter: CommPlan,
    /// Slave → master transfers at exit (WriteFirst/ReadWrite LMADs).
    pub collect: CommPlan,
    /// Slaves fetch their scatter regions with `MPI_GET` (pull) instead
    /// of the master pushing with `MPI_PUT`. Same transfers, opposite
    /// initiator: the host-side setup cost moves off the master's
    /// critical path onto the slaves, in parallel.
    pub pull_scatter: bool,
    /// Reductions combine through `MPI_WIN_LOCK`/`MPI_ACCUMULATE`
    /// critical sections (§3's lock primitive) instead of the
    /// collective tree.
    pub lock_reductions: bool,
    /// Shared scalar slots whose master values slaves need at entry.
    pub scalars_in: Vec<usize>,
    /// Private scalar slots (fresh per iteration; no communication).
    pub private_scalars: Vec<usize>,
    pub reductions: Vec<Reduction>,
    /// Source line of the loop (reports).
    pub line: usize,
}

/// A top-level block of the SPMD program.
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// Sequential section: the master executes, the slaves wait at the
    /// following barrier (§3's master/slave control flow).
    MasterSeq(Vec<Instr>),
    Parallel(ParRegion),
}

/// A complete compiled SPMD program for a fixed number of ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmdProgram {
    pub name: String,
    /// Number of ranks the communication plans were generated for.
    pub nprocs: usize,
    /// (name, element count) per array; one memory window each.
    pub arrays: Vec<(String, usize)>,
    /// (name, is_integer) per scalar slot.
    pub scalars: Vec<(String, bool)>,
    pub blocks: Vec<Block>,
    /// The original sequential statement list (reference execution and
    /// the Table-1 baseline).
    pub sequential: Vec<Instr>,
}

impl SpmdProgram {
    /// All parallel regions, in program order.
    pub fn regions(&self) -> impl Iterator<Item = &ParRegion> {
        self.blocks.iter().filter_map(|b| match b {
            Block::Parallel(p) => Some(p),
            _ => None,
        })
    }

    /// Aggregate message/volume statistics of all plans (reports).
    pub fn comm_summary(&self) -> (usize, u64) {
        let mut msgs = 0;
        let mut elems = 0;
        for r in self.regions() {
            msgs += r.scatter.num_messages() + r.collect.num_messages();
            elems += r.scatter.total_elems() + r.collect.total_elems();
        }
        (msgs, elems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_schedule_covers_all_iterations_exactly_once() {
        for trips in [1u64, 7, 16, 100, 101] {
            for p in [1usize, 2, 3, 4, 8] {
                let mut seen = vec![0u32; trips as usize];
                for r in 0..p {
                    let (start, every, count) = Schedule::Block.assignment(trips, r, p);
                    assert_eq!(every, 1);
                    for k in 0..count {
                        seen[(start + k) as usize] += 1;
                    }
                }
                assert!(seen.iter().all(|&c| c == 1), "trips={trips} p={p}");
            }
        }
    }

    #[test]
    fn cyclic_schedule_covers_all_iterations_exactly_once() {
        for trips in [1u64, 7, 16, 100, 101] {
            for p in [1usize, 2, 3, 4, 8] {
                let mut seen = vec![0u32; trips as usize];
                for r in 0..p {
                    let (start, every, count) = Schedule::Cyclic.assignment(trips, r, p);
                    for k in 0..count {
                        seen[(start + k * every) as usize] += 1;
                    }
                }
                assert!(seen.iter().all(|&c| c == 1), "trips={trips} p={p}");
            }
        }
    }

    #[test]
    fn cyclic_balances_triangular_work() {
        // For triangular loops, iteration i costs ~i; cyclic spreads
        // the expensive tail across ranks.
        let trips = 100u64;
        let p = 4;
        let cost = |start: u64, every: u64, count: u64| -> u64 {
            (0..count).map(|k| start + k * every).sum()
        };
        let mut block_costs = Vec::new();
        let mut cyc_costs = Vec::new();
        for r in 0..p {
            let (s, e, c) = Schedule::Block.assignment(trips, r, p);
            block_costs.push(cost(s, e, c));
            let (s, e, c) = Schedule::Cyclic.assignment(trips, r, p);
            cyc_costs.push(cost(s, e, c));
        }
        let spread = |v: &[u64]| v.iter().max().unwrap() - v.iter().min().unwrap();
        assert!(
            spread(&cyc_costs) < spread(&block_costs) / 10,
            "cyclic {cyc_costs:?} vs block {block_costs:?}"
        );
    }

    #[test]
    fn comm_plan_statistics() {
        let plan = CommPlan {
            per_rank: vec![
                vec![],
                vec![
                    CommOp {
                        array: 0,
                        transfer: RegionTransfer {
                            offset: 0,
                            stride: 1,
                            count: 10,
                        },
                    },
                    CommOp {
                        array: 1,
                        transfer: RegionTransfer {
                            offset: 4,
                            stride: 2,
                            count: 5,
                        },
                    },
                ],
            ],
            granularity: Some(Granularity::Fine),
        };
        assert_eq!(plan.num_messages(), 2);
        assert_eq!(plan.total_elems(), 15);
        assert_eq!(plan.strided_messages(), 1);
    }

    #[test]
    fn empty_trips_assignment() {
        let (_, _, count) = Schedule::Block.assignment(3, 3, 4);
        assert_eq!(count, 0, "rank beyond the work gets nothing");
        let (_, _, count) = Schedule::Cyclic.assignment(2, 3, 4);
        assert_eq!(count, 0);
    }
}
