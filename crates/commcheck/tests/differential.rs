//! Differential ground truth: the *static* verifier (exhaustive
//! small-scope exploration over the skeleton) against the *dynamic*
//! wait-for-graph detector inside `mpi2`.
//!
//! The contract is one-directional and sound in that direction:
//!
//! > If commcheck declares a skeleton clean (and the exploration was
//! > not truncated), then no execution of the equivalent MPI program
//! > may ever end in [`VpceError::DeadlockStall`].
//!
//! A scheduled crash is allowed to surface as [`VpceError::RankCrash`]
//! — the dynamic runtime reports the root cause, not a hang — but a
//! stall after a static pass is a verifier bug, full stop. The reverse
//! direction is deliberately not asserted case-by-case here (the
//! dynamic run sees only one interleaving; the static verifier
//! quantifies over all of them), but the pinned cases at the bottom
//! fix both verdicts for one canonical skeleton per deadlock class.
//!
//! The dynamic interpretation maps each skeleton op onto real `mpi2`
//! calls: syncs become the matching collectives, two-sided p2p keeps
//! its user tag (always < 1000), and an RTS/CTS handshake `hs` becomes
//! a send/recv pair on reserved tags `1000 + 2*hs` / `1001 + 2*hs`.
//! One-sided puts/gets and scheduler reservations have no blocking
//! dynamic counterpart in this harness — dropping them only *removes*
//! blocking from the dynamic side, which keeps the one-directional
//! property sound.

use std::time::Duration;

use cluster_sim::ClusterConfig;
use commcheck::skeleton::{Op, Skeleton, SyncKind};
use commcheck::{verify_skeleton, VerifyOptions, VerifyReport};
use mpi2::{AccumulateOp, Universe, VpceError};
use vpce_diag::DiagCode;
use vpce_faults::raise;
use vpce_testkit::prelude::*;

/// Short stall-check interval: the pinned deadlock cases should be
/// detected quickly, and the detector has no false positives at any
/// interval.
const FAST: Duration = Duration::from_millis(5);

fn rts_tag(hs: usize) -> i32 {
    1000 + 2 * hs as i32
}

fn cts_tag(hs: usize) -> i32 {
    1001 + 2 * hs as i32
}

/// Execute the skeleton for real on the mpi2 runtime with the dynamic
/// deadlock detector armed.
fn run_dynamic(sk: &Skeleton) -> Result<(), VpceError> {
    let uni = Universe::new(ClusterConfig::paper_n(sk.nranks)).with_stall_check(FAST);
    let sk = sk.clone();
    uni.try_run(move |mpi| {
        let r = mpi.rank();
        for act in &sk.ranks[r] {
            match &act.op {
                Op::Sync(SyncKind::Barrier) => mpi.barrier(),
                Op::Sync(SyncKind::Fence) => mpi.fence_all(),
                Op::Sync(SyncKind::Bcast) => {
                    let data = (r == 0).then(|| vec![1.0]);
                    mpi.bcast(0, data);
                }
                Op::Sync(SyncKind::Reduce) => {
                    mpi.reduce(0, vec![1.0], AccumulateOp::Sum);
                }
                Op::Send { to, tag } => mpi.send(*to, *tag, vec![1.0]),
                Op::Recv { from, tag } => {
                    mpi.recv(*from, *tag);
                }
                Op::RdvzSend { to, hs } => {
                    mpi.send(*to, rts_tag(*hs), vec![1.0]);
                    mpi.recv(*to, cts_tag(*hs));
                }
                Op::RdvzRecv { from, hs } => {
                    mpi.recv(*from, rts_tag(*hs));
                    mpi.send(*from, cts_tag(*hs), vec![2.0]);
                }
                Op::Crash => raise(VpceError::RankCrash {
                    rank: r,
                    region: "differential".into(),
                }),
                // No blocking dynamic counterpart (see module docs).
                Op::EagerPut { .. }
                | Op::RdvzPut { .. }
                | Op::Get { .. }
                | Op::Acquire { .. }
                | Op::Release { .. } => {}
            }
        }
    })
    .map(|_| ())
}

fn verify(sk: &Skeleton) -> VerifyReport {
    verify_skeleton(sk, &VerifyOptions::default())
}

fn codes(rep: &VerifyReport) -> Vec<&'static str> {
    rep.report.diags.iter().map(|d| d.code.as_str()).collect()
}

// ---------------------------------------------------------------------------
// Random plan generator
// ---------------------------------------------------------------------------

fn pick_live(src: &mut Source, live: &[bool]) -> usize {
    let alive: Vec<usize> = (0..live.len()).filter(|&r| live[r]).collect();
    alive[src.next_below(alive.len() as u64) as usize]
}

/// A distinct live pair, if two ranks are still alive.
fn pick_live_pair(src: &mut Source, live: &[bool]) -> Option<(usize, usize)> {
    let alive: Vec<usize> = (0..live.len()).filter(|&r| live[r]).collect();
    if alive.len() < 2 {
        return None;
    }
    let a = alive[src.next_below(alive.len() as u64) as usize];
    let mut b = alive[src.next_below(alive.len() as u64) as usize];
    while b == a {
        b = alive[src.next_below(alive.len() as u64) as usize];
    }
    Some((a, b))
}

/// Random communication plans: mostly well-formed pattern blocks
/// (matched syncs, matched p2p, complete rendezvous handshakes),
/// salted with the broken shapes the verifier exists to catch
/// (unmatched receives, sync divergence, orphaned handshake halves,
/// scheduled crashes). Dead ranks never receive further acts, matching
/// the lowering's crash semantics.
fn plan_gen() -> Gen<Skeleton> {
    Gen::new(|src| {
        let n = 2 + src.next_below(2) as usize; // 2..=3 ranks
        let mut sk = Skeleton::new("differential", n);
        let mut live = vec![true; n];
        let mut hs = 0usize;
        let npat = 1 + src.next_below(6) as usize;
        for _ in 0..npat {
            match src.next_below(12) {
                // Matched global sync across the live set.
                0 | 1 => {
                    let k = match src.next_below(4) {
                        0 => SyncKind::Barrier,
                        1 => SyncKind::Fence,
                        2 => SyncKind::Reduce,
                        _ => SyncKind::Bcast,
                    };
                    // Bcast needs a live root in the dynamic run.
                    if k == SyncKind::Bcast && !live[0] {
                        continue;
                    }
                    sk.sync_all(k, 0, &live);
                }
                // Matched two-sided pair, sender first.
                2..=4 => {
                    if let Some((a, b)) = pick_live_pair(src, &live) {
                        let tag = src.next_below(100) as i32;
                        sk.push(a, Op::Send { to: b, tag }, 0, "p2p");
                        sk.push(b, Op::Recv { from: a, tag }, 0, "p2p");
                    }
                }
                // Complete rendezvous handshake.
                5 | 6 => {
                    if let Some((a, b)) = pick_live_pair(src, &live) {
                        sk.push(a, Op::RdvzSend { to: b, hs }, 0, "rdvz");
                        sk.push(b, Op::RdvzRecv { from: a, hs }, 0, "rdvz");
                        hs += 1;
                    }
                }
                // One-sided traffic: never blocks dynamically.
                7 => {
                    if let Some((a, b)) = pick_live_pair(src, &live) {
                        let op = match src.next_below(3) {
                            0 => Op::EagerPut { to: b, bytes: 64 },
                            1 => Op::RdvzPut { to: b, bytes: 64 },
                            _ => Op::Get { from: b, bytes: 64 },
                        };
                        sk.push(a, op, 0, "rma");
                    }
                }
                // Broken: a receive nothing will ever match.
                8 => {
                    if let Some((a, b)) = pick_live_pair(src, &live) {
                        sk.push(a, Op::Recv { from: b, tag: 999 }, 0, "broken");
                    }
                }
                // Broken: one rank runs a sync on its own.
                9 => {
                    let a = pick_live(src, &live);
                    sk.push(a, Op::Sync(SyncKind::Barrier), 0, "broken");
                }
                // Broken: an orphaned origin half (the target may never
                // post, or may already be dead).
                10 => {
                    let a = pick_live(src, &live);
                    let mut b = src.next_below(n as u64) as usize;
                    while b == a {
                        b = src.next_below(n as u64) as usize;
                    }
                    sk.push(a, Op::RdvzSend { to: b, hs }, 0, "orphan");
                    hs += 1;
                }
                // Scheduled crash (keep at least one rank alive).
                _ => {
                    if live.iter().filter(|&&l| l).count() > 1 {
                        let a = pick_live(src, &live);
                        sk.push(a, Op::Crash, 0, "crash");
                        live[a] = false;
                    }
                }
            }
        }
        sk
    })
}

/// The headline property, over 1000+ seeded random plans: a static
/// pass is a *guarantee*. Cases the verifier flags are vacuous here
/// (the dynamic run would rightly stall on many of them); cases it
/// passes must never stall dynamically.
#[test]
fn static_clean_implies_no_dynamic_stall() {
    Check::new("static_clean_implies_no_dynamic_stall")
        .cases(1000)
        .run(&plan_gen(), |sk| {
            let rep = verify(sk);
            if !rep.is_clean() || rep.truncated {
                return Ok(()); // one-directional: nothing to check
            }
            match run_dynamic(sk) {
                Err(VpceError::DeadlockStall { graph }) => Err(PropError::fail(format!(
                    "static verifier passed but the dynamic detector stalled:\n{graph}"
                ))),
                _ => Ok(()),
            }
        });
}

// ---------------------------------------------------------------------------
// Pinned cases: one canonical skeleton per deadlock class, with BOTH
// verdicts fixed — the static codes and the dynamic outcome.
// ---------------------------------------------------------------------------

#[test]
fn pinned_recv_cycle_agrees() {
    let mut sk = Skeleton::new("pin-cycle", 2);
    sk.push(0, Op::Recv { from: 1, tag: 0 }, 1, "p2p");
    sk.push(0, Op::Send { to: 1, tag: 0 }, 2, "p2p");
    sk.push(1, Op::Recv { from: 0, tag: 0 }, 1, "p2p");
    sk.push(1, Op::Send { to: 0, tag: 0 }, 2, "p2p");
    let rep = verify(&sk);
    // A plain receive wait cycle is the VPCE201 headline alone.
    assert_eq!(codes(&rep), vec!["VPCE201"]);
    let err = run_dynamic(&sk).unwrap_err();
    assert!(
        matches!(err, VpceError::DeadlockStall { .. }),
        "dynamic verdict: {err:?}"
    );
}

#[test]
fn pinned_sync_divergence_agrees() {
    // Rank 0 runs a barrier no one else will ever join.
    let mut sk = Skeleton::new("pin-sync", 2);
    sk.push(0, Op::Sync(SyncKind::Barrier), 1, "sync");
    let rep = verify(&sk);
    assert!(codes(&rep).contains(&"VPCE202"), "{:?}", codes(&rep));
    let err = run_dynamic(&sk).unwrap_err();
    assert!(
        matches!(err, VpceError::DeadlockStall { .. }),
        "dynamic verdict: {err:?}"
    );
}

#[test]
fn pinned_crossed_rendezvous_agrees() {
    // Both ranks post their origin half first: the RTS/CTS cycle.
    let mut sk = Skeleton::new("pin-rdvz", 2);
    sk.push(0, Op::RdvzSend { to: 1, hs: 0 }, 1, "rdvz");
    sk.push(0, Op::RdvzRecv { from: 1, hs: 1 }, 2, "rdvz");
    sk.push(1, Op::RdvzSend { to: 0, hs: 1 }, 1, "rdvz");
    sk.push(1, Op::RdvzRecv { from: 0, hs: 0 }, 2, "rdvz");
    let rep = verify(&sk);
    assert!(codes(&rep).contains(&"VPCE203"), "{:?}", codes(&rep));
    let err = run_dynamic(&sk).unwrap_err();
    assert!(
        matches!(err, VpceError::DeadlockStall { .. }),
        "dynamic verdict: {err:?}"
    );
}

/// The chaos-crash satellite, differentially: a rank dies between RTS
/// and CTS. The static verifier must predict the orphaned handshake
/// (VPCE205); the dynamic runtime must surface the crash as the root
/// cause — never a hang.
#[test]
fn pinned_crash_mid_rendezvous_agrees() {
    let mut sk = Skeleton::new("pin-crash", 2);
    sk.push(0, Op::RdvzSend { to: 1, hs: 0 }, 1, "rdvz");
    sk.push(1, Op::Crash, 1, "crash");
    let rep = verify(&sk);
    assert!(codes(&rep).contains(&"VPCE205"), "{:?}", codes(&rep));
    let err = run_dynamic(&sk).unwrap_err();
    assert!(
        matches!(err, VpceError::RankCrash { rank: 1, .. }),
        "crash must be the root cause, got {err:?}"
    );
}

#[test]
fn pinned_unmatched_recv_agrees() {
    // Rank 1 waits on a message rank 0 never sends.
    let mut sk = Skeleton::new("pin-recv", 2);
    sk.push(1, Op::Recv { from: 0, tag: 7 }, 1, "p2p");
    let rep = verify(&sk);
    assert!(codes(&rep).contains(&"VPCE207"), "{:?}", codes(&rep));
    let err = run_dynamic(&sk).unwrap_err();
    assert!(
        matches!(err, VpceError::DeadlockStall { .. }),
        "dynamic verdict: {err:?}"
    );
}
