//! Lower a compiled SPMD program into its communication [`Skeleton`] —
//! the same event order `spmd-rt::exec::run_region` drives the MPI
//! library in (§3's protocol), reduced to what can block:
//!
//! ```text
//! [crash]                                  (rank-level fault draw)
//! barrier                                  (slaves released)
//! [bcast]                                  (shared scalars in)
//! scatter  PUTs (push) / GETs (pull)       -- protocol per transfer
//! fence
//! [reduce | barrier,barrier]               (reduction combine)
//! collect  PUTs (slaves -> master)
//! fence
//! barrier
//! ```
//!
//! Two things make this more than a copy of rmacheck's lowering:
//!
//! * every PUT is resolved through the [`TransportPolicy`] into its
//!   actual protocol — an eager transfer pins a registered pool slot
//!   until the origin's next fence, a rendezvous transfer does not —
//!   because pool pressure is what turns a legal plan into a deadlock;
//! * the deterministic rank-crash draw of the fault schedule is
//!   replayed exactly (same site, same `(rank, region-serial)` key, same
//!   salt as `exec.rs`), so the skeleton predicts the *scheduled* crash
//!   set, not a probabilistic abstraction of it. A crashed rank emits
//!   [`Op::Crash`] and nothing else: the crash unwinds before the
//!   region's entry barrier, and dead ranks never rejoin.
//!
//! Master-only sequential sections lower to nothing: they run strictly
//! between regions with no communication epoch open.

use mpi2::{Protocol, TransportPolicy, ELEM_BYTES};
use spmd_rt::ir::{Block, ParRegion, SpmdProgram};
use vpce_faults::{site, FaultInjector, FaultSpec};

use crate::skeleton::{Op, Skeleton, SyncKind};

/// Lower `prog` into the per-rank skeleton under `policy`'s protocol
/// switchover and `faults`' deterministic crash schedule.
pub fn lower(prog: &SpmdProgram, policy: &TransportPolicy, faults: &FaultSpec) -> Skeleton {
    let n = prog.nprocs;
    let mut sk = Skeleton::new(prog.name.clone(), n);
    sk.pool_slots = policy.slots;
    let inj = FaultInjector::new(faults.clone());
    let mut live = vec![true; n];
    let mut region_serial: u64 = 0;
    for block in &prog.blocks {
        let region = match block {
            Block::MasterSeq(_) => continue,
            Block::Parallel(r) => r,
        };
        lower_region(&mut sk, region, policy, &inj, &mut live, region_serial);
        region_serial += 1;
    }
    sk
}

/// Resolve one PUT of `count` elements through the protocol switchover.
fn put_op(policy: &TransportPolicy, to: usize, count: u64) -> Op {
    let bytes = count as usize * ELEM_BYTES;
    match policy.choose(bytes) {
        Protocol::Eager => Op::EagerPut { to, bytes },
        Protocol::Rendezvous => Op::RdvzPut { to, bytes },
    }
}

fn lower_region(
    sk: &mut Skeleton,
    region: &ParRegion,
    policy: &TransportPolicy,
    inj: &FaultInjector,
    live: &mut [bool],
    region_serial: u64,
) {
    let line = region.line;
    let spec = inj.spec();
    // Replay the rank-level crash draws exactly as run_region does:
    // keyed (rank, region serial), drawn before the entry barrier.
    for (r, alive) in live.iter_mut().enumerate() {
        if !*alive {
            continue;
        }
        let fault_key = ((r as u64) << 32) ^ region_serial;
        if inj.hits(spec.rank_crash, site::RANK_CRASH, fault_key, 0) {
            sk.push(r, Op::Crash, line, "crash");
            *alive = false;
        }
    }

    // Entry barrier: slaves join the computation.
    sk.sync_all(SyncKind::Barrier, line, live);

    // Shared scalars travel master -> everyone.
    if !region.scalars_in.is_empty() {
        sk.sync_all(SyncKind::Bcast, line, live);
    }

    // Scatter epoch. Push: the master PUTs every slave's regions (its
    // own included — a local move, but it consumes a slot like any
    // other eager transfer). Pull: each slave GETs from the master.
    if region.pull_scatter {
        for (r, ops) in region.scatter.per_rank.iter().enumerate().skip(1) {
            if !live[r] {
                continue;
            }
            for op in ops {
                let bytes = op.transfer.count as usize * ELEM_BYTES;
                sk.push(r, Op::Get { from: 0, bytes }, line, "scatter");
            }
        }
    } else if live[0] {
        for (r, ops) in region.scatter.per_rank.iter().enumerate() {
            for op in ops {
                sk.push(0, put_op(policy, r, op.transfer.count), line, "scatter");
            }
        }
    }
    sk.sync_all(SyncKind::Fence, line, live);

    // Reduction combine: the collective tree, or two barriers
    // bracketing the lock/accumulate critical sections.
    if !region.reductions.is_empty() {
        if region.lock_reductions {
            sk.sync_all(SyncKind::Barrier, line, live);
            sk.sync_all(SyncKind::Barrier, line, live);
        } else {
            for _ in &region.reductions {
                sk.sync_all(SyncKind::Reduce, line, live);
            }
        }
    }

    // Collect: slaves PUT write-first/read-write regions back to the
    // master; closed by the second fence, then the exit barrier.
    for (r, ops) in region.collect.per_rank.iter().enumerate().skip(1) {
        if !live[r] {
            continue;
        }
        for op in ops {
            sk.push(r, put_op(policy, 0, op.transfer.count), line, "collect");
        }
    }
    sk.sync_all(SyncKind::Fence, line, live);
    sk.sync_all(SyncKind::Barrier, line, live);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::Act;
    use cluster_sim::ClusterConfig;
    use lmad::RegionTransfer;
    use spmd_rt::ir::{Block, CommOp, CommPlan, ParRegion, Schedule, SpmdProgram};

    fn comm(per_rank: Vec<Vec<CommOp>>) -> CommPlan {
        CommPlan {
            per_rank,
            granularity: None,
        }
    }

    fn op(array: usize, offset: i64, count: u64) -> CommOp {
        CommOp {
            array,
            transfer: RegionTransfer {
                offset,
                stride: 1,
                count,
            },
        }
    }

    fn region(n: usize) -> ParRegion {
        ParRegion {
            var: 0,
            lo: 1,
            step: 1,
            trips: 8,
            sched: Schedule::Block,
            body: Vec::new(),
            scatter: comm(vec![Vec::new(); n]),
            collect: comm(vec![Vec::new(); n]),
            pull_scatter: false,
            lock_reductions: false,
            scalars_in: Vec::new(),
            private_scalars: Vec::new(),
            reductions: Vec::new(),
            line: 7,
        }
    }

    fn program(n: usize, blocks: Vec<Block>) -> SpmdProgram {
        SpmdProgram {
            name: "t".into(),
            nprocs: n,
            arrays: vec![("A".into(), 64)],
            scalars: Vec::new(),
            blocks,
            sequential: Vec::new(),
        }
    }

    fn policy() -> TransportPolicy {
        TransportPolicy::from_config(&ClusterConfig::paper_n(2))
    }

    fn syncs(acts: &[Act]) -> Vec<SyncKind> {
        acts.iter()
            .filter_map(|a| match a.op {
                Op::Sync(k) => Some(k),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn sync_sequence_matches_the_runtime_protocol() {
        let mut r = region(2);
        r.scalars_in = vec![0];
        r.reductions.push(spmd_rt::ir::Reduction {
            scalar: 0,
            op: spmd_rt::ir::RedOp::Sum,
            identity: 0.0,
        });
        let prog = program(2, vec![Block::Parallel(r)]);
        let sk = lower(&prog, &policy(), &FaultSpec::off());
        let expect = vec![
            SyncKind::Barrier,
            SyncKind::Bcast,
            SyncKind::Fence,
            SyncKind::Reduce,
            SyncKind::Fence,
            SyncKind::Barrier,
        ];
        assert_eq!(syncs(&sk.ranks[0]), expect);
        assert_eq!(syncs(&sk.ranks[1]), expect);
    }

    #[test]
    fn protocol_switchover_splits_puts_by_size() {
        let p = policy();
        let small = p.eager_max_bytes / ELEM_BYTES; // fits eager
        let large = p.eager_max_bytes / ELEM_BYTES + 1; // forced rendezvous
        let mut r = region(2);
        r.scatter.per_rank[1].push(op(0, 0, small as u64));
        r.collect.per_rank[1].push(op(0, 0, large as u64));
        let prog = program(2, vec![Block::Parallel(r)]);
        let sk = lower(&prog, &policy(), &FaultSpec::off());
        assert!(sk.ranks[0]
            .iter()
            .any(|a| matches!(a.op, Op::EagerPut { to: 1, .. }) && a.site == "scatter"));
        assert!(sk.ranks[1]
            .iter()
            .any(|a| matches!(a.op, Op::RdvzPut { to: 0, .. }) && a.site == "collect"));
        assert_eq!(sk.pool_slots, p.slots);
    }

    #[test]
    fn pull_scatter_lowers_to_gets_which_never_block() {
        let mut r = region(2);
        r.pull_scatter = true;
        r.scatter.per_rank[1].push(op(0, 0, 4));
        let prog = program(2, vec![Block::Parallel(r)]);
        let sk = lower(&prog, &policy(), &FaultSpec::off());
        assert!(sk.ranks[1]
            .iter()
            .any(|a| matches!(a.op, Op::Get { from: 0, .. })));
        // The master issued no scatter transfer.
        assert!(sk.ranks[0].iter().all(|a| matches!(a.op, Op::Sync(_))));
    }

    #[test]
    fn certain_crash_replays_the_runtime_draw() {
        // rank_crash = 1.0: every rank draws a crash in region 0, the
        // same draw spmd-rt::exec makes. All ranks emit Crash and
        // nothing else.
        let prog = program(2, vec![Block::Parallel(region(2))]);
        let spec = FaultSpec {
            rank_crash: 1.0,
            ..FaultSpec::off()
        };
        let sk = lower(&prog, &policy(), &spec);
        for r in 0..2 {
            assert_eq!(sk.ranks[r].len(), 1, "rank {r}");
            assert!(matches!(sk.ranks[r][0].op, Op::Crash));
            assert_eq!(sk.ranks[r][0].line, 7);
        }
    }

    #[test]
    fn crash_free_schedule_emits_no_crash_acts() {
        let prog = program(2, vec![Block::Parallel(region(2))]);
        let sk = lower(&prog, &policy(), &FaultSpec::off());
        assert!(sk
            .ranks
            .iter()
            .flatten()
            .all(|a| !matches!(a.op, Op::Crash)));
    }
}
