//! # vpce-commcheck — static deadlock & progress verifier
//!
//! `vpcec --verify`: lower the compiled SPMD program and its backend
//! plan into a per-rank communication *skeleton* (everything that can
//! block a rank — syncs, protocol-resolved transfers, pool slots,
//! reservations, scheduled crashes) and exhaustively explore the
//! small-scope interleaving space with a stubborn-set partial-order
//! reduction. If any schedule reaches a global stall, the verifier
//! reports it with a minimal counterexample interleaving and one
//! diagnostic per blocked rank, classified by *why* progress is
//! impossible:
//!
//! | code    | finding |
//! |---------|---------|
//! | VPCE201 | deadlock: an interleaving reaches a global stall |
//! | VPCE202 | collective/fence mismatch or rank-divergent sync |
//! | VPCE203 | rendezvous RTS/CTS wait cycle |
//! | VPCE204 | registered-pool exhaustion deadlock (strict pools) |
//! | VPCE205 | blocked on a crash-drained peer (orphaned handshake) |
//! | VPCE206 | scheduler-reservation deadlock |
//! | VPCE207 | receive no surviving rank ever matches |
//! | VPCE208 | handshake half orphaned by a finished peer |
//! | VPCE210 | progress depends on eager pool size ≥ N (warning) |
//!
//! The verifier never executes the program: exploration is over
//! program counters only, and every semantic quantity (mail, pool
//! pressure, reservations) is a precomputed function of them. Its
//! ground truth is the *dynamic* wait-for-graph detector in `mpi2`
//! (`VpceError::DeadlockStall`): the differential property suite
//! checks that no plan this verifier passes is ever flagged at run
//! time.

#![forbid(unsafe_code)]

pub mod explore;
pub mod lower;
pub mod skeleton;

use std::fmt::Write as _;

use mpi2::TransportPolicy;
use spmd_rt::ir::SpmdProgram;
use vpce_diag::{json_escape, DiagCode, Diagnostic, Report, Severity};
use vpce_faults::FaultSpec;
use vpce_trace::{CallInfo, CallOp, EventKind, Lane, Tracer};

use explore::{explore, Blocked, Cause, TraceStep};
use skeleton::{Op, Skeleton, SyncKind};

pub use explore::ExploreResult;
pub use lower::lower;

/// The stable verifier diagnostic codes (the VPCE2xx namespace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VerifyCode {
    /// VPCE201: some interleaving reaches a global stall.
    Deadlock,
    /// VPCE202: fence/collective mismatch or rank-divergent sync.
    SyncMismatch,
    /// VPCE203: rendezvous RTS/CTS wait cycle.
    RendezvousCycle,
    /// VPCE204: registered-pool exhaustion deadlock (strict pools).
    PoolExhaustion,
    /// VPCE205: blocked on a crash-drained peer.
    OrphanedHandshake,
    /// VPCE206: scheduler-reservation deadlock.
    ReservationDeadlock,
    /// VPCE207: a receive no surviving rank ever matches.
    UnmatchedRecv,
    /// VPCE208: a handshake half orphaned by a finished peer.
    OrphanedSend,
    /// VPCE210: progress depends on the eager pool being large enough.
    PoolConditional,
}

impl DiagCode for VerifyCode {
    fn as_str(self) -> &'static str {
        match self {
            VerifyCode::Deadlock => "VPCE201",
            VerifyCode::SyncMismatch => "VPCE202",
            VerifyCode::RendezvousCycle => "VPCE203",
            VerifyCode::PoolExhaustion => "VPCE204",
            VerifyCode::OrphanedHandshake => "VPCE205",
            VerifyCode::ReservationDeadlock => "VPCE206",
            VerifyCode::UnmatchedRecv => "VPCE207",
            VerifyCode::OrphanedSend => "VPCE208",
            VerifyCode::PoolConditional => "VPCE210",
        }
    }

    fn severity(self) -> Severity {
        match self {
            VerifyCode::PoolConditional => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// Verifier knobs.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Treat the registered eager pool as a hard capacity: a put with
    /// no free slot *blocks* (VPCE204) instead of falling back to
    /// rendezvous (VPCE210 warning). Models runtimes without a
    /// fallback path.
    pub strict_pools: bool,
    /// State-budget cap; exploration past it returns `truncated` and a
    /// clean result becomes inconclusive.
    pub max_states: usize,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            strict_pools: false,
            max_states: 200_000,
        }
    }
}

/// One blocked rank of the counterexample's stall, with its code.
#[derive(Debug, Clone)]
pub struct BlockedRank {
    pub rank: usize,
    pub op: Op,
    pub line: usize,
    pub site: &'static str,
    pub cause: String,
    /// The per-rank classification; `None` when only the VPCE201
    /// headline covers it (e.g. a plain receive wait cycle).
    pub code: Option<VerifyCode>,
}

/// A minimal interleaving that stalls, plus the stall itself.
#[derive(Debug, Clone)]
pub struct Counterexample {
    pub nranks: usize,
    pub steps: Vec<TraceStep>,
    pub blocked: Vec<BlockedRank>,
}

impl Counterexample {
    /// Terminal rendering, appended below the diagnostic list.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "counterexample (minimal interleaving, {} step(s)):",
            self.steps.len()
        );
        for (i, s) in self.steps.iter().enumerate() {
            let who = match s.rank {
                Some(r) => format!("rank {r}"),
                None => "all".to_string(),
            };
            let _ = write!(out, "  {:>3}. {who}: {}", i + 1, s.act.op.describe());
            if !s.act.site.is_empty() {
                let _ = write!(out, " [{}]", s.act.site);
            }
            out.push('\n');
        }
        let _ = writeln!(out, "stalled after step {}:", self.steps.len());
        for b in &self.blocked {
            let _ = write!(out, "  rank {}: {}", b.rank, b.op.describe());
            if !b.site.is_empty() {
                let _ = write!(out, " [{}]", b.site);
            }
            let _ = write!(out, " -- {}", b.cause);
            if let Some(c) = b.code {
                let _ = write!(out, " [{}]", c.as_str());
            }
            out.push('\n');
        }
        out
    }

    /// Stable JSON value (spliced into the report under
    /// `"counterexample"`; indentation continues the report's 2-space
    /// style).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "    \"nranks\": {},", self.nranks);
        out.push_str("    \"steps\": [");
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n      {");
            match s.rank {
                Some(r) => {
                    let _ = write!(out, "\"rank\": {r}, ");
                }
                None => out.push_str("\"rank\": \"all\", "),
            }
            let _ = write!(out, "\"op\": \"{}\", ", json_escape(&s.act.op.describe()));
            let _ = write!(out, "\"line\": {}, ", s.act.line);
            let _ = write!(out, "\"site\": \"{}\"", json_escape(s.act.site));
            out.push('}');
        }
        if !self.steps.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("],\n");
        out.push_str("    \"blocked\": [");
        for (i, b) in self.blocked.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n      {");
            let _ = write!(out, "\"rank\": {}, ", b.rank);
            let _ = write!(out, "\"op\": \"{}\", ", json_escape(&b.op.describe()));
            let _ = write!(out, "\"line\": {}, ", b.line);
            let _ = write!(out, "\"site\": \"{}\", ", json_escape(b.site));
            match b.code {
                Some(c) => {
                    let _ = write!(out, "\"code\": \"{}\", ", c.as_str());
                }
                None => out.push_str("\"code\": null, "),
            }
            let _ = write!(out, "\"cause\": \"{}\"", json_escape(&b.cause));
            out.push('}');
        }
        if !self.blocked.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]\n  }");
        out
    }

    /// Render the interleaving as a `vpce-trace` timeline: one lane
    /// per rank, step `i` drawn as the span `[i, i+1)`, the stall's
    /// blocked operations as trailing phase spans. Exportable through
    /// the usual chrome-trace path.
    pub fn timeline(&self) -> Tracer {
        let tr = Tracer::enabled();
        for r in 0..self.nranks {
            tr.register_lane(Lane::Rank(r), format!("rank {r}"));
        }
        let sync_call = |k: SyncKind| {
            EventKind::Call(CallInfo::new(match k {
                SyncKind::Fence => CallOp::Fence,
                SyncKind::Barrier => CallOp::Barrier,
                SyncKind::Bcast => CallOp::Bcast,
                SyncKind::Reduce => CallOp::Reduce,
            }))
        };
        for (i, s) in self.steps.iter().enumerate() {
            let (t0, t1) = (i as f64, (i + 1) as f64);
            match (&s.act.op, s.rank) {
                (Op::Sync(k), _) => {
                    for r in 0..self.nranks {
                        tr.push(Lane::Rank(r), t0, t1, sync_call(*k));
                    }
                }
                (op, Some(r)) => {
                    let kind = match op {
                        Op::Sync(_) => unreachable!(),
                        Op::EagerPut { bytes, .. } => EventKind::EagerCopy {
                            rank: r,
                            bytes: *bytes as u64,
                            slot: 0,
                        },
                        Op::RdvzPut { to, bytes } => EventKind::RendezvousHandshake {
                            origin: r,
                            target: *to,
                            bytes: *bytes as u64,
                        },
                        Op::RdvzSend { to, .. } => EventKind::RendezvousHandshake {
                            origin: r,
                            target: *to,
                            bytes: 0,
                        },
                        Op::RdvzRecv { from, .. } => EventKind::RendezvousHandshake {
                            origin: *from,
                            target: r,
                            bytes: 0,
                        },
                        Op::Get { .. } => EventKind::Call(CallInfo::new(CallOp::Get)),
                        Op::Send { .. } => EventKind::Call(CallInfo::new(CallOp::Send)),
                        Op::Recv { .. } => EventKind::Call(CallInfo::new(CallOp::Recv)),
                        Op::Acquire { .. } | Op::Release { .. } | Op::Crash => {
                            EventKind::Phase {
                                name: op.describe(),
                            }
                        }
                    };
                    tr.push(Lane::Rank(r), t0, t1, kind);
                }
                (_, None) => {}
            }
        }
        let t0 = self.steps.len() as f64;
        for b in &self.blocked {
            tr.push(
                Lane::Rank(b.rank),
                t0,
                t0 + 1.0,
                EventKind::Phase {
                    name: format!("stalled: {}", b.op.describe()),
                },
            );
        }
        tr
    }
}

/// The full verifier result: the shared diagnostic report plus the
/// counterexample and exploration statistics.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    pub report: Report<VerifyCode>,
    pub counterexample: Option<Counterexample>,
    /// Distinct states explored.
    pub states: usize,
    /// State budget exhausted: a clean result is inconclusive.
    pub truncated: bool,
}

impl VerifyReport {
    pub fn exit_code(&self) -> i32 {
        self.report.exit_code()
    }

    pub fn is_clean(&self) -> bool {
        self.report.is_clean()
    }

    pub fn render_human(&self) -> String {
        let mut out = self.report.render_human();
        if let Some(cx) = &self.counterexample {
            out.push_str(&cx.render_text());
        }
        if self.truncated {
            let _ = writeln!(
                out,
                "verify: note: state budget exhausted after {} state(s); a clean result is inconclusive",
                self.states
            );
        }
        out
    }

    pub fn to_json(&self) -> String {
        let mut extras: Vec<(&str, String)> = Vec::new();
        if let Some(cx) = &self.counterexample {
            extras.push(("counterexample", cx.to_json()));
        }
        extras.push((
            "explored",
            format!(
                "{{\"states\": {}, \"truncated\": {}}}",
                self.states, self.truncated
            ),
        ));
        self.report.to_json_with(&extras)
    }
}

fn cause_text(c: &Cause) -> String {
    match c {
        Cause::PeerCrashed { peer } => format!("rank {peer} crashed"),
        Cause::PeerFinished { peer } => format!("rank {peer} finished without matching"),
        Cause::PeerDiverged { peer, at } => format!("rank {peer} is at {at}"),
        Cause::WaitCycle { peer } => {
            format!("waiting on rank {peer}, which is itself blocked")
        }
        Cause::PoolExhausted { used, slots } => format!(
            "all {slots} registered slot(s) pinned until the next fence ({used} in use)"
        ),
        Cause::ResourceSaturated { used, cap, need } => format!(
            "needs {need} unit(s) of a resource with capacity {cap}, {used} reserved and never released"
        ),
    }
}

/// The per-rank classification (None = only the headline applies).
fn code_for(b: &Blocked) -> Option<VerifyCode> {
    match (&b.act.op, &b.cause) {
        (_, Cause::PeerCrashed { .. }) => Some(VerifyCode::OrphanedHandshake),
        (Op::Sync(_), _) => Some(VerifyCode::SyncMismatch),
        (Op::Recv { .. }, Cause::PeerFinished { .. }) => Some(VerifyCode::UnmatchedRecv),
        (Op::Recv { .. }, _) => None,
        (Op::RdvzRecv { .. }, Cause::PeerFinished { .. }) => Some(VerifyCode::UnmatchedRecv),
        (Op::RdvzSend { .. }, Cause::PeerFinished { .. }) => Some(VerifyCode::OrphanedSend),
        (Op::RdvzRecv { .. } | Op::RdvzSend { .. }, Cause::WaitCycle { .. }) => {
            Some(VerifyCode::RendezvousCycle)
        }
        (Op::EagerPut { .. }, _) => Some(VerifyCode::PoolExhaustion),
        (Op::Acquire { .. }, _) => Some(VerifyCode::ReservationDeadlock),
        _ => None,
    }
}

fn peer_of(c: &Cause) -> Option<usize> {
    match c {
        Cause::PeerCrashed { peer }
        | Cause::PeerFinished { peer }
        | Cause::PeerDiverged { peer, .. }
        | Cause::WaitCycle { peer } => Some(*peer),
        _ => None,
    }
}

/// Verify a hand-built skeleton (the test and differential-suite entry
/// point; [`verify`] lowers a program and calls this).
pub fn verify_skeleton(sk: &Skeleton, opts: &VerifyOptions) -> VerifyReport {
    let result = explore(sk, opts.strict_pools, opts.max_states);
    let mut report = Report::new("verify", "clean (no stalling interleaving)", &sk.program);

    // Pool-pressure warning: without strict pools the runtime falls
    // back to rendezvous when the pool is dry, so the plan progresses
    // — but only because that escape hatch exists.
    if !opts.strict_pools {
        for (r, &(hwm, line)) in result.pool_epoch_hwm.iter().enumerate() {
            if hwm > sk.pool_slots {
                let mut d = Diagnostic::bare(VerifyCode::PoolConditional);
                d.ranks = (r, r);
                d.line = line;
                d.site = "pool".into();
                d.detail = format!(
                    "progress depends on eager pool size >= {hwm}: rank {r} issues {hwm} \
                     eager put(s) in one fence epoch but only {} slot(s) are registered \
                     (runtime falls back to rendezvous)",
                    sk.pool_slots
                );
                report.push(d);
            }
        }
    }

    let counterexample = result.stall.as_ref().map(|stall| {
        // Headline: the deadlock itself.
        let mut head = Diagnostic::bare(VerifyCode::Deadlock);
        head.site = "explore".into();
        head.detail = format!(
            "a schedule of {} rank(s) reaches a global stall after {} step(s); {} rank(s) blocked",
            sk.nranks,
            stall.steps.len(),
            stall.blocked.len()
        );
        report.push(head);

        // Per-rank classification. Rendezvous wait cycles collapse
        // into one VPCE203 naming the cycle.
        let mut cycle: Vec<&Blocked> = Vec::new();
        for b in &stall.blocked {
            let code = code_for(b);
            if code == Some(VerifyCode::RendezvousCycle) {
                cycle.push(b);
                continue;
            }
            if let Some(code) = code {
                let mut d = Diagnostic::bare(code);
                d.line = b.act.line;
                d.site = b.act.site.to_string();
                d.ranks = match peer_of(&b.cause) {
                    Some(p) => (b.rank.min(p), b.rank.max(p)),
                    None => (b.rank, b.rank),
                };
                d.detail = format!(
                    "rank {} blocked at {}: {}",
                    b.rank,
                    b.act.op.describe(),
                    cause_text(&b.cause)
                );
                report.push(d);
            }
        }
        if !cycle.is_empty() {
            let mut d = Diagnostic::bare(VerifyCode::RendezvousCycle);
            d.line = cycle[0].act.line;
            d.site = cycle[0].act.site.to_string();
            let lo = cycle.iter().map(|b| b.rank).min().unwrap_or(usize::MAX);
            let hi = cycle.iter().map(|b| b.rank).max().unwrap_or(usize::MAX);
            d.ranks = (lo, hi);
            d.detail = format!(
                "rendezvous wait cycle: {}",
                cycle
                    .iter()
                    .map(|b| format!("rank {} at {}", b.rank, b.act.op.describe()))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            report.push(d);
        }

        Counterexample {
            nranks: sk.nranks,
            steps: stall.steps.clone(),
            blocked: stall
                .blocked
                .iter()
                .map(|b| BlockedRank {
                    rank: b.rank,
                    op: b.act.op.clone(),
                    line: b.act.line,
                    site: b.act.site,
                    cause: cause_text(&b.cause),
                    code: code_for(b),
                })
                .collect(),
        }
    });

    report.sort();
    VerifyReport {
        report,
        counterexample,
        states: result.states,
        truncated: result.truncated,
    }
}

/// Verify a compiled program: lower it under `policy` and the crash
/// schedule of `faults`, then explore. Never executes the program.
pub fn verify(
    prog: &SpmdProgram,
    policy: &TransportPolicy,
    faults: &FaultSpec,
    opts: &VerifyOptions,
) -> VerifyReport {
    let sk = lower(prog, policy, faults);
    verify_skeleton(&sk, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skeleton::{Op, Skeleton, SyncKind};

    fn codes(r: &VerifyReport) -> Vec<&'static str> {
        r.report.diags.iter().map(|d| d.code.as_str()).collect()
    }

    fn opts() -> VerifyOptions {
        VerifyOptions::default()
    }

    #[test]
    fn matched_skeleton_is_clean() {
        let mut sk = Skeleton::new("t", 2);
        sk.sync_all(SyncKind::Barrier, 1, &[true, true]);
        sk.push(0, Op::Send { to: 1, tag: 0 }, 1, "p2p");
        sk.push(1, Op::Recv { from: 0, tag: 0 }, 1, "p2p");
        sk.sync_all(SyncKind::Fence, 1, &[true, true]);
        let r = verify_skeleton(&sk, &opts());
        assert!(r.is_clean(), "{}", r.render_human());
        assert_eq!(r.exit_code(), 0);
        assert!(!r.truncated);
    }

    #[test]
    fn sync_kind_mismatch_is_vpce202() {
        let mut sk = Skeleton::new("t", 2);
        sk.push(0, Op::Sync(SyncKind::Barrier), 3, "sync");
        sk.push(1, Op::Sync(SyncKind::Fence), 3, "sync");
        let r = verify_skeleton(&sk, &opts());
        assert_eq!(r.exit_code(), 2);
        let cs = codes(&r);
        assert!(cs.contains(&"VPCE201") && cs.contains(&"VPCE202"), "{cs:?}");
        let cx = r.counterexample.expect("counterexample");
        assert_eq!(cx.steps.len(), 0); // stuck in the initial state
        assert_eq!(cx.blocked.len(), 2);
    }

    #[test]
    fn recv_recv_cycle_is_headline_only() {
        let mut sk = Skeleton::new("t", 2);
        sk.push(0, Op::Recv { from: 1, tag: 0 }, 1, "p2p");
        sk.push(0, Op::Send { to: 1, tag: 0 }, 1, "p2p");
        sk.push(1, Op::Recv { from: 0, tag: 0 }, 1, "p2p");
        sk.push(1, Op::Send { to: 0, tag: 0 }, 1, "p2p");
        let r = verify_skeleton(&sk, &opts());
        assert_eq!(codes(&r), vec!["VPCE201"]);
        // Both ranks appear in the stall, cross-referencing each other.
        let cx = r.counterexample.expect("counterexample");
        assert_eq!(cx.blocked.len(), 2);
        assert!(cx.blocked.iter().all(|b| b.code.is_none()));
    }

    #[test]
    fn unmatched_recv_is_vpce207() {
        let mut sk = Skeleton::new("t", 2);
        sk.push(1, Op::Recv { from: 0, tag: 7 }, 2, "p2p");
        let r = verify_skeleton(&sk, &opts());
        let cs = codes(&r);
        assert!(cs.contains(&"VPCE207"), "{cs:?}");
    }

    #[test]
    fn crossed_rendezvous_handshakes_are_vpce203() {
        // Both ranks send first: each RTS waits on a CTS that can only
        // be produced after the *other* rank's RTS completes.
        let mut sk = Skeleton::new("t", 2);
        sk.push(0, Op::RdvzSend { to: 1, hs: 0 }, 4, "rdvz");
        sk.push(0, Op::RdvzRecv { from: 1, hs: 1 }, 4, "rdvz");
        sk.push(1, Op::RdvzSend { to: 0, hs: 1 }, 4, "rdvz");
        sk.push(1, Op::RdvzRecv { from: 0, hs: 0 }, 4, "rdvz");
        let r = verify_skeleton(&sk, &opts());
        let cs = codes(&r);
        assert!(cs.contains(&"VPCE203"), "{cs:?}");
        // One cycle diagnostic, not one per participant.
        assert_eq!(cs.iter().filter(|c| **c == "VPCE203").count(), 1);
    }

    #[test]
    fn nominal_rendezvous_handshake_is_clean() {
        let mut sk = Skeleton::new("t", 2);
        sk.push(0, Op::RdvzSend { to: 1, hs: 0 }, 4, "rdvz");
        sk.push(1, Op::RdvzRecv { from: 0, hs: 0 }, 4, "rdvz");
        let r = verify_skeleton(&sk, &opts());
        assert!(r.is_clean(), "{}", r.render_human());
    }

    #[test]
    fn crash_mid_rendezvous_is_vpce205() {
        // The chaos satellite, statically: the receiver dies before
        // accepting the handshake; the sender's RTS is orphaned.
        let mut sk = Skeleton::new("t", 2);
        sk.push(0, Op::RdvzSend { to: 1, hs: 0 }, 9, "rdvz");
        sk.push(1, Op::Crash, 9, "crash");
        let r = verify_skeleton(&sk, &opts());
        let cs = codes(&r);
        assert!(cs.contains(&"VPCE205"), "{cs:?}");
        assert_eq!(r.exit_code(), 2);
    }

    #[test]
    fn crashed_rank_orphans_the_barrier_with_vpce205() {
        let mut sk = Skeleton::new("t", 2);
        sk.push(0, Op::Sync(SyncKind::Barrier), 1, "sync");
        sk.push(1, Op::Crash, 1, "crash");
        let r = verify_skeleton(&sk, &opts());
        assert!(codes(&r).contains(&"VPCE205"), "{:?}", codes(&r));
    }

    #[test]
    fn strict_pool_exhaustion_is_vpce204() {
        let mut sk = Skeleton::new("t", 2);
        sk.pool_slots = 2;
        for _ in 0..3 {
            sk.push(0, Op::EagerPut { to: 1, bytes: 64 }, 5, "scatter");
        }
        sk.sync_all(SyncKind::Fence, 5, &[true, true]);
        let strict = VerifyOptions {
            strict_pools: true,
            ..opts()
        };
        let r = verify_skeleton(&sk, &strict);
        assert!(codes(&r).contains(&"VPCE204"), "{:?}", codes(&r));
        assert_eq!(r.exit_code(), 2);
    }

    #[test]
    fn lax_pool_exhaustion_is_vpce210_warning() {
        let mut sk = Skeleton::new("t", 2);
        sk.pool_slots = 2;
        for _ in 0..3 {
            sk.push(0, Op::EagerPut { to: 1, bytes: 64 }, 5, "scatter");
        }
        sk.sync_all(SyncKind::Fence, 5, &[true, true]);
        let r = verify_skeleton(&sk, &opts());
        assert_eq!(codes(&r), vec!["VPCE210"]);
        assert_eq!(r.exit_code(), 1);
        assert!(r.counterexample.is_none());
        // The fence resets the epoch: the same pressure spread across
        // two epochs is silent.
        let mut ok = Skeleton::new("t", 2);
        ok.pool_slots = 2;
        for _ in 0..2 {
            ok.push(0, Op::EagerPut { to: 1, bytes: 64 }, 5, "scatter");
        }
        ok.sync_all(SyncKind::Fence, 5, &[true, true]);
        for _ in 0..2 {
            ok.push(0, Op::EagerPut { to: 1, bytes: 64 }, 6, "scatter");
        }
        ok.sync_all(SyncKind::Fence, 6, &[true, true]);
        assert!(verify_skeleton(&ok, &opts()).is_clean());
    }

    #[test]
    fn reservation_cycle_is_vpce206() {
        // Two ranks each hold one unit of a 2-unit resource and want a
        // second: neither can proceed, neither will release.
        let mut sk = Skeleton::new("t", 2);
        sk.resources = vec![2];
        for r in 0..2 {
            sk.push(r, Op::Acquire { res: 0, n: 1 }, 8, "sched");
            sk.push(r, Op::Acquire { res: 0, n: 1 }, 8, "sched");
            sk.push(r, Op::Release { res: 0, n: 2 }, 8, "sched");
        }
        let r = verify_skeleton(&sk, &opts());
        assert!(codes(&r).contains(&"VPCE206"), "{:?}", codes(&r));
    }

    #[test]
    fn reservation_with_enough_capacity_is_clean() {
        let mut sk = Skeleton::new("t", 2);
        sk.resources = vec![4];
        for r in 0..2 {
            sk.push(r, Op::Acquire { res: 0, n: 2 }, 8, "sched");
            sk.push(r, Op::Release { res: 0, n: 2 }, 8, "sched");
        }
        let r = verify_skeleton(&sk, &opts());
        assert!(r.is_clean(), "{}", r.render_human());
    }

    #[test]
    fn orphaned_send_half_is_vpce208() {
        // The receiver runs to completion without ever owning the
        // matching accept half: the RTS can never be answered.
        let mut sk = Skeleton::new("t", 2);
        sk.push(0, Op::RdvzSend { to: 1, hs: 3 }, 2, "rdvz");
        sk.push(1, Op::Send { to: 0, tag: 5 }, 2, "p2p");
        let r = verify_skeleton(&sk, &opts());
        assert!(codes(&r).contains(&"VPCE208"), "{:?}", codes(&r));
    }

    #[test]
    fn counterexample_json_and_timeline_are_consistent() {
        let mut sk = Skeleton::new("t", 2);
        sk.push(0, Op::Send { to: 1, tag: 0 }, 1, "p2p");
        sk.push(0, Op::Sync(SyncKind::Barrier), 1, "sync");
        sk.push(1, Op::Recv { from: 0, tag: 0 }, 1, "p2p");
        sk.push(1, Op::Sync(SyncKind::Fence), 1, "sync");
        let r = verify_skeleton(&sk, &opts());
        let cx = r.counterexample.as_ref().expect("counterexample");
        let json = r.to_json();
        assert!(json.contains("\"counterexample\""), "{json}");
        assert!(json.contains("\"explored\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // The timeline replays every step (syncs fan out to all lanes)
        // plus one stalled span per blocked rank.
        let tr = cx.timeline();
        let spans = tr.events().len();
        assert!(spans >= cx.steps.len() + cx.blocked.len(), "{spans}");
        let chrome = tr.to_chrome_json();
        assert!(chrome.contains("rank 0") && chrome.contains("rank 1"));
    }

    #[test]
    fn minimality_prefix_runs_before_the_stall() {
        // The send and the matching receive can complete; the stall
        // (rank 0's unmatched receive) appears right after. BFS must
        // find a shortest schedule, not a wandering one.
        let mut sk = Skeleton::new("t", 2);
        sk.push(0, Op::Send { to: 1, tag: 0 }, 1, "p2p");
        sk.push(0, Op::Recv { from: 1, tag: 9 }, 1, "p2p");
        sk.push(1, Op::Recv { from: 0, tag: 0 }, 1, "p2p");
        let r = verify_skeleton(&sk, &opts());
        let cx = r.counterexample.expect("counterexample");
        assert!(cx.steps.len() <= 2, "{}", cx.render_text());
    }
}
