//! The per-rank communication skeleton: the abstraction the verifier
//! explores.
//!
//! A [`Skeleton`] strips a lowered communication plan down to the
//! operations that can *block* or *unblock* a rank — global
//! synchronization, point-to-point matching, rendezvous handshake
//! halves, registered-pool slot pressure, and scheduler reservations —
//! plus the crash points of a deterministic fault schedule. Data
//! values, virtual-time costs and payload contents are deliberately
//! absent: progress is a property of orderings, not of bytes.

/// A global synchronization operation. All live ranks must arrive at
/// the same kind for it to complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncKind {
    /// `MPI_WIN_FENCE` across all windows — also drains every rank's
    /// registered eager pool.
    Fence,
    Barrier,
    Bcast,
    Reduce,
}

impl SyncKind {
    pub fn name(self) -> &'static str {
        match self {
            SyncKind::Fence => "fence",
            SyncKind::Barrier => "barrier",
            SyncKind::Bcast => "bcast",
            SyncKind::Reduce => "reduce",
        }
    }
}

/// One skeleton operation, as seen by the executing rank.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// Global synchronization (blocking until every live rank arrives
    /// at the same kind).
    Sync(SyncKind),
    /// An eager-protocol PUT: stages into one registered slot of the
    /// *origin's* pool, pinned until the origin's next fence. Blocks
    /// in strict-pool mode when the pool is exhausted; otherwise the
    /// runtime falls back to rendezvous (tracked for VPCE210).
    EagerPut { to: usize, bytes: usize },
    /// A rendezvous-protocol PUT: buffered until the closing fence,
    /// never blocks at issue time, touches no pool slot.
    RdvzPut { to: usize, bytes: usize },
    /// A one-sided GET (pull): buffered like a rendezvous put; the
    /// origin's pool is not involved (only PUT-family staging is).
    Get { from: usize, bytes: usize },
    /// The origin half of an explicit RTS/CTS handshake `hs`: blocks
    /// until the matching [`Op::RdvzRecv`] has *completed* (the CTS
    /// was sent back).
    RdvzSend { to: usize, hs: usize },
    /// The target half of handshake `hs`: blocks until the matching
    /// sender is *at* its [`Op::RdvzSend`] (the RTS has been posted).
    RdvzRecv { from: usize, hs: usize },
    /// Eager two-sided send: deposits and proceeds. Never blocks.
    Send { to: usize, tag: i32 },
    /// Blocking two-sided receive: needs a matching deposited message.
    Recv { from: usize, tag: i32 },
    /// Reserve `n` units of shared resource `res` (a scheduler slot, a
    /// gang reservation): blocks while fewer than `n` units are free.
    Acquire { res: usize, n: usize },
    /// Return `n` units of resource `res`. Never blocks.
    Release { res: usize, n: usize },
    /// The rank dies here (fault schedule). Everything after is
    /// unreachable; the rank never participates in a sync again.
    Crash,
}

impl Op {
    /// Stable one-line description (used in counterexample renderings
    /// and their JSON/golden forms).
    pub fn describe(&self) -> String {
        match self {
            Op::Sync(k) => k.name().to_string(),
            Op::EagerPut { to, bytes } => format!("eager-put -> {to} ({bytes} B)"),
            Op::RdvzPut { to, bytes } => format!("rdvz-put -> {to} ({bytes} B)"),
            Op::Get { from, bytes } => format!("get <- {from} ({bytes} B)"),
            Op::RdvzSend { to, hs } => format!("rdvz-send -> {to} (hs {hs})"),
            Op::RdvzRecv { from, hs } => format!("rdvz-recv <- {from} (hs {hs})"),
            Op::Send { to, tag } => format!("send -> {to} (tag {tag})"),
            Op::Recv { from, tag } => format!("recv <- {from} (tag {tag})"),
            Op::Acquire { res, n } => format!("acquire {n} of res {res}"),
            Op::Release { res, n } => format!("release {n} of res {res}"),
            Op::Crash => "crash".to_string(),
        }
    }
}

/// One operation with its plan-site provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Act {
    pub op: Op,
    /// Source line of the originating loop (0 = unknown/synthetic).
    pub line: usize,
    /// Lowering phase that produced the operation (`sync`, `scatter`,
    /// `collect`, `reduce`, `crash`, or a test-supplied label).
    pub site: &'static str,
}

/// A whole program's communication skeleton.
#[derive(Debug, Clone)]
pub struct Skeleton {
    pub program: String,
    pub nranks: usize,
    /// Registered eager slots per rank (the `TransportPolicy` pool).
    pub pool_slots: usize,
    /// Capacities of the shared counting resources referenced by
    /// [`Op::Acquire`]/[`Op::Release`].
    pub resources: Vec<usize>,
    /// `ranks[r]` = the acts rank `r` executes, in program order.
    pub ranks: Vec<Vec<Act>>,
}

impl Skeleton {
    pub fn new(program: impl Into<String>, nranks: usize) -> Self {
        assert!(nranks > 0);
        Skeleton {
            program: program.into(),
            nranks,
            pool_slots: 16,
            resources: Vec::new(),
            ranks: vec![Vec::new(); nranks],
        }
    }

    /// Append one act to `rank`'s stream.
    pub fn push(&mut self, rank: usize, op: Op, line: usize, site: &'static str) {
        self.ranks[rank].push(Act { op, line, site });
    }

    /// Append the same sync to every rank still alive according to
    /// `live` (crashed ranks stop receiving acts).
    pub fn sync_all(&mut self, kind: SyncKind, line: usize, live: &[bool]) {
        for (r, &alive) in live.iter().enumerate().take(self.nranks) {
            if alive {
                self.push(r, Op::Sync(kind), line, "sync");
            }
        }
    }

    /// Total act count across all ranks.
    pub fn total_acts(&self) -> usize {
        self.ranks.iter().map(Vec::len).sum()
    }
}
