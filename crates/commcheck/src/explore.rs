//! Exhaustive small-scope exploration of a [`Skeleton`]'s interleaving
//! space, with a stubborn-set-style partial-order reduction.
//!
//! ## State
//!
//! The full semantic state of a skeleton execution is a function of the
//! per-rank program counters plus the crashed set: mailbox occupancy is
//! (sends executed by the source) − (receives executed by the
//! destination), pool pressure is the origin's eager puts since its
//! last fence, and reservation levels are sums of per-rank
//! acquire/release prefixes. All of those are precomputed as prefix
//! tables ([`Tables`]), so a state is just `(pc[], crashed_mask)` and
//! deduplication is exact.
//!
//! ## Reduction
//!
//! Every transition advances at least one program counter, so the
//! state graph is a DAG — the cycle proviso of ample-set theory is
//! vacuous. A transition is *safe* when it (a) cannot be disabled by
//! any other rank's move, (b) never disables another rank's enabled
//! move, and (c) touches only its own rank's state plus a
//! monotonically-growing channel. Every skeleton op except `Acquire`
//! is safe by construction (sends and releases only enable; an enabled
//! receive can only be consumed by its own rank; an enabled handshake
//! half stays enabled because its peer is frozen until it moves; a
//! crash only affects syncs its own rank was required for — which
//! cannot fire before the crash anyway). A singleton set containing a
//! safe enabled transition is therefore a persistent (stubborn) set,
//! and the explorer expands only that one successor; it branches over
//! all enabled moves only at contended `Acquire`s. Global syncs are
//! single atomic transitions and, when enabled, are the *only* enabled
//! transition (every rank is at the sync).
//!
//! Exploration is breadth-first, so the first stuck state found yields
//! a minimal counterexample (within the reduced graph).

use std::collections::{HashMap, VecDeque};

use crate::skeleton::{Act, Op, Skeleton, SyncKind};

/// One scheduled step of a counterexample interleaving.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The rank that moved, or `None` for a global sync (all ranks).
    pub rank: Option<usize>,
    pub act: Act,
}

/// Why a rank is blocked in the stuck state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cause {
    /// The awaited peer crashed.
    PeerCrashed { peer: usize },
    /// The awaited peer finished (or can never reach a matching op).
    PeerFinished { peer: usize },
    /// Sync mismatch: the peer is at a different operation.
    PeerDiverged { peer: usize, at: String },
    /// Live peers exist but they are blocked too (a wait cycle).
    WaitCycle { peer: usize },
    /// The origin's registered pool is exhausted (strict mode).
    PoolExhausted { used: usize, slots: usize },
    /// Not enough free units of a shared resource, and no release can
    /// ever happen.
    ResourceSaturated { used: i64, cap: usize, need: usize },
}

/// One blocked rank of the stuck state.
#[derive(Debug, Clone)]
pub struct Blocked {
    pub rank: usize,
    pub act: Act,
    pub cause: Cause,
}

/// The outcome of exploring one skeleton.
#[derive(Debug, Clone)]
pub struct ExploreResult {
    /// The minimal-step stall, when one exists.
    pub stall: Option<Stall>,
    /// Distinct states visited.
    pub states: usize,
    /// True when the `max_states` budget stopped exploration early (a
    /// clean result is then inconclusive).
    pub truncated: bool,
    /// Static per-rank eager-pool high-water mark within one fence
    /// epoch, with the line of the first overflowing put (for
    /// VPCE210 in non-strict mode).
    pub pool_epoch_hwm: Vec<(usize, usize)>,
}

/// A reachable global stall: the counterexample path and the blocked
/// ranks with their classified causes.
#[derive(Debug, Clone)]
pub struct Stall {
    pub steps: Vec<TraceStep>,
    pub blocked: Vec<Blocked>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    pc: Vec<u32>,
    crashed: u32,
}

impl State {
    fn is_crashed(&self, r: usize) -> bool {
        self.crashed & (1 << r) != 0
    }
}

enum StepKind {
    Rank(usize),
    SyncAll,
}

/// Prefix tables making every semantic quantity a pure function of
/// `(pc, crashed)`.
struct Tables<'a> {
    sk: &'a Skeleton,
    strict: bool,
    /// `epoch_eager[r][i]` = eager puts since rank `r`'s last fence,
    /// counted strictly before act `i`.
    epoch_eager: Vec<Vec<u32>>,
    /// `(src, dst, tag)` -> channel index.
    chan_idx: HashMap<(usize, usize, i32), usize>,
    /// Per channel: cumulative sends by src before src-pc, cumulative
    /// receives by dst before dst-pc.
    chan_send: Vec<Vec<u32>>,
    chan_recv: Vec<Vec<u32>>,
    chan_key: Vec<(usize, usize, i32)>,
    /// Handshake id -> (sender rank, pos) / (receiver rank, pos).
    hs_send: HashMap<usize, (usize, usize)>,
    hs_recv: HashMap<usize, (usize, usize)>,
    /// `res_cum[res][r][i]` = units of `res` rank `r` holds after its
    /// first `i` acts.
    res_cum: Vec<Vec<Vec<i64>>>,
}

impl<'a> Tables<'a> {
    fn build(sk: &'a Skeleton, strict: bool) -> Self {
        let n = sk.nranks;
        let mut epoch_eager = Vec::with_capacity(n);
        let mut chan_idx: HashMap<(usize, usize, i32), usize> = HashMap::new();
        let mut chan_key = Vec::new();
        let mut hs_send = HashMap::new();
        let mut hs_recv = HashMap::new();
        // Discover channels first so the cumulative vectors can be
        // sized for every rank.
        for (r, acts) in sk.ranks.iter().enumerate() {
            for (i, a) in acts.iter().enumerate() {
                match a.op {
                    Op::Send { to, tag } => {
                        chan_idx.entry((r, to, tag)).or_insert_with(|| {
                            chan_key.push((r, to, tag));
                            chan_key.len() - 1
                        });
                    }
                    Op::Recv { from, tag } => {
                        chan_idx.entry((from, r, tag)).or_insert_with(|| {
                            chan_key.push((from, r, tag));
                            chan_key.len() - 1
                        });
                    }
                    Op::RdvzSend { hs, .. } => {
                        hs_send.insert(hs, (r, i));
                    }
                    Op::RdvzRecv { hs, .. } => {
                        hs_recv.insert(hs, (r, i));
                    }
                    _ => {}
                }
            }
        }
        let nchan = chan_key.len();
        let nres = sk.resources.len();
        let mut chan_send = vec![Vec::new(); nchan];
        let mut chan_recv = vec![Vec::new(); nchan];
        let mut res_cum: Vec<Vec<Vec<i64>>> = vec![Vec::with_capacity(n); nres];
        for (r, acts) in sk.ranks.iter().enumerate() {
            let len = acts.len();
            let mut epoch = vec![0u32; len + 1];
            let mut sends = vec![vec![0u32; len + 1]; nchan];
            let mut recvs = vec![vec![0u32; len + 1]; nchan];
            let mut res = vec![vec![0i64; len + 1]; nres];
            for i in 0..len {
                epoch[i + 1] = epoch[i];
                for c in 0..nchan {
                    sends[c][i + 1] = sends[c][i];
                    recvs[c][i + 1] = recvs[c][i];
                }
                for rq in res.iter_mut() {
                    rq[i + 1] = rq[i];
                }
                match acts[i].op {
                    Op::Sync(SyncKind::Fence) => epoch[i + 1] = 0,
                    Op::EagerPut { .. } => epoch[i + 1] += 1,
                    Op::Send { to, tag } => sends[chan_idx[&(r, to, tag)]][i + 1] += 1,
                    Op::Recv { from, tag } => recvs[chan_idx[&(from, r, tag)]][i + 1] += 1,
                    Op::Acquire { res: q, n } => res[q][i + 1] += n as i64,
                    Op::Release { res: q, n } => res[q][i + 1] -= n as i64,
                    _ => {}
                }
            }
            epoch_eager.push(epoch);
            // Keep only this rank's columns of the per-channel tables
            // (each channel has exactly one src rank and one dst rank).
            for c in 0..nchan {
                if chan_key[c].0 == r {
                    chan_send[c] = sends[c].clone();
                }
                if chan_key[c].1 == r {
                    chan_recv[c] = recvs[c].clone();
                }
            }
            for q in 0..nres {
                res_cum[q].push(res[q].clone());
            }
        }
        // Channels whose src/dst rank never appears still need valid
        // (all-zero) tables.
        for c in 0..nchan {
            if chan_send[c].is_empty() {
                chan_send[c] = vec![0; sk.ranks[chan_key[c].0].len() + 1];
            }
            if chan_recv[c].is_empty() {
                chan_recv[c] = vec![0; sk.ranks[chan_key[c].1].len() + 1];
            }
        }
        Tables {
            sk,
            strict,
            epoch_eager,
            chan_idx,
            chan_send,
            chan_recv,
            chan_key,
            hs_send,
            hs_recv,
            res_cum,
        }
    }

    fn len(&self, r: usize) -> usize {
        self.sk.ranks[r].len()
    }

    fn act(&self, r: usize, i: usize) -> &Act {
        &self.sk.ranks[r][i]
    }

    /// Is rank `r` still live (not crashed, not finished)?
    fn live(&self, st: &State, r: usize) -> bool {
        !st.is_crashed(r) && (st.pc[r] as usize) < self.len(r)
    }

    /// Messages currently deposited on channel `c`.
    fn mail(&self, st: &State, c: usize) -> u32 {
        let (src, dst, _) = self.chan_key[c];
        self.chan_send[c][st.pc[src] as usize] - self.chan_recv[c][st.pc[dst] as usize]
    }

    /// Units of resource `q` reserved across all ranks.
    fn res_used(&self, st: &State, q: usize) -> i64 {
        (0..self.sk.nranks)
            .map(|r| self.res_cum[q][r][st.pc[r] as usize])
            .sum()
    }

    /// Is the (non-sync) act at rank `r`'s pc enabled?
    fn enabled(&self, st: &State, r: usize) -> bool {
        let i = st.pc[r] as usize;
        match &self.act(r, i).op {
            Op::Sync(_) => unreachable!("syncs are handled globally"),
            Op::EagerPut { .. } => {
                !self.strict || (self.epoch_eager[r][i] as usize) < self.sk.pool_slots
            }
            Op::RdvzPut { .. } | Op::Get { .. } | Op::Send { .. } | Op::Release { .. }
            | Op::Crash => true,
            Op::Recv { from, tag } => {
                let c = self.chan_idx[&(*from, r, *tag)];
                self.mail(st, c) > 0
            }
            Op::RdvzRecv { hs, .. } => match self.hs_send.get(hs) {
                Some(&(s, pos)) => !st.is_crashed(s) && st.pc[s] as usize == pos,
                None => false,
            },
            Op::RdvzSend { hs, .. } => match self.hs_recv.get(hs) {
                Some(&(t, pos)) => st.pc[t] as usize > pos,
                None => false,
            },
            Op::Acquire { res, n } => {
                self.res_used(st, *res) + *n as i64 <= self.sk.resources[*res] as i64
            }
        }
    }

    /// Is the enabled act at rank `r`'s pc safe to use as a singleton
    /// persistent set? Everything except a contended reservation.
    fn safe(&self, r: usize, i: usize) -> bool {
        !matches!(self.act(r, i).op, Op::Acquire { .. })
    }

    /// The global sync enabled in `st`, if any: every rank live and at
    /// the same sync kind.
    fn enabled_sync(&self, st: &State) -> Option<SyncKind> {
        let mut kind = None;
        for r in 0..self.sk.nranks {
            if !self.live(st, r) {
                return None;
            }
            match self.act(r, st.pc[r] as usize).op {
                Op::Sync(k) => match kind {
                    None => kind = Some(k),
                    Some(k0) if k0 == k => {}
                    Some(_) => return None,
                },
                _ => return None,
            }
        }
        kind
    }

    fn apply(&self, st: &State, step: &StepKind) -> State {
        let mut next = st.clone();
        match step {
            StepKind::SyncAll => {
                for r in 0..self.sk.nranks {
                    next.pc[r] += 1;
                }
            }
            StepKind::Rank(r) => {
                let i = next.pc[*r] as usize;
                if matches!(self.act(*r, i).op, Op::Crash) {
                    next.crashed |= 1 << r;
                }
                next.pc[*r] += 1;
            }
        }
        next
    }

    /// Does rank `from`'s suffix (from its current pc, unless crashed)
    /// still contain a matching `Send(to, tag)`?
    fn sender_can_still_match(&self, st: &State, from: usize, to: usize, tag: i32) -> bool {
        if st.is_crashed(from) {
            return false;
        }
        self.sk.ranks[from][st.pc[from] as usize..]
            .iter()
            .any(|a| matches!(a.op, Op::Send { to: t, tag: g } if t == to && g == tag))
    }

    /// Classify why the live rank `r` cannot move in the stuck state.
    fn classify(&self, st: &State, r: usize) -> Blocked {
        let i = st.pc[r] as usize;
        let act = self.act(r, i).clone();
        let cause = match &act.op {
            Op::Sync(k) => {
                // Some peer is crashed, finished, or at a different
                // operation; report the first one responsible.
                let mut cause = None;
                for p in 0..self.sk.nranks {
                    if p == r {
                        continue;
                    }
                    if st.is_crashed(p) {
                        cause = Some(Cause::PeerCrashed { peer: p });
                        break;
                    }
                    if !self.live(st, p) {
                        cause = Some(Cause::PeerFinished { peer: p });
                        break;
                    }
                    match &self.act(p, st.pc[p] as usize).op {
                        Op::Sync(k2) if k2 == k => {}
                        other => {
                            cause = Some(Cause::PeerDiverged {
                                peer: p,
                                at: other.describe(),
                            });
                            break;
                        }
                    }
                }
                cause.expect("a blocked sync has a responsible peer")
            }
            Op::Recv { from, tag } => {
                if st.is_crashed(*from) {
                    Cause::PeerCrashed { peer: *from }
                } else if !self.sender_can_still_match(st, *from, r, *tag) {
                    Cause::PeerFinished { peer: *from }
                } else {
                    Cause::WaitCycle { peer: *from }
                }
            }
            Op::RdvzRecv { from, hs } => match self.hs_send.get(hs) {
                // No RTS half exists at all: the sender crashed before
                // emitting it, or the plan never contained it.
                None if st.is_crashed(*from) => Cause::PeerCrashed { peer: *from },
                None => Cause::PeerFinished { peer: *from },
                Some(&(s, pos)) => {
                    if st.is_crashed(s) {
                        Cause::PeerCrashed { peer: s }
                    } else if (st.pc[s] as usize) > pos || !self.live(st, s) {
                        Cause::PeerFinished { peer: s }
                    } else {
                        Cause::WaitCycle { peer: s }
                    }
                }
            },
            Op::RdvzSend { to, hs } => match self.hs_recv.get(hs) {
                // No CTS half exists: the receiver crashed before its
                // accept, or the plan never matched this send.
                None if st.is_crashed(*to) => Cause::PeerCrashed { peer: *to },
                None => Cause::PeerFinished { peer: *to },
                Some(&(t, pos)) => {
                    if st.is_crashed(t) {
                        Cause::PeerCrashed { peer: t }
                    } else if !self.live(st, t) && (st.pc[t] as usize) <= pos {
                        Cause::PeerFinished { peer: t }
                    } else if self.live(st, t) {
                        Cause::WaitCycle { peer: t }
                    } else {
                        Cause::PeerFinished { peer: t }
                    }
                }
            },
            Op::EagerPut { .. } => Cause::PoolExhausted {
                used: self.epoch_eager[r][i] as usize,
                slots: self.sk.pool_slots,
            },
            Op::Acquire { res, n } => {
                // Distinguish "holders are blocked too" from "capacity
                // can never suffice" via the peers' states.
                Cause::ResourceSaturated {
                    used: self.res_used(st, *res),
                    cap: self.sk.resources[*res],
                    need: *n,
                }
            }
            // Send/Release/Get/RdvzPut/Crash are always enabled, so a
            // stuck rank can never be classified at one.
            op => unreachable!("always-enabled op {op:?} cannot block"),
        };
        Blocked { rank: r, act, cause }
    }
}

/// Static per-rank pool pressure: the high-water mark of eager puts
/// inside one fence epoch, and the line of the first put past `slots`.
fn pool_epoch_hwm(sk: &Skeleton) -> Vec<(usize, usize)> {
    sk.ranks
        .iter()
        .map(|acts| {
            let (mut cur, mut hwm, mut line) = (0usize, 0usize, 0usize);
            for a in acts {
                match a.op {
                    Op::Sync(SyncKind::Fence) => cur = 0,
                    Op::EagerPut { .. } => {
                        cur += 1;
                        if cur > hwm {
                            hwm = cur;
                            if cur == sk.pool_slots + 1 {
                                line = a.line;
                            }
                        }
                    }
                    _ => {}
                }
            }
            (hwm, line)
        })
        .collect()
}

/// Explore `sk` exhaustively (up to `max_states`) and return the first
/// (minimal) stall, if any.
pub fn explore(sk: &Skeleton, strict_pools: bool, max_states: usize) -> ExploreResult {
    assert!(sk.nranks <= 32, "crash mask is a u32");
    let t = Tables::build(sk, strict_pools);
    let init = State {
        pc: vec![0; sk.nranks],
        crashed: 0,
    };
    let mut ids: HashMap<State, usize> = HashMap::new();
    let mut states: Vec<State> = Vec::new();
    let mut parent: Vec<Option<(usize, TraceStep)>> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    ids.insert(init.clone(), 0);
    states.push(init);
    parent.push(None);
    queue.push_back(0);
    let mut truncated = false;
    let mut stall = None;

    'bfs: while let Some(id) = queue.pop_front() {
        let st = states[id].clone();
        // Terminal: every rank finished or crashed.
        if (0..sk.nranks).all(|r| !t.live(&st, r)) {
            continue;
        }
        let mut succs: Vec<StepKind> = Vec::new();
        if t.enabled_sync(&st).is_some() {
            succs.push(StepKind::SyncAll);
        } else {
            let mut all: Vec<usize> = Vec::new();
            let mut first_safe: Option<usize> = None;
            for r in 0..sk.nranks {
                if !t.live(&st, r) {
                    continue;
                }
                let i = st.pc[r] as usize;
                if matches!(t.act(r, i).op, Op::Sync(_)) {
                    continue; // a lone sync arrival is not a move
                }
                if t.enabled(&st, r) {
                    if first_safe.is_none() && t.safe(r, i) {
                        first_safe = Some(r);
                    }
                    all.push(r);
                }
            }
            match first_safe {
                Some(r) => succs.push(StepKind::Rank(r)),
                None => {
                    for r in all {
                        succs.push(StepKind::Rank(r));
                    }
                }
            }
        }
        if succs.is_empty() {
            // Global stall: some rank is live, nothing can move.
            let blocked: Vec<Blocked> = (0..sk.nranks)
                .filter(|&r| t.live(&st, r))
                .map(|r| t.classify(&st, r))
                .collect();
            let mut steps = Vec::new();
            let mut cur = id;
            while let Some((p, step)) = &parent[cur] {
                steps.push(step.clone());
                cur = *p;
            }
            steps.reverse();
            stall = Some(Stall { steps, blocked });
            break 'bfs;
        }
        for step in succs {
            let next = t.apply(&st, &step);
            if ids.contains_key(&next) {
                continue;
            }
            if states.len() >= max_states {
                truncated = true;
                break 'bfs;
            }
            let nid = states.len();
            ids.insert(next.clone(), nid);
            states.push(next);
            let tstep = match &step {
                StepKind::SyncAll => TraceStep {
                    rank: None,
                    act: {
                        // All ranks execute the same kind; rank 0's
                        // act carries representative provenance.
                        let r0 = (0..sk.nranks)
                            .find(|&r| t.live(&st, r))
                            .expect("sync needs live ranks");
                        t.act(r0, st.pc[r0] as usize).clone()
                    },
                },
                StepKind::Rank(r) => TraceStep {
                    rank: Some(*r),
                    act: t.act(*r, st.pc[*r] as usize).clone(),
                },
            };
            parent.push(Some((id, tstep)));
            queue.push_back(nid);
        }
    }

    ExploreResult {
        stall,
        states: states.len(),
        truncated,
        pool_epoch_hwm: pool_epoch_hwm(sk),
    }
}
