//! The job model and the jobfile format.
//!
//! A jobfile is line-oriented: `#` starts a comment, blank lines are
//! skipped, and each remaining line is either a header directive
//! (`nodes=16`, `policy=backfill`, `seed=1`), a `tenant` declaration,
//! or a whitespace-separated `key=value` record introduced by `job` or
//! `storm`:
//!
//! ```text
//! # a 16-node batch
//! nodes=16
//! policy=backfill
//! seed=1
//! tenant name=acme share=2 quota=8
//!
//! job name=mm0 tenant=acme workload=mm ranks=2 param:N=16 arrive=0.0 prio=1
//! job name=wide src=examples/fortran/mm.f ranks=8 grain=coarse
//! job name=risky workload=mm ranks=2 faults=crashy,seed=7 retries=3
//! storm count=8 prefix=s workload=mm ranks=2 param:N=16 mean-gap=2e-4
//! ```
//!
//! `storm` is the seeded synthetic arrival generator: `count` jobs
//! cloned from the record's template, with exponentially distributed
//! inter-arrival gaps (mean `mean-gap` virtual seconds) drawn from the
//! batch seed — the deterministic traffic-storm scenario the property
//! suite and `bench::sched` sweep.
//!
//! `tenant` declares a fair-share principal: `share` weights the
//! scheduler's usage-normalised queue order, `quota` caps the node
//! cells the tenant may hold concurrently. Jobs name their tenant with
//! `tenant=`; undeclared tenants are implicit (share 1, no quota).
//!
//! Parse failures are typed [`JobfileError`]s carrying the file, line,
//! offending field and a stable `vpce-diag` code (VPCE31x), and every
//! record has a canonical serialized form ([`JobSpec::to_record`],
//! [`StormSpec::to_record`]) that re-parses to an equal value — the
//! `vpce-serve` journal writes records in exactly this form.

use std::fmt;

use lmad::Granularity;
use vpce_diag::{DiagCode, Diagnostic, Severity};
use vpce_faults::FaultSpec;
use vpce_testkit::rng::SplitMix64;

/// Tenant name of jobs that did not claim one.
pub const DEFAULT_TENANT: &str = "-";

/// Stable diagnostic codes for jobfile parse failures (the VPCE31x
/// block of the service-layer registry; see `vpce-diag`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobfileCode {
    /// VPCE310: the line is not a record, declaration or header.
    BadLine,
    /// VPCE311: unknown record key or header directive.
    UnknownKey,
    /// VPCE312: a value failed to parse or is out of range.
    BadValue,
    /// VPCE313: a required field is missing.
    MissingField,
    /// VPCE314: duplicate job or tenant name.
    DuplicateName,
    /// VPCE315: mutually exclusive fields given together.
    ConflictingFields,
}

impl DiagCode for JobfileCode {
    fn as_str(self) -> &'static str {
        match self {
            JobfileCode::BadLine => "VPCE310",
            JobfileCode::UnknownKey => "VPCE311",
            JobfileCode::BadValue => "VPCE312",
            JobfileCode::MissingField => "VPCE313",
            JobfileCode::DuplicateName => "VPCE314",
            JobfileCode::ConflictingFields => "VPCE315",
        }
    }

    fn severity(self) -> Severity {
        Severity::Error
    }
}

/// A typed jobfile parse failure: which file and line, which field,
/// and a stable code — instead of a bare string.
#[derive(Debug, Clone, PartialEq)]
pub struct JobfileError {
    pub code: JobfileCode,
    /// Jobfile name when the caller supplied one
    /// ([`BatchSpec::parse_named`]); rendered as `jobfile` otherwise.
    pub file: Option<String>,
    /// 1-based line; 0 when the failure is not tied to one line
    /// (post-expansion name collisions).
    pub line: usize,
    /// The offending record field, when one is identifiable.
    pub field: Option<String>,
    pub detail: String,
}

impl JobfileError {
    fn new(code: JobfileCode, detail: impl Into<String>) -> Self {
        JobfileError { code, file: None, line: 0, field: None, detail: detail.into() }
    }

    fn field(mut self, f: impl Into<String>) -> Self {
        self.field = Some(f.into());
        self
    }

    fn at(mut self, line: usize, file: Option<&str>) -> Self {
        self.line = line;
        self.file = file.map(str::to_string);
        self
    }

    /// The finding as a `vpce-diag` record (for callers that aggregate
    /// jobfile problems into a diagnostic report).
    pub fn to_diagnostic(&self) -> Diagnostic<JobfileCode> {
        let mut d = Diagnostic::bare(self.code);
        d.line = self.line;
        d.site = "jobfile".into();
        d.detail = match &self.field {
            Some(f) => format!("{} (field `{f}`)", self.detail),
            None => self.detail.clone(),
        };
        d
    }
}

impl fmt::Display for JobfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.file.as_deref().unwrap_or("jobfile"))?;
        if self.line > 0 {
            write!(f, " line {}", self.line)?;
        }
        write!(f, ": error[{}] {}", self.code.as_str(), self.detail)?;
        if let Some(field) = &self.field {
            write!(f, " (field `{field}`)")?;
        }
        Ok(())
    }
}

impl std::error::Error for JobfileError {}

/// A fair-share principal: jobs carrying `tenant=<name>` are accounted
/// and throttled together.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    pub name: String,
    /// Fair-share weight (> 0): queue order normalises accumulated
    /// node-seconds by this.
    pub share: f64,
    /// Maximum node cells the tenant may hold concurrently; `None` is
    /// unbounded.
    pub quota: Option<usize>,
}

impl TenantSpec {
    /// The implicit tenant jobs get when they name an undeclared one.
    pub fn implicit(name: impl Into<String>) -> Self {
        TenantSpec { name: name.into(), share: 1.0, quota: None }
    }

    /// Canonical `tenant` declaration line; re-parses to an equal
    /// value.
    pub fn to_record(&self) -> String {
        let mut s = format!("tenant name={} share={}", self.name, self.share);
        if let Some(q) = self.quota {
            s.push_str(&format!(" quota={q}"));
        }
        s
    }
}

/// Where a job's program text comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSource {
    /// F77-mini source held inline (API submissions, property tests,
    /// `inline=` records with percent-encoded text).
    Inline(String),
    /// A path resolved by the caller-supplied source loader
    /// (`src=` in a jobfile; the CLI resolves relative to the
    /// jobfile's directory).
    Path(String),
    /// One of the built-in paper workloads (`workload=mm|swim|cfft|
    /// irregular`), resolved without any I/O.
    Workload(String),
}

/// One batch job: what to run, how wide, and how urgently.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique name within the batch.
    pub name: String,
    /// Fair-share principal ([`DEFAULT_TENANT`] when unclaimed).
    pub tenant: String,
    pub source: JobSource,
    /// Requested ranks (the partition may reserve a few spare router
    /// positions on top — see `cluster_sim::partition_shape`).
    pub ranks: usize,
    /// Higher runs first; ties broken by fair-share ratio, arrival
    /// time, then submission order.
    pub priority: i64,
    /// Virtual submission time, seconds.
    pub arrival: f64,
    /// Soft deadline hint (virtual seconds of turnaround); the report
    /// flags jobs that missed it, the scheduler does not kill them.
    pub deadline: Option<f64>,
    /// `PARAMETER` overrides, `(NAME, value)`.
    pub params: Vec<(String, i64)>,
    /// Explicit communication granularity; `None` asks the static
    /// advisor.
    pub granularity: Option<Granularity>,
    /// Per-job fault schedule (each requeue re-seeds it
    /// deterministically).
    pub faults: FaultSpec,
    /// How many times a fault-failed job may be requeued.
    pub retries: u32,
    /// In-run rollback recovery (`recover=`): survivable crashes are
    /// absorbed by buddy checkpoints + spare failover instead of
    /// surfacing as a requeue; `None` keeps the requeue path.
    pub recover: Option<vpce_recover::RecoverSpec>,
    /// Built-in machine description the job's partition lowers through
    /// (`machine=`; see `vpce_machine::MachineSpec::BUILTINS`). Only
    /// built-in names are accepted so a journaled record stays
    /// self-contained; `None` is the hard-coded paper machine (or the
    /// batch-level default).
    pub machine: Option<String>,
}

impl JobSpec {
    /// A job with neutral defaults: priority 0, arrival 0, no
    /// deadline, advisor granularity, faults off, 2 retries, default
    /// tenant.
    pub fn new(name: impl Into<String>, source: JobSource, ranks: usize) -> Self {
        JobSpec {
            name: name.into(),
            tenant: DEFAULT_TENANT.to_string(),
            source,
            ranks,
            priority: 0,
            arrival: 0.0,
            deadline: None,
            params: Vec::new(),
            granularity: None,
            faults: FaultSpec::off(),
            retries: 2,
            recover: None,
            machine: None,
        }
    }

    /// Canonical `job` record line: parsing it back yields an equal
    /// spec (`f64` fields print in shortest round-trip form). The
    /// `vpce-serve` journal stores submissions in exactly this form.
    pub fn to_record(&self) -> String {
        let mut s = format!("job name={}", self.name);
        s.push_str(&self.record_fields(true));
        s
    }

    /// The non-name fields of the record, canonically ordered.
    fn record_fields(&self, with_arrival: bool) -> String {
        let mut s = String::new();
        if self.tenant != DEFAULT_TENANT {
            s.push_str(&format!(" tenant={}", self.tenant));
        }
        match &self.source {
            JobSource::Workload(w) => s.push_str(&format!(" workload={w}")),
            JobSource::Path(p) => s.push_str(&format!(" src={p}")),
            JobSource::Inline(text) => s.push_str(&format!(" inline={}", encode_inline(text))),
        }
        s.push_str(&format!(" ranks={}", self.ranks));
        if with_arrival && self.arrival != 0.0 {
            s.push_str(&format!(" arrive={}", self.arrival));
        }
        if self.priority != 0 {
            s.push_str(&format!(" prio={}", self.priority));
        }
        if let Some(d) = self.deadline {
            s.push_str(&format!(" deadline={d}"));
        }
        if let Some(g) = self.granularity {
            let name = match g {
                Granularity::Fine => "fine",
                Granularity::Middle => "middle",
                Granularity::Coarse => "coarse",
            };
            s.push_str(&format!(" grain={name}"));
        }
        let faults = self.faults.to_record();
        if faults != "off" {
            s.push_str(&format!(" faults={faults}"));
        }
        if self.retries != 2 {
            s.push_str(&format!(" retries={}", self.retries));
        }
        if let Some(r) = &self.recover {
            s.push_str(&format!(" recover={}", r.to_record()));
        }
        if let Some(m) = &self.machine {
            s.push_str(&format!(" machine={m}"));
        }
        for (k, v) in &self.params {
            s.push_str(&format!(" param:{k}={v}"));
        }
        s
    }
}

/// Percent-encode inline program text into a single jobfile token
/// (whitespace and `%` escaped as `%XX`).
pub fn encode_inline(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for b in text.bytes() {
        match b {
            b'%' | b' ' | b'\t' | b'\n' | b'\r' => out.push_str(&format!("%{b:02X}")),
            _ => out.push(b as char),
        }
    }
    out
}

/// Inverse of [`encode_inline`].
pub fn decode_inline(token: &str) -> Result<String, String> {
    let bytes = token.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .and_then(|h| std::str::from_utf8(h).ok())
                .and_then(|h| u8::from_str_radix(h, 16).ok())
                .ok_or_else(|| format!("bad %-escape at byte {i}"))?;
            out.push(hex);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| "inline text is not UTF-8".to_string())
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Strict priority-ordered first-come-first-served: nothing starts
    /// while the head of the queue cannot be placed.
    Fcfs,
    /// FCFS with conservative backfill: the blocked head gets a
    /// reservation; later jobs may start only if they provably finish
    /// before it or avoid its rectangle.
    Backfill,
}

impl Policy {
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "fcfs" => Ok(Policy::Fcfs),
            "backfill" => Ok(Policy::Backfill),
            other => Err(format!("unknown policy `{other}` (fcfs|backfill)")),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Policy::Fcfs => "fcfs",
            Policy::Backfill => "backfill",
        }
    }
}

/// A `storm` directive: `count` jobs cloned from `template` with
/// seeded exponential inter-arrival gaps.
#[derive(Debug, Clone, PartialEq)]
pub struct StormSpec {
    /// Name prefix; generated jobs are `<prefix>0`, `<prefix>1`, …
    pub prefix: String,
    pub count: usize,
    /// Mean inter-arrival gap, virtual seconds.
    pub mean_gap_s: f64,
    /// Arrival time of the storm's clock origin.
    pub start_s: f64,
    /// Everything except name and arrival is taken from here.
    pub template: JobSpec,
}

impl StormSpec {
    /// Expand the storm deterministically from `seed`. Gaps are
    /// inverse-CDF exponential draws from a SplitMix64 stream salted
    /// with the prefix, so two storms in one batch decorrelate.
    pub fn expand(&self, seed: u64) -> Vec<JobSpec> {
        let mut h = seed;
        for b in self.prefix.bytes() {
            h = SplitMix64::new(h ^ u64::from(b).wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
        }
        let mut rng = SplitMix64::new(h);
        let mut t = self.start_s;
        (0..self.count)
            .map(|i| {
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                t += -self.mean_gap_s * (1.0 - u).ln();
                let mut job = self.template.clone();
                job.name = format!("{}{}", self.prefix, i);
                job.arrival = t;
                job
            })
            .collect()
    }

    /// Canonical `storm` record line; re-parses to an equal value.
    pub fn to_record(&self) -> String {
        let mut s = format!(
            "storm prefix={} count={} mean-gap={}",
            self.prefix, self.count, self.mean_gap_s
        );
        if self.start_s != 0.0 {
            s.push_str(&format!(" start={}", self.start_s));
        }
        s.push_str(&self.template.record_fields(false));
        s
    }
}

/// A parsed jobfile: header directives, tenants, and the submitted
/// jobs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchSpec {
    /// Machine size (header `nodes=`); the CLI's `--nodes` is the
    /// fallback when absent.
    pub nodes: Option<usize>,
    pub policy: Option<Policy>,
    /// Batch seed (header `seed=`); `--sched-seed` overrides it.
    pub seed: Option<u64>,
    /// Probation length (header `probation=`, in clean scheduler
    /// intervals): crashed nodes reintegrate after this many
    /// crash-free attempt completions instead of draining for good.
    /// `None` keeps the permanent-drain default.
    pub probation: Option<u32>,
    /// Default machine description (header `machine=`, a built-in
    /// name): jobs without their own `machine=` field lower through
    /// it. Wins over the CLI's `--machine`.
    pub machine: Option<String>,
    /// Declared fair-share tenants.
    pub tenants: Vec<TenantSpec>,
    pub jobs: Vec<JobSpec>,
    pub storms: Vec<StormSpec>,
}

impl BatchSpec {
    /// Parse a jobfile. Errors are typed [`JobfileError`]s naming the
    /// offending line and field.
    pub fn parse(text: &str) -> Result<Self, JobfileError> {
        Self::parse_inner(text, None)
    }

    /// [`BatchSpec::parse`] with a file name carried into errors.
    pub fn parse_named(text: &str, file: &str) -> Result<Self, JobfileError> {
        Self::parse_inner(text, Some(file))
    }

    fn parse_inner(text: &str, file: Option<&str>) -> Result<Self, JobfileError> {
        let mut spec = BatchSpec::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let at = |e: JobfileError| e.at(lineno + 1, file);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tokens = line.split_whitespace();
            let head = tokens.next().expect("non-empty line");
            match head {
                "job" => {
                    let job = parse_job(tokens, /*storm*/ false).map_err(at)?;
                    if spec.jobs.iter().any(|j| j.name == job.name) {
                        return Err(at(JobfileError::new(
                            JobfileCode::DuplicateName,
                            format!("duplicate job name `{}`", job.name),
                        )
                        .field("name")));
                    }
                    spec.jobs.push(job);
                }
                "storm" => spec.storms.push(parse_storm(tokens).map_err(at)?),
                "tenant" => {
                    let t = parse_tenant(tokens).map_err(at)?;
                    if spec.tenants.iter().any(|x| x.name == t.name) {
                        return Err(at(JobfileError::new(
                            JobfileCode::DuplicateName,
                            format!("duplicate tenant `{}`", t.name),
                        )
                        .field("name")));
                    }
                    spec.tenants.push(t);
                }
                _ => {
                    let (k, v) = head.split_once('=').ok_or_else(|| {
                        at(JobfileError::new(
                            JobfileCode::BadLine,
                            format!("expected `job`, `storm`, `tenant` or `key=value`, got `{head}`"),
                        ))
                    })?;
                    if tokens.next().is_some() {
                        return Err(at(JobfileError::new(
                            JobfileCode::BadLine,
                            "header directives take a single key=value",
                        )));
                    }
                    let bad = |what: &str| {
                        at(JobfileError::new(
                            JobfileCode::BadValue,
                            format!("bad {what} `{v}`"),
                        )
                        .field(what))
                    };
                    match k {
                        "nodes" => spec.nodes = Some(v.parse().map_err(|_| bad("nodes"))?),
                        "policy" => {
                            spec.policy = Some(Policy::parse(v).map_err(|e| {
                                at(JobfileError::new(JobfileCode::BadValue, e).field("policy"))
                            })?)
                        }
                        "seed" => spec.seed = Some(v.parse().map_err(|_| bad("seed"))?),
                        "machine" => {
                            spec.machine = Some(checked_machine(v).map_err(|e| {
                                at(JobfileError::new(JobfileCode::BadValue, e).field("machine"))
                            })?)
                        }
                        "probation" => {
                            let p: u32 = v.parse().map_err(|_| bad("probation"))?;
                            if p == 0 {
                                return Err(bad("probation"));
                            }
                            spec.probation = Some(p);
                        }
                        other => {
                            return Err(at(JobfileError::new(
                                JobfileCode::UnknownKey,
                                format!("unknown header directive `{other}`"),
                            )
                            .field(other)))
                        }
                    }
                }
            }
        }
        Ok(spec)
    }

    /// The declared tenant of `name`, or the implicit one.
    pub fn tenant(&self, name: &str) -> TenantSpec {
        self.tenants
            .iter()
            .find(|t| t.name == name)
            .cloned()
            .unwrap_or_else(|| TenantSpec::implicit(name))
    }

    /// Explicit jobs plus every storm expansion under `seed`, checked
    /// for name collisions (a storm prefix may not shadow an explicit
    /// job or another storm).
    pub fn materialize(&self, seed: u64) -> Result<Vec<JobSpec>, JobfileError> {
        let mut jobs = self.jobs.clone();
        for storm in &self.storms {
            jobs.extend(storm.expand(seed));
        }
        let mut names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
        names.sort_unstable();
        if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(JobfileError::new(
                JobfileCode::DuplicateName,
                format!("duplicate job name `{}` after storm expansion", w[0]),
            )
            .field("name"));
        }
        Ok(jobs)
    }
}

/// Shared field grammar for `job` and `storm` records. For storms the
/// `name=` key is the prefix and `arrive=` the storm origin.
struct RecordFields {
    job: JobSpec,
    named: bool,
    sourced: bool,
    count: Option<usize>,
    mean_gap_s: f64,
}

fn err(code: JobfileCode, field: &str, detail: String) -> JobfileError {
    JobfileError::new(code, detail).field(field)
}

fn parse_record<'a>(
    tokens: impl Iterator<Item = &'a str>,
    storm: bool,
) -> Result<RecordFields, JobfileError> {
    let mut f = RecordFields {
        job: JobSpec::new("", JobSource::Inline(String::new()), 0),
        named: false,
        sourced: false,
        count: None,
        mean_gap_s: 1e-4,
    };
    for tok in tokens {
        let (k, v) = tok.split_once('=').ok_or_else(|| {
            JobfileError::new(JobfileCode::BadLine, format!("expected key=value, got `{tok}`"))
        })?;
        let set_source = |f: &mut RecordFields, k: &str, src: JobSource| {
            if f.sourced {
                return Err(err(
                    JobfileCode::ConflictingFields,
                    k,
                    "a job takes exactly one of src=/workload=/inline=".into(),
                ));
            }
            f.sourced = true;
            f.job.source = src;
            Ok(())
        };
        let bad = |detail: String| err(JobfileCode::BadValue, k, detail);
        match k {
            "name" | "prefix" => {
                f.job.name = v.to_string();
                f.named = true;
            }
            "tenant" => f.job.tenant = v.to_string(),
            "src" => set_source(&mut f, k, JobSource::Path(v.to_string()))?,
            "workload" => set_source(&mut f, k, JobSource::Workload(v.to_string()))?,
            "inline" => {
                let text = decode_inline(v).map_err(|e| bad(format!("bad inline text: {e}")))?;
                set_source(&mut f, k, JobSource::Inline(text))?;
            }
            "ranks" => {
                f.job.ranks = v.parse().map_err(|_| bad(format!("bad ranks `{v}`")))?
            }
            "arrive" | "start" => {
                f.job.arrival = parse_time(v).map_err(&bad)?;
            }
            "prio" => {
                f.job.priority = v.parse().map_err(|_| bad(format!("bad prio `{v}`")))?
            }
            "deadline" => f.job.deadline = Some(parse_time(v).map_err(&bad)?),
            "grain" => {
                f.job.granularity = Some(match v {
                    "fine" => Granularity::Fine,
                    "middle" => Granularity::Middle,
                    "coarse" => Granularity::Coarse,
                    other => return Err(bad(format!("bad grain `{other}`"))),
                })
            }
            "faults" => f.job.faults = FaultSpec::parse(v).map_err(|e| bad(e.to_string()))?,
            "retries" => {
                f.job.retries = v.parse().map_err(|_| bad(format!("bad retries `{v}`")))?
            }
            "recover" => {
                f.job.recover =
                    Some(vpce_recover::RecoverSpec::parse(v).map_err(|e| bad(e.to_string()))?)
            }
            "machine" => f.job.machine = Some(checked_machine(v).map_err(&bad)?),
            "count" if storm => {
                f.count = Some(v.parse().map_err(|_| bad(format!("bad count `{v}`")))?)
            }
            "mean-gap" if storm => f.mean_gap_s = parse_time(v).map_err(&bad)?,
            _ if k.starts_with("param:") => {
                let name = k["param:".len()..].to_ascii_uppercase();
                let val: i64 = v.parse().map_err(|_| bad(format!("bad value in `{tok}`")))?;
                f.job.params.push((name, val));
            }
            other => {
                return Err(err(
                    JobfileCode::UnknownKey,
                    other,
                    format!("unknown key `{other}`"),
                ))
            }
        }
    }
    if !f.named {
        let (field, what) = if storm { ("prefix", "storm needs prefix=") } else { ("name", "job needs name=") };
        return Err(err(JobfileCode::MissingField, field, what.into()));
    }
    if !f.sourced {
        return Err(err(
            JobfileCode::MissingField,
            "src",
            "job needs src=, workload= or inline=".into(),
        ));
    }
    if f.job.ranks == 0 {
        return Err(err(
            JobfileCode::MissingField,
            "ranks",
            "job needs ranks= (at least 1)".into(),
        ));
    }
    Ok(f)
}

fn parse_job<'a>(
    tokens: impl Iterator<Item = &'a str>,
    storm: bool,
) -> Result<JobSpec, JobfileError> {
    Ok(parse_record(tokens, storm)?.job)
}

fn parse_storm<'a>(tokens: impl Iterator<Item = &'a str>) -> Result<StormSpec, JobfileError> {
    let f = parse_record(tokens, true)?;
    let count = f
        .count
        .ok_or_else(|| err(JobfileCode::MissingField, "count", "storm needs count=".into()))?;
    if count == 0 {
        return Err(err(
            JobfileCode::BadValue,
            "count",
            "storm count must be at least 1".into(),
        ));
    }
    if f.mean_gap_s <= 0.0 || f.mean_gap_s.is_nan() {
        return Err(err(
            JobfileCode::BadValue,
            "mean-gap",
            "storm mean-gap must be positive".into(),
        ));
    }
    Ok(StormSpec {
        prefix: f.job.name.clone(),
        count,
        mean_gap_s: f.mean_gap_s,
        start_s: f.job.arrival,
        template: f.job,
    })
}

fn parse_tenant<'a>(tokens: impl Iterator<Item = &'a str>) -> Result<TenantSpec, JobfileError> {
    let mut t = TenantSpec { name: String::new(), share: 1.0, quota: None };
    for tok in tokens {
        let (k, v) = tok.split_once('=').ok_or_else(|| {
            JobfileError::new(JobfileCode::BadLine, format!("expected key=value, got `{tok}`"))
        })?;
        let bad = |detail: String| err(JobfileCode::BadValue, k, detail);
        match k {
            "name" => t.name = v.to_string(),
            "share" => {
                let s: f64 = v.parse().map_err(|_| bad(format!("bad share `{v}`")))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(bad(format!("share `{v}` must be positive")));
                }
                t.share = s;
            }
            "quota" => {
                let q: usize = v.parse().map_err(|_| bad(format!("bad quota `{v}`")))?;
                if q == 0 {
                    return Err(bad("quota must be at least 1 node".into()));
                }
                t.quota = Some(q);
            }
            other => {
                return Err(err(
                    JobfileCode::UnknownKey,
                    other,
                    format!("unknown tenant key `{other}`"),
                ))
            }
        }
    }
    if t.name.is_empty() {
        return Err(err(
            JobfileCode::MissingField,
            "name",
            "tenant needs name=".into(),
        ));
    }
    Ok(t)
}

/// Validate a `machine=` value: only built-in machine-description
/// names are legal in jobfiles, so a journaled record (and the batch
/// replay it drives) stays self-contained — no file ever needs to
/// resolve. Custom `.machine` files enter through the CLI's
/// `--machine` as the batch-level default instead.
fn checked_machine(v: &str) -> Result<String, String> {
    if vpce_machine::MachineSpec::builtin(v).is_some() {
        Ok(v.to_string())
    } else {
        Err(format!(
            "unknown machine `{v}` (built-in descriptions: {})",
            vpce_machine::MachineSpec::BUILTINS.join(", ")
        ))
    }
}

fn parse_time(v: &str) -> Result<f64, String> {
    let t: f64 = v.parse().map_err(|_| format!("bad time `{v}`"))?;
    if !t.is_finite() || t < 0.0 {
        return Err(format!("time `{v}` must be finite and non-negative"));
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FILE: &str = "\
# demo batch
nodes=16
policy=backfill
seed=7
tenant name=acme share=2 quota=8

job name=a tenant=acme workload=mm ranks=2 param:N=16 arrive=0.0 prio=1
job name=b src=prog.f ranks=8 grain=coarse deadline=0.5 retries=3
storm count=3 prefix=s workload=mm ranks=2 mean-gap=1e-4 start=2e-4
";

    #[test]
    fn parses_headers_tenants_jobs_and_storms() {
        let spec = BatchSpec::parse(FILE).unwrap();
        assert_eq!(spec.nodes, Some(16));
        assert_eq!(spec.policy, Some(Policy::Backfill));
        assert_eq!(spec.seed, Some(7));
        assert_eq!(
            spec.tenants,
            vec![TenantSpec { name: "acme".into(), share: 2.0, quota: Some(8) }]
        );
        assert_eq!(spec.jobs.len(), 2);
        let a = &spec.jobs[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.tenant, "acme");
        assert_eq!(a.source, JobSource::Workload("mm".into()));
        assert_eq!(a.params, vec![("N".to_string(), 16)]);
        assert_eq!(a.priority, 1);
        let b = &spec.jobs[1];
        assert_eq!(b.tenant, DEFAULT_TENANT);
        assert_eq!(b.source, JobSource::Path("prog.f".into()));
        assert_eq!(b.granularity, Some(Granularity::Coarse));
        assert_eq!(b.deadline, Some(0.5));
        assert_eq!(b.retries, 3);
        assert_eq!(spec.storms.len(), 1);
        assert_eq!(spec.storms[0].count, 3);
        assert_eq!(spec.tenant("acme").quota, Some(8));
        assert_eq!(spec.tenant("ghost"), TenantSpec::implicit("ghost"));
    }

    #[test]
    fn storm_expansion_is_seed_deterministic_and_ordered() {
        let spec = BatchSpec::parse(FILE).unwrap();
        let one = spec.materialize(1).unwrap();
        let two = spec.materialize(1).unwrap();
        assert_eq!(one, two, "same seed, same expansion");
        assert_eq!(one.len(), 5);
        let arrivals: Vec<f64> = one[2..].iter().map(|j| j.arrival).collect();
        assert!(arrivals.windows(2).all(|w| w[0] < w[1]), "{arrivals:?}");
        assert!(arrivals[0] >= 2e-4, "storm starts at its origin");
        let other = spec.materialize(2).unwrap();
        assert_ne!(
            one[2].arrival, other[2].arrival,
            "different seed, different gaps"
        );
    }

    /// Satellite: every malformed-record class reports its typed code,
    /// the 1-based line, and the offending field.
    #[test]
    fn malformed_records_carry_code_line_and_field() {
        use JobfileCode::*;
        for (bad, code, field) in [
            ("job ranks=2 workload=mm", MissingField, Some("name")),
            ("job name=x ranks=2", MissingField, Some("src")),
            ("job name=x workload=mm", MissingField, Some("ranks")),
            ("job name=x workload=mm ranks=2 bogus=1", UnknownKey, Some("bogus")),
            ("job name=x workload=mm src=y ranks=2", ConflictingFields, Some("src")),
            ("job name=x workload=mm ranks=p", BadValue, Some("ranks")),
            ("job name=x workload=mm ranks=2 arrive=-1", BadValue, Some("arrive")),
            ("job name=x workload=mm ranks=2 grain=huge", BadValue, Some("grain")),
            ("job name=x workload=mm ranks=2 faults=wat", BadValue, Some("faults")),
            ("job name=x workload=mm ranks=2 recover=sideways", BadValue, Some("recover")),
            ("job name=x workload=mm ranks=2 recover=on,spares=k", BadValue, Some("recover")),
            ("job name=x inline=%ZZ ranks=2", BadValue, Some("inline")),
            ("storm prefix=s workload=mm ranks=1", MissingField, Some("count")),
            ("storm prefix=s count=0 workload=mm ranks=1", BadValue, Some("count")),
            ("storm prefix=s count=1 mean-gap=0 workload=mm ranks=1", BadValue, Some("mean-gap")),
            ("tenant share=2", MissingField, Some("name")),
            ("tenant name=t share=0", BadValue, Some("share")),
            ("tenant name=t quota=0", BadValue, Some("quota")),
            ("tenant name=t color=red", UnknownKey, Some("color")),
            ("nodes=p", BadValue, Some("nodes")),
            ("policy=roulette", BadValue, Some("policy")),
            ("probation=0", BadValue, Some("probation")),
            ("probation=soon", BadValue, Some("probation")),
            ("speed=9", UnknownKey, Some("speed")),
            ("what", BadLine, None),
            ("job name=x workload=mm ranks=2 extra", BadLine, None),
        ] {
            let e = BatchSpec::parse(bad).unwrap_err();
            assert_eq!(e.code, code, "{bad}: {e}");
            assert_eq!(e.line, 1, "{bad}: {e}");
            assert_eq!(e.field.as_deref(), field, "{bad}: {e}");
            assert!(e.to_string().contains("line 1"), "{bad}: {e}");
            assert!(e.to_string().contains(e.code.as_str()), "{bad}: {e}");
        }
        let dup = "job name=x workload=mm ranks=1\njob name=x workload=mm ranks=1";
        let e = BatchSpec::parse(dup).unwrap_err();
        assert_eq!((e.code, e.line), (DuplicateName, 2));
        let dup = "tenant name=t\ntenant name=t";
        let e = BatchSpec::parse(dup).unwrap_err();
        assert_eq!((e.code, e.line), (DuplicateName, 2));
    }

    #[test]
    fn named_parse_and_diagnostics_carry_the_file() {
        let e = BatchSpec::parse_named("job name=x\n", "examples/jobs/x.jobs").unwrap_err();
        assert_eq!(e.file.as_deref(), Some("examples/jobs/x.jobs"));
        assert!(e.to_string().starts_with("examples/jobs/x.jobs line 1:"), "{e}");
        let d = e.to_diagnostic();
        assert_eq!(d.line, 1);
        assert_eq!(d.site, "jobfile");
        assert!(d.detail.contains("field `src`"), "{}", d.detail);
    }

    #[test]
    fn materialize_rejects_storm_name_collisions() {
        let spec = BatchSpec::parse(
            "job name=s0 workload=mm ranks=1\nstorm count=1 prefix=s workload=mm ranks=1",
        )
        .unwrap();
        let e = spec.materialize(1).unwrap_err();
        assert_eq!(e.code, JobfileCode::DuplicateName);
        assert!(e.to_string().contains("duplicate"));
    }

    #[test]
    fn records_round_trip_through_their_canonical_form() {
        let spec = BatchSpec::parse(FILE).unwrap();
        for job in &spec.jobs {
            let line = job.to_record();
            let re = BatchSpec::parse(&line).unwrap();
            assert_eq!(re.jobs.len(), 1, "{line}");
            assert_eq!(&re.jobs[0], job, "{line}");
        }
        for storm in &spec.storms {
            let line = storm.to_record();
            let re = BatchSpec::parse(&line).unwrap();
            assert_eq!(&re.storms[0], storm, "{line}");
        }
        for tenant in &spec.tenants {
            let line = tenant.to_record();
            let re = BatchSpec::parse(&line).unwrap();
            assert_eq!(&re.tenants[0], tenant, "{line}");
        }
        // Inline sources and fault schedules survive the round trip.
        let mut j = JobSpec::new("inl", JobSource::Inline("PROGRAM T\n  X = 1\nEND\n".into()), 2);
        j.tenant = "acme".into();
        j.arrival = 3.25e-4;
        j.faults = FaultSpec::parse("light,seed=9").unwrap();
        j.retries = 5;
        let re = BatchSpec::parse(&j.to_record()).unwrap();
        assert_eq!(re.jobs[0], j);
        // Recovery specs round-trip too — both the bare `on` form and
        // non-default knobs (the serve journal depends on this).
        j.recover = Some(vpce_recover::RecoverSpec::default());
        assert!(j.to_record().ends_with(" recover=on"), "{}", j.to_record());
        let re = BatchSpec::parse(&j.to_record()).unwrap();
        assert_eq!(re.jobs[0], j);
        j.recover = Some(vpce_recover::RecoverSpec::parse("interval=2,buddies=1").unwrap());
        let re = BatchSpec::parse(&j.to_record()).unwrap();
        assert_eq!(re.jobs[0], j);
    }

    #[test]
    fn machine_fields_round_trip_and_screen_unknown_names() {
        // Per-job machine= (a built-in name) survives the canonical
        // record form — the serve journal depends on this.
        let mut j = JobSpec::new("m", JobSource::Workload("mm".into()), 2);
        j.machine = Some("torus3d".into());
        let line = j.to_record();
        assert!(line.contains(" machine=torus3d"), "{line}");
        let re = BatchSpec::parse(&line).unwrap();
        assert_eq!(re.jobs[0], j);
        // The batch-level header parses too, and both spots reject
        // names outside the built-in zoo with the typed VPCE312.
        let spec = BatchSpec::parse("machine=crossbar\njob name=x workload=mm ranks=1").unwrap();
        assert_eq!(spec.machine.as_deref(), Some("crossbar"));
        for bad in [
            "machine=vax780",
            "job name=x workload=mm ranks=1 machine=vax780",
        ] {
            let e = BatchSpec::parse(bad).unwrap_err();
            assert_eq!(e.code, JobfileCode::BadValue, "{bad}: {e}");
            assert_eq!(e.field.as_deref(), Some("machine"), "{bad}: {e}");
            assert!(e.to_string().contains("built-in"), "{bad}: {e}");
        }
    }

    #[test]
    fn inline_encoding_round_trips() {
        let text = "PROGRAM T\n  X = 100%\r\n\tEND\n";
        assert_eq!(decode_inline(&encode_inline(text)).unwrap(), text);
        assert!(!encode_inline(text).contains(char::is_whitespace));
    }
}
