//! The job model and the jobfile format.
//!
//! A jobfile is line-oriented: `#` starts a comment, blank lines are
//! skipped, and each remaining line is either a header directive
//! (`nodes=16`, `policy=backfill`, `seed=1`) or a whitespace-separated
//! `key=value` record introduced by `job` or `storm`:
//!
//! ```text
//! # a 16-node batch
//! nodes=16
//! policy=backfill
//! seed=1
//!
//! job name=mm0 workload=mm ranks=2 param:N=16 arrive=0.0 prio=1
//! job name=wide src=examples/fortran/mm.f ranks=8 grain=coarse
//! job name=risky workload=mm ranks=2 faults=crashy,seed=7 retries=3
//! storm count=8 prefix=s workload=mm ranks=2 param:N=16 mean-gap=2e-4
//! ```
//!
//! `storm` is the seeded synthetic arrival generator: `count` jobs
//! cloned from the record's template, with exponentially distributed
//! inter-arrival gaps (mean `mean-gap` virtual seconds) drawn from the
//! batch seed — the deterministic traffic-storm scenario the property
//! suite and `bench::sched` sweep.

use lmad::Granularity;
use vpce_faults::FaultSpec;
use vpce_testkit::rng::SplitMix64;

/// Where a job's program text comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSource {
    /// F77-mini source held inline (API submissions, property tests).
    Inline(String),
    /// A path resolved by the caller-supplied source loader
    /// (`src=` in a jobfile; the CLI resolves relative to the
    /// jobfile's directory).
    Path(String),
    /// One of the built-in paper workloads (`workload=mm|swim|cfft|
    /// irregular`), resolved without any I/O.
    Workload(String),
}

/// One batch job: what to run, how wide, and how urgently.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique name within the batch.
    pub name: String,
    pub source: JobSource,
    /// Requested ranks (the partition may reserve a few spare router
    /// positions on top — see `cluster_sim::partition_shape`).
    pub ranks: usize,
    /// Higher runs first; ties broken by arrival time, then
    /// submission order.
    pub priority: i64,
    /// Virtual submission time, seconds.
    pub arrival: f64,
    /// Soft deadline hint (virtual seconds of turnaround); the report
    /// flags jobs that missed it, the scheduler does not kill them.
    pub deadline: Option<f64>,
    /// `PARAMETER` overrides, `(NAME, value)`.
    pub params: Vec<(String, i64)>,
    /// Explicit communication granularity; `None` asks the static
    /// advisor.
    pub granularity: Option<Granularity>,
    /// Per-job fault schedule (each requeue re-seeds it
    /// deterministically).
    pub faults: FaultSpec,
    /// How many times a fault-failed job may be requeued.
    pub retries: u32,
}

impl JobSpec {
    /// A job with neutral defaults: priority 0, arrival 0, no
    /// deadline, advisor granularity, faults off, 2 retries.
    pub fn new(name: impl Into<String>, source: JobSource, ranks: usize) -> Self {
        JobSpec {
            name: name.into(),
            source,
            ranks,
            priority: 0,
            arrival: 0.0,
            deadline: None,
            params: Vec::new(),
            granularity: None,
            faults: FaultSpec::off(),
            retries: 2,
        }
    }
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Strict priority-ordered first-come-first-served: nothing starts
    /// while the head of the queue cannot be placed.
    Fcfs,
    /// FCFS with conservative backfill: the blocked head gets a
    /// reservation; later jobs may start only if they provably finish
    /// before it or avoid its rectangle.
    Backfill,
}

impl Policy {
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "fcfs" => Ok(Policy::Fcfs),
            "backfill" => Ok(Policy::Backfill),
            other => Err(format!("unknown policy `{other}` (fcfs|backfill)")),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Policy::Fcfs => "fcfs",
            Policy::Backfill => "backfill",
        }
    }
}

/// A `storm` directive: `count` jobs cloned from `template` with
/// seeded exponential inter-arrival gaps.
#[derive(Debug, Clone, PartialEq)]
pub struct StormSpec {
    /// Name prefix; generated jobs are `<prefix>0`, `<prefix>1`, …
    pub prefix: String,
    pub count: usize,
    /// Mean inter-arrival gap, virtual seconds.
    pub mean_gap_s: f64,
    /// Arrival time of the storm's clock origin.
    pub start_s: f64,
    /// Everything except name and arrival is taken from here.
    pub template: JobSpec,
}

impl StormSpec {
    /// Expand the storm deterministically from `seed`. Gaps are
    /// inverse-CDF exponential draws from a SplitMix64 stream salted
    /// with the prefix, so two storms in one batch decorrelate.
    pub fn expand(&self, seed: u64) -> Vec<JobSpec> {
        let mut h = seed;
        for b in self.prefix.bytes() {
            h = SplitMix64::new(h ^ u64::from(b).wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
        }
        let mut rng = SplitMix64::new(h);
        let mut t = self.start_s;
        (0..self.count)
            .map(|i| {
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                t += -self.mean_gap_s * (1.0 - u).ln();
                let mut job = self.template.clone();
                job.name = format!("{}{}", self.prefix, i);
                job.arrival = t;
                job
            })
            .collect()
    }
}

/// A parsed jobfile: header directives plus the submitted jobs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchSpec {
    /// Machine size (header `nodes=`); the CLI's `--nodes` is the
    /// fallback when absent.
    pub nodes: Option<usize>,
    pub policy: Option<Policy>,
    /// Batch seed (header `seed=`); `--sched-seed` overrides it.
    pub seed: Option<u64>,
    pub jobs: Vec<JobSpec>,
    pub storms: Vec<StormSpec>,
}

impl BatchSpec {
    /// Parse a jobfile. Errors are usage-level (malformed line, bad
    /// value, duplicate explicit name) and name the offending line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut spec = BatchSpec::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let at = |msg: String| format!("jobfile line {}: {msg}", lineno + 1);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tokens = line.split_whitespace();
            let head = tokens.next().expect("non-empty line");
            match head {
                "job" => {
                    let job = parse_job(tokens, /*storm*/ false).map_err(at)?;
                    if spec.jobs.iter().any(|j| j.name == job.name) {
                        return Err(at(format!("duplicate job name `{}`", job.name)));
                    }
                    spec.jobs.push(job);
                }
                "storm" => spec.storms.push(parse_storm(tokens).map_err(at)?),
                _ => {
                    let (k, v) = head
                        .split_once('=')
                        .ok_or_else(|| at(format!("expected `job`, `storm` or `key=value`, got `{head}`")))?;
                    if tokens.next().is_some() {
                        return Err(at("header directives take a single key=value".into()));
                    }
                    match k {
                        "nodes" => {
                            spec.nodes =
                                Some(v.parse().map_err(|_| at(format!("bad nodes `{v}`")))?)
                        }
                        "policy" => spec.policy = Some(Policy::parse(v).map_err(at)?),
                        "seed" => {
                            spec.seed = Some(v.parse().map_err(|_| at(format!("bad seed `{v}`")))?)
                        }
                        other => return Err(at(format!("unknown header directive `{other}`"))),
                    }
                }
            }
        }
        Ok(spec)
    }

    /// Explicit jobs plus every storm expansion under `seed`, checked
    /// for name collisions (a storm prefix may not shadow an explicit
    /// job or another storm).
    pub fn materialize(&self, seed: u64) -> Result<Vec<JobSpec>, String> {
        let mut jobs = self.jobs.clone();
        for storm in &self.storms {
            jobs.extend(storm.expand(seed));
        }
        let mut names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
        names.sort_unstable();
        if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!("duplicate job name `{}` after storm expansion", w[0]));
        }
        Ok(jobs)
    }
}

/// Shared field grammar for `job` and `storm` records. For storms the
/// `name=` key is the prefix and `arrive=` the storm origin.
struct RecordFields {
    job: JobSpec,
    named: bool,
    sourced: bool,
    count: Option<usize>,
    mean_gap_s: f64,
}

fn parse_record<'a>(
    tokens: impl Iterator<Item = &'a str>,
    storm: bool,
) -> Result<RecordFields, String> {
    let mut f = RecordFields {
        job: JobSpec::new("", JobSource::Inline(String::new()), 0),
        named: false,
        sourced: false,
        count: None,
        mean_gap_s: 1e-4,
    };
    for tok in tokens {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got `{tok}`"))?;
        let set_source = |f: &mut RecordFields, src: JobSource| -> Result<(), String> {
            if f.sourced {
                return Err("a job takes exactly one of src=/workload=".into());
            }
            f.sourced = true;
            f.job.source = src;
            Ok(())
        };
        match k {
            "name" | "prefix" => {
                f.job.name = v.to_string();
                f.named = true;
            }
            "src" => set_source(&mut f, JobSource::Path(v.to_string()))?,
            "workload" => set_source(&mut f, JobSource::Workload(v.to_string()))?,
            "ranks" => f.job.ranks = v.parse().map_err(|_| format!("bad ranks `{v}`"))?,
            "arrive" | "start" => {
                f.job.arrival = parse_time(v)?;
            }
            "prio" => f.job.priority = v.parse().map_err(|_| format!("bad prio `{v}`"))?,
            "deadline" => f.job.deadline = Some(parse_time(v)?),
            "grain" => {
                f.job.granularity = Some(match v {
                    "fine" => Granularity::Fine,
                    "middle" => Granularity::Middle,
                    "coarse" => Granularity::Coarse,
                    other => return Err(format!("bad grain `{other}`")),
                })
            }
            "faults" => f.job.faults = FaultSpec::parse(v)?,
            "retries" => f.job.retries = v.parse().map_err(|_| format!("bad retries `{v}`"))?,
            "count" if storm => f.count = Some(v.parse().map_err(|_| format!("bad count `{v}`"))?),
            "mean-gap" if storm => f.mean_gap_s = parse_time(v)?,
            _ if k.starts_with("param:") => {
                let name = k["param:".len()..].to_ascii_uppercase();
                let val: i64 = v.parse().map_err(|_| format!("bad value in `{tok}`"))?;
                f.job.params.push((name, val));
            }
            other => return Err(format!("unknown key `{other}`")),
        }
    }
    if !f.named {
        return Err(if storm { "storm needs prefix=" } else { "job needs name=" }.into());
    }
    if !f.sourced {
        return Err("job needs src= or workload=".into());
    }
    if f.job.ranks == 0 {
        return Err("job needs ranks= (at least 1)".into());
    }
    Ok(f)
}

fn parse_job<'a>(tokens: impl Iterator<Item = &'a str>, storm: bool) -> Result<JobSpec, String> {
    Ok(parse_record(tokens, storm)?.job)
}

fn parse_storm<'a>(tokens: impl Iterator<Item = &'a str>) -> Result<StormSpec, String> {
    let f = parse_record(tokens, true)?;
    let count = f.count.ok_or("storm needs count=")?;
    if count == 0 {
        return Err("storm count must be at least 1".into());
    }
    if f.mean_gap_s <= 0.0 || f.mean_gap_s.is_nan() {
        return Err("storm mean-gap must be positive".into());
    }
    Ok(StormSpec {
        prefix: f.job.name.clone(),
        count,
        mean_gap_s: f.mean_gap_s,
        start_s: f.job.arrival,
        template: f.job,
    })
}

fn parse_time(v: &str) -> Result<f64, String> {
    let t: f64 = v.parse().map_err(|_| format!("bad time `{v}`"))?;
    if !t.is_finite() || t < 0.0 {
        return Err(format!("time `{v}` must be finite and non-negative"));
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FILE: &str = "\
# demo batch
nodes=16
policy=backfill
seed=7

job name=a workload=mm ranks=2 param:N=16 arrive=0.0 prio=1
job name=b src=prog.f ranks=8 grain=coarse deadline=0.5 retries=3
storm count=3 prefix=s workload=mm ranks=2 mean-gap=1e-4 start=2e-4
";

    #[test]
    fn parses_headers_jobs_and_storms() {
        let spec = BatchSpec::parse(FILE).unwrap();
        assert_eq!(spec.nodes, Some(16));
        assert_eq!(spec.policy, Some(Policy::Backfill));
        assert_eq!(spec.seed, Some(7));
        assert_eq!(spec.jobs.len(), 2);
        let a = &spec.jobs[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.source, JobSource::Workload("mm".into()));
        assert_eq!(a.params, vec![("N".to_string(), 16)]);
        assert_eq!(a.priority, 1);
        let b = &spec.jobs[1];
        assert_eq!(b.source, JobSource::Path("prog.f".into()));
        assert_eq!(b.granularity, Some(Granularity::Coarse));
        assert_eq!(b.deadline, Some(0.5));
        assert_eq!(b.retries, 3);
        assert_eq!(spec.storms.len(), 1);
        assert_eq!(spec.storms[0].count, 3);
    }

    #[test]
    fn storm_expansion_is_seed_deterministic_and_ordered() {
        let spec = BatchSpec::parse(FILE).unwrap();
        let one = spec.materialize(1).unwrap();
        let two = spec.materialize(1).unwrap();
        assert_eq!(one, two, "same seed, same expansion");
        assert_eq!(one.len(), 5);
        let arrivals: Vec<f64> = one[2..].iter().map(|j| j.arrival).collect();
        assert!(arrivals.windows(2).all(|w| w[0] < w[1]), "{arrivals:?}");
        assert!(arrivals[0] >= 2e-4, "storm starts at its origin");
        let other = spec.materialize(2).unwrap();
        assert_ne!(
            one[2].arrival, other[2].arrival,
            "different seed, different gaps"
        );
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (bad, needle) in [
            ("job ranks=2 workload=mm", "needs name"),
            ("job name=x ranks=2", "src= or workload="),
            ("job name=x workload=mm", "ranks"),
            ("job name=x workload=mm ranks=2 bogus=1", "unknown key"),
            ("job name=x workload=mm src=y ranks=2", "exactly one"),
            ("storm prefix=s workload=mm ranks=1", "count"),
            ("nodes=p", "bad nodes"),
            ("what", "expected"),
            ("job name=x workload=mm ranks=2 arrive=-1", "non-negative"),
        ] {
            let err = BatchSpec::parse(bad).unwrap_err();
            assert!(err.contains("line 1"), "{bad}: {err}");
            assert!(err.contains(needle), "{bad}: {err}");
        }
        let dup = "job name=x workload=mm ranks=1\njob name=x workload=mm ranks=1";
        assert!(BatchSpec::parse(dup).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn materialize_rejects_storm_name_collisions() {
        let spec = BatchSpec::parse(
            "job name=s0 workload=mm ranks=1\nstorm count=1 prefix=s workload=mm ranks=1",
        )
        .unwrap();
        assert!(spec.materialize(1).unwrap_err().contains("duplicate"));
    }
}
