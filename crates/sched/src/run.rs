//! Per-job preparation and execution.
//!
//! Admission compiles the job once (front-end + backend at the chosen
//! granularity) and dry-runs it fault-free on its private partition.
//! The dry run serves three masters: it validates the program (a job
//! that cannot finish cleanly is rejected up front, not discovered
//! mid-batch), it yields the *baseline makespan* the backfill
//! reservation arithmetic and the failure heartbeat both need, and it
//! pins the reference arrays each faulty attempt must reproduce
//! byte-identically.
//!
//! Every attempt runs in its own [`cluster_sim::ClusterConfig`] /
//! `mpi2::Universe`: windows, `NetStats`, `RankStats` and trace
//! buffers are private to the attempt by construction. Requeued
//! attempts re-seed the job's fault schedule deterministically
//! (`seed + k·GOLDEN` for attempt `k`), so a crash is not replayed
//! verbatim yet the whole batch stays a pure function of the jobfile
//! and batch seed.

use cluster_sim::{partition_shape, ClusterConfig};
use lmad::Granularity;
use polaris_be::{advisor, BackendOptions};
use spmd_rt::{ExecMode, RunReport, SpmdProgram, VpceError};
use vbus_sim::Mesh;
use vpce_faults::FaultSpec;
use vpce_machine::MachineSpec;
use vpce_recover::RecoveryLedger;
use vpce_trace::Tracer;

use crate::job::{JobSource, JobSpec};

/// Odd golden-ratio increment used to derive per-attempt fault seeds.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Resolves a `src=` jobfile path to program text. The CLI resolves
/// relative to the jobfile's directory; tests inject closures.
pub type SourceLoader<'a> = dyn Fn(&str) -> Result<String, String> + 'a;

/// A job that passed admission: compiled program, partition shape and
/// fault-free baseline.
#[derive(Debug, Clone)]
pub struct Prepared {
    pub program: SpmdProgram,
    /// Partition rectangle the job's ranks occupy (on switch-based
    /// fabrics: the accounting footprint the node map charges).
    pub shape: Mesh,
    /// Resolved machine description every attempt lowers its partition
    /// through; `None` is the hard-coded paper machine.
    pub machine: Option<MachineSpec>,
    pub granularity: Granularity,
    /// Fault-free virtual makespan (the scheduling-time estimate, the
    /// backfill bound and the failure heartbeat).
    pub clean_elapsed: f64,
    /// Fault-free master arrays — the byte-identity reference.
    pub clean_arrays: Vec<Vec<mpi2::Elem>>,
}

fn reject(job: &JobSpec, reason: String) -> VpceError {
    VpceError::AdmissionRejected { job: job.name.clone(), reason }
}

fn resolve_source(job: &JobSpec, loader: &SourceLoader) -> Result<String, VpceError> {
    match &job.source {
        JobSource::Inline(text) => Ok(text.clone()),
        JobSource::Path(path) => {
            loader(path).map_err(|e| reject(job, format!("source `{path}`: {e}")))
        }
        JobSource::Workload(name) => {
            let w = match name.as_str() {
                "mm" => vpce_workloads::mm::WORKLOAD,
                "swim" => vpce_workloads::swim::WORKLOAD,
                "swim-full" => vpce_workloads::swim_full::WORKLOAD,
                "cfft" => vpce_workloads::cfft::WORKLOAD,
                "irregular" => vpce_workloads::irregular::WORKLOAD,
                other => {
                    return Err(reject(
                        job,
                        format!("unknown workload `{other}` (mm|swim|swim-full|cfft|irregular)"),
                    ))
                }
            };
            Ok(w.source.to_string())
        }
    }
}

/// Resolve a job's effective machine description: its own `machine=`
/// field (a built-in name), else the batch-level `default`, else
/// `None` (the hard-coded paper machine). An unknown name is a typed
/// admission rejection — jobfile parsing already screens it, but specs
/// built through the API arrive unchecked.
pub fn resolve_machine(
    job: &JobSpec,
    default: Option<&MachineSpec>,
) -> Result<Option<MachineSpec>, VpceError> {
    match &job.machine {
        None => Ok(default.cloned()),
        Some(name) => MachineSpec::builtin(name).map(Some).ok_or_else(|| {
            reject(
                job,
                format!(
                    "unknown machine `{name}` (built-in descriptions: {})",
                    MachineSpec::BUILTINS.join(", ")
                ),
            )
        }),
    }
}

/// The partition rectangle the node map charges a `ranks`-wide job
/// for. On rectangular fabrics this is the carved sub-mesh; on
/// switch-based fabrics (crossbar, fat-tree, shared) there is no
/// rectangular sub-shape, so a near-square accounting footprint stands
/// in — the attempt's network is a private fabric instance either way.
pub fn job_footprint(machine: Option<&MachineSpec>, ranks: usize) -> Mesh {
    match machine {
        Some(m) => m
            .partition_footprint(ranks.max(1))
            .expect("positive ranks always have a footprint"),
        None => partition_shape(ranks.max(1)),
    }
}

/// Admission-time compile + fault-free dry run. Any failure here is a
/// typed [`VpceError::AdmissionRejected`] — the job never enters the
/// queue.
pub fn prepare(job: &JobSpec, loader: &SourceLoader, mode: ExecMode) -> Result<Prepared, VpceError> {
    prepare_on(job, loader, mode, None)
}

/// [`prepare`] with a batch-level default machine description (the
/// CLI's `--machine` / the jobfile's `machine=` header); the job's own
/// `machine=` field wins.
pub fn prepare_on(
    job: &JobSpec,
    loader: &SourceLoader,
    mode: ExecMode,
    default_machine: Option<&MachineSpec>,
) -> Result<Prepared, VpceError> {
    let machine = resolve_machine(job, default_machine)?;
    let source = resolve_source(job, loader)?;
    let params: Vec<(&str, i64)> = job.params.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let analyzed = polaris_fe::compile(&source, &params)
        .map_err(|e| reject(job, format!("front-end: {e}")))?;
    let base = BackendOptions::new(job.ranks);
    let granularity = job.granularity.unwrap_or_else(|| {
        advisor::advise(&analyzed, &base, &advisor::CostParams::paper_card()).recommended
    });
    let compiled = polaris_be::compile_backend(&analyzed, &base.granularity(granularity));
    let shape = job_footprint(machine.as_ref(), job.ranks);
    let cluster = try_partition_cluster(machine.as_ref(), shape, job.ranks)
        .map_err(|e| reject(job, e))?;
    let clean = spmd_rt::try_execute(&compiled.program, &cluster, mode, FaultSpec::off())
        .map_err(|e| reject(job, format!("fault-free dry run: {e}")))?;
    Ok(Prepared {
        program: compiled.program,
        shape,
        machine,
        granularity,
        clean_elapsed: clean.elapsed,
        clean_arrays: clean.arrays,
    })
}

/// The private cluster an attempt executes on: paper-model PCs on the
/// job's own partition mesh (phantom router cells included so awkward
/// rank counts still route).
pub fn partition_cluster(shape: Mesh, ranks: usize) -> ClusterConfig {
    ClusterConfig::paper_partition(shape, ranks)
}

/// [`partition_cluster`] lowered through a machine description.
/// `None` keeps the hard-coded paper partition; `Some` lowers the
/// spec's fabric (a `VPCE505`-class failure — e.g. a non-power-of-two
/// hypercube partition — surfaces as the error string).
pub fn try_partition_cluster(
    machine: Option<&MachineSpec>,
    shape: Mesh,
    ranks: usize,
) -> Result<ClusterConfig, String> {
    match machine {
        None => Ok(partition_cluster(shape, ranks)),
        Some(m) => m
            .lower_partition(shape, ranks)
            .map_err(|e| format!("machine `{}`: {e}", m.name)),
    }
}

/// The attempt-time cluster of a prepared job. Infallible: `prepare`
/// already lowered the identical inputs once.
fn prepared_cluster(prepared: &Prepared, ranks: usize) -> ClusterConfig {
    try_partition_cluster(prepared.machine.as_ref(), prepared.shape, ranks)
        .expect("machine lowering was validated at admission")
}

/// Fault seed for attempt `k` of a job (attempt 0 is the jobfile's own
/// seed; requeues stride deterministically so a crash is not replayed).
pub fn attempt_faults(base: &FaultSpec, attempt: u32) -> FaultSpec {
    let mut f = base.clone();
    f.seed = f.seed.wrapping_add(u64::from(attempt).wrapping_mul(SEED_STRIDE));
    f
}

/// What one attempt produced: the run's report plus, when the job
/// armed `recover=`, the rollback-recovery ledger. A recovered attempt
/// holds its partition for `report.elapsed` *plus* the recovery time
/// (checkpoint, quiesce, respawn and replay all happen on the job's
/// nodes), so scheduling arithmetic must use [`AttemptOutcome::duration`]
/// rather than the report's elapsed alone.
#[derive(Debug, Clone)]
pub struct AttemptOutcome {
    pub report: RunReport,
    pub recovery: Option<RecoveryLedger>,
}

impl AttemptOutcome {
    /// Wall-clock the attempt occupies its partition for.
    pub fn duration(&self) -> f64 {
        self.report.elapsed + self.recovery.as_ref().map_or(0.0, |l| l.recovery_total())
    }
}

/// Execute attempt `attempt` of a prepared job, traced, on a fresh
/// private cluster. The outcome is a pure function of
/// `(program, shape, faults, recover, attempt)` — the scheduler may
/// call this at decision time and trust the result never changes.
///
/// With `recover=` armed, survivable crash schedules are absorbed
/// in-run (buddy checkpoints + spare failover) instead of surfacing as
/// `RankCrash`: the report is byte-identical to the fault-free run and
/// the ledger carries the recovery-time charge.
pub fn run_attempt(
    job: &JobSpec,
    prepared: &Prepared,
    mode: ExecMode,
    attempt: u32,
) -> Result<AttemptOutcome, VpceError> {
    let cluster = prepared_cluster(prepared, job.ranks);
    let faults = attempt_faults(&job.faults, attempt);
    match &job.recover {
        Some(spec) => {
            vpce_recover::run_recovering(&prepared.program, &cluster, mode, Tracer::enabled(), faults, spec)
                .map(|(report, ledger)| AttemptOutcome { report, recovery: Some(ledger) })
        }
        None => {
            spmd_rt::try_execute_traced(&prepared.program, &cluster, mode, Tracer::enabled(), faults)
                .map(|report| AttemptOutcome { report, recovery: None })
        }
    }
}

/// Fault schedule a preemption checkpoint/resume replays. A
/// recovery-armed job's *observable* timeline is the fault-free one —
/// crashes are absorbed below the fence level by rollback recovery —
/// so its snapshots are taken (and resumed) against a clean schedule;
/// otherwise preempting before an absorbed crash would spuriously
/// surface the crash the recovery layer already handled.
fn preempt_faults(job: &JobSpec, attempt: u32) -> FaultSpec {
    if job.recover.is_some() {
        FaultSpec::off()
    } else {
        attempt_faults(&job.faults, attempt)
    }
}

/// Checkpoint attempt `attempt` of a prepared job at top-level block
/// boundary `boundary` (1-based; see `spmd_rt::checkpoint`). The
/// snapshot is a pure function of `(program, shape, faults, attempt,
/// boundary)`, so `vpce-serve` can preempt a "running" job at decision
/// time and later resume it byte-identically.
pub fn checkpoint_attempt(
    job: &JobSpec,
    prepared: &Prepared,
    mode: ExecMode,
    attempt: u32,
    boundary: usize,
) -> Result<spmd_rt::Snapshot, VpceError> {
    let cluster = prepared_cluster(prepared, job.ranks);
    let faults = preempt_faults(job, attempt);
    spmd_rt::checkpoint::checkpoint_at(&prepared.program, &cluster, mode, faults, boundary)
}

/// Resume a checkpointed attempt on a fresh private cluster (possibly
/// a different partition rectangle of the same shape). The report
/// covers the remaining blocks only; its arrays equal an
/// uninterrupted run's byte for byte.
pub fn resume_attempt(
    job: &JobSpec,
    prepared: &Prepared,
    mode: ExecMode,
    attempt: u32,
    snap: &spmd_rt::Snapshot,
) -> Result<RunReport, VpceError> {
    let cluster = prepared_cluster(prepared, job.ranks);
    let faults = preempt_faults(job, attempt);
    spmd_rt::checkpoint::resume(&prepared.program, &cluster, mode, faults, snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    fn no_loader() -> impl Fn(&str) -> Result<String, String> {
        |p: &str| Err(format!("no loader for `{p}` in tests"))
    }

    fn mm_job(name: &str, ranks: usize) -> JobSpec {
        let mut j = JobSpec::new(name, JobSource::Workload("mm".into()), ranks);
        j.params.push(("N".into(), 8));
        j
    }

    #[test]
    fn prepare_compiles_and_pins_the_clean_baseline() {
        let job = mm_job("mm0", 2);
        let p = prepare(&job, &no_loader(), ExecMode::Full).unwrap();
        assert!(p.clean_elapsed > 0.0);
        assert!(!p.clean_arrays.is_empty());
        assert_eq!(p.shape.num_nodes(), 2);
        // The attempt path reproduces the dry run exactly when faults
        // are off.
        let out = run_attempt(&job, &p, ExecMode::Full, 0).unwrap();
        assert_eq!(out.report.elapsed, p.clean_elapsed);
        assert_eq!(out.report.arrays, p.clean_arrays);
        assert!(out.report.trace.is_some(), "attempts always trace");
        assert!(out.recovery.is_none(), "no ledger without recover=");
        assert_eq!(out.duration(), p.clean_elapsed);
    }

    #[test]
    fn bad_jobs_are_rejected_with_typed_errors() {
        let job = JobSpec::new("w", JobSource::Workload("nope".into()), 2);
        let e = prepare(&job, &no_loader(), ExecMode::Full).unwrap_err();
        assert_eq!(e.exit_code(), 4);
        assert!(e.to_string().contains("unknown workload"), "{e}");

        let job = JobSpec::new("p", JobSource::Path("x.f".into()), 2);
        let e = prepare(&job, &no_loader(), ExecMode::Full).unwrap_err();
        assert!(e.to_string().contains("no loader"), "{e}");

        let job = JobSpec::new("syn", JobSource::Inline("PROGRAM T\nX = \nEND\n".into()), 2);
        let e = prepare(&job, &no_loader(), ExecMode::Full).unwrap_err();
        assert_eq!(e.kind(), "admission-rejected");
        assert!(e.to_string().contains("front-end"), "{e}");
    }

    #[test]
    fn preemption_hooks_resume_byte_identically() {
        let job = mm_job("mm0", 2);
        let p = prepare(&job, &no_loader(), ExecMode::Full).unwrap();
        let full = run_attempt(&job, &p, ExecMode::Full, 0).unwrap();
        let snap = checkpoint_attempt(&job, &p, ExecMode::Full, 0, 1).unwrap();
        let rep = resume_attempt(&job, &p, ExecMode::Full, 0, &snap).unwrap();
        assert_eq!(rep.arrays, full.report.arrays, "preempt+resume equals uninterrupted");
        assert_eq!(rep.scalars, full.report.scalars);
    }

    #[test]
    fn recover_armed_attempts_absorb_crashes_and_charge_recovery_time() {
        let mut job = mm_job("mm0", 4);
        job.recover = Some(vpce_recover::RecoverSpec::default());
        let p = prepare(&job, &no_loader(), ExecMode::Full).unwrap();
        // Find a seed whose crash schedule kills the plain attempt.
        // Crash-only (no transport noise), so the recovered report is
        // byte-identical to the fault-free baseline.
        let mut hit = false;
        for seed in 0..64u64 {
            job.recover = None;
            job.faults = FaultSpec::parse(&format!("crash=0.5,seed={seed}")).unwrap();
            if run_attempt(&job, &p, ExecMode::Full, 0).is_ok() {
                continue;
            }
            job.recover = Some(vpce_recover::RecoverSpec::default());
            // Not every crash schedule is survivable (a rank and all
            // its buddies may die together); scan on until one is.
            let Ok(out) = run_attempt(&job, &p, ExecMode::Full, 0) else { continue };
            assert_eq!(out.report.arrays, p.clean_arrays, "byte-identical to fault-free");
            assert_eq!(out.report.elapsed, p.clean_elapsed);
            let ledger = out.recovery.as_ref().expect("recover= attaches a ledger");
            assert!(ledger.absorbed(), "the crash was rolled back");
            assert!(ledger.recovery_total() > 0.0);
            assert_eq!(out.duration(), p.clean_elapsed + ledger.recovery_total());
            hit = true;
            break;
        }
        assert!(hit, "no crashing seed in 0..64");
        // Preemption hooks replay the *fault-free* schedule for
        // recovery-armed jobs: resume equals the clean remainder.
        let snap = checkpoint_attempt(&job, &p, ExecMode::Full, 0, 1).unwrap();
        let rep = resume_attempt(&job, &p, ExecMode::Full, 0, &snap).unwrap();
        assert_eq!(rep.arrays, p.clean_arrays);
    }

    #[test]
    fn attempt_seeds_stride_deterministically() {
        let base = FaultSpec::parse("crashy,seed=7").unwrap();
        assert_eq!(attempt_faults(&base, 0).seed, 7);
        let a1 = attempt_faults(&base, 1);
        let a1_again = attempt_faults(&base, 1);
        assert_eq!(a1.seed, a1_again.seed);
        assert_ne!(a1.seed, base.seed);
        assert_ne!(attempt_faults(&base, 2).seed, a1.seed);
        assert_eq!(a1.rank_crash, base.rank_crash, "only the seed changes");
    }

    #[test]
    fn paper_machine_prepares_byte_identically_to_no_machine() {
        let job = mm_job("mm0", 4);
        let bare = prepare(&job, &no_loader(), ExecMode::Full).unwrap();
        let paper = MachineSpec::default();
        let with = prepare_on(&job, &no_loader(), ExecMode::Full, Some(&paper)).unwrap();
        assert_eq!(with.shape, bare.shape);
        assert_eq!(with.clean_elapsed.to_bits(), bare.clean_elapsed.to_bits());
        assert_eq!(with.clean_arrays, bare.clean_arrays);
        let a = run_attempt(&job, &bare, ExecMode::Full, 0).unwrap();
        let b = run_attempt(&job, &with, ExecMode::Full, 0).unwrap();
        assert_eq!(a.report.elapsed.to_bits(), b.report.elapsed.to_bits());
        assert_eq!(a.report.arrays, b.report.arrays);
    }

    #[test]
    fn job_machine_names_resolve_and_override_the_default() {
        let mut job = mm_job("mm0", 2);
        job.machine = Some("fast-ethernet".into());
        // The job's own machine wins over the batch default.
        let default = MachineSpec::default();
        let p = prepare_on(&job, &no_loader(), ExecMode::Full, Some(&default)).unwrap();
        assert_eq!(p.machine.as_ref().map(|m| m.name.as_str()), Some("fast-ethernet"));
        let bare = prepare(&mm_job("mm0", 2), &no_loader(), ExecMode::Full).unwrap();
        assert_ne!(
            p.clean_elapsed.to_bits(),
            bare.clean_elapsed.to_bits(),
            "a shared-medium NIC must time differently from the V-Bus"
        );
        assert_eq!(p.clean_arrays, bare.clean_arrays, "results stay numerics-identical");

        job.machine = Some("pdp11".into());
        let e = prepare_on(&job, &no_loader(), ExecMode::Full, None).unwrap_err();
        assert_eq!(e.exit_code(), 4, "{e}");
        assert!(e.to_string().contains("unknown machine"), "{e}");
    }

    #[test]
    fn infeasible_machine_shapes_are_admission_rejections() {
        // A 6-rank job on a hypercube fabric has no power-of-two
        // sub-cube — the lowering failure surfaces at admission.
        let mut job = mm_job("mm0", 6);
        job.machine = Some("hypercube".into());
        let e = prepare_on(&job, &no_loader(), ExecMode::Full, None).unwrap_err();
        assert_eq!(e.exit_code(), 4, "{e}");
        assert!(e.to_string().contains("hypercube"), "{e}");
    }

    #[test]
    fn zoo_machines_run_attempts_end_to_end() {
        for name in ["torus", "torus3d", "crossbar", "fattree"] {
            let mut job = mm_job("mm0", 4);
            job.machine = Some(name.to_string());
            let p = prepare_on(&job, &no_loader(), ExecMode::Full, None).unwrap();
            let out = run_attempt(&job, &p, ExecMode::Full, 0).unwrap();
            assert_eq!(out.report.arrays, p.clean_arrays, "{name}");
            assert!(out.report.elapsed > 0.0, "{name}");
        }
    }
}
