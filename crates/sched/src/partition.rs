//! Rectangular partition allocation on the machine mesh.
//!
//! The machine is an `n`-node near-square mesh (positions with id
//! `>= n` are routers without a PC and are never allocatable). A job
//! of `r` ranks asks for the rectangle `cluster_sim::partition_shape(r)`
//! prescribes; the allocator scans anchors row-major (first fit),
//! trying the prescribed orientation first and its transpose second —
//! both deterministic, so placement is a pure function of the request
//! sequence. Crashed nodes are *drained*: their cells never satisfy a
//! fit again for the rest of the batch.

use vbus_sim::{Mesh, NodeId};

/// One allocated rectangle: anchor, shape, and the machine node ids it
/// reserves (row-major within the rectangle; job rank `i` executes on
/// `nodes[i]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Anchor column on the machine mesh.
    pub x: usize,
    /// Anchor row on the machine mesh.
    pub y: usize,
    /// Shape as placed (possibly the transpose of the requested one).
    pub shape: Mesh,
    pub nodes: Vec<NodeId>,
}

impl Partition {
    /// Do two rectangles share any cell?
    pub fn overlaps(&self, other: &Partition) -> bool {
        let disjoint_x =
            self.x + self.shape.cols <= other.x || other.x + other.shape.cols <= self.x;
        let disjoint_y =
            self.y + self.shape.rows <= other.y || other.y + other.shape.rows <= self.y;
        !(disjoint_x || disjoint_y)
    }
}

/// The machine as a grid of allocatable cells.
#[derive(Debug, Clone)]
pub struct NodeMap {
    mesh: Mesh,
    nodes: usize,
    busy: Vec<bool>,
    drained: Vec<bool>,
    /// Remaining probation intervals per cell: `> 0` means the cell is
    /// drained but will reintegrate once the counter ticks down to 0.
    /// `0` on a drained cell means the drain is permanent.
    probation: Vec<u32>,
}

impl NodeMap {
    /// A machine of `nodes` PCs on `mesh` (positions `nodes..` are
    /// phantom router cells, never allocatable).
    pub fn new(mesh: Mesh, nodes: usize) -> Self {
        assert!(nodes >= 1 && nodes <= mesh.num_nodes());
        NodeMap {
            mesh,
            nodes,
            busy: vec![false; mesh.num_nodes()],
            drained: vec![false; mesh.num_nodes()],
            probation: vec![0; mesh.num_nodes()],
        }
    }

    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Number of PCs that have not been drained.
    pub fn usable_nodes(&self) -> usize {
        (0..self.nodes).filter(|&c| !self.drained[c]).count()
    }

    /// Drained node ids, ascending.
    pub fn drained(&self) -> Vec<NodeId> {
        (0..self.nodes).filter(|&c| self.drained[c]).collect()
    }

    fn cell_free(&self, x: usize, y: usize) -> bool {
        let c = self.mesh.node_at(x, y);
        c < self.nodes && !self.busy[c] && !self.drained[c]
    }

    fn rect_fits(&self, x: usize, y: usize, shape: Mesh) -> bool {
        if x + shape.cols > self.mesh.cols || y + shape.rows > self.mesh.rows {
            return false;
        }
        (0..shape.rows).all(|dy| (0..shape.cols).all(|dx| self.cell_free(x + dx, y + dy)))
    }

    /// First-fit anchor scan for `shape`: row-major anchors, requested
    /// orientation first, transpose second. Returns the placement
    /// without allocating it.
    pub fn find_fit(&self, shape: Mesh) -> Option<(usize, usize, Mesh)> {
        let transpose = Mesh { cols: shape.rows, rows: shape.cols };
        for s in [shape, transpose] {
            for y in 0..self.mesh.rows.saturating_sub(s.rows - 1) {
                for x in 0..self.mesh.cols.saturating_sub(s.cols - 1) {
                    if self.rect_fits(x, y, s) {
                        return Some((x, y, s));
                    }
                }
            }
            if shape.cols == shape.rows {
                break; // square: the transpose is the same scan
            }
        }
        None
    }

    /// Could `shape` ever be placed on the *empty* machine given the
    /// current drains? `false` means a queued job is permanently
    /// infeasible, not merely waiting.
    pub fn feasible(&self, shape: Mesh) -> bool {
        let empty = NodeMap {
            mesh: self.mesh,
            nodes: self.nodes,
            busy: vec![false; self.mesh.num_nodes()],
            drained: self.drained.clone(),
            probation: self.probation.clone(),
        };
        empty.find_fit(shape).is_some()
    }

    /// Allocate the placement `find_fit` returned.
    pub fn alloc(&mut self, x: usize, y: usize, shape: Mesh) -> Partition {
        debug_assert!(self.rect_fits(x, y, shape));
        let mut nodes = Vec::with_capacity(shape.num_nodes());
        for dy in 0..shape.rows {
            for dx in 0..shape.cols {
                let c = self.mesh.node_at(x + dx, y + dy);
                self.busy[c] = true;
                nodes.push(c);
            }
        }
        Partition { x, y, shape, nodes }
    }

    /// Release a partition's cells (drained cells stay drained).
    pub fn free(&mut self, p: &Partition) {
        for &c in &p.nodes {
            self.busy[c] = false;
        }
    }

    /// Permanently remove a crashed node from service.
    pub fn drain(&mut self, node: NodeId) {
        assert!(node < self.nodes, "cannot drain phantom cell {node}");
        self.drained[node] = true;
        self.probation[node] = 0;
    }

    /// Drain a crashed node *on probation*: it stays out of service
    /// for `intervals` clean scheduler intervals (ticked by
    /// [`NodeMap::tick_probation`]), then reintegrates. `intervals`
    /// must be >= 1 — a zero-interval probation is just not draining.
    pub fn drain_probation(&mut self, node: NodeId, intervals: u32) {
        assert!(node < self.nodes, "cannot drain phantom cell {node}");
        assert!(intervals >= 1, "probation needs at least one interval");
        // A permanent drain is never downgraded to probation.
        if self.drained[node] && self.probation[node] == 0 {
            return;
        }
        self.drained[node] = true;
        self.probation[node] = self.probation[node].max(intervals);
    }

    /// One clean interval elapsed: tick every probationary cell down
    /// and reintegrate those whose counter reaches 0. Returns the
    /// reintegrated node ids, ascending — deterministic, so callers
    /// can journal them.
    pub fn tick_probation(&mut self) -> Vec<NodeId> {
        let mut healed = Vec::new();
        for c in 0..self.nodes {
            if self.probation[c] == 0 {
                continue;
            }
            self.probation[c] -= 1;
            if self.probation[c] == 0 {
                self.drained[c] = false;
                healed.push(c);
            }
        }
        healed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map16() -> NodeMap {
        NodeMap::new(Mesh::new(4, 4), 16)
    }

    #[test]
    fn first_fit_packs_row_major_without_overlap() {
        let mut m = map16();
        let mut parts = Vec::new();
        for _ in 0..8 {
            let (x, y, s) = m.find_fit(Mesh::new(2, 1)).expect("fits");
            parts.push(m.alloc(x, y, s));
        }
        // 8 2x1 partitions tile the 4x4 machine exactly.
        assert!(m.find_fit(Mesh::new(1, 1)).is_none());
        for (i, a) in parts.iter().enumerate() {
            for b in &parts[i + 1..] {
                assert!(!a.overlaps(b), "{a:?} overlaps {b:?}");
            }
        }
        assert_eq!(parts[0].nodes, vec![0, 1]);
        m.free(&parts[3]);
        let (x, y, s) = m.find_fit(Mesh::new(2, 1)).unwrap();
        assert_eq!(m.alloc(x, y, s), parts[3], "freed hole is refilled first-fit");
    }

    #[test]
    fn transposed_orientation_is_tried_second() {
        let mut m = map16();
        // Fill the top three rows entirely.
        let (x, y, s) = m.find_fit(Mesh::new(4, 3)).unwrap();
        m.alloc(x, y, s);
        // A 1x4-shaped request only fits the remaining row transposed.
        let (_, y, s) = m.find_fit(Mesh::new(1, 4)).expect("transpose fits");
        assert_eq!((s.cols, s.rows), (4, 1));
        assert_eq!(y, 3);
    }

    #[test]
    fn phantom_cells_never_allocate() {
        // 13 nodes on a 4x4 grid: cells 13..16 are routers only.
        let mut m = NodeMap::new(Mesh::new(4, 4), 13);
        assert!(m.find_fit(Mesh::new(4, 4)).is_none(), "phantom row blocks 4x4");
        assert!(!m.feasible(Mesh::new(4, 4)));
        let (x, y, s) = m.find_fit(Mesh::new(4, 3)).expect("top rows are whole");
        let p = m.alloc(x, y, s);
        assert!(p.nodes.iter().all(|&c| c < 13));
        // The bottom row only has node 12: a single cell still fits there.
        let (x, y, s) = m.find_fit(Mesh::new(1, 1)).unwrap();
        assert_eq!(m.alloc(x, y, s).nodes, vec![12]);
        assert!(m.find_fit(Mesh::new(1, 1)).is_none());
    }

    #[test]
    fn drain_removes_cells_for_good() {
        let mut m = map16();
        m.drain(5);
        assert_eq!(m.usable_nodes(), 15);
        assert_eq!(m.drained(), vec![5]);
        // A full-machine rectangle is now permanently infeasible...
        assert!(!m.feasible(Mesh::new(4, 4)));
        // ...but smaller rectangles route around the drained cell.
        let (x, y, s) = m.find_fit(Mesh::new(4, 1)).unwrap();
        assert_eq!(y, 0);
        let p = m.alloc(x, y, s);
        assert!(!p.nodes.contains(&5));
        m.free(&p);
        // Freeing never resurrects a drained cell.
        assert!(!m.feasible(Mesh::new(4, 4)));
    }

    #[test]
    fn probation_drains_then_reintegrates_after_clean_intervals() {
        let mut m = map16();
        m.drain_probation(5, 2);
        assert_eq!(m.drained(), vec![5], "probationary cells are out of service");
        assert!(!m.feasible(Mesh::new(4, 4)));
        assert_eq!(m.tick_probation(), vec![], "one clean interval is not enough");
        assert_eq!(m.drained(), vec![5]);
        assert_eq!(m.tick_probation(), vec![5], "second interval reintegrates");
        assert_eq!(m.drained(), vec![]);
        assert!(m.feasible(Mesh::new(4, 4)), "the healed cell allocates again");

        // A permanent drain is never downgraded by a later probation,
        // and re-draining a probationary cell extends, not shortens.
        m.drain(3);
        m.drain_probation(3, 1);
        assert_eq!(m.tick_probation(), vec![]);
        assert_eq!(m.drained(), vec![3], "permanent means permanent");
        m.drain_probation(7, 3);
        m.drain_probation(7, 1);
        assert_eq!(m.tick_probation(), vec![]);
        assert_eq!(m.tick_probation(), vec![]);
        assert_eq!(m.tick_probation(), vec![7], "the longer probation wins");
    }
}
