//! Batch results: per-job records and the aggregate report, in human
//! and stable-JSON form.
//!
//! The JSON is hand-rolled with a fixed key order and a formatter that
//! never emits exponents, so the same batch produces a byte-identical
//! artifact on every run — the golden-file CI test and the determinism
//! property both diff it literally.

use std::fmt::Write as _;

use vbus_sim::Mesh;
use vpce_trace::critical::Breakdown;

use crate::job::Policy;
use crate::partition::Partition;

/// One executed attempt: when it ran and exactly where. The audit
/// trail behind the no-overlap safety property and the CI drain
/// checks; not part of the JSON report.
#[derive(Debug, Clone)]
pub struct AttemptLog {
    pub job: String,
    /// 0-based attempt number (> 0 means a requeue).
    pub attempt: u32,
    pub start: f64,
    pub end: f64,
    pub partition: Partition,
    pub ok: bool,
}

/// Terminal state of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Completed (possibly after requeues).
    Done,
    /// All attempts exhausted, or the job became infeasible after a
    /// node drain.
    Failed,
    /// Refused at admission (never queued).
    Rejected,
}

impl JobStatus {
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Rejected => "rejected",
        }
    }
}

/// Everything the scheduler learned about one job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    pub name: String,
    /// Fair-share tenant (`"-"` when the job claimed none).
    pub tenant: String,
    pub ranks: usize,
    /// Partition rectangle as placed for the final attempt
    /// (requested shape for jobs that never started).
    pub shape: Mesh,
    pub status: JobStatus,
    pub arrival: f64,
    /// First-attempt start time (`None` for rejected jobs).
    pub start: Option<f64>,
    /// Completion / failure time.
    pub end: Option<f64>,
    /// Total virtual seconds spent queued (across requeues).
    pub queue_wait: f64,
    /// Machine node ids of the final placement.
    pub nodes: Vec<usize>,
    pub attempts: u32,
    pub requeues: u32,
    /// Times the job was checkpointed off its partition and resumed
    /// later (`vpce-serve` preemption; always 0 in plain batch runs).
    pub preemptions: u32,
    /// `Full`-mode byte-identity of the final arrays against the
    /// fault-free dry run (`None` when the job never finished or the
    /// batch ran analytically).
    pub identical: Option<bool>,
    /// Stable error kind + one-line message for failed/rejected jobs.
    pub error: Option<(String, String)>,
    pub missed_deadline: bool,
    /// Critical-path components of the final attempt, queue wait
    /// included (tiles `[0, turnaround]`).
    pub breakdown: Option<Breakdown>,
    pub net_messages: u64,
    pub net_bytes: u64,
}

impl JobRecord {
    /// Turnaround: arrival to completion.
    pub fn makespan(&self) -> Option<f64> {
        self.end.map(|e| e - self.arrival)
    }
}

/// The whole batch: per-job records plus aggregates.
#[derive(Debug, Clone)]
pub struct BatchReport {
    pub nodes: usize,
    pub mesh: Mesh,
    pub policy: Policy,
    pub seed: u64,
    pub records: Vec<JobRecord>,
    /// Most partitions simultaneously resident on the mesh.
    pub peak_concurrent: usize,
    /// Nodes drained by rank crashes, ascending.
    pub drained: Vec<usize>,
    /// Virtual time of the last completion.
    pub horizon: f64,
    /// Busy node-seconds / (usable node-seconds over the horizon).
    pub utilization: f64,
    /// Node-seconds charged per tenant at placement, ascending by
    /// name. Only rendered when some job claimed a real tenant.
    pub tenant_usage: Vec<(String, f64)>,
    /// Whole-cluster Chrome timeline (one lane per machine node); the
    /// CLI writes it on `--trace`, it is not part of the JSON report.
    pub trace_json: String,
    /// Every executed attempt with its interval and partition.
    pub attempts: Vec<AttemptLog>,
}

impl BatchReport {
    /// Process exit code for the batch: 4 if any job was refused at
    /// admission, else 3 if any admitted job failed, else 0 (a batch
    /// that survived via requeues exits clean).
    pub fn exit_code(&self) -> i32 {
        if self.rejected() > 0 {
            4
        } else if self.failed() > 0 {
            3
        } else {
            0
        }
    }

    pub fn done(&self) -> usize {
        self.count(JobStatus::Done)
    }
    pub fn failed(&self) -> usize {
        self.count(JobStatus::Failed)
    }
    pub fn rejected(&self) -> usize {
        self.count(JobStatus::Rejected)
    }
    fn count(&self, s: JobStatus) -> usize {
        self.records.iter().filter(|r| r.status == s).count()
    }

    pub fn requeues(&self) -> u32 {
        self.records.iter().map(|r| r.requeues).sum()
    }

    /// Completed jobs per virtual second over the horizon.
    pub fn throughput(&self) -> f64 {
        if self.horizon > 0.0 {
            self.done() as f64 / self.horizon
        } else {
            0.0
        }
    }

    fn finished_metric(&self, f: impl Fn(&JobRecord) -> Option<f64>) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.status == JobStatus::Done)
            .filter_map(f)
            .collect();
        v.sort_by(f64::total_cmp);
        v
    }

    /// `(p50, p99)` of queue wait over completed jobs.
    pub fn queue_wait_percentiles(&self) -> (f64, f64) {
        let v = self.finished_metric(|r| Some(r.queue_wait));
        (percentile(&v, 50.0), percentile(&v, 99.0))
    }

    /// `(p50, p99)` of turnaround over completed jobs.
    pub fn makespan_percentiles(&self) -> (f64, f64) {
        let v = self.finished_metric(|r| r.makespan());
        (percentile(&v, 50.0), percentile(&v, 99.0))
    }

    /// The human report `vpcec --batch` prints.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "batch: {} nodes ({}x{} mesh) | policy {} | seed {}",
            self.nodes, self.mesh.cols, self.mesh.rows, self.policy.name(), self.seed
        );
        let _ = writeln!(
            out,
            "  jobs: {} submitted | {} done | {} failed | {} rejected | {} requeues",
            self.records.len(),
            self.done(),
            self.failed(),
            self.rejected(),
            self.requeues()
        );
        let _ = writeln!(
            out,
            "  peak concurrency {} partitions | utilization {:.1}% | horizon {:.6}s",
            self.peak_concurrent,
            self.utilization * 100.0,
            self.horizon
        );
        let (qw50, qw99) = self.queue_wait_percentiles();
        let (ms50, ms99) = self.makespan_percentiles();
        let _ = writeln!(
            out,
            "  queue wait p50 {:.6}s p99 {:.6}s | makespan p50 {:.6}s p99 {:.6}s",
            qw50, qw99, ms50, ms99
        );
        let _ = writeln!(
            out,
            "  throughput {:.3} jobs/s",
            self.throughput()
        );
        if !self.drained.is_empty() {
            let ids: Vec<String> = self.drained.iter().map(|n| n.to_string()).collect();
            let _ = writeln!(out, "  drained nodes: {}", ids.join(", "));
        }
        if self.has_real_tenants() {
            let parts: Vec<String> = self
                .tenant_usage
                .iter()
                .map(|(t, u)| format!("{t} {u:.6} node-s"))
                .collect();
            let _ = writeln!(out, "  tenant usage: {}", parts.join(" | "));
        }
        let _ = writeln!(
            out,
            "  {:<10} {:>5} {:>5} {:>8} {:>10} {:>10} {:>10} {:>4} notes",
            "job", "ranks", "shape", "status", "arrive", "wait", "makespan", "try"
        );
        for r in &self.records {
            let shape = format!("{}x{}", r.shape.cols, r.shape.rows);
            let mk = r
                .makespan()
                .map(|m| format!("{m:.6}"))
                .unwrap_or_else(|| "-".into());
            let mut notes = Vec::new();
            if r.requeues > 0 {
                notes.push(format!("requeued x{}", r.requeues));
            }
            if let Some(id) = r.identical {
                notes.push(format!("identical {id}"));
            }
            if r.missed_deadline {
                notes.push("missed deadline".into());
            }
            if let Some((kind, _)) = &r.error {
                notes.push(kind.clone());
            }
            let _ = writeln!(
                out,
                "  {:<10} {:>5} {:>5} {:>8} {:>10.6} {:>10.6} {:>10} {:>4} {}",
                r.name,
                r.ranks,
                shape,
                r.status.name(),
                r.arrival,
                r.queue_wait,
                mk,
                r.attempts,
                notes.join("; ")
            );
        }
        out
    }

    /// Stable JSON: fixed key order, no exponents, byte-identical for
    /// identical batches.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"nodes\": {},", self.nodes);
        let _ = writeln!(s, "  \"mesh\": \"{}x{}\",", self.mesh.cols, self.mesh.rows);
        let _ = writeln!(s, "  \"policy\": \"{}\",", self.policy.name());
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"submitted\": {},", self.records.len());
        let _ = writeln!(s, "  \"done\": {},", self.done());
        let _ = writeln!(s, "  \"failed\": {},", self.failed());
        let _ = writeln!(s, "  \"rejected\": {},", self.rejected());
        let _ = writeln!(s, "  \"requeues\": {},", self.requeues());
        let _ = writeln!(s, "  \"peak_concurrent\": {},", self.peak_concurrent);
        let drained: Vec<String> = self.drained.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(s, "  \"drained\": [{}],", drained.join(", "));
        let _ = writeln!(s, "  \"horizon_s\": {},", json_num(self.horizon));
        let _ = writeln!(s, "  \"throughput_jobs_per_s\": {},", json_num(self.throughput()));
        let _ = writeln!(s, "  \"utilization\": {},", json_num(self.utilization));
        let (qw50, qw99) = self.queue_wait_percentiles();
        let (ms50, ms99) = self.makespan_percentiles();
        let _ = writeln!(s, "  \"queue_wait_p50_s\": {},", json_num(qw50));
        let _ = writeln!(s, "  \"queue_wait_p99_s\": {},", json_num(qw99));
        let _ = writeln!(s, "  \"makespan_p50_s\": {},", json_num(ms50));
        let _ = writeln!(s, "  \"makespan_p99_s\": {},", json_num(ms99));
        if self.has_real_tenants() {
            let parts: Vec<String> = self
                .tenant_usage
                .iter()
                .map(|(t, u)| format!("{}: {}", json_str(t), json_num(*u)))
                .collect();
            let _ = writeln!(s, "  \"tenant_usage_node_s\": {{{}}},", parts.join(", "));
        }
        s.push_str("  \"jobs\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            s.push_str(&job_json(r, "    "));
            s.push_str(if i + 1 < self.records.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// True when any job claimed a tenant other than the implicit one.
    fn has_real_tenants(&self) -> bool {
        self.records
            .iter()
            .any(|r| r.tenant != crate::job::DEFAULT_TENANT)
    }
}

/// One job record as stable JSON (fixed key order, `pad`-indented, no
/// trailing newline). Public so `vpce-serve` renders its reports in
/// the same shape the batch goldens diff.
pub fn job_json(r: &JobRecord, pad: &str) -> String {
    let mut s = format!("{pad}{{\n");
    let p = format!("{pad}  ");
    let _ = writeln!(s, "{p}\"name\": {},", json_str(&r.name));
    let _ = writeln!(s, "{p}\"tenant\": {},", json_str(&r.tenant));
    let _ = writeln!(s, "{p}\"ranks\": {},", r.ranks);
    let _ = writeln!(s, "{p}\"shape\": \"{}x{}\",", r.shape.cols, r.shape.rows);
    let _ = writeln!(s, "{p}\"status\": \"{}\",", r.status.name());
    let _ = writeln!(s, "{p}\"arrival_s\": {},", json_num(r.arrival));
    let _ = writeln!(s, "{p}\"start_s\": {},", json_opt(r.start));
    let _ = writeln!(s, "{p}\"end_s\": {},", json_opt(r.end));
    let _ = writeln!(s, "{p}\"queue_wait_s\": {},", json_num(r.queue_wait));
    let _ = writeln!(s, "{p}\"makespan_s\": {},", json_opt(r.makespan()));
    let nodes: Vec<String> = r.nodes.iter().map(|n| n.to_string()).collect();
    let _ = writeln!(s, "{p}\"nodes\": [{}],", nodes.join(", "));
    let _ = writeln!(s, "{p}\"attempts\": {},", r.attempts);
    let _ = writeln!(s, "{p}\"requeues\": {},", r.requeues);
    let _ = writeln!(s, "{p}\"preemptions\": {},", r.preemptions);
    let ident = match r.identical {
        Some(b) => b.to_string(),
        None => "null".into(),
    };
    let _ = writeln!(s, "{p}\"identical\": {ident},");
    let _ = writeln!(s, "{p}\"missed_deadline\": {},", r.missed_deadline);
    match &r.error {
        Some((kind, msg)) => {
            let _ = writeln!(s, "{p}\"error_kind\": {},", json_str(kind));
            let _ = writeln!(s, "{p}\"error\": {},", json_str(msg));
        }
        None => {
            let _ = writeln!(s, "{p}\"error_kind\": null,");
            let _ = writeln!(s, "{p}\"error\": null,");
        }
    }
    match &r.breakdown {
        Some(b) => {
            let _ = writeln!(
                s,
                "{p}\"breakdown\": {{\"queue\": {}, \"compute\": {}, \"setup\": {}, \"occupancy\": {}, \"wait\": {}, \"recovery\": {}}},",
                json_num(b.queue),
                json_num(b.compute),
                json_num(b.setup),
                json_num(b.occupancy),
                json_num(b.wait),
                json_num(b.recovery),
            );
        }
        None => {
            let _ = writeln!(s, "{p}\"breakdown\": null,");
        }
    }
    let _ = writeln!(s, "{p}\"net_messages\": {},", r.net_messages);
    let _ = writeln!(s, "{p}\"net_bytes\": {}", r.net_bytes);
    let _ = write!(s, "{pad}}}");
    s
}

/// Nearest-rank percentile of an ascending-sorted slice (0 if empty).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A float as a JSON number. Rust's `Display` for `f64` never emits
/// exponents; non-finite values mean a broken batch and assert.
pub fn json_num(v: f64) -> String {
    assert!(v.is_finite(), "non-finite value in batch report: {v}");
    let s = format!("{v}");
    debug_assert!(!s.contains(['e', 'E']), "exponent in JSON number: {s}");
    s
}

/// An optional float as a JSON number or `null`.
pub fn json_opt(v: Option<f64>) -> String {
    v.map(json_num).unwrap_or_else(|| "null".into())
}

/// A string as a JSON string literal (quotes included).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, status: JobStatus, wait: f64, end: Option<f64>) -> JobRecord {
        JobRecord {
            name: name.into(),
            tenant: crate::job::DEFAULT_TENANT.into(),
            ranks: 2,
            shape: Mesh::new(2, 1),
            status,
            arrival: 0.0,
            start: end.map(|_| wait),
            end,
            queue_wait: wait,
            nodes: vec![0, 1],
            attempts: 1,
            requeues: 0,
            preemptions: 0,
            identical: end.map(|_| true),
            error: None,
            missed_deadline: false,
            breakdown: None,
            net_messages: 3,
            net_bytes: 128,
        }
    }

    fn report(records: Vec<JobRecord>) -> BatchReport {
        BatchReport {
            nodes: 16,
            mesh: Mesh::new(4, 4),
            policy: Policy::Backfill,
            seed: 1,
            records,
            peak_concurrent: 2,
            drained: vec![],
            horizon: 1.0,
            utilization: 0.25,
            tenant_usage: Vec::new(),
            trace_json: String::new(),
            attempts: Vec::new(),
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 99.0), 4.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn aggregates_count_by_status() {
        let rep = report(vec![
            record("a", JobStatus::Done, 0.1, Some(0.5)),
            record("b", JobStatus::Done, 0.3, Some(0.9)),
            record("c", JobStatus::Failed, 0.0, Some(1.0)),
            record("d", JobStatus::Rejected, 0.0, None),
        ]);
        assert_eq!((rep.done(), rep.failed(), rep.rejected()), (2, 1, 1));
        assert_eq!(rep.throughput(), 2.0);
        let (p50, p99) = rep.queue_wait_percentiles();
        assert_eq!((p50, p99), (0.1, 0.3), "failed/rejected jobs excluded");
    }

    #[test]
    fn json_is_stable_and_escapes_strings() {
        let mut r = record("we\"ird", JobStatus::Failed, 0.0, Some(1.0));
        r.error = Some(("rank-crash".into(), "rank 1 crashed".into()));
        let rep = report(vec![r]);
        let a = rep.to_json();
        assert_eq!(a, rep.to_json(), "rendering is pure");
        assert!(a.contains("\"we\\\"ird\""), "{a}");
        assert!(a.contains("\"error_kind\": \"rank-crash\""), "{a}");
        assert!(a.contains("\"policy\": \"backfill\""), "{a}");
    }

    #[test]
    fn tenant_usage_renders_only_for_real_tenants() {
        let mut rep = report(vec![record("a", JobStatus::Done, 0.1, Some(0.5))]);
        rep.tenant_usage = vec![("-".into(), 1.0)];
        assert!(!rep.to_json().contains("tenant_usage_node_s"));
        assert!(!rep.render_human().contains("tenant usage"));
        rep.records[0].tenant = "acme".into();
        rep.tenant_usage = vec![("acme".into(), 1.0)];
        assert!(rep.to_json().contains("\"tenant_usage_node_s\": {\"acme\": 1}"));
        assert!(rep.to_json().contains("\"tenant\": \"acme\""));
        assert!(rep.render_human().contains("tenant usage: acme"));
    }

    #[test]
    fn human_report_lists_every_job() {
        let rep = report(vec![
            record("a", JobStatus::Done, 0.1, Some(0.5)),
            record("b", JobStatus::Rejected, 0.0, None),
        ]);
        let h = rep.render_human();
        assert!(h.contains("2 submitted | 1 done"), "{h}");
        assert!(h.lines().any(|l| l.contains("rejected")), "{h}");
        assert!(h.contains("identical true"), "{h}");
    }
}
