//! # vpce-sched — gang scheduler / batch job server for the simulated cluster
//!
//! The paper runs exactly one compiled SPMD program across the whole
//! machine. This crate adds the middleware tier a *usable* machine
//! needs (the "cluster job management" layer of the Cluster Computing
//! White Paper): many jobs, submitted over time, contending for the
//! mesh — and a scheduler that decides which job runs where and when.
//!
//! Everything is **deterministic virtual time**. Job arrivals, queue
//! waits, partition lifetimes and completions all live on the same
//! virtual clock the network simulator uses; the same jobfile and seed
//! produce a byte-identical batch report on every run.
//!
//! The moving parts:
//!
//! * [`JobSpec`] / [`BatchSpec`] — the job model and the line-oriented
//!   jobfile format (`job name=… ranks=… workload=… faults=…`), plus a
//!   seeded synthetic arrival generator (`storm count=… mean-gap=…`)
//!   for traffic-storm scenarios.
//! * [`NodeMap`] — the machine as a grid of allocatable node cells:
//!   rectangular partitions are carved first-fit (row-major anchors,
//!   transposed orientation as a fallback), crashed nodes are drained.
//! * [`Scheduler`] — the event loop: priority-ordered FCFS with
//!   *conservative backfill* (a blocked wide job gets a reservation;
//!   smaller jobs may slide past only if they provably finish before
//!   the reservation or avoid its rectangle — so backfill never
//!   starves the head of the queue), admission control with typed
//!   [`vpce_faults::VpceError::AdmissionRejected`] errors, node drain
//!   on rank crashes, and bounded requeue with per-attempt re-seeded
//!   fault schedules.
//! * [`BatchReport`] — per-job and aggregate results (throughput,
//!   p50/p99 queue wait and makespan, utilization, requeues) in human
//!   and stable-JSON form, plus a whole-cluster Chrome timeline.
//!
//! **Isolation.** Each job attempt executes in its own
//! [`mpi2::Universe`] over a [`cluster_sim::ClusterConfig`] built for
//! its private partition mesh: windows, `NetStats`, `RankStats` and
//! trace buffers are per-job by construction — concurrent jobs cannot
//! read or corrupt each other's counters.

#![forbid(unsafe_code)]

pub mod job;
pub mod partition;
pub mod report;
pub mod run;
pub mod sched;

pub use job::{
    decode_inline, encode_inline, BatchSpec, JobSource, JobSpec, JobfileCode, JobfileError,
    Policy, StormSpec, TenantSpec, DEFAULT_TENANT,
};
pub use partition::{NodeMap, Partition};
pub use report::{AttemptLog, BatchReport, JobRecord, JobStatus};
pub use run::AttemptOutcome;
pub use sched::{run_batch, BatchOptions, Scheduler, SourceLoader};
// Jobfile `recover=` values and their ledgers, for downstream crates
// (vpce-serve) that handle attempt outcomes without a direct
// dependency on the recovery crate.
pub use vpce_recover::{RecoverSpec, RecoveryLedger};
