//! The gang scheduler's deterministic event loop.
//!
//! Virtual time advances from event to event: job arrivals and
//! partition completions. At every event the scheduler runs one
//! placement pass over the priority-ordered queue:
//!
//! * **FCFS** — the head of the queue is placed first-fit; while it
//!   cannot be placed, nothing behind it may start.
//! * **Conservative backfill** — a blocked head gets a *reservation*:
//!   the earliest future time (simulating the frees of the running
//!   jobs, in completion order) at which its rectangle fits, and where.
//!   A later job may slide past the head only if it fits right now and
//!   either provably completes before the reservation time or its
//!   rectangle is disjoint from the reserved one. Either way the
//!   reservation is never delayed, so a wide job cannot starve.
//!
//! Attempt outcomes are *pure functions* of (program, partition shape,
//! fault schedule, attempt number) — the scheduler computes them at
//! decision time, uses the resulting makespan for backfill arithmetic,
//! and replays nothing. A fault-failed attempt still occupies its
//! partition for the fault-free makespan (the "heartbeat deadline" at
//! which the failure is detected), then the job is requeued with a
//! re-seeded schedule or declared failed once its retry budget is
//! spent. A rank crash additionally *drains* the machine node that
//! hosted the crashed rank: queued jobs route around it, and queued
//! jobs whose rectangle can no longer fit anywhere fail with a typed
//! `AdmissionInfeasible`.

use std::cmp::Reverse;
use std::collections::BTreeMap;

use spmd_rt::{ExecMode, RunReport, VpceError};
use vbus_sim::Mesh;
use vpce_machine::MachineSpec;
use vpce_trace::{EventKind, Lane, Tracer};

use crate::job::{BatchSpec, JobSpec, Policy, TenantSpec};
use crate::partition::{NodeMap, Partition};
use crate::report::{AttemptLog, BatchReport, JobRecord, JobStatus};
use crate::run::{self, AttemptOutcome, Prepared};

pub use crate::run::SourceLoader;

/// Knobs the CLI resolves before handing a batch to the scheduler.
/// Jobfile header directives win over `nodes`/`policy`; `seed`
/// (`--sched-seed`) wins over the jobfile's `seed=`.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    pub nodes: usize,
    pub policy: Policy,
    pub seed: Option<u64>,
    pub mode: ExecMode,
    /// Crashed-node probation in clean intervals (`None` = drain for
    /// good); the jobfile's `probation=` header wins over this.
    pub probation: Option<u32>,
    /// Batch-level default machine description (`--machine`); the
    /// jobfile's `machine=` header and per-job `machine=` fields win.
    /// `None` is the hard-coded paper machine.
    pub machine: Option<MachineSpec>,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            nodes: 16,
            policy: Policy::Backfill,
            seed: None,
            mode: ExecMode::Full,
            probation: None,
            machine: None,
        }
    }
}

/// Parse-level resolution + admission + the event loop, in one call.
/// `Err` is usage-level (empty batch, storm name collision); every
/// per-job failure is a typed record inside the report instead.
pub fn run_batch(
    spec: &BatchSpec,
    opts: &BatchOptions,
    loader: &SourceLoader,
) -> Result<BatchReport, String> {
    let nodes = spec.nodes.unwrap_or(opts.nodes);
    let policy = spec.policy.unwrap_or(opts.policy);
    let seed = opts.seed.or(spec.seed).unwrap_or(0);
    let machine = match &spec.machine {
        // Header names are screened at parse time (`VPCE312`), so the
        // built-in lookup cannot miss here.
        Some(name) => Some(MachineSpec::builtin(name).ok_or_else(|| {
            format!("jobfile names unknown machine `{name}`")
        })?),
        None => opts.machine.clone(),
    };
    let jobs = spec.materialize(seed).map_err(|e| e.to_string())?;
    if jobs.is_empty() {
        return Err("jobfile submits no jobs".into());
    }
    let mut sched = Scheduler::new_on(jobs, nodes, policy, seed, opts.mode, loader, machine.as_ref())?
        .with_tenants(spec.tenants.clone())
        .with_probation(spec.probation.or(opts.probation));
    Ok(sched.run())
}

/// Per-job scheduler state.
struct JobState {
    spec: JobSpec,
    /// Admission outcome: compiled + dry-run, or the typed rejection.
    prepared: Result<Prepared, VpceError>,
    status: Option<JobStatus>,
    /// Attempts executed (or in flight).
    attempts: u32,
    queue_wait: f64,
    enqueued_at: f64,
    first_start: Option<f64>,
    end: Option<f64>,
    /// Final placement (last attempt's partition).
    placed: Option<Partition>,
    error: Option<(String, String)>,
    /// Outcome of the *next* attempt, computed lazily at decision time
    /// (it is a pure function of the job and attempt number).
    next_outcome: Option<Result<AttemptOutcome, VpceError>>,
    final_report: Option<RunReport>,
    /// Rollback-recovery ledger of the finishing attempt, when the job
    /// armed `recover=` (the recovery-time charge in its breakdown).
    final_recovery: Option<vpce_recover::RecoveryLedger>,
}

impl JobState {
    fn shape(&self) -> Mesh {
        self.prepared
            .as_ref()
            .map(|p| p.shape)
            .unwrap_or_else(|_| cluster_sim::partition_shape(self.spec.ranks.max(1)))
    }
}

/// A partition currently executing an attempt.
struct Running {
    job: usize,
    part: Partition,
    start: f64,
    end: f64,
    attempt: u32,
    outcome: Result<AttemptOutcome, VpceError>,
}

/// The batch scheduler. Constructed over a materialized job list;
/// [`Scheduler::run`] plays the whole batch and returns the report.
pub struct Scheduler {
    jobs: Vec<JobState>,
    map: NodeMap,
    nodes: usize,
    policy: Policy,
    seed: u64,
    mode: ExecMode,
    now: f64,
    /// Indices not yet arrived, ascending `(arrival, idx)`.
    arrivals: Vec<usize>,
    /// Indices queued and waiting for a partition.
    queue: Vec<usize>,
    running: Vec<Running>,
    peak_concurrent: usize,
    busy_cell_s: f64,
    /// Declared fair-share tenants by name (jobs naming an undeclared
    /// tenant get share 1, no quota).
    tenants: BTreeMap<String, TenantSpec>,
    /// Node-seconds charged per tenant at placement time — the
    /// fair-share ledger the queue order normalises by share.
    usage: BTreeMap<String, f64>,
    tracer: Tracer,
    /// Every attempt interval + placement, for audits and the
    /// no-overlap safety property.
    attempts: Vec<AttemptLog>,
    /// Probation length for crashed nodes, in clean intervals
    /// (successful attempt completions). `None` = permanent drain.
    probation: Option<u32>,
}

impl Scheduler {
    /// Admit `jobs` onto an `nodes`-PC machine. Every job is compiled
    /// and dry-run here (rejections become records, not errors); the
    /// loader resolves `src=` paths.
    pub fn new(
        jobs: Vec<JobSpec>,
        nodes: usize,
        policy: Policy,
        seed: u64,
        mode: ExecMode,
        loader: &SourceLoader,
    ) -> Result<Scheduler, String> {
        Scheduler::new_on(jobs, nodes, policy, seed, mode, loader, None)
    }

    /// [`Scheduler::new`] with a batch-level default machine
    /// description; jobs with their own `machine=` field override it.
    pub fn new_on(
        jobs: Vec<JobSpec>,
        nodes: usize,
        policy: Policy,
        seed: u64,
        mode: ExecMode,
        loader: &SourceLoader,
        machine: Option<&MachineSpec>,
    ) -> Result<Scheduler, String> {
        if nodes == 0 {
            return Err("batch needs at least one node".into());
        }
        let mesh = Mesh::near_square(nodes);
        let map = NodeMap::new(mesh, nodes);
        let tracer = Tracer::enabled();
        for n in 0..nodes {
            tracer.register_lane(Lane::Rank(n), format!("node {n}"));
        }
        let states: Vec<JobState> = jobs
            .into_iter()
            .map(|spec| {
                let prepared = admit(&spec, nodes, &map, loader, mode, machine);
                JobState {
                    spec,
                    prepared,
                    status: None,
                    attempts: 0,
                    queue_wait: 0.0,
                    enqueued_at: 0.0,
                    first_start: None,
                    end: None,
                    placed: None,
                    error: None,
                    next_outcome: None,
                    final_report: None,
                    final_recovery: None,
                }
            })
            .collect();
        let mut arrivals: Vec<usize> = (0..states.len()).collect();
        arrivals.sort_by(|&a, &b| {
            states[a]
                .spec
                .arrival
                .total_cmp(&states[b].spec.arrival)
                .then(a.cmp(&b))
        });
        Ok(Scheduler {
            jobs: states,
            map,
            nodes,
            policy,
            seed,
            mode,
            now: 0.0,
            arrivals,
            queue: Vec::new(),
            running: Vec::new(),
            peak_concurrent: 0,
            busy_cell_s: 0.0,
            tenants: BTreeMap::new(),
            usage: BTreeMap::new(),
            tracer,
            attempts: Vec::new(),
            probation: None,
        })
    }

    /// Put crashed nodes on probation for `intervals` clean attempt
    /// completions instead of draining them for good. `None` (the
    /// default) keeps permanent drains.
    pub fn with_probation(mut self, intervals: Option<u32>) -> Self {
        self.probation = intervals;
        self
    }

    /// Declare fair-share tenants (the jobfile's `tenant` lines).
    /// Re-checks admission: a job whose partition needs more cells
    /// than its tenant's quota can never start, so it is rejected here
    /// instead of deadlocking the queue.
    pub fn with_tenants(mut self, tenants: Vec<TenantSpec>) -> Self {
        for t in tenants {
            self.tenants.insert(t.name.clone(), t);
        }
        for job in &mut self.jobs {
            let Ok(p) = &job.prepared else { continue };
            let cells = p.shape.cols * p.shape.rows;
            if let Some(q) = self.tenants.get(&job.spec.tenant).and_then(|t| t.quota) {
                if cells > q {
                    job.prepared = Err(VpceError::AdmissionRejected {
                        job: job.spec.name.clone(),
                        reason: format!(
                            "partition of {cells} cells exceeds tenant `{}` quota {q}",
                            job.spec.tenant
                        ),
                    });
                }
            }
        }
        self
    }

    /// Fair-share weight of `tenant` (1 when undeclared).
    fn share(&self, tenant: &str) -> f64 {
        self.tenants.get(tenant).map_or(1.0, |t| t.share)
    }

    /// Concurrent-cell quota of `tenant` (unbounded when undeclared).
    fn quota(&self, tenant: &str) -> Option<usize> {
        self.tenants.get(tenant).and_then(|t| t.quota)
    }

    /// Node cells `tenant` currently holds across running partitions.
    fn held_cells(&self, tenant: &str) -> usize {
        self.running
            .iter()
            .filter(|r| self.jobs[r.job].spec.tenant == tenant)
            .map(|r| r.part.nodes.len())
            .sum()
    }

    /// Would starting a `cells`-cell partition keep `tenant` within
    /// its quota?
    fn quota_allows(&self, tenant: &str, cells: usize) -> bool {
        match self.quota(tenant) {
            Some(q) => self.held_cells(tenant) + cells <= q,
            None => true,
        }
    }

    /// Accumulated usage normalised by share — the fair-share sort
    /// key: the tenant that has consumed least relative to its weight
    /// goes first.
    fn fair_ratio(&self, tenant: &str) -> f64 {
        self.usage.get(tenant).copied().unwrap_or(0.0) / self.share(tenant)
    }

    /// Play the batch to completion.
    pub fn run(&mut self) -> BatchReport {
        loop {
            self.complete_due();
            self.arrive_due();
            self.schedule_pass();
            // With no future events and an idle machine, anything
            // still queued can never start — fail it typed rather
            // than spin.
            if self.running.is_empty() && self.arrivals.is_empty() && !self.queue.is_empty() {
                self.fail_stuck_queue();
            }
            // Advance to the next event: the earlier of the next
            // arrival and the next completion (exact virtual-time
            // comparison — every time here was computed once and is
            // reused, never re-derived).
            let next_arrival = self
                .arrivals
                .first()
                .map(|&i| self.jobs[i].spec.arrival);
            let next_end = self
                .running
                .iter()
                .map(|r| r.end)
                .min_by(f64::total_cmp);
            let t = match (next_arrival, next_end) {
                (Some(a), Some(e)) => a.min(e),
                (Some(a), None) => a,
                (None, Some(e)) => e,
                (None, None) => break,
            };
            self.now = self.now.max(t);
        }
        self.build_report()
    }

    fn complete_due(&mut self) {
        // Deterministic completion order: (end, submission index).
        self.running
            .sort_by(|a, b| a.end.total_cmp(&b.end).then(a.job.cmp(&b.job)));
        while let Some(r) = self.running.first() {
            if r.end > self.now {
                break;
            }
            let r = self.running.remove(0);
            self.map.free(&r.part);
            self.attempts.push(AttemptLog {
                job: self.jobs[r.job].spec.name.clone(),
                attempt: r.attempt,
                start: r.start,
                end: r.end,
                partition: r.part.clone(),
                ok: r.outcome.is_ok(),
            });
            self.settle_attempt(r);
        }
    }

    fn settle_attempt(&mut self, r: Running) {
        let job = &mut self.jobs[r.job];
        job.placed = Some(r.part.clone());
        match r.outcome {
            Ok(out) => {
                job.status = Some(JobStatus::Done);
                job.end = Some(r.end);
                job.final_report = Some(out.report);
                job.final_recovery = out.recovery;
                // A clean completion is one clean interval: tick every
                // probationary node (completions settle in
                // deterministic (end, job) order, so reintegration
                // times are a pure function of the batch).
                self.map.tick_probation();
            }
            Err(e) => {
                // A crashed rank takes its machine node down with it —
                // for good, or on probation when the batch enables
                // reintegration.
                if let VpceError::RankCrash { rank, .. } = &e {
                    if let Some(&node) = r.part.nodes.get(*rank) {
                        match self.probation {
                            Some(p) => self.map.drain_probation(node, p),
                            None => self.map.drain(node),
                        }
                    }
                }
                let job = &mut self.jobs[r.job];
                let retryable = e.is_injected() && r.attempt < job.spec.retries;
                let feasible = self.map.feasible(
                    job.prepared.as_ref().map(|p| p.shape).expect("ran, so admitted"),
                );
                if retryable && feasible {
                    job.enqueued_at = r.end;
                    job.next_outcome = None;
                    self.queue.push(r.job);
                } else if retryable {
                    job.status = Some(JobStatus::Failed);
                    job.end = Some(r.end);
                    let inf = VpceError::AdmissionInfeasible {
                        job: job.spec.name.clone(),
                        need: job.spec.ranks,
                        have: self.map.usable_nodes(),
                    };
                    job.error = Some((inf.kind().into(), inf.to_string()));
                } else {
                    job.status = Some(JobStatus::Failed);
                    job.end = Some(r.end);
                    job.error = Some((e.kind().into(), e.to_string()));
                }
                // Drains may strand other queued jobs; fail them now
                // with the same typed error rather than at loop exit.
                self.sweep_infeasible_queue();
            }
        }
    }

    fn sweep_infeasible_queue(&mut self) {
        let mut kept = Vec::with_capacity(self.queue.len());
        for &idx in &self.queue {
            let shape = self.jobs[idx].shape();
            if self.map.feasible(shape) {
                kept.push(idx);
                continue;
            }
            let job = &mut self.jobs[idx];
            job.status = Some(JobStatus::Failed);
            job.end = Some(self.now);
            job.queue_wait += self.now - job.enqueued_at;
            let e = VpceError::AdmissionInfeasible {
                job: job.spec.name.clone(),
                need: job.spec.ranks,
                have: self.map.usable_nodes(),
            };
            job.error = Some((e.kind().into(), e.to_string()));
        }
        self.queue = kept;
    }

    fn arrive_due(&mut self) {
        while let Some(&idx) = self.arrivals.first() {
            if self.jobs[idx].spec.arrival > self.now {
                break;
            }
            self.arrivals.remove(0);
            let feasible_shape = self.jobs[idx].shape();
            match &self.jobs[idx].prepared {
                Err(e) => {
                    let err = (e.kind().to_string(), e.to_string());
                    let job = &mut self.jobs[idx];
                    job.status = Some(JobStatus::Rejected);
                    job.end = None;
                    job.error = Some(err);
                }
                Ok(_) if !self.map.feasible(feasible_shape) => {
                    let job = &mut self.jobs[idx];
                    let e = VpceError::AdmissionInfeasible {
                        job: job.spec.name.clone(),
                        need: job.spec.ranks,
                        have: self.map.usable_nodes(),
                    };
                    job.status = Some(JobStatus::Rejected);
                    job.error = Some((e.kind().into(), e.to_string()));
                }
                Ok(_) => {
                    let job = &mut self.jobs[idx];
                    job.enqueued_at = self.now;
                    self.queue.push(idx);
                }
            }
        }
    }

    /// Queue order: priority descending, then fair-share ratio
    /// ascending (usage normalised by share — the under-served tenant
    /// goes first), then arrival, then submission order. With a single
    /// tenant every queued job carries the same ratio, so the order
    /// degenerates to the classic priority/arrival one.
    fn sort_queue(&mut self) {
        let mut keyed: Vec<(Reverse<i64>, f64, f64, usize)> = self
            .queue
            .iter()
            .map(|&i| {
                let j = &self.jobs[i];
                (
                    Reverse(j.spec.priority),
                    self.fair_ratio(&j.spec.tenant),
                    j.spec.arrival,
                    i,
                )
            })
            .collect();
        keyed.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then(a.1.total_cmp(&b.1))
                .then(a.2.total_cmp(&b.2))
                .then(a.3.cmp(&b.3))
        });
        self.queue = keyed.into_iter().map(|k| k.3).collect();
    }

    fn schedule_pass(&mut self) {
        loop {
            self.sort_queue();
            let Some(&head) = self.queue.first() else { return };
            let head_shape = self.jobs[head].shape();
            let head_tenant = self.jobs[head].spec.tenant.clone();
            let head_cells = head_shape.cols * head_shape.rows;
            if self.quota_allows(&head_tenant, head_cells) {
                if let Some((x, y, s)) = self.map.find_fit(head_shape) {
                    self.start(head, x, y, s);
                    self.queue.remove(0);
                    continue;
                }
            }
            if self.policy == Policy::Fcfs {
                return;
            }
            // Head is blocked (by space or by its tenant's quota):
            // compute its reservation, then let smaller jobs slide
            // past if they provably cannot delay it.
            let Some((t_res, rect)) = self.reservation(head_shape, &head_tenant, head_cells)
            else {
                // Machine cannot host the head even empty (a drain
                // landed since admission) — sweep will fail it.
                self.sweep_infeasible_queue();
                continue;
            };
            let head_quota = self.quota(&head_tenant);
            let mut started = false;
            for qi in 1..self.queue.len() {
                let idx = self.queue[qi];
                let shape = self.jobs[idx].shape();
                let tenant = self.jobs[idx].spec.tenant.clone();
                if !self.quota_allows(&tenant, shape.cols * shape.rows) {
                    continue;
                }
                let Some((x, y, s)) = self.map.find_fit(shape) else { continue };
                let cand = Partition {
                    x,
                    y,
                    shape: s,
                    nodes: Vec::new(),
                };
                let dur = self.attempt_duration(idx);
                let fits_in_time = self.now + dur <= t_res;
                // A same-tenant slide that outlives the reservation
                // would hold quota the head may need at `t_res`, so it
                // must finish in time when the head's tenant is
                // quota-capped.
                let avoids_rect = !cand.overlaps(&rect)
                    && (tenant != head_tenant || head_quota.is_none());
                if fits_in_time || avoids_rect {
                    self.start(idx, x, y, s);
                    self.queue.remove(qi);
                    started = true;
                    break;
                }
            }
            if !started {
                return;
            }
        }
    }

    /// The head-of-queue reservation: simulate the running partitions
    /// freeing in completion order (quota included) and return the
    /// first time a `shape` partition both fits and is within
    /// `tenant`'s quota, plus where. `None` if it cannot fit even on
    /// the drained empty machine.
    fn reservation(&self, shape: Mesh, tenant: &str, cells: usize) -> Option<(f64, Partition)> {
        let mut ghost = self.map.clone();
        let mut ends: Vec<(f64, usize)> = self
            .running
            .iter()
            .enumerate()
            .map(|(i, r)| (r.end, i))
            .collect();
        ends.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let quota = self.quota(tenant);
        let mut held = self.held_cells(tenant);
        for (end, i) in ends {
            ghost.free(&self.running[i].part);
            if self.jobs[self.running[i].job].spec.tenant == tenant {
                held = held.saturating_sub(self.running[i].part.nodes.len());
            }
            if quota.is_some_and(|q| held + cells > q) {
                continue;
            }
            if let Some((x, y, s)) = ghost.find_fit(shape) {
                return Some((
                    end,
                    Partition { x, y, shape: s, nodes: Vec::new() },
                ));
            }
        }
        None
    }

    /// Makespan of the job's next attempt — computing it forces the
    /// (pure, cached) attempt outcome.
    fn attempt_duration(&mut self, idx: usize) -> f64 {
        let job = &mut self.jobs[idx];
        let prepared = job.prepared.as_ref().expect("queued jobs are admitted");
        if job.next_outcome.is_none() {
            job.next_outcome = Some(run::run_attempt(
                &job.spec, prepared, self.mode, job.attempts,
            ));
        }
        match job.next_outcome.as_ref().expect("just computed") {
            // A recovered attempt holds its partition for the clean
            // makespan plus the recovery-time charge.
            Ok(out) => out.duration(),
            // Heartbeat model: a fault is detected when the job blows
            // its fault-free deadline, so the partition is held that
            // long either way.
            Err(_) => prepared.clean_elapsed,
        }
    }

    fn start(&mut self, idx: usize, x: usize, y: usize, shape: Mesh) {
        let dur = self.attempt_duration(idx);
        let part = self.map.alloc(x, y, shape);
        let job_tenant = self.jobs[idx].spec.tenant.clone();
        let job = &mut self.jobs[idx];
        let outcome = job.next_outcome.take().expect("attempt_duration computed it");
        job.queue_wait += self.now - job.enqueued_at;
        job.first_start.get_or_insert(self.now);
        let attempt = job.attempts;
        job.attempts += 1;
        let end = self.now + dur;
        let label = if attempt == 0 {
            job.spec.name.clone()
        } else {
            format!("{} (retry {attempt})", job.spec.name)
        };
        for &node in &part.nodes {
            self.tracer.push(
                Lane::Rank(node),
                self.now,
                end,
                EventKind::Phase { name: label.clone() },
            );
        }
        let cell_s = part.nodes.len() as f64 * dur;
        self.busy_cell_s += cell_s;
        *self.usage.entry(job_tenant).or_insert(0.0) += cell_s;
        self.running.push(Running {
            job: idx,
            part,
            start: self.now,
            end,
            attempt,
            outcome,
        });
        self.peak_concurrent = self.peak_concurrent.max(self.running.len());
    }

    fn fail_stuck_queue(&mut self) {
        // Everything still queued on an idle machine is unplaceable
        // (admission guarantees a fit on the pristine empty machine,
        // so only drains can get us here). Sweeping may unblock an
        // FCFS queue whose *head* was the stranded job.
        self.sweep_infeasible_queue();
        self.schedule_pass();
        if self.running.is_empty() && !self.queue.is_empty() {
            debug_assert!(false, "feasible job stuck on an idle machine");
            let stuck: Vec<usize> = self.queue.drain(..).collect();
            for idx in stuck {
                let job = &mut self.jobs[idx];
                job.status = Some(JobStatus::Failed);
                job.end = Some(self.now);
                let e = VpceError::Internal {
                    msg: format!("job '{}' stuck on an idle machine", job.spec.name),
                };
                job.error = Some((e.kind().into(), e.to_string()));
            }
        }
    }

    fn build_report(&mut self) -> BatchReport {
        let horizon = self
            .jobs
            .iter()
            .filter_map(|j| j.end)
            .max_by(f64::total_cmp)
            .unwrap_or(0.0);
        let records: Vec<JobRecord> = self
            .jobs
            .iter()
            .map(|j| {
                let status = j.status.unwrap_or(JobStatus::Failed);
                let makespan = j.end.map(|e| e - j.spec.arrival);
                let identical = match (&j.final_report, &j.prepared, self.mode) {
                    (Some(rep), Ok(p), ExecMode::Full) => Some(rep.arrays == p.clean_arrays),
                    _ => None,
                };
                let recovery_s =
                    j.final_recovery.as_ref().map_or(0.0, |l| l.recovery_total());
                let breakdown = j.final_report.as_ref().and_then(|rep| {
                    rep.trace.as_ref().map(|t| {
                        t.critical
                            .breakdown
                            .with_recovery(recovery_s)
                            .with_queue_wait(j.queue_wait)
                    })
                });
                JobRecord {
                    name: j.spec.name.clone(),
                    tenant: j.spec.tenant.clone(),
                    ranks: j.spec.ranks,
                    shape: j
                        .placed
                        .as_ref()
                        .map(|p| p.shape)
                        .unwrap_or_else(|| j.shape()),
                    status,
                    arrival: j.spec.arrival,
                    start: j.first_start,
                    end: j.end,
                    queue_wait: j.queue_wait,
                    nodes: j.placed.as_ref().map(|p| p.nodes.clone()).unwrap_or_default(),
                    attempts: j.attempts,
                    requeues: j.attempts.saturating_sub(1),
                    preemptions: 0,
                    identical,
                    error: j.error.clone(),
                    missed_deadline: match (j.spec.deadline, makespan) {
                        (Some(d), Some(m)) => m > d,
                        _ => false,
                    },
                    breakdown,
                    net_messages: j.final_report.as_ref().map(|r| r.net.p2p_messages).unwrap_or(0),
                    net_bytes: j.final_report.as_ref().map(|r| r.net.p2p_bytes).unwrap_or(0),
                }
            })
            .collect();
        let utilization = if horizon > 0.0 {
            self.busy_cell_s / (self.nodes as f64 * horizon)
        } else {
            0.0
        };
        BatchReport {
            nodes: self.nodes,
            mesh: self.map.mesh(),
            policy: self.policy,
            seed: self.seed,
            records,
            peak_concurrent: self.peak_concurrent,
            drained: self.map.drained(),
            horizon,
            utilization,
            tenant_usage: self
                .usage
                .iter()
                .map(|(t, u)| (t.clone(), *u))
                .collect(),
            trace_json: self.tracer.to_chrome_json(),
            attempts: std::mem::take(&mut self.attempts),
        }
    }
}

/// Admission: machine-shape feasibility, then compile + dry run.
fn admit(
    spec: &JobSpec,
    nodes: usize,
    map: &NodeMap,
    loader: &SourceLoader,
    mode: ExecMode,
    machine: Option<&MachineSpec>,
) -> Result<Prepared, VpceError> {
    if spec.ranks == 0 {
        return Err(VpceError::AdmissionRejected {
            job: spec.name.clone(),
            reason: "requests zero ranks".into(),
        });
    }
    if spec.ranks > nodes {
        return Err(VpceError::AdmissionInfeasible {
            job: spec.name.clone(),
            need: spec.ranks,
            have: nodes,
        });
    }
    let effective = run::resolve_machine(spec, machine)?;
    let shape = run::job_footprint(effective.as_ref(), spec.ranks);
    if !map.feasible(shape) {
        return Err(VpceError::AdmissionRejected {
            job: spec.name.clone(),
            reason: format!(
                "partition {}x{} does not fit the {}-node machine",
                shape.cols, shape.rows, nodes
            ),
        });
    }
    run::prepare_on(spec, loader, mode, machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSource;
    use vpce_faults::FaultSpec;

    fn no_loader() -> impl Fn(&str) -> Result<String, String> {
        |p: &str| Err(format!("no loader for `{p}`"))
    }

    fn mm(name: &str, ranks: usize) -> JobSpec {
        let mut j = JobSpec::new(name, JobSource::Workload("mm".into()), ranks);
        j.params.push(("N".into(), 8));
        j
    }

    fn batch(jobs: Vec<JobSpec>, nodes: usize, policy: Policy) -> (BatchReport, Vec<AttemptLog>) {
        let mut s =
            Scheduler::new(jobs, nodes, policy, 1, ExecMode::Full, &no_loader()).unwrap();
        let rep = s.run();
        let attempts = rep.attempts.clone();
        (rep, attempts)
    }

    #[test]
    fn serial_batch_completes_in_arrival_order() {
        let (rep, _) = batch(vec![mm("a", 2), mm("b", 2)], 2, Policy::Fcfs);
        assert_eq!(rep.done(), 2);
        let a = &rep.records[0];
        let b = &rep.records[1];
        assert_eq!(a.queue_wait, 0.0);
        assert!(b.queue_wait > 0.0, "one 2-node machine serialises the jobs");
        assert_eq!(b.start, a.end, "b starts the instant a frees the mesh");
        assert_eq!(a.identical, Some(true));
        assert_eq!(rep.peak_concurrent, 1);
        assert_eq!(rep.exit_code(), 0);
    }

    #[test]
    fn independent_jobs_gang_schedule_concurrently() {
        let (rep, attempts) = batch(
            (0..8).map(|i| mm(&format!("j{i}"), 2)).collect(),
            16,
            Policy::Backfill,
        );
        assert_eq!(rep.done(), 8);
        assert_eq!(rep.peak_concurrent, 8, "eight 2x1 partitions tile a 4x4 mesh");
        for r in &rep.records {
            assert_eq!(r.queue_wait, 0.0, "{}", r.name);
        }
        // Safety: no two time-overlapping attempts share a node.
        for (i, a) in attempts.iter().enumerate() {
            for b in &attempts[i + 1..] {
                if a.start < b.end && b.start < a.end {
                    assert!(
                        !a.partition.overlaps(&b.partition),
                        "{} and {} overlap",
                        a.job,
                        b.job
                    );
                }
            }
        }
    }

    #[test]
    fn backfill_lets_narrow_jobs_slide_without_starving_the_wide_one() {
        // Two 2-rank jobs hold half of a 2x2 machine; a 4-rank job is
        // head of queue (higher priority) and must still run.
        let mut wide = mm("wide", 4);
        wide.priority = 5;
        wide.arrival = 1e-6;
        let mut late = mm("late", 2);
        late.arrival = 2e-6;
        let (rep, _) = batch(vec![mm("first", 2), wide, late], 4, Policy::Backfill);
        assert_eq!(rep.done(), 3, "{:?}", rep.records.iter().map(|r| (&r.name, r.status.name())).collect::<Vec<_>>());
        let wide_rec = rep.records.iter().find(|r| r.name == "wide").unwrap();
        assert_eq!(wide_rec.status, JobStatus::Done);
    }

    #[test]
    fn oversized_and_broken_jobs_are_rejected_not_run() {
        let broken = JobSpec::new("syn", JobSource::Inline("PROGRAM T\nX = \nEND\n".into()), 1);
        let (rep, attempts) = batch(vec![mm("huge", 32), broken, mm("ok", 2)], 16, Policy::Backfill);
        assert_eq!(rep.rejected(), 2);
        assert_eq!(rep.done(), 1);
        assert_eq!(rep.exit_code(), 4, "admission failure dominates");
        assert!(attempts.iter().all(|a| a.job == "ok"));
        let huge = rep.records.iter().find(|r| r.name == "huge").unwrap();
        assert_eq!(huge.error.as_ref().unwrap().0, "admission-infeasible");
    }

    #[test]
    fn same_seed_same_report_bytes() {
        let jobs = || (0..4).map(|i| mm(&format!("j{i}"), 2)).collect::<Vec<_>>();
        let (a, _) = batch(jobs(), 4, Policy::Backfill);
        let (b, _) = batch(jobs(), 4, Policy::Backfill);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render_human(), b.render_human());
        assert_eq!(a.trace_json, b.trace_json, "cluster timeline is deterministic too");
    }

    #[test]
    fn crashed_job_drains_its_node_and_requeues_byte_identically() {
        // A crash-prone job on a machine with room to requeue
        // elsewhere. Find a seed whose first attempt crashes and a
        // later attempt survives; determinism makes the scan stable.
        let mut found = false;
        for seed in 0..64u64 {
            let mut risky = mm("risky", 2);
            risky.faults = FaultSpec::parse(&format!("crashy,seed={seed}")).unwrap();
            risky.retries = 4;
            let (rep, _) = batch(vec![risky, mm("bystander", 2)], 16, Policy::Backfill);
            let r = rep.records.iter().find(|r| r.name == "risky").unwrap();
            if r.status == JobStatus::Done && r.requeues > 0 {
                assert_eq!(r.identical, Some(true), "healed run must match the dry run");
                assert!(!rep.drained.is_empty(), "the crashed rank's node is drained");
                let drained = &rep.drained;
                let retry = rep
                    .attempts
                    .iter()
                    .find(|a| a.job == "risky" && a.ok)
                    .expect("surviving attempt logged");
                assert!(
                    retry.partition.nodes.iter().all(|n| !drained.contains(n)),
                    "requeued placement avoids the drained node"
                );
                assert_eq!(rep.exit_code(), 0, "a survived batch exits clean");
                found = true;
                break;
            }
        }
        assert!(found, "no seed in 0..64 produced crash-then-survive");
    }

    #[test]
    fn probation_reintegrates_the_crashed_node_after_clean_completions() {
        // The permanent-drain run leaves the crashed node out of
        // service at batch end; the probation run heals it once enough
        // clean completions tick by.
        let mut found = false;
        for seed in 0..64u64 {
            let mk = || {
                let mut risky = mm("risky", 2);
                risky.faults = FaultSpec::parse(&format!("crashy,seed={seed}")).unwrap();
                risky.retries = 4;
                vec![risky, mm("bystander", 2)]
            };
            let (permanent, _) = batch(mk(), 16, Policy::Backfill);
            let r = permanent.records.iter().find(|r| r.name == "risky").unwrap();
            if !(r.status == JobStatus::Done && r.requeues > 0) {
                continue;
            }
            assert!(!permanent.drained.is_empty(), "permanent drain persists");
            let mut s =
                Scheduler::new(mk(), 16, Policy::Backfill, 1, ExecMode::Full, &no_loader())
                    .unwrap()
                    .with_probation(Some(1));
            let rep = s.run();
            let r = rep.records.iter().find(|r| r.name == "risky").unwrap();
            assert_eq!(r.status, JobStatus::Done);
            assert_eq!(r.identical, Some(true), "healing never changes results");
            assert!(
                rep.drained.is_empty(),
                "a clean completion reintegrated the node: {:?}",
                rep.drained
            );
            found = true;
            break;
        }
        assert!(found, "no seed in 0..64 produced crash-then-survive");
    }

    #[test]
    fn recover_armed_jobs_absorb_crashes_without_requeue_or_drain() {
        // The same crash schedule that forces a requeue (and drains a
        // node) without `recover=` completes in-run with it: one
        // attempt, no drain, byte-identical arrays, and the rollback
        // charge surfaces in the breakdown's recovery component.
        let mut found = false;
        for seed in 0..64u64 {
            let mut risky = mm("risky", 4);
            risky.faults = FaultSpec::parse(&format!("crash=0.5,seed={seed}")).unwrap();
            risky.retries = 0;
            let plain = risky.clone();
            let (plain_rep, _) = batch(vec![plain], 16, Policy::Backfill);
            if plain_rep.records[0].status != JobStatus::Failed {
                continue; // this seed never crashes; scan on
            }
            risky.recover = Some(vpce_recover::RecoverSpec::default());
            let (rep, attempts) = batch(vec![risky, mm("bystander", 2)], 16, Policy::Backfill);
            let r = rep.records.iter().find(|r| r.name == "risky").unwrap();
            if r.status != JobStatus::Done {
                continue; // unsurvivable schedule (buddies all died)
            }
            assert_eq!(r.attempts, 1, "recovery absorbs the crash in-run");
            assert_eq!(r.requeues, 0);
            assert_eq!(r.identical, Some(true), "recovered arrays match the dry run");
            assert!(rep.drained.is_empty(), "failover respawns; no node is drained");
            let b = r.breakdown.as_ref().expect("done jobs carry a breakdown");
            assert!(b.recovery > 0.0, "rollback charge lands in the recovery slice");
            assert!(
                attempts.iter().all(|a| a.ok),
                "no failed attempt is ever logged with recovery armed"
            );
            assert_eq!(rep.exit_code(), 0);
            found = true;
            break;
        }
        assert!(found, "no seed in 0..64 produced an absorbable crash");
    }

    #[test]
    fn exhausted_retries_fail_typed() {
        let mut doomed = mm("doomed", 2);
        // crash=1.0 kills every attempt.
        doomed.faults = FaultSpec::parse("crashy,crash=1.0,seed=3").unwrap();
        doomed.retries = 1;
        let (rep, attempts) = batch(vec![doomed], 16, Policy::Backfill);
        let r = &rep.records[0];
        assert_eq!(r.status, JobStatus::Failed);
        assert_eq!(r.attempts, 2, "initial + one requeue");
        assert_eq!(r.error.as_ref().unwrap().0, "rank-crash");
        assert_eq!(rep.exit_code(), 3);
        assert_eq!(attempts.len(), 2);
    }

    #[test]
    fn tenant_quota_caps_concurrency() {
        let mk = |name: &str| {
            let mut j = mm(name, 2);
            j.tenant = "acme".into();
            j
        };
        let jobs = (0..4).map(|i| mk(&format!("a{i}"))).collect();
        let tenants = vec![TenantSpec { name: "acme".into(), share: 1.0, quota: Some(4) }];
        let mut s = Scheduler::new(jobs, 16, Policy::Backfill, 1, ExecMode::Full, &no_loader())
            .unwrap()
            .with_tenants(tenants);
        let rep = s.run();
        assert_eq!(rep.done(), 4);
        assert_eq!(
            rep.peak_concurrent, 2,
            "quota of 4 cells admits two 2-cell partitions at a time"
        );
        assert_eq!(rep.tenant_usage.len(), 1);
        assert!(rep.tenant_usage[0].1 > 0.0);
        assert!(rep.to_json().contains("\"tenant\": \"acme\""));
    }

    #[test]
    fn job_wider_than_its_quota_is_rejected_typed() {
        let mut j = mm("big", 4);
        j.tenant = "tiny".into();
        let tenants = vec![TenantSpec { name: "tiny".into(), share: 1.0, quota: Some(2) }];
        let mut s = Scheduler::new(vec![j], 16, Policy::Backfill, 1, ExecMode::Full, &no_loader())
            .unwrap()
            .with_tenants(tenants);
        let rep = s.run();
        assert_eq!(rep.rejected(), 1);
        let r = &rep.records[0];
        assert!(
            r.error.as_ref().unwrap().1.contains("exceeds tenant `tiny` quota"),
            "{:?}",
            r.error
        );
    }

    #[test]
    fn fair_share_interleaves_tenants_at_equal_priority() {
        // One 2-node machine serialises everything. Submission order
        // is a0, a1, b0; once a0 is charged to tenant a, tenant b's
        // ratio is lower, so b0 jumps ahead of a1.
        let mk = |name: &str, tenant: &str| {
            let mut j = mm(name, 2);
            j.tenant = tenant.into();
            j
        };
        let jobs = vec![mk("a0", "a"), mk("a1", "a"), mk("b0", "b")];
        let mut s =
            Scheduler::new(jobs, 2, Policy::Fcfs, 1, ExecMode::Full, &no_loader()).unwrap();
        let rep = s.run();
        assert_eq!(rep.done(), 3);
        let order: Vec<&str> = rep.attempts.iter().map(|a| a.job.as_str()).collect();
        assert_eq!(order, vec!["a0", "b0", "a1"], "fair-share rotates tenants");
        assert_eq!(rep.tenant_usage.len(), 2);
    }

    #[test]
    fn run_batch_resolves_headers_and_seeds() {
        let spec = BatchSpec::parse(
            "nodes=4\npolicy=fcfs\nseed=9\njob name=a workload=mm ranks=2 param:N=8\n",
        )
        .unwrap();
        let rep = run_batch(&spec, &BatchOptions::default(), &no_loader()).unwrap();
        assert_eq!(rep.nodes, 4, "jobfile nodes= wins over the option");
        assert_eq!(rep.policy, Policy::Fcfs);
        assert_eq!(rep.seed, 9);
        let over = BatchOptions { seed: Some(2), ..Default::default() };
        let rep = run_batch(&spec, &over, &no_loader()).unwrap();
        assert_eq!(rep.seed, 2, "--sched-seed wins over the jobfile");
        let empty = BatchSpec::parse("nodes=4\n").unwrap();
        assert!(run_batch(&empty, &BatchOptions::default(), &no_loader()).is_err());
    }
}
