//! Seeded property suite for the gang scheduler — the three
//! invariants the whole batch subsystem hangs on:
//!
//! 1. **Determinism** — the same jobs and batch seed reproduce the
//!    stable JSON report and the cluster timeline byte-for-byte.
//! 2. **Safety** — no two attempts whose virtual-time intervals
//!    overlap ever share a mesh cell, even across crashes, drains and
//!    requeues.
//! 3. **Liveness** — conservative backfill never starves a wide,
//!    low-priority job behind a storm of narrow high-priority ones.
//!
//! Scenarios come from the testkit's deterministic choice stream;
//! failures print the reproducing seed and are pinned in
//! `crates/sched/testkit-regressions/`. Case counts are small because
//! every case admits and simulates an entire batch.

use lmad::Granularity;
use vpce_faults::FaultSpec;
use vpce_sched::{
    run_batch, BatchOptions, BatchReport, BatchSpec, JobSource, JobSpec, JobStatus, Policy,
    StormSpec,
};
use vpce_testkit::prelude::*;

/// A random small job: 1/2/4 ranks, a priority, an arrival jitter,
/// and (with weight `crashy_in_8` out of 8) a seeded rank-crash fault
/// schedule so drains and requeues stay on the exercised path.
fn arb_job(crashy_in_8: u32) -> Gen<JobSpec> {
    let faults = weighted(vec![
        (8 - crashy_in_8, just(None)),
        (crashy_in_8, u64_in(1, 1 << 40).map(Some)),
    ]);
    zip4(elem_of(vec![1usize, 2, 4]), i64_in(-2, 2), f64_in(0.0, 2e-3), faults).map(
        |(ranks, prio, arrival, crash_seed)| {
            let mut job = JobSpec::new("", JobSource::Workload("mm".into()), ranks);
            job.priority = prio;
            job.arrival = arrival;
            job.params = vec![("N".into(), 8)];
            // Explicit granularity keeps admission to one compile +
            // one dry run per job (no advisor sweep) — these cases
            // each simulate a whole batch.
            job.granularity = Some(Granularity::Fine);
            if let Some(seed) = crash_seed {
                job.faults = FaultSpec { seed, ..FaultSpec::crashy() };
                job.retries = 3;
            }
            job
        },
    )
}

/// A random batch: machine size, policy, batch seed, 3–6 jobs.
fn arb_batch(crashy_in_8: u32) -> Gen<BatchSpec> {
    zip4(
        elem_of(vec![8usize, 12, 16]),
        elem_of(vec![Policy::Fcfs, Policy::Backfill]),
        u64_in(0, 1 << 32),
        vec_of(arb_job(crashy_in_8), 3, 6),
    )
    .map(|(nodes, policy, seed, mut jobs)| {
        for (i, job) in jobs.iter_mut().enumerate() {
            job.name = format!("j{i}");
        }
        BatchSpec {
            nodes: Some(nodes),
            policy: Some(policy),
            seed: Some(seed),
            probation: None,
            machine: None,
            tenants: Vec::new(),
            jobs,
            storms: Vec::new(),
        }
    })
}

fn run(spec: &BatchSpec) -> BatchReport {
    let loader = |p: &str| Err(format!("property jobs are self-contained: `{p}`"));
    run_batch(spec, &BatchOptions::default(), &loader).expect("non-empty batch runs")
}

#[test]
fn batches_are_seed_deterministic() {
    Check::new("sched::batches_are_seed_deterministic")
        .cases(6)
        .run(&arb_batch(2), |spec| {
            let a = run(spec);
            let b = run(spec);
            prop_assert_eq!(a.to_json(), b.to_json(), "batch report must be byte-identical");
            prop_assert_eq!(
                a.trace_json, b.trace_json,
                "cluster timeline must be byte-identical"
            );
            prop_assert_eq!(a.render_human(), b.render_human());
            Ok(())
        });
}

#[test]
fn concurrent_attempts_never_share_nodes() {
    // Crash-heavy mix: half the jobs drain nodes and requeue, the
    // exact regime where a placement bug would double-book a cell.
    Check::new("sched::concurrent_attempts_never_share_nodes")
        .cases(6)
        .run(&arb_batch(4), |spec| {
            let rep = run(spec);
            prop_assert!(!rep.attempts.is_empty(), "batch must place at least one attempt");
            for (i, a) in rep.attempts.iter().enumerate() {
                prop_assert!(a.start <= a.end, "attempt interval inverted: {a:?}");
                for b in &rep.attempts[i + 1..] {
                    if a.end <= b.start || b.end <= a.start {
                        continue; // disjoint in time — may reuse nodes
                    }
                    prop_assert!(
                        !a.partition.overlaps(&b.partition),
                        "overlapping rectangles for concurrent attempts\n{a:?}\n{b:?}"
                    );
                    prop_assert!(
                        !a.partition.nodes.iter().any(|n| b.partition.nodes.contains(n)),
                        "shared node between concurrent attempts\n{a:?}\n{b:?}"
                    );
                }
            }
            Ok(())
        });
}

#[test]
fn probation_batches_stay_deterministic_and_safe() {
    // Crash-heavy batches with probation-based reintegration: healed
    // nodes re-enter the allocatable pool mid-batch, the exact regime
    // where a non-deterministic tick order would fork the timeline or
    // double-book a cell. Determinism and the no-overlap safety
    // property must both survive reintegration.
    let gen = zip2(arb_batch(4), u64_in(1, 3)).map(|(mut spec, p)| {
        spec.probation = Some(p as u32);
        spec
    });
    Check::new("sched::probation_batches_stay_deterministic_and_safe")
        .cases(6)
        .run(&gen, |spec| {
            let a = run(spec);
            let b = run(spec);
            prop_assert_eq!(a.to_json(), b.to_json(), "probation batches must replay byte-identically");
            prop_assert_eq!(&a.trace_json, &b.trace_json);
            for (i, x) in a.attempts.iter().enumerate() {
                for y in &a.attempts[i + 1..] {
                    if x.end <= y.start || y.end <= x.start {
                        continue;
                    }
                    prop_assert!(
                        !x.partition.nodes.iter().any(|n| y.partition.nodes.contains(n)),
                        "shared node between concurrent attempts after reintegration\n{x:?}\n{y:?}"
                    );
                }
            }
            // The report's drained list only keeps nodes still out of
            // service at batch end — every entry must be a real node.
            prop_assert!(a.drained.iter().all(|&n| n < a.nodes));
            Ok(())
        });
}

#[test]
fn backfill_never_starves_the_wide_job() {
    // One full-width, lowest-priority job at t=0 versus a seeded storm
    // of narrow high-priority jobs. Conservative backfill must still
    // run the wide job to completion — its reservation may be delayed
    // by backfilled jobs that provably finish first, never displaced.
    let gen = zip3(u64_in(0, 1 << 32), usize_in(6, 10), f64_in(5e-5, 5e-4)).map(
        |(seed, count, mean_gap)| {
            let mut wide = JobSpec::new("wide", JobSource::Workload("mm".into()), 8);
            wide.priority = -3;
            wide.params = vec![("N".into(), 8)];
            wide.granularity = Some(Granularity::Fine);
            let mut narrow = JobSpec::new("", JobSource::Workload("mm".into()), 1);
            narrow.priority = 3;
            narrow.params = vec![("N".into(), 8)];
            narrow.granularity = Some(Granularity::Fine);
            BatchSpec {
                nodes: Some(16),
                policy: Some(Policy::Backfill),
                seed: Some(seed),
                probation: None,
                machine: None,
                tenants: Vec::new(),
                jobs: vec![wide],
                storms: vec![StormSpec {
                    prefix: "s".into(),
                    count,
                    mean_gap_s: mean_gap,
                    start_s: 0.0,
                    template: narrow,
                }],
            }
        },
    );
    Check::new("sched::backfill_never_starves_the_wide_job")
        .cases(6)
        .run(&gen, |spec| {
            let rep = run(spec);
            let wide = rep
                .records
                .iter()
                .find(|r| r.name == "wide")
                .expect("wide job is in the report");
            prop_assert!(
                wide.status == JobStatus::Done,
                "backfill starved the wide job: {:?}",
                wide
            );
            prop_assert_eq!(rep.failed(), 0, "fault-free storm must not fail jobs");
            prop_assert_eq!(rep.rejected(), 0, "all jobs fit the 4x4 machine");
            Ok(())
        });
}
