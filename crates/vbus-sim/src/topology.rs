//! Network topologies: the 2-D mesh the paper's cluster uses, plus a
//! shared-segment topology used by the Fast-Ethernet reference model.
//!
//! The mesh uses deterministic dimension-ordered (XY) wormhole routing:
//! a message first travels along the X dimension to the destination
//! column, then along Y to the destination row. XY routing is minimal
//! and deadlock-free on a mesh, which matches the wormhole router of
//! the paper's network card (Kim et al., "A Wormhole Router with
//! Embedded Broadcasting Virtual Bus for Mesh Computers").

/// Identifier of a node (PC) in the cluster, `0..n`.
pub type NodeId = usize;

/// A directed link identifier, `0..topology.num_links()`.
pub type LinkId = usize;

/// The four mesh directions, used to index per-node outgoing links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    East = 0,
    West = 1,
    North = 2,
    South = 3,
}

/// A network topology: supplies routes (lists of directed links) between
/// node pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// A 2-D mesh with XY dimension-ordered routing. `nodes` PCs are
    /// attached at positions `0..nodes`; any remaining mesh positions
    /// are routers without a PC (a non-square machine).
    Mesh { mesh: Mesh, nodes: usize },
    /// A 2-D torus: the mesh with wraparound links, halving the
    /// diameter. §2.1 lists the torus among the switched networks the
    /// V-Bus targets ("e.g., mesh, torus and hypercube").
    Torus { mesh: Mesh, nodes: usize },
    /// A binary hypercube (power-of-two nodes), the third switched
    /// network §2.1 names. E-cube (dimension-ordered) routing.
    Hypercube { dims: u32, nodes: usize },
    /// A single shared segment (hub/repeater era Fast Ethernet): every
    /// message between distinct nodes occupies the one shared link, so
    /// all traffic serialises — the property that makes the paper's
    /// mesh-based card "more scalable" than a shared network (§2.1).
    SharedSegment { nodes: usize },
    /// A 3-D torus in the APENet mould: `dims = (x, y, z)` cells with
    /// wraparound in every dimension, six directed links per cell,
    /// dimension-ordered shorter-way-around routing. Nodes attach at
    /// cells `0..nodes`; remaining cells are routers without a PC.
    Torus3d { dims: (usize, usize, usize), nodes: usize },
    /// A switched crossbar (the PMS "Poor Man's Supercomputer" /
    /// switched Fast-Ethernet style): every node has a dedicated uplink
    /// to one non-blocking switch and a dedicated downlink back, so any
    /// src→dst pair contends only on those two ports, never on shared
    /// fabric.
    Crossbar { nodes: usize },
    /// A two-level fat-tree: nodes hang off per-pod edge switches and
    /// the edge switches share one core switch. In-pod traffic crosses
    /// the edge switch (2 hops); cross-pod traffic climbs to the core
    /// and back down (4 hops). Pod uplinks are the deliberate choke
    /// point the scaling benches probe.
    FatTree { pods: usize, nodes: usize },
}

impl Topology {
    /// A near-square mesh for `n` nodes (the paper's 4-node machine is a
    /// 2x2 mesh).
    pub fn mesh_for(n: usize) -> Self {
        Topology::Mesh {
            mesh: Mesh::near_square(n),
            nodes: n,
        }
    }

    /// A mesh of explicit shape with `n` nodes attached at positions
    /// `0..n` (the remaining positions are routers without a PC) —
    /// the shape a gang scheduler carves for a rectangular partition.
    ///
    /// # Panics
    /// Panics if the mesh cannot hold `n` nodes.
    pub fn mesh_with(mesh: Mesh, n: usize) -> Self {
        assert!(n > 0, "topology needs at least one node");
        assert!(
            n <= mesh.num_nodes(),
            "{n} nodes do not fit a {}x{} mesh",
            mesh.cols,
            mesh.rows
        );
        Topology::Mesh { mesh, nodes: n }
    }

    /// A near-square torus for `n` nodes.
    pub fn torus_for(n: usize) -> Self {
        Topology::Torus {
            mesh: Mesh::near_square(n),
            nodes: n,
        }
    }

    /// A binary hypercube for `n` nodes.
    ///
    /// # Panics
    /// Panics unless `n` is a power of two.
    pub fn hypercube_for(n: usize) -> Self {
        assert!(n.is_power_of_two(), "hypercube needs a power-of-two size");
        Topology::Hypercube {
            dims: n.trailing_zeros(),
            nodes: n,
        }
    }

    /// Shared-segment topology for `n` nodes (Fast-Ethernet reference).
    pub fn shared_for(n: usize) -> Self {
        Topology::SharedSegment { nodes: n }
    }

    /// A near-cubic 3-D torus for `n` nodes (spare cells are routers
    /// without a PC, like the near-square mesh).
    pub fn torus3d_for(n: usize) -> Self {
        Topology::Torus3d {
            dims: near_cubic(n),
            nodes: n,
        }
    }

    /// A 3-D torus of explicit dimensions with `n` nodes attached at
    /// cells `0..n`.
    ///
    /// # Panics
    /// Panics if the torus cannot hold `n` nodes or a dimension is zero.
    pub fn torus3d_with(dims: (usize, usize, usize), n: usize) -> Self {
        assert!(n > 0, "topology needs at least one node");
        assert!(
            dims.0 > 0 && dims.1 > 0 && dims.2 > 0,
            "torus3d dimensions must be positive"
        );
        assert!(
            n <= dims.0 * dims.1 * dims.2,
            "{n} nodes do not fit a {}x{}x{} torus",
            dims.0,
            dims.1,
            dims.2
        );
        Topology::Torus3d { dims, nodes: n }
    }

    /// A non-blocking crossbar switch for `n` nodes.
    pub fn crossbar_for(n: usize) -> Self {
        assert!(n > 0, "topology needs at least one node");
        Topology::Crossbar { nodes: n }
    }

    /// A two-level fat-tree for `n` nodes with `ceil(sqrt(n))` pods.
    pub fn fattree_for(n: usize) -> Self {
        assert!(n > 0, "topology needs at least one node");
        let pods = ((n as f64).sqrt().ceil() as usize).max(1);
        Self::fattree_with(pods, n)
    }

    /// A two-level fat-tree with an explicit pod count. Nodes fill pods
    /// in blocks of `ceil(n / pods)`.
    pub fn fattree_with(pods: usize, n: usize) -> Self {
        assert!(n > 0, "topology needs at least one node");
        assert!(pods > 0, "fat-tree needs at least one pod");
        Topology::FatTree {
            pods: pods.min(n),
            nodes: n,
        }
    }

    /// Number of PCs attached to the network.
    pub fn num_nodes(&self) -> usize {
        match self {
            Topology::Mesh { nodes, .. }
            | Topology::Torus { nodes, .. }
            | Topology::Hypercube { nodes, .. }
            | Topology::Torus3d { nodes, .. }
            | Topology::Crossbar { nodes }
            | Topology::FatTree { nodes, .. } => *nodes,
            Topology::SharedSegment { nodes } => *nodes,
        }
    }

    /// Number of directed links managed by the scheduler.
    pub fn num_links(&self) -> usize {
        match self {
            // 4 outgoing directions per mesh position; edge links
            // simply stay unused (always used on the torus).
            Topology::Mesh { mesh, .. } | Topology::Torus { mesh, .. } => mesh.num_nodes() * 4,
            // One outgoing link per dimension per node.
            Topology::Hypercube { dims, nodes } => nodes * *dims as usize,
            Topology::SharedSegment { .. } => 1,
            // Six outgoing directions per cell, all usable (wraparound).
            Topology::Torus3d { dims, .. } => dims.0 * dims.1 * dims.2 * 6,
            // One uplink and one downlink per node port.
            Topology::Crossbar { nodes } => nodes * 2,
            // Node up/downlinks plus pod up/downlinks to the core.
            Topology::FatTree { pods, nodes } => nodes * 2 + pods * 2,
        }
    }

    /// The directed links a message from `src` to `dst` occupies, in
    /// traversal order. Empty for `src == dst` (loopback never touches
    /// the wire).
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        match self {
            Topology::Mesh { mesh, .. } => mesh.xy_route(src, dst),
            Topology::Torus { mesh, .. } => mesh.torus_route(src, dst),
            Topology::Hypercube { dims, .. } => {
                // E-cube: correct differing bits from the lowest
                // dimension up; deadlock-free like XY on the mesh.
                let mut links = Vec::new();
                let mut cur = src;
                for d in 0..*dims {
                    if (cur ^ dst) & (1 << d) != 0 {
                        links.push(cur * *dims as usize + d as usize);
                        cur ^= 1 << d;
                    }
                }
                links
            }
            Topology::SharedSegment { .. } => {
                if src == dst {
                    Vec::new()
                } else {
                    vec![0]
                }
            }
            Topology::Torus3d { dims, .. } => t3_route(*dims, src, dst),
            Topology::Crossbar { nodes } => {
                if src == dst {
                    Vec::new()
                } else {
                    // Uplink of the source port, downlink of the
                    // destination port, through the non-blocking switch.
                    vec![src, nodes + dst]
                }
            }
            Topology::FatTree { pods, nodes } => {
                if src == dst {
                    return Vec::new();
                }
                let per_pod = nodes.div_ceil(*pods);
                let (ps, pd) = (src / per_pod, dst / per_pod);
                if ps == pd {
                    // Turn around at the pod's edge switch.
                    vec![src, nodes + dst]
                } else {
                    // Up to the edge, up to the core, down the far pod.
                    vec![
                        src,
                        2 * nodes + ps,
                        2 * nodes + pods + pd,
                        nodes + dst,
                    ]
                }
            }
        }
    }

    /// Number of router hops between `src` and `dst` (0 for loopback).
    pub fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        match self {
            Topology::Mesh { mesh, .. } => mesh.distance(src, dst),
            Topology::Torus { mesh, .. } => mesh.torus_distance(src, dst),
            Topology::Hypercube { .. } => (src ^ dst).count_ones() as usize,
            Topology::SharedSegment { .. } => usize::from(src != dst),
            Topology::Torus3d { dims, .. } => t3_distance(*dims, src, dst),
            Topology::Crossbar { .. } => {
                if src == dst {
                    0
                } else {
                    2
                }
            }
            Topology::FatTree { pods, nodes } => {
                if src == dst {
                    return 0;
                }
                let per_pod = nodes.div_ceil(*pods);
                if src / per_pod == dst / per_pod {
                    2
                } else {
                    4
                }
            }
        }
    }

    /// Decode a directed link id back to its `(from, to)` router pair —
    /// the provenance a fault diagnostic needs when a retransmit or a
    /// stall is attributed to one physical channel. Returns `None` for
    /// links with no single endpoint pair (the shared segment) and for
    /// mesh edge links that leave the machine (never routed over).
    pub fn endpoints(&self, link: LinkId) -> Option<(NodeId, NodeId)> {
        match self {
            Topology::Mesh { mesh, .. } => {
                let (node, dx, dy, wraps) = mesh.decode_link(link)?;
                let (x, y) = mesh.coords(node);
                if wraps {
                    return None; // off the edge: unused on a plain mesh
                }
                let nx = x.checked_add_signed(dx)?;
                let ny = y.checked_add_signed(dy)?;
                if nx >= mesh.cols || ny >= mesh.rows {
                    return None;
                }
                Some((node, mesh.node_at(nx, ny)))
            }
            Topology::Torus { mesh, .. } => {
                let (node, dx, dy, _) = mesh.decode_link(link)?;
                let (x, y) = mesh.coords(node);
                let nx = (x as isize + dx).rem_euclid(mesh.cols as isize) as usize;
                let ny = (y as isize + dy).rem_euclid(mesh.rows as isize) as usize;
                Some((node, mesh.node_at(nx, ny)))
            }
            Topology::Hypercube { dims, nodes } => {
                let d = *dims as usize;
                let node = link / d;
                if node >= *nodes {
                    return None;
                }
                Some((node, node ^ (1 << (link % d))))
            }
            Topology::SharedSegment { .. } => None,
            Topology::Torus3d { dims, .. } => {
                let cells = dims.0 * dims.1 * dims.2;
                let cell = link / 6;
                if cell >= cells {
                    return None;
                }
                Some((cell, t3_neighbor(*dims, cell, link % 6)))
            }
            // Switch endpoints use phantom ids past the node range:
            // the crossbar switch is node `n`; a fat-tree edge switch
            // of pod `p` is `n + p` and the core switch is `n + pods`.
            Topology::Crossbar { nodes } => {
                if link < *nodes {
                    Some((link, *nodes))
                } else if link < nodes * 2 {
                    Some((*nodes, link - nodes))
                } else {
                    None
                }
            }
            Topology::FatTree { pods, nodes } => {
                let per_pod = nodes.div_ceil(*pods);
                if link < *nodes {
                    Some((link, nodes + link / per_pod))
                } else if link < nodes * 2 {
                    let d = link - nodes;
                    Some((nodes + d / per_pod, d))
                } else if link < nodes * 2 + pods {
                    Some((nodes + (link - 2 * nodes), nodes + pods))
                } else if link < nodes * 2 + pods * 2 {
                    Some((nodes + pods, nodes + (link - 2 * nodes - pods)))
                } else {
                    None
                }
            }
        }
    }

    /// Network diameter in hops.
    pub fn diameter(&self) -> usize {
        match self {
            Topology::Mesh { mesh, .. } => (mesh.cols - 1) + (mesh.rows - 1),
            Topology::Torus { mesh, .. } => mesh.cols / 2 + mesh.rows / 2,
            Topology::Hypercube { dims, .. } => *dims as usize,
            Topology::SharedSegment { .. } => 1,
            Topology::Torus3d { dims, .. } => dims.0 / 2 + dims.1 / 2 + dims.2 / 2,
            Topology::Crossbar { nodes } => {
                if *nodes <= 1 {
                    0
                } else {
                    2
                }
            }
            Topology::FatTree { pods, nodes } => {
                if *nodes <= 1 {
                    0
                } else if *nodes <= nodes.div_ceil(*pods) {
                    2
                } else {
                    4
                }
            }
        }
    }
}

/// Near-cubic dimensions holding at least `n` cells: the 3-D analogue
/// of [`Mesh::near_square`] (largest dimension first, spare cells stay
/// under one plane).
fn near_cubic(n: usize) -> (usize, usize, usize) {
    assert!(n > 0, "torus must hold at least one node");
    let x = ((n as f64).cbrt().ceil() as usize).max(1);
    let rest = n.div_ceil(x);
    let y = ((rest as f64).sqrt().ceil() as usize).max(1);
    let z = rest.div_ceil(y);
    (x, y, z)
}

/// `(x, y, z)` coordinates of a cell in a 3-D torus.
fn t3_coords(dims: (usize, usize, usize), cell: usize) -> (usize, usize, usize) {
    (cell % dims.0, (cell / dims.0) % dims.1, cell / (dims.0 * dims.1))
}

fn t3_cell(dims: (usize, usize, usize), x: usize, y: usize, z: usize) -> usize {
    (z * dims.1 + y) * dims.0 + x
}

/// The six directed links of a cell: `cell * 6 + dir` with
/// `dir = 0..6` meaning +x, -x, +y, -y, +z, -z.
fn t3_neighbor(dims: (usize, usize, usize), cell: usize, dir: usize) -> usize {
    let (x, y, z) = t3_coords(dims, cell);
    let (nx, ny, nz) = match dir {
        0 => ((x + 1) % dims.0, y, z),
        1 => ((x + dims.0 - 1) % dims.0, y, z),
        2 => (x, (y + 1) % dims.1, z),
        3 => (x, (y + dims.1 - 1) % dims.1, z),
        4 => (x, y, (z + 1) % dims.2),
        _ => (x, y, (z + dims.2 - 1) % dims.2),
    };
    t3_cell(dims, nx, ny, nz)
}

/// Wraparound distance per dimension, summed.
fn t3_distance(dims: (usize, usize, usize), a: usize, b: usize) -> usize {
    let (ax, ay, az) = t3_coords(dims, a);
    let (bx, by, bz) = t3_coords(dims, b);
    let dx = ax.abs_diff(bx).min(dims.0 - ax.abs_diff(bx));
    let dy = ay.abs_diff(by).min(dims.1 - ay.abs_diff(by));
    let dz = az.abs_diff(bz).min(dims.2 - az.abs_diff(bz));
    dx + dy + dz
}

/// Dimension-ordered 3-D torus route: per dimension, walk the shorter
/// way around the ring (ties break toward increasing coordinates).
fn t3_route(dims: (usize, usize, usize), src: usize, dst: usize) -> Vec<usize> {
    let (mut x, mut y, mut z) = t3_coords(dims, src);
    let (tx, ty, tz) = t3_coords(dims, dst);
    let mut links = Vec::with_capacity(t3_distance(dims, src, dst));
    // X dimension.
    let fwd = (tx + dims.0 - x) % dims.0;
    let go_plus = fwd <= dims.0 - fwd;
    for _ in 0..fwd.min(dims.0 - fwd) {
        let cell = t3_cell(dims, x, y, z);
        if go_plus {
            links.push(cell * 6);
            x = (x + 1) % dims.0;
        } else {
            links.push(cell * 6 + 1);
            x = (x + dims.0 - 1) % dims.0;
        }
    }
    // Y dimension.
    let fwd = (ty + dims.1 - y) % dims.1;
    let go_plus = fwd <= dims.1 - fwd;
    for _ in 0..fwd.min(dims.1 - fwd) {
        let cell = t3_cell(dims, x, y, z);
        if go_plus {
            links.push(cell * 6 + 2);
            y = (y + 1) % dims.1;
        } else {
            links.push(cell * 6 + 3);
            y = (y + dims.1 - 1) % dims.1;
        }
    }
    // Z dimension.
    let fwd = (tz + dims.2 - z) % dims.2;
    let go_plus = fwd <= dims.2 - fwd;
    for _ in 0..fwd.min(dims.2 - fwd) {
        let cell = t3_cell(dims, x, y, z);
        if go_plus {
            links.push(cell * 6 + 4);
            z = (z + 1) % dims.2;
        } else {
            links.push(cell * 6 + 5);
            z = (z + dims.2 - 1) % dims.2;
        }
    }
    links
}

/// Why [`Mesh::try_exact_factor`] could not consider any shape at all
/// (as opposed to declining every too-elongated factorization, which
/// is the `Ok(None)` case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorError {
    /// Zero nodes were requested.
    ZeroNodes,
    /// The aspect bound was zero — no shape can satisfy it.
    ZeroAspect,
}

/// A `cols x rows` 2-D mesh. Node `i` sits at
/// `(x, y) = (i % cols, i / cols)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    pub cols: usize,
    pub rows: usize,
}

impl Mesh {
    /// Construct a mesh with the given dimensions.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be positive");
        Mesh { cols, rows }
    }

    /// The most nearly square mesh holding at least `n` nodes.
    ///
    /// `n = 4` gives the paper's 2x2 configuration.
    ///
    /// **Factorization policy** (load-bearing for awkward node counts):
    /// `cols = ceil(sqrt(n))`, `rows = ceil(n / cols)`, so
    /// `cols >= rows` always, and for every `n >= 3` the result has
    /// `rows >= 2` — a prime or otherwise non-rectangular `n` (7, 13,
    /// 17…) gets a compact grid with up to `cols - 1` unpopulated
    /// router positions, **never** a silent degenerate `1 x n` chain
    /// (whose diameter and bisection would collapse the wormhole
    /// model). Only `n = 1` and `n = 2` are chains, and those are the
    /// honest shapes. Callers that need an *exact* factorization
    /// (no spare routers) use [`Mesh::exact_factor`] and fall back
    /// here deliberately when it declines.
    pub fn near_square(n: usize) -> Self {
        assert!(n > 0, "mesh must hold at least one node");
        let mut cols = (n as f64).sqrt().ceil() as usize;
        cols = cols.max(1);
        let rows = n.div_ceil(cols);
        Mesh { cols, rows }
    }

    /// The most nearly square *exact* factorization `cols x rows == n`
    /// with `cols >= rows` and aspect ratio `cols / rows <= max_aspect`.
    ///
    /// Returns `None` when every exact factorization is too elongated
    /// (e.g. any prime `n > max_aspect`): an over-stretched chain is a
    /// degenerate mesh, and refusing it forces the caller to choose the
    /// fallback ([`Mesh::near_square`] with spare routers) explicitly
    /// rather than receive a `1 x n` wire by accident.
    pub fn exact_factor(n: usize, max_aspect: usize) -> Option<Self> {
        match Self::try_exact_factor(n, max_aspect) {
            Ok(shape) => shape,
            Err(FactorError::ZeroNodes) => panic!("mesh must hold at least one node"),
            Err(FactorError::ZeroAspect) => panic!("aspect bound must be at least 1"),
        }
    }

    /// Non-panicking [`exact_factor`](Self::exact_factor): the argument
    /// errors the panicking variant asserts on become `Err`, and
    /// `Ok(None)` still means every exact factorization is too
    /// elongated for the aspect bound.
    pub fn try_exact_factor(n: usize, max_aspect: usize) -> Result<Option<Self>, FactorError> {
        if n == 0 {
            return Err(FactorError::ZeroNodes);
        }
        if max_aspect == 0 {
            return Err(FactorError::ZeroAspect);
        }
        // Largest divisor <= sqrt(n) gives the most-square pair.
        let mut rows = (n as f64).sqrt().floor() as usize;
        while rows >= 1 {
            if n % rows == 0 {
                let cols = n / rows;
                return Ok((cols <= rows * max_aspect).then_some(Mesh { cols, rows }));
            }
            rows -= 1;
        }
        Ok(None)
    }

    /// Total node capacity of the mesh.
    pub fn num_nodes(&self) -> usize {
        self.cols * self.rows
    }

    /// `(x, y)` coordinates of a node.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        debug_assert!(node < self.num_nodes());
        (node % self.cols, node / self.cols)
    }

    /// Node at `(x, y)`.
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        debug_assert!(x < self.cols && y < self.rows);
        y * self.cols + x
    }

    /// Manhattan distance in hops.
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    fn link(&self, node: NodeId, dir: Dir) -> LinkId {
        node * 4 + dir as usize
    }

    /// Decode a link id to its owning node and unit step `(dx, dy)`.
    /// `wraps` reports whether the step leaves the mesh rectangle
    /// (usable only with torus wraparound).
    fn decode_link(&self, link: LinkId) -> Option<(NodeId, isize, isize, bool)> {
        let node = link / 4;
        if node >= self.num_nodes() {
            return None;
        }
        let (dx, dy): (isize, isize) = match link % 4 {
            0 => (1, 0),  // east
            1 => (-1, 0), // west
            2 => (0, -1), // north
            _ => (0, 1),  // south
        };
        let (x, y) = self.coords(node);
        let wraps = (dx < 0 && x == 0)
            || (dx > 0 && x + 1 == self.cols)
            || (dy < 0 && y == 0)
            || (dy > 0 && y + 1 == self.rows);
        Some((node, dx, dy, wraps))
    }

    /// Directed links of the XY route from `src` to `dst`: X first
    /// (east/west), then Y (north/south).
    pub fn xy_route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut links = Vec::with_capacity(self.distance(src, dst));
        let mut x = sx;
        let y = sy;
        while x < dx {
            links.push(self.link(self.node_at(x, y), Dir::East));
            x += 1;
        }
        while x > dx {
            links.push(self.link(self.node_at(x, y), Dir::West));
            x -= 1;
        }
        let mut y = sy;
        while y < dy {
            links.push(self.link(self.node_at(x, y), Dir::South));
            y += 1;
        }
        while y > dy {
            links.push(self.link(self.node_at(x, y), Dir::North));
            y -= 1;
        }
        links
    }

    /// Wraparound (torus) distance: per dimension, the shorter way
    /// around the ring.
    pub fn torus_distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let dx = ax.abs_diff(bx).min(self.cols - ax.abs_diff(bx));
        let dy = ay.abs_diff(by).min(self.rows - ay.abs_diff(by));
        dx + dy
    }

    /// Dimension-ordered torus route: per dimension, walk the shorter
    /// direction (ties break toward increasing coordinates), wrapping
    /// at the edges.
    pub fn torus_route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut links = Vec::with_capacity(self.torus_distance(src, dst));
        // X dimension.
        let mut x = sx;
        let fwd = (dx + self.cols - sx) % self.cols; // hops going east
        let go_east = fwd <= self.cols - fwd;
        let steps = fwd.min(self.cols - fwd);
        for _ in 0..steps {
            if go_east {
                links.push(self.link(self.node_at(x, sy), Dir::East));
                x = (x + 1) % self.cols;
            } else {
                links.push(self.link(self.node_at(x, sy), Dir::West));
                x = (x + self.cols - 1) % self.cols;
            }
        }
        // Y dimension.
        let mut y = sy;
        let fwd = (dy + self.rows - sy) % self.rows;
        let go_south = fwd <= self.rows - fwd;
        let steps = fwd.min(self.rows - fwd);
        for _ in 0..steps {
            if go_south {
                links.push(self.link(self.node_at(x, y), Dir::South));
                y = (y + 1) % self.rows;
            } else {
                links.push(self.link(self.node_at(x, y), Dir::North));
                y = (y + self.rows - 1) % self.rows;
            }
        }
        links
    }

    /// The links of a virtual bus spanning every router: a boustrophedon
    /// (serpentine) walk across the mesh, which is how the embedded
    /// broadcasting bus of the V-Bus router threads all nodes without
    /// extra physical wires.
    pub fn serpentine(&self) -> Vec<LinkId> {
        let mut links = Vec::new();
        for y in 0..self.rows {
            if y % 2 == 0 {
                for x in 0..self.cols.saturating_sub(1) {
                    links.push(self.link(self.node_at(x, y), Dir::East));
                }
            } else {
                for x in (1..self.cols).rev() {
                    links.push(self.link(self.node_at(x, y), Dir::West));
                }
            }
            if y + 1 < self.rows {
                let x = if y % 2 == 0 { self.cols - 1 } else { 0 };
                links.push(self.link(self.node_at(x, y), Dir::South));
            }
        }
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_square_shapes() {
        assert_eq!(Mesh::near_square(1), Mesh::new(1, 1));
        assert_eq!(Mesh::near_square(2), Mesh::new(2, 1));
        assert_eq!(Mesh::near_square(4), Mesh::new(2, 2));
        assert_eq!(Mesh::near_square(6), Mesh::new(3, 2));
        assert_eq!(Mesh::near_square(9), Mesh::new(3, 3));
        assert_eq!(Mesh::near_square(12), Mesh::new(4, 3));
    }

    #[test]
    fn near_square_never_degenerates_into_a_chain() {
        // Awkward node counts (primes, non-squares) must get a compact
        // grid, never a silent 1 x n wire. Pinned policy: rows >= 2
        // for every n >= 3, and the waste stays under one row.
        for n in [3, 5, 7, 11, 13, 17, 19, 23, 29, 97] {
            let m = Mesh::near_square(n);
            assert!(m.rows >= 2, "n={n} degenerated to {}x{}", m.cols, m.rows);
            assert!(m.cols >= m.rows, "n={n}: {}x{}", m.cols, m.rows);
            assert!(m.num_nodes() >= n, "n={n} does not fit");
            assert!(
                m.num_nodes() - n < m.cols,
                "n={n} wastes a whole row on a {}x{} mesh",
                m.cols,
                m.rows
            );
        }
        // The two honest chains.
        assert_eq!(Mesh::near_square(1), Mesh::new(1, 1));
        assert_eq!(Mesh::near_square(2), Mesh::new(2, 1));
    }

    #[test]
    fn exact_factor_bounds_aspect_or_declines() {
        assert_eq!(Mesh::exact_factor(16, 4), Some(Mesh::new(4, 4)));
        assert_eq!(Mesh::exact_factor(12, 4), Some(Mesh::new(4, 3)));
        assert_eq!(Mesh::exact_factor(8, 4), Some(Mesh::new(4, 2)));
        assert_eq!(Mesh::exact_factor(3, 4), Some(Mesh::new(3, 1)));
        // Primes above the aspect bound refuse rather than chain.
        assert_eq!(Mesh::exact_factor(7, 4), None);
        assert_eq!(Mesh::exact_factor(13, 4), None);
        assert_eq!(Mesh::exact_factor(18, 4), Some(Mesh::new(6, 3)));
        // 2x11 is the squarest exact pair for 22; aspect 5.5 > 4.
        assert_eq!(Mesh::exact_factor(22, 4), None);
        assert_eq!(Mesh::exact_factor(22, 6), Some(Mesh::new(11, 2)));
    }

    #[test]
    fn mesh_with_attaches_partial_nodes() {
        let t = Topology::mesh_with(Mesh::new(4, 4), 13);
        assert_eq!(t.num_nodes(), 13);
        assert_eq!(t.num_links(), 64);
        // Routing still works through unpopulated router positions.
        assert!(!t.route(0, 12).is_empty());
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn mesh_with_rejects_overfull_shapes() {
        let _ = Topology::mesh_with(Mesh::new(2, 2), 5);
    }

    #[test]
    fn near_square_capacity_suffices() {
        for n in 1..=64 {
            assert!(Mesh::near_square(n).num_nodes() >= n, "n={n}");
        }
    }

    #[test]
    fn coords_roundtrip() {
        let m = Mesh::new(4, 3);
        for node in 0..m.num_nodes() {
            let (x, y) = m.coords(node);
            assert_eq!(m.node_at(x, y), node);
        }
    }

    #[test]
    fn xy_route_length_is_manhattan_distance() {
        let m = Mesh::new(4, 4);
        for s in 0..16 {
            for d in 0..16 {
                assert_eq!(m.xy_route(s, d).len(), m.distance(s, d), "{s}->{d}");
            }
        }
    }

    #[test]
    fn xy_route_loopback_is_empty() {
        let m = Mesh::new(3, 3);
        for n in 0..9 {
            assert!(m.xy_route(n, n).is_empty());
        }
    }

    #[test]
    fn xy_routes_share_no_link_in_opposite_directions() {
        // A->B and B->A use disjoint directed links.
        let m = Mesh::new(3, 3);
        for s in 0..9 {
            for d in 0..9 {
                if s == d {
                    continue;
                }
                let fwd = m.xy_route(s, d);
                let bwd = m.xy_route(d, s);
                for l in &fwd {
                    assert!(!bwd.contains(l), "{s}<->{d} share directed link {l}");
                }
            }
        }
    }

    #[test]
    fn paper_2x2_mesh_routes() {
        // Paper configuration: 4 nodes in a 2x2 mesh.
        let m = Mesh::near_square(4);
        assert_eq!(m.distance(0, 3), 2); // corner to corner: 2 hops
        assert_eq!(m.distance(0, 1), 1);
        assert_eq!(m.distance(0, 2), 1);
        let route = m.xy_route(0, 3);
        assert_eq!(route.len(), 2);
    }

    #[test]
    fn serpentine_visits_every_node_once() {
        for (c, r) in [(2, 2), (3, 3), (4, 2), (1, 5), (5, 1), (4, 3)] {
            let m = Mesh::new(c, r);
            // A serpentine over n nodes has n-1 links.
            assert_eq!(m.serpentine().len(), m.num_nodes() - 1, "{c}x{r}");
            // And no repeated links.
            let mut links = m.serpentine();
            links.sort_unstable();
            links.dedup();
            assert_eq!(links.len(), m.num_nodes() - 1, "{c}x{r} repeats a link");
        }
    }

    #[test]
    fn torus_distance_uses_wraparound() {
        let m = Mesh::new(4, 4);
        // Corner to corner: 6 hops on the mesh, 2 on the torus.
        assert_eq!(m.distance(0, 15), 6);
        assert_eq!(m.torus_distance(0, 15), 2);
        assert_eq!(m.torus_distance(0, 3), 1, "wrap west beats 3 east");
    }

    #[test]
    fn torus_route_length_matches_torus_distance() {
        let m = Mesh::new(4, 3);
        for s in 0..12 {
            for d in 0..12 {
                assert_eq!(
                    m.torus_route(s, d).len(),
                    m.torus_distance(s, d),
                    "{s}->{d}"
                );
            }
        }
    }

    #[test]
    fn torus_route_lands_on_destination() {
        // Walk the links and verify the path is connected: each link
        // id decodes to (node, dir); replay the walk.
        let m = Mesh::new(5, 4);
        for s in 0..20 {
            for d in 0..20 {
                let mut x = m.coords(s).0;
                let mut y = m.coords(s).1;
                for l in m.torus_route(s, d) {
                    let node = l / 4;
                    assert_eq!(node, m.node_at(x, y), "{s}->{d} disconnected");
                    match l % 4 {
                        0 => x = (x + 1) % m.cols,
                        1 => x = (x + m.cols - 1) % m.cols,
                        2 => y = (y + m.rows - 1) % m.rows,
                        3 => y = (y + 1) % m.rows,
                        _ => unreachable!(),
                    }
                }
                assert_eq!(m.node_at(x, y), d, "{s}->{d} wrong endpoint");
            }
        }
    }

    #[test]
    fn torus_diameter_half_of_mesh() {
        let mesh = Topology::mesh_for(16);
        let torus = Topology::torus_for(16);
        assert_eq!(mesh.diameter(), 6);
        assert_eq!(torus.diameter(), 4);
    }

    #[test]
    fn hypercube_routes_follow_hamming_distance() {
        let h = Topology::hypercube_for(16);
        for s in 0..16usize {
            for d in 0..16usize {
                assert_eq!(h.route(s, d).len(), (s ^ d).count_ones() as usize);
                assert_eq!(h.hops(s, d), (s ^ d).count_ones() as usize);
            }
        }
        assert_eq!(h.diameter(), 4);
        assert_eq!(h.num_links(), 64);
    }

    #[test]
    fn hypercube_ecube_routes_are_connected() {
        let h = Topology::hypercube_for(8);
        for s in 0..8usize {
            for d in 0..8usize {
                let mut cur = s;
                for l in h.route(s, d) {
                    let node = l / 3;
                    let dim = l % 3;
                    assert_eq!(node, cur, "{s}->{d} disconnected");
                    cur ^= 1 << dim;
                }
                assert_eq!(cur, d, "{s}->{d} wrong endpoint");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn hypercube_rejects_non_power_of_two() {
        Topology::hypercube_for(6);
    }

    #[test]
    fn shared_segment_serialises_everything_on_one_link() {
        let t = Topology::shared_for(8);
        assert_eq!(t.num_links(), 1);
        assert_eq!(t.route(2, 5), vec![0]);
        assert_eq!(t.route(3, 3), Vec::<LinkId>::new());
    }

    #[test]
    fn endpoints_chain_along_every_route() {
        // Walking a route link-by-link through endpoints() must trace a
        // connected path from src to dst on every topology that has
        // per-pair links.
        for t in [
            Topology::mesh_for(12),
            Topology::torus_for(12),
            Topology::hypercube_for(8),
            Topology::torus3d_for(12),
            Topology::torus3d_with((3, 2, 2), 11),
            Topology::crossbar_for(9),
            Topology::fattree_for(13),
            Topology::fattree_with(3, 12),
        ] {
            let n = t.num_nodes();
            for s in 0..n {
                for d in 0..n {
                    let mut cur = s;
                    for l in t.route(s, d) {
                        let (from, to) = t
                            .endpoints(l)
                            .unwrap_or_else(|| panic!("{t:?} link {l} undecodable"));
                        assert_eq!(from, cur, "{s}->{d} disconnected at link {l}");
                        cur = to;
                    }
                    assert_eq!(cur, d, "{s}->{d} route endpoint mismatch");
                }
            }
        }
    }

    #[test]
    fn endpoints_reject_edge_and_shared_links() {
        // East link of the mesh's north-east corner leaves the machine.
        let m = Topology::mesh_for(4);
        let corner_east = 4; // node 1 = (1,0), dir east (= 1*4 + 0)
        assert_eq!(m.endpoints(corner_east), None);
        // The same id on the torus wraps around to node 0.
        let t = Topology::torus_for(4);
        assert_eq!(t.endpoints(corner_east), Some((1, 0)));
        assert_eq!(Topology::shared_for(4).endpoints(0), None);
        assert_eq!(m.endpoints(1_000), None);
    }

    #[test]
    fn try_exact_factor_reports_argument_errors() {
        assert_eq!(Mesh::try_exact_factor(0, 4), Err(FactorError::ZeroNodes));
        assert_eq!(Mesh::try_exact_factor(4, 0), Err(FactorError::ZeroAspect));
        assert_eq!(Mesh::try_exact_factor(12, 4), Ok(Some(Mesh::new(4, 3))));
        assert_eq!(Mesh::try_exact_factor(7, 4), Ok(None));
    }

    #[test]
    fn torus3d_route_length_matches_distance() {
        for t in [Topology::torus3d_for(8), Topology::torus3d_with((4, 3, 2), 24)] {
            let n = t.num_nodes();
            for s in 0..n {
                for d in 0..n {
                    assert_eq!(t.route(s, d).len(), t.hops(s, d), "{s}->{d}");
                }
            }
        }
    }

    #[test]
    fn torus3d_near_cubic_shapes() {
        // 8 → 2x2x2, 27 → 3x3x3; awkward counts get spare router cells
        // but never more than one plane of waste.
        assert_eq!(Topology::torus3d_for(8), Topology::torus3d_with((2, 2, 2), 8));
        assert_eq!(Topology::torus3d_for(27), Topology::torus3d_with((3, 3, 3), 27));
        for n in [5, 7, 11, 13, 19, 24, 64] {
            if let Topology::Torus3d { dims, nodes } = Topology::torus3d_for(n) {
                assert_eq!(nodes, n);
                let cap = dims.0 * dims.1 * dims.2;
                assert!(cap >= n, "n={n} does not fit {dims:?}");
                assert!(cap - n < dims.0 * dims.1, "n={n} wastes a plane on {dims:?}");
            } else {
                unreachable!()
            }
        }
    }

    #[test]
    fn torus3d_wraparound_shortens_routes() {
        // 4x3x2 torus: +x three hops forward is one hop backward.
        let t = Topology::torus3d_with((4, 3, 2), 24);
        assert_eq!(t.hops(0, 3), 1);
        assert_eq!(t.diameter(), 4 / 2 + 3 / 2 + 2 / 2);
        assert_eq!(t.num_links(), 24 * 6);
    }

    #[test]
    fn crossbar_is_two_hops_between_any_distinct_pair() {
        let t = Topology::crossbar_for(7);
        assert_eq!(t.num_links(), 14);
        assert_eq!(t.diameter(), 2);
        for s in 0..7 {
            for d in 0..7 {
                let r = t.route(s, d);
                if s == d {
                    assert!(r.is_empty());
                } else {
                    assert_eq!(r, vec![s, 7 + d]);
                    assert_eq!(t.hops(s, d), 2);
                }
            }
        }
        // Distinct pairs sharing no port share no links: 0->1 vs 2->3.
        let a = t.route(0, 1);
        let b = t.route(2, 3);
        assert!(a.iter().all(|l| !b.contains(l)));
    }

    #[test]
    fn fattree_in_pod_beats_cross_pod() {
        // 3 pods of 4: nodes 0-3, 4-7, 8-11.
        let t = Topology::fattree_with(3, 12);
        assert_eq!(t.num_links(), 12 * 2 + 3 * 2);
        assert_eq!(t.hops(0, 3), 2, "same pod turns at the edge switch");
        assert_eq!(t.hops(0, 4), 4, "cross pod climbs to the core");
        assert_eq!(t.diameter(), 4);
        // Cross-pod routes from the same pod share the pod uplink —
        // the deliberate choke point.
        let r1 = t.route(0, 4);
        let r2 = t.route(1, 8);
        assert_eq!(r1[1], r2[1], "pod uplink is shared");
    }

    #[test]
    fn fattree_single_pod_degenerates_to_crossbar_shape() {
        let t = Topology::fattree_with(1, 5);
        assert_eq!(t.diameter(), 2);
        for s in 0..5 {
            for d in 0..5 {
                if s != d {
                    assert_eq!(t.hops(s, d), 2);
                }
            }
        }
    }

    #[test]
    fn topology_mesh_dispatch() {
        let t = Topology::mesh_for(4);
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.hops(0, 3), 2);
        assert_eq!(t.diameter(), 2);
        assert_eq!(t.route(0, 0), Vec::<LinkId>::new());
    }
}
