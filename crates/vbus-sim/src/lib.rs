//! # vbus-sim — the V-Bus / SKWP interconnect model
//!
//! This crate is the hardware substrate of the reproduction of
//! *"A Parallel Programming Environment for a V-Bus based PC-cluster"*
//! (Lim, Paek, Park, Hoeflinger — IEEE CLUSTER 2001).
//!
//! The paper's cluster interconnects 300 MHz Pentium-II PCs through custom
//! FPGA network cards arranged in a mesh. Two hardware techniques define
//! the card:
//!
//! * **Skew-tolerant wave pipelining (SKWP)** — several signal waves are
//!   kept in flight on each link; an automatic skew-sampling circuit
//!   measures the per-line delay differences and re-aligns the waves, so
//!   the signalling period is bounded by residual jitter rather than by
//!   the full flight time plus worst-case skew. The paper reports a
//!   bandwidth gain of "up to four times" over conventional pipelining.
//!   [`link::LinkPhy`] reproduces this at the signal level.
//!
//! * **Virtual Bus (V-Bus)** — on a broadcast request the mesh
//!   dynamically configures a bus spanning all routers. In-flight
//!   point-to-point wormhole messages are *frozen in buffers* while the
//!   bus exists and resume afterwards, so broadcast needs no extra
//!   physical wires and no store-and-forward hops.
//!   [`sim::NetSim::vbus_broadcast`] reproduces this, including the
//!   freeze.
//!
//! Since the physical cards are unavailable (FPGA hardware gate), the
//! crate models the network as a **deterministic link-schedule
//! simulator**: every directed mesh link carries a `busy_until` virtual
//! time; a wormhole message acquires its whole XY path at the maximum of
//! those times, holds it for the transfer duration, and releases it.
//! All results are pure functions of the submitted message sequence —
//! there is no dependence on wall-clock scheduling.
//!
//! The crate also provides reference models used by the paper's own
//! comparisons: a conventionally pipelined card (same mesh, ≈¼ the link
//! bandwidth) and a Fast-Ethernet NIC on a shared segment (the baseline
//! the paper says V-Bus beats by ≈4× in both latency and bandwidth).

#![forbid(unsafe_code)]

pub mod link;
pub mod stats;
pub mod sweep;
pub mod topology;

mod sim;

pub use link::{LinkPhy, LinkRate, SignallingMode};
pub use sim::{BusOutcome, NetConfig, NetSim, Transfer, VBusConfig};
pub use stats::{LinkStats, NetStats};
pub use topology::{FactorError, Mesh, NodeId, Topology};

/// Virtual time in seconds.
///
/// All simulator timestamps are `f64` seconds of *virtual* time; wall
/// clock never enters any computation.
pub type Time = f64;
