//! Signal-level link models.
//!
//! The paper's card pushes an FPGA parallel link past its conventional
//! clock limit with **wave pipelining**: several data waves are in
//! flight on the wires simultaneously. The catch (§2.1) is inter-line
//! *skew* — each signal line of the parallel link has a slightly
//! different propagation delay, and with plain wave pipelining the skew
//! "can be magnified while passing through several wave-pipelined
//! network cards, which can be neither predicted nor handled". The
//! card's **skew-tolerant wave pipelining (SKWP)** adds an automatic
//! skew-sampling circuit that measures the per-line delay differences
//! and re-aligns the waves at every hop, so the signalling period is
//! bounded only by residual jitter plus the receiver settling window.
//!
//! [`LinkPhy`] reproduces this trade-off from first principles: given
//! the per-line skews, it derives the minimum safe signalling period for
//! each [`SignallingMode`] and from that the link bandwidth. With the
//! default parameters (chosen to be plausible for a late-90s FPGA card
//! with a cable between PCs), SKWP comes out ≈4x faster than
//! conventional pipelining — the paper's headline hardware claim.

/// How the parallel link is clocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignallingMode {
    /// Conventional (register) pipelining: only one wave may be on the
    /// wire; the period must cover the full stage flight time plus the
    /// worst-case skew spread plus the settling window.
    Conventional,
    /// Plain wave pipelining: multiple waves in flight; the period must
    /// cover the skew spread (which *accumulates across hops* because it
    /// can be "neither predicted nor handled") plus settling, with a
    /// design margin.
    WavePipelined,
    /// Skew-tolerant wave pipelining: the skew-sampling circuit measures
    /// and cancels the spread at every hop, leaving only jitter plus the
    /// sampling window.
    Skwp,
}

impl SignallingMode {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SignallingMode::Conventional => "conventional",
            SignallingMode::WavePipelined => "wave-pipelined",
            SignallingMode::Skwp => "SKWP",
        }
    }
}

/// Physical description of one parallel link of the network card.
///
/// All times are in picoseconds.
#[derive(Debug, Clone)]
pub struct LinkPhy {
    /// Number of data lines (payload bits per wave).
    pub width_bits: usize,
    /// Propagation delay of each line, ps. The *spread* (max-min) is the
    /// skew the SKWP circuit samples and cancels.
    pub line_delays_ps: Vec<f64>,
    /// Receiver settling/sampling window, ps.
    pub settle_ps: f64,
    /// Residual timing jitter after skew compensation, ps.
    pub jitter_ps: f64,
    /// Width of the skew-sampling circuit's merge window, ps. SKWP pays
    /// this per wave instead of the raw skew spread.
    pub sample_window_ps: f64,
    /// Design margin multiplier applied to the *uncompensated* skew
    /// spread in plain wave pipelining ("tremendous efforts to tune the
    /// skew" — designers must leave slack because end-to-end skew is
    /// unpredictable).
    pub wave_margin: f64,
    /// Number of cascaded cards the uncompensated skew accumulates
    /// across (worst case path length the designer must budget for).
    pub budget_hops: usize,
}

impl LinkPhy {
    /// The default card model: 16 data lines, ≈125 ns stage flight
    /// (FPGA routing + connector + inter-PC cable), 25 ns worst-case
    /// inter-line skew spread, 10 ns settling, 5 ns residual jitter,
    /// 25 ns sampling window.
    ///
    /// These values put conventional pipelining at 160 ns/wave
    /// (12.5 MB/s) and SKWP at 40 ns/wave (50 MB/s) — the paper's
    /// "four times higher bandwidth than conventional pipelining", and
    /// exactly 4x Fast Ethernet's 12.5 MB/s payload rate.
    pub fn paper_card() -> Self {
        let width_bits = 16;
        // Deterministic skews spanning [100, 125] ns: spread 25 ns.
        let line_delays_ps: Vec<f64> = (0..width_bits)
            .map(|i| 100_000.0 + 25_000.0 * (i as f64) / (width_bits - 1) as f64)
            .collect();
        LinkPhy {
            width_bits,
            line_delays_ps,
            settle_ps: 10_000.0,
            jitter_ps: 5_000.0,
            sample_window_ps: 25_000.0,
            wave_margin: 1.5,
            budget_hops: 2,
        }
    }

    /// Worst-case inter-line skew spread, ps.
    pub fn skew_spread_ps(&self) -> f64 {
        let max = self.line_delays_ps.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.line_delays_ps.iter().cloned().fold(f64::MAX, f64::min);
        (max - min).max(0.0)
    }

    /// Longest line flight time, ps (the stage flight that conventional
    /// pipelining must wait out on every wave).
    pub fn stage_flight_ps(&self) -> f64 {
        self.line_delays_ps.iter().cloned().fold(0.0, f64::max)
    }

    /// Minimum safe signalling period for the given mode, ps.
    ///
    /// * conventional: `flight + spread + settle` — the wire must drain
    ///   completely before the next wave launches;
    /// * wave-pipelined: `margin * spread * budget_hops + settle` — waves
    ///   overlap, but the *unpredictable, hop-magnified* skew spread must
    ///   fit between consecutive waves;
    /// * SKWP: `jitter + settle` — the sampling circuit re-aligns every
    ///   hop, so only residual jitter separates waves.
    pub fn period_ps(&self, mode: SignallingMode) -> f64 {
        match mode {
            SignallingMode::Conventional => {
                self.stage_flight_ps() + self.skew_spread_ps() + self.settle_ps
            }
            SignallingMode::WavePipelined => {
                self.wave_margin * self.skew_spread_ps() * self.budget_hops as f64 + self.settle_ps
            }
            SignallingMode::Skwp => self.jitter_ps + self.settle_ps + self.sample_window_ps,
        }
    }

    /// Payload bandwidth in bytes/second for the given mode.
    pub fn bandwidth_bps(&self, mode: SignallingMode) -> f64 {
        let bits_per_wave = self.width_bits as f64;
        let period_s = self.period_ps(mode) * 1e-12;
        bits_per_wave / 8.0 / period_s
    }

    /// Bandwidth gain of SKWP over conventional pipelining — the
    /// paper's "up to four times" claim.
    pub fn skwp_gain(&self) -> f64 {
        self.bandwidth_bps(SignallingMode::Skwp) / self.bandwidth_bps(SignallingMode::Conventional)
    }

    /// Derive the scheduler-level [`LinkRate`] for this phy in a mode.
    ///
    /// The per-hop latency is one stage flight (the header wave must
    /// physically cross the link) plus the router's cut-through decision
    /// time.
    pub fn rate(&self, mode: SignallingMode, router_delay_s: f64) -> LinkRate {
        LinkRate {
            bandwidth_bps: self.bandwidth_bps(mode),
            per_hop_s: self.stage_flight_ps() * 1e-12 + router_delay_s,
        }
    }
}

/// The two numbers the message scheduler needs from a link technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkRate {
    /// Payload bandwidth, bytes/second.
    pub bandwidth_bps: f64,
    /// Latency a message header pays per traversed link (flight +
    /// routing decision), seconds.
    pub per_hop_s: f64,
}

impl LinkRate {
    /// The paper's card: SKWP-mode [`LinkPhy::paper_card`] with a 0.5 µs
    /// wormhole router decision.
    pub fn vbus_skwp() -> Self {
        LinkPhy::paper_card().rate(SignallingMode::Skwp, 0.5e-6)
    }

    /// Same card clocked conventionally (≈¼ of the SKWP bandwidth) —
    /// the pipelining baseline in the paper's §2.1 comparison.
    pub fn vbus_conventional() -> Self {
        LinkPhy::paper_card().rate(SignallingMode::Conventional, 0.5e-6)
    }

    /// Fast Ethernet reference: 100 Mbit/s payload (12.5 MB/s) on a
    /// shared segment; "per hop" is the wire+PHY latency only — the
    /// large protocol-stack cost lives in the NIC software model (the
    /// paper attributes Fast Ethernet's 4x-worse latency chiefly to its
    /// kernel-level communication path).
    pub fn fast_ethernet() -> Self {
        LinkRate {
            bandwidth_bps: 12.5e6,
            per_hop_s: 5e-6,
        }
    }

    /// Seconds to push `bytes` through the link once acquired.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.bandwidth_bps
    }

    /// Seconds for the receiver's CRC verdict to reach the sender: the
    /// ack worm re-crosses the path ([`ACK_BYTES`] payload, one header
    /// flight per hop). This is the detection latency of a corrupted
    /// packet — the NACK round trip before a retransmit can start.
    pub fn ack_turnaround(&self, hops: usize) -> f64 {
        self.per_hop_s * hops as f64 + self.transfer_time(ACK_BYTES)
    }

    /// Sender-side ack timeout after which a packet is declared lost
    /// (no CRC verdict ever arrives for a dropped packet). A small
    /// multiple of the ack turnaround, as a real link layer would
    /// configure it.
    pub fn drop_timeout(&self, hops: usize) -> f64 {
        4.0 * self.ack_turnaround(hops)
    }
}

/// Payload bytes of the link-level acknowledgement packet: the packet
/// serial being acked plus the CRC verdict.
pub const ACK_BYTES: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_card_skwp_gain_is_about_four() {
        let phy = LinkPhy::paper_card();
        let gain = phy.skwp_gain();
        assert!(
            (3.5..=4.5).contains(&gain),
            "SKWP gain should be ~4x (paper §2.1), got {gain}"
        );
    }

    #[test]
    fn paper_card_bandwidths() {
        let phy = LinkPhy::paper_card();
        let skwp = phy.bandwidth_bps(SignallingMode::Skwp);
        let conv = phy.bandwidth_bps(SignallingMode::Conventional);
        // SKWP = 50 MB/s = 4x Fast Ethernet, conventional = 12.5 MB/s.
        assert!((skwp - 50e6).abs() / 50e6 < 0.05, "skwp={skwp}");
        assert!((conv - 12.5e6).abs() / 12.5e6 < 0.1, "conv={conv}");
    }

    #[test]
    fn skwp_beats_plain_wave_pipelining() {
        // Plain wave pipelining helps over conventional, but the
        // hop-magnified unpredictable skew keeps it short of SKWP —
        // the motivation for the sampling circuit.
        let phy = LinkPhy::paper_card();
        let conv = phy.bandwidth_bps(SignallingMode::Conventional);
        let wave = phy.bandwidth_bps(SignallingMode::WavePipelined);
        let skwp = phy.bandwidth_bps(SignallingMode::Skwp);
        assert!(wave > conv, "wave {wave} should beat conventional {conv}");
        assert!(skwp > wave, "skwp {skwp} should beat plain wave {wave}");
    }

    #[test]
    fn more_skew_hurts_wave_but_not_skwp() {
        let mut phy = LinkPhy::paper_card();
        let wave_before = phy.bandwidth_bps(SignallingMode::WavePipelined);
        let skwp_before = phy.bandwidth_bps(SignallingMode::Skwp);
        // Double the spread.
        let min = phy.line_delays_ps.iter().cloned().fold(f64::MAX, f64::min);
        for d in &mut phy.line_delays_ps {
            *d = min + (*d - min) * 2.0;
        }
        let wave_after = phy.bandwidth_bps(SignallingMode::WavePipelined);
        let skwp_after = phy.bandwidth_bps(SignallingMode::Skwp);
        assert!(wave_after < wave_before);
        assert_eq!(skwp_after, skwp_before, "SKWP cancels skew");
    }

    #[test]
    fn zero_spread_makes_conventional_flight_bound() {
        let phy = LinkPhy {
            width_bits: 8,
            line_delays_ps: vec![100_000.0; 8],
            settle_ps: 10_000.0,
            jitter_ps: 5_000.0,
            sample_window_ps: 25_000.0,
            wave_margin: 1.5,
            budget_hops: 2,
        };
        assert_eq!(phy.skew_spread_ps(), 0.0);
        assert_eq!(
            phy.period_ps(SignallingMode::Conventional),
            110_000.0,
            "flight + settle"
        );
    }

    #[test]
    fn fast_ethernet_vs_vbus_bandwidth_ratio() {
        let fe = LinkRate::fast_ethernet();
        let vb = LinkRate::vbus_skwp();
        let ratio = vb.bandwidth_bps / fe.bandwidth_bps;
        assert!(
            (3.5..=4.5).contains(&ratio),
            "V-Bus should be ~4x FE bandwidth (paper §1), got {ratio}"
        );
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let r = LinkRate::vbus_skwp();
        let t1 = r.transfer_time(1 << 20);
        let t2 = r.transfer_time(2 << 20);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ack_protocol_timings_scale_with_path_length() {
        let r = LinkRate::vbus_skwp();
        let one = r.ack_turnaround(1);
        let three = r.ack_turnaround(3);
        assert!((three - one - 2.0 * r.per_hop_s).abs() < 1e-15);
        assert!(one > r.transfer_time(ACK_BYTES));
        // Drop detection is strictly slower than NACK detection: a lost
        // packet costs more to notice than a corrupted one.
        assert!(r.drop_timeout(2) > r.ack_turnaround(2));
    }

    #[test]
    fn mode_names() {
        assert_eq!(SignallingMode::Skwp.name(), "SKWP");
        assert_eq!(SignallingMode::Conventional.name(), "conventional");
        assert_eq!(SignallingMode::WavePipelined.name(), "wave-pipelined");
    }
}
