//! Parameter-sweep helpers behind the hardware-claim experiments
//! (claims C1–C3 in `DESIGN.md`): raw link bandwidth per signalling
//! mode, point-to-point latency/bandwidth curves, and hardware- vs.
//! software-broadcast comparisons.

use crate::link::{LinkPhy, SignallingMode};
use crate::sim::{NetConfig, NetSim};
use crate::Time;

/// One row of the link-technology table (claim C1).
#[derive(Debug, Clone)]
pub struct LinkModeRow {
    pub mode: SignallingMode,
    pub period_ns: f64,
    pub bandwidth_mbps: f64,
    pub gain_over_conventional: f64,
}

/// Bandwidth of each signalling mode for a card phy.
pub fn link_mode_table(phy: &LinkPhy) -> Vec<LinkModeRow> {
    let conv = phy.bandwidth_bps(SignallingMode::Conventional);
    [
        SignallingMode::Conventional,
        SignallingMode::WavePipelined,
        SignallingMode::Skwp,
    ]
    .into_iter()
    .map(|mode| LinkModeRow {
        mode,
        period_ns: phy.period_ps(mode) / 1000.0,
        bandwidth_mbps: phy.bandwidth_bps(mode) / 1e6,
        gain_over_conventional: phy.bandwidth_bps(mode) / conv,
    })
    .collect()
}

/// One point of a p2p sweep (claim C2).
#[derive(Debug, Clone)]
pub struct P2pPoint {
    pub bytes: usize,
    /// End-to-end one-way network time, seconds.
    pub latency_s: Time,
    /// Achieved bandwidth, MB/s.
    pub bandwidth_mbps: f64,
}

/// Sweep message sizes over an idle network between the two most
/// distant nodes.
pub fn p2p_sweep(cfg: &NetConfig, sizes: &[usize]) -> Vec<P2pPoint> {
    let far = cfg.num_nodes() - 1;
    sizes
        .iter()
        .map(|&bytes| {
            let mut sim = NetSim::new(cfg.clone());
            let t = sim.p2p(0, far, bytes, 0.0);
            P2pPoint {
                bytes,
                latency_s: t.end,
                bandwidth_mbps: bytes as f64 / t.end / 1e6,
            }
        })
        .collect()
}

/// One point of the broadcast comparison (claim C3).
#[derive(Debug, Clone)]
pub struct BroadcastPoint {
    pub bytes: usize,
    /// Hardware virtual-bus completion time.
    pub vbus_s: Time,
    /// Software binomial-tree completion time over p2p on the same mesh.
    pub tree_s: Time,
}

/// Compare the hardware virtual bus against a software binomial tree on
/// the same mesh, over a range of payload sizes.
pub fn broadcast_sweep(cfg: &NetConfig, sizes: &[usize]) -> Vec<BroadcastPoint> {
    sizes
        .iter()
        .map(|&bytes| {
            let mut hw = NetSim::new(cfg.clone());
            let vbus_s = hw
                .vbus_broadcast(0, bytes, 0.0)
                .map(|t| t.end)
                .unwrap_or(f64::INFINITY);
            let tree_s = tree_broadcast_time(cfg, bytes);
            BroadcastPoint {
                bytes,
                vbus_s,
                tree_s,
            }
        })
        .collect()
}

/// Completion time of a binomial-tree software broadcast from node 0:
/// in round `r`, every node that already holds the payload forwards it
/// to `peer = node + 2^r`.
pub fn tree_broadcast_time(cfg: &NetConfig, bytes: usize) -> Time {
    let n = cfg.num_nodes();
    let mut sim = NetSim::new(cfg.clone());
    let mut have: Vec<Option<Time>> = vec![None; n];
    have[0] = Some(0.0);
    let mut stride = 1;
    while stride < n {
        for src in 0..n {
            let dst = src + stride;
            if dst < n {
                if let (Some(t), None) = (have[src], have[dst]) {
                    let x = sim.p2p(src, dst, bytes, t);
                    have[dst] = Some(x.end);
                }
            }
        }
        stride *= 2;
    }
    have.into_iter()
        .flatten()
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_table_has_three_modes_and_skwp_wins() {
        let rows = link_mode_table(&LinkPhy::paper_card());
        assert_eq!(rows.len(), 3);
        let skwp = rows
            .iter()
            .find(|r| r.mode == SignallingMode::Skwp)
            .unwrap();
        assert!(skwp.gain_over_conventional >= 3.5);
        for r in &rows {
            assert!(r.bandwidth_mbps > 0.0);
        }
    }

    #[test]
    fn p2p_sweep_latency_grows_with_size() {
        let pts = p2p_sweep(&NetConfig::vbus_skwp(4), &[64, 1024, 65536]);
        assert!(pts.windows(2).all(|w| w[1].latency_s > w[0].latency_s));
    }

    #[test]
    fn p2p_asymptotic_bandwidth_approaches_link_rate() {
        let pts = p2p_sweep(&NetConfig::vbus_skwp(4), &[1 << 24]);
        let link_mbps = NetConfig::vbus_skwp(4).link.bandwidth_bps / 1e6;
        assert!(pts[0].bandwidth_mbps > 0.95 * link_mbps);
    }

    #[test]
    fn vbus_latency_beats_fast_ethernet_by_about_4x() {
        // Claim C2 at the network level: small-message latency ratio.
        // (The full 4x claim also includes the software stack, modeled
        // in cluster-sim; the wire-level ratio is already >1.)
        let vb = p2p_sweep(&NetConfig::vbus_skwp(4), &[1024])[0].latency_s;
        let fe = p2p_sweep(&NetConfig::fast_ethernet(4), &[1024])[0].latency_s;
        assert!(fe > vb, "FE {fe} should be slower than V-Bus {vb}");
    }

    #[test]
    fn broadcast_sweep_vbus_wins_at_scale() {
        let pts = broadcast_sweep(&NetConfig::vbus_skwp(8), &[1 << 16, 1 << 20]);
        for p in &pts {
            assert!(
                p.vbus_s < p.tree_s,
                "vbus {} vs tree {} at {}B",
                p.vbus_s,
                p.tree_s,
                p.bytes
            );
        }
    }

    #[test]
    fn tree_broadcast_reaches_everyone() {
        // Completion time positive and monotone in size.
        let cfg = NetConfig::vbus_skwp(7);
        let t1 = tree_broadcast_time(&cfg, 1 << 10);
        let t2 = tree_broadcast_time(&cfg, 1 << 16);
        assert!(t1 > 0.0);
        assert!(t2 > t1);
    }
}
