//! Network statistics: per-link occupancy and aggregate counters.
//!
//! The paper argues the V-Bus achieves "more efficient bandwidth
//! utilization" than dedicated broadcast wires; [`NetStats`] exposes the
//! utilization numbers that back that comparison in our benches.

/// Aggregate counters for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Point-to-point messages scheduled.
    pub p2p_messages: u64,
    /// Bytes moved by point-to-point messages.
    pub p2p_bytes: u64,
    /// Virtual-bus broadcasts performed.
    pub broadcasts: u64,
    /// Bytes moved by broadcasts (payload, counted once per broadcast).
    pub broadcast_bytes: u64,
    /// Loopback (same-node) transfers that never touched the wire.
    pub loopbacks: u64,
    /// Total extra delay injected into in-flight p2p messages by
    /// virtual-bus freezes, in link·seconds.
    pub frozen_time: f64,
    /// Number of link schedules extended by a freeze.
    pub frozen_links: u64,
    /// Sum over messages of time spent waiting to acquire a path
    /// (contention).
    pub contention_wait: f64,
    /// Latest completion time observed on any link.
    pub horizon: f64,
    /// Packet attempts whose CRC check failed at the receiver
    /// (injected flit corruption; every one triggered a retransmit).
    pub crc_failures: u64,
    /// Packet attempts lost outright (detected by ack timeout).
    pub packets_dropped: u64,
    /// Injected link stalls (packet held in a router buffer).
    pub link_stalls: u64,
    /// Extra seconds packets spent stalled in buffers.
    pub stall_time: f64,
    /// Retransmissions performed (= crc_failures + packets_dropped on
    /// survivable runs).
    pub retransmits: u64,
    /// Seconds spent in exponential backoff before retransmits.
    pub backoff_time: f64,
    /// Total fault-recovery seconds across transfers (failed attempts,
    /// detection turnarounds, backoff) — the sum of `Transfer::recovery`.
    pub recovery_time: f64,
    /// Rendezvous RTS/CTS handshakes completed (one per rendezvous
    /// transfer; the control legs themselves ride the normal p2p path).
    pub rdvz_handshakes: u64,
    /// Control bytes spent on those handshakes (RTS + CTS headers).
    pub rdvz_handshake_bytes: u64,
    /// V-Bus construction attempts that failed arbitration.
    pub bus_fail_attempts: u64,
    /// Broadcasts that gave up on the hardware bus and degraded to the
    /// software multicast tree.
    pub bus_degraded: u64,
}

/// Per-link occupancy, for utilization reports.
#[derive(Debug, Clone, Default)]
pub struct LinkStats {
    /// Total time the link was held by messages, seconds.
    pub busy: f64,
    /// Messages that traversed the link.
    pub messages: u64,
}

impl NetStats {
    /// Total bytes moved over the network (p2p + broadcast payloads).
    pub fn total_bytes(&self) -> u64 {
        self.p2p_bytes + self.broadcast_bytes
    }

    /// Total messages of any kind.
    pub fn total_messages(&self) -> u64 {
        self.p2p_messages + self.broadcasts
    }

    /// Did any injected fault fire during the run? All-zero whenever
    /// injection is off, which is what keeps fault-free reports
    /// byte-identical to the pre-fault code.
    pub fn faults_seen(&self) -> bool {
        self.crc_failures != 0
            || self.packets_dropped != 0
            || self.link_stalls != 0
            || self.retransmits != 0
            || self.bus_fail_attempts != 0
            || self.bus_degraded != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_combine_p2p_and_broadcast() {
        let s = NetStats {
            p2p_messages: 3,
            p2p_bytes: 100,
            broadcasts: 2,
            broadcast_bytes: 50,
            ..NetStats::default()
        };
        assert_eq!(s.total_bytes(), 150);
        assert_eq!(s.total_messages(), 5);
    }

    #[test]
    fn fault_free_stats_report_no_faults() {
        assert!(!NetStats::default().faults_seen());
        let s = NetStats {
            retransmits: 1,
            ..NetStats::default()
        };
        assert!(s.faults_seen());
        let s = NetStats {
            bus_degraded: 2,
            ..NetStats::default()
        };
        assert!(s.faults_seen());
    }
}
